//! Static shape verification for the tensor IR.
//!
//! The paper's premise (§4) is that predictive pipelines compile into a
//! *closed* set of tensor operations whose behaviour is decidable before
//! execution. This module makes that decidability concrete: it propagates
//! a symbolic shape through every node of a [`Graph`] and proves — without
//! running a single kernel — that broadcasts conform, matmul/gather
//! operands line up, reshapes resolve, and compile-time indices stay in
//! range.
//!
//! # The shape lattice
//!
//! Each dimension is a [`SymDim`]: either the monomial `coeff · B^pow`
//! over a single symbolic batch size `B`, or [`SymDim::Unknown`] (top).
//! A node's shape is a [`ShapeFact`]: a vector of dims when the rank is
//! known, or [`ShapeFact::Any`] (top) when it is not. `Unknown`/`Any`
//! absorb every check — the verifier only reports defects it can *prove*,
//! so partially-annotated graphs (e.g. hand-built test graphs with no
//! declared input shapes) verify vacuously and there are no false
//! positives.
//!
//! # Batch polymorphism
//!
//! Compiled serving graphs must accept any batch size, so the verifier
//! reasons universally over `B ≥ 1`: a constraint is an error exactly
//! when some batch size violates it. For monomials this is decidable:
//!
//! * `c1·B^p1 = c2·B^p2` for all `B ≥ 1` ⇔ `c1 = c2 ∧ p1 = p2`;
//! * `c1·B^p1 ≤ c2·B^p2` for all `B ≥ 1` ⇔ `c1 ≤ c2 ∧ p1 ≤ p2`;
//! * `k < c·B^p` for all `B ≥ 1` ⇔ `k < c` (the value at `B = 1` is the
//!   minimum, since monomials are non-decreasing in `B`).
//!
//! # Where it runs
//!
//! 1. [`Graph::from_json`] and the hb-core compile path gate on
//!    [`Graph::verify`], rejecting hostile or miscompiled artifacts;
//! 2. the optimizer re-verifies after every rewrite pass and asserts the
//!    inferred [`GraphSignature`] is unchanged (translation validation —
//!    see `optimize_with`);
//! 3. the `hb-lint` auditor reports verification errors alongside
//!    graph-hygiene warnings.

use std::fmt;

use hb_tensor::{DType, DynTensor};

use crate::graph::{Graph, GraphError};
use crate::op::Op;

/// One dimension of a symbolic shape: the monomial `coeff · B^pow` over
/// the symbolic batch size `B`, or an unknown size.
///
/// Fixed sizes are the `pow = 0` case; the batch dimension itself is
/// `coeff = 1, pow = 1`. Products of batch-carrying dims (as produced by
/// flattening reshapes like PerfectTreeTraversal's `[T, B] → [T·B]`)
/// raise `pow`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SymDim {
    /// `coeff · B^pow` for every batch size `B`.
    Sym {
        /// Constant factor.
        coeff: usize,
        /// Power of the symbolic batch size.
        pow: u32,
    },
    /// Statically unknown size; absorbs every check.
    Unknown,
}

impl SymDim {
    /// A fixed (batch-independent) dimension.
    pub fn fixed(n: usize) -> SymDim {
        SymDim::Sym { coeff: n, pow: 0 }
    }

    /// The symbolic batch dimension `B`.
    pub fn batch() -> SymDim {
        SymDim::Sym { coeff: 1, pow: 1 }
    }

    /// The fixed size, if this dim does not depend on the batch.
    pub fn as_fixed(&self) -> Option<usize> {
        match self {
            SymDim::Sym { coeff, pow: 0 } => Some(*coeff),
            _ => None,
        }
    }

    /// True exactly for the broadcastable size 1.
    pub fn is_one(&self) -> bool {
        matches!(self, SymDim::Sym { coeff: 1, pow: 0 })
    }

    /// The dimension's value at `B = 1` — its minimum over all batch
    /// sizes, since monomials are non-decreasing in `B`.
    pub fn min_value(&self) -> Option<usize> {
        match self {
            SymDim::Sym { coeff, .. } => Some(*coeff),
            SymDim::Unknown => None,
        }
    }

    /// Normalizes `0 · B^p` to the fixed dimension `0`.
    fn norm(coeff: usize, pow: u32) -> SymDim {
        if coeff == 0 {
            SymDim::fixed(0)
        } else {
            SymDim::Sym { coeff, pow }
        }
    }

    /// Symbolic product; overflow degrades to [`SymDim::Unknown`].
    pub fn times(self, other: SymDim) -> SymDim {
        match (self, other) {
            (SymDim::Sym { coeff: c1, pow: p1 }, SymDim::Sym { coeff: c2, pow: p2 }) => c1
                .checked_mul(c2)
                .and_then(|c| p1.checked_add(p2).map(|p| SymDim::norm(c, p)))
                .unwrap_or(SymDim::Unknown),
            _ => SymDim::Unknown,
        }
    }

    /// Exact symbolic quotient: `Some(q)` iff `self = q · other` for
    /// every batch size.
    pub fn div_exact(self, other: SymDim) -> Option<SymDim> {
        match (self, other) {
            (SymDim::Sym { coeff: c1, pow: p1 }, SymDim::Sym { coeff: c2, pow: p2 }) => {
                if c2 == 0 || c1 % c2 != 0 || p2 > p1 {
                    None
                } else {
                    Some(SymDim::norm(c1 / c2, p1 - p2))
                }
            }
            _ => None,
        }
    }

    /// Whether `self = other` holds for every batch size; `None` when
    /// either side is unknown.
    pub fn known_eq(self, other: SymDim) -> Option<bool> {
        match (self, other) {
            (SymDim::Sym { .. }, SymDim::Sym { .. }) => Some(self == other),
            _ => None,
        }
    }

    /// Whether `self ≤ other` holds for every batch size; `None` when
    /// either side is unknown.
    pub fn known_le(self, other: SymDim) -> Option<bool> {
        match (self, other) {
            (SymDim::Sym { coeff: c1, pow: p1 }, SymDim::Sym { coeff: c2, pow: p2 }) => {
                Some(c1 <= c2 && (p1 <= p2 || c1 == 0))
            }
            _ => None,
        }
    }
}

impl fmt::Display for SymDim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymDim::Sym { coeff, pow: 0 } => write!(f, "{coeff}"),
            SymDim::Sym { coeff: 1, pow: 1 } => write!(f, "B"),
            SymDim::Sym { coeff, pow: 1 } => write!(f, "{coeff}*B"),
            SymDim::Sym { coeff: 1, pow } => write!(f, "B^{pow}"),
            SymDim::Sym { coeff, pow } => write!(f, "{coeff}*B^{pow}"),
            SymDim::Unknown => write!(f, "?"),
        }
    }
}

hb_json::json_enum!(SymDim { Sym { coeff, pow }, Unknown });

/// What the verifier knows about one node's shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShapeFact {
    /// The rank is known and each dimension is a [`SymDim`].
    Known(Vec<SymDim>),
    /// Nothing is known (not even the rank); absorbs every check.
    Any,
}

impl ShapeFact {
    /// A fully concrete shape.
    pub fn fixed(dims: &[usize]) -> ShapeFact {
        ShapeFact::Known(dims.iter().map(|&d| SymDim::fixed(d)).collect())
    }

    /// The row-major serving shape `[B, d1, d2, …]`: a symbolic batch
    /// followed by fixed dims.
    pub fn batched(rest: &[usize]) -> ShapeFact {
        let mut dims = vec![SymDim::batch()];
        dims.extend(rest.iter().map(|&d| SymDim::fixed(d)));
        ShapeFact::Known(dims)
    }

    /// The dims when the rank is known.
    pub fn dims(&self) -> Option<&[SymDim]> {
        match self {
            ShapeFact::Known(d) => Some(d),
            ShapeFact::Any => None,
        }
    }

    /// The rank when known.
    pub fn rank(&self) -> Option<usize> {
        self.dims().map(<[SymDim]>::len)
    }

    /// The concrete shape, if every dim is fixed.
    pub fn as_fixed(&self) -> Option<Vec<usize>> {
        self.dims()?.iter().map(SymDim::as_fixed).collect()
    }
}

impl fmt::Display for ShapeFact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeFact::Known(dims) => {
                write!(f, "[")?;
                for (i, d) in dims.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{d}")?;
                }
                write!(f, "]")
            }
            ShapeFact::Any => write!(f, "[*]"),
        }
    }
}

hb_json::json_enum!(ShapeFact {
    Known(Vec<SymDim>),
    Any,
});

/// The inferred static type of a graph's outputs: dtype and symbolic
/// shape per output slot. Optimizer passes must preserve this exactly
/// (the translation-validation contract).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphSignature {
    /// Per graph output: static dtype and inferred shape.
    pub outputs: Vec<(DType, ShapeFact)>,
}

impl fmt::Display for GraphSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (dt, shape)) in self.outputs.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{dt:?}{shape}")?;
        }
        Ok(())
    }
}

// Hand-written: each output serializes as a `{dtype, shape}` object
// (hb_json has no tuple impls, and named fields age better anyway).
impl hb_json::ToJson for GraphSignature {
    fn to_json(&self) -> hb_json::Json {
        hb_json::Json::Arr(
            self.outputs
                .iter()
                .map(|(dt, shape)| {
                    hb_json::Json::Obj(vec![
                        ("dtype".to_string(), hb_json::ToJson::to_json(dt)),
                        ("shape".to_string(), hb_json::ToJson::to_json(shape)),
                    ])
                })
                .collect(),
        )
    }
}

impl hb_json::FromJson for GraphSignature {
    fn from_json(v: &hb_json::Json) -> Result<Self, hb_json::JsonError> {
        let items = v.expect_arr("GraphSignature")?;
        let mut outputs = Vec::with_capacity(items.len());
        for item in items {
            let pairs = item.expect_obj("GraphSignature output")?;
            let dt = hb_json::field(pairs, "dtype", "GraphSignature output")?;
            let shape = hb_json::field(pairs, "shape", "GraphSignature output")?;
            outputs.push((dt, shape));
        }
        Ok(GraphSignature { outputs })
    }
}

/// Broadcast of two symbolic dims under the right-aligned equal-or-1
/// rule. `Err(())` means the pair is provably incompatible for some
/// batch size.
pub(crate) fn broadcast_dim(a: SymDim, b: SymDim) -> Result<SymDim, ()> {
    match (a, b) {
        (SymDim::Sym { .. }, SymDim::Sym { .. }) => {
            if a == b {
                Ok(a)
            } else if a.is_one() {
                Ok(b)
            } else if b.is_one() {
                Ok(a)
            } else {
                Err(())
            }
        }
        // One side unknown: if the other is 1 the result could be
        // anything; otherwise the unknown side must be 1 or equal, and
        // the result is the known dim either way.
        (SymDim::Unknown, d) | (d, SymDim::Unknown) => {
            if d.is_one() {
                Ok(SymDim::Unknown)
            } else {
                Ok(d)
            }
        }
    }
}

/// Broadcast of two shape facts; [`ShapeFact::Any`] absorbs.
pub(crate) fn broadcast_facts(a: &ShapeFact, b: &ShapeFact) -> Result<ShapeFact, String> {
    let (Some(da), Some(db)) = (a.dims(), b.dims()) else {
        return Ok(ShapeFact::Any);
    };
    broadcast_dims(da, db).map(ShapeFact::Known)
}

/// Right-aligned broadcast of two dim vectors.
pub(crate) fn broadcast_dims(da: &[SymDim], db: &[SymDim]) -> Result<Vec<SymDim>, String> {
    let rank = da.len().max(db.len());
    let mut out = Vec::with_capacity(rank);
    for i in 0..rank {
        let a = i
            .checked_sub(rank - da.len())
            .map_or(SymDim::fixed(1), |j| da[j]);
        let b = i
            .checked_sub(rank - db.len())
            .map_or(SymDim::fixed(1), |j| db[j]);
        out.push(
            broadcast_dim(a, b)
                .map_err(|()| format!("dimension {a} does not broadcast against {b}"))?,
        );
    }
    Ok(out)
}

/// Unifies two dims that a kernel requires to be exactly equal (no
/// broadcasting): `Unknown` yields the informative side.
pub(crate) fn unify_eq(a: SymDim, b: SymDim) -> Result<SymDim, ()> {
    match (a, b) {
        (SymDim::Sym { .. }, SymDim::Sym { .. }) => {
            if a == b {
                Ok(a)
            } else {
                Err(())
            }
        }
        (SymDim::Unknown, d) | (d, SymDim::Unknown) => Ok(d),
    }
}

impl Graph {
    /// Propagates symbolic shapes through every node, returning one
    /// [`ShapeFact`] per node or the first provable defect.
    ///
    /// Input slots take their declared shape from `input_shapes`
    /// (missing/undeclared slots are [`ShapeFact::Any`]); constant-node
    /// values feed the compile-time index-range checks.
    ///
    /// # Errors
    ///
    /// Returns the first [`GraphError::ShapeMismatch`],
    /// [`GraphError::IndexOutOfRange`], or [`GraphError::BadReshape`]
    /// found, identifying the offending node and its inferred operand
    /// shapes. Requires [`Graph::try_validate`] to have passed.
    pub fn infer_shapes(&self) -> Result<Vec<ShapeFact>, GraphError> {
        let consts: Vec<Option<&DynTensor>> = self
            .nodes
            .iter()
            .map(|n| match &n.op {
                Op::Const(v) => Some(v),
                _ => None,
            })
            .collect();
        let mut out: Vec<ShapeFact> = Vec::with_capacity(self.nodes.len());
        for (id, node) in self.nodes.iter().enumerate() {
            let ins: Vec<ShapeFact> = node.inputs.iter().map(|&i| out[i].clone()).collect();
            let in_consts: Vec<Option<&DynTensor>> =
                node.inputs.iter().map(|&i| consts[i]).collect();
            out.push(
                node.op
                    .shape_infer(id, &ins, &in_consts, &self.input_shapes)?,
            );
        }
        Ok(out)
    }

    /// Full static verification: structure, dtypes, and symbolic shapes.
    /// Returns the graph's inferred output signature on success.
    ///
    /// # Errors
    ///
    /// Returns the first [`GraphError`] found by [`Graph::try_validate`],
    /// [`Graph::check_dtypes`], or [`Graph::infer_shapes`].
    pub fn verify(&self) -> Result<GraphSignature, GraphError> {
        self.try_validate()?;
        let dtypes = self.check_dtypes()?;
        let shapes = self.infer_shapes()?;
        Ok(GraphSignature {
            outputs: self
                .outputs
                .iter()
                .map(|&o| (dtypes[o], shapes[o].clone()))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fx(n: usize) -> SymDim {
        SymDim::fixed(n)
    }

    #[test]
    fn monomial_algebra() {
        let b = SymDim::batch();
        assert_eq!(b.times(fx(3)), SymDim::Sym { coeff: 3, pow: 1 });
        assert_eq!(b.times(b), SymDim::Sym { coeff: 1, pow: 2 });
        assert_eq!(fx(6).div_exact(fx(3)), Some(fx(2)));
        assert_eq!(fx(6).div_exact(fx(4)), None);
        assert_eq!(b.times(fx(6)).div_exact(fx(3)), Some(b.times(fx(2))));
        assert_eq!(fx(3).div_exact(b), None, "B does not divide a constant");
        assert_eq!(fx(0).times(b), fx(0), "zero coefficient normalizes");
    }

    #[test]
    fn ordering_is_for_all_batch_sizes() {
        let b = SymDim::batch();
        assert_eq!(fx(1).known_le(b), Some(true));
        assert_eq!(fx(2).known_le(b), Some(false), "fails at B = 1");
        assert_eq!(b.known_le(b.times(fx(2))), Some(true));
        assert_eq!(b.times(fx(2)).known_le(b), Some(false));
        assert_eq!(fx(0).known_le(b), Some(true), "0 <= B for every B");
        assert_eq!(SymDim::Unknown.known_le(b), None);
        assert_eq!(b.known_eq(fx(3)), Some(false), "B = 3 fails off B = 3");
    }

    #[test]
    fn broadcast_rules() {
        let b = SymDim::batch();
        assert_eq!(broadcast_dim(b, b), Ok(b));
        assert_eq!(broadcast_dim(fx(1), b), Ok(b));
        assert_eq!(broadcast_dim(b, fx(1)), Ok(b));
        assert_eq!(broadcast_dim(b, fx(4)), Err(()));
        assert_eq!(broadcast_dim(fx(0), fx(1)), Ok(fx(0)));
        assert_eq!(broadcast_dim(fx(0), fx(3)), Err(()));
        assert_eq!(broadcast_dim(SymDim::Unknown, fx(4)), Ok(fx(4)));
        assert_eq!(broadcast_dim(SymDim::Unknown, fx(1)), Ok(SymDim::Unknown));
    }

    #[test]
    fn broadcast_aligns_right() {
        let a = [SymDim::batch(), fx(3)];
        let b = [fx(3)];
        assert_eq!(
            broadcast_dims(&a, &b),
            Ok(vec![SymDim::batch(), fx(3)]),
            "missing leading dims act as 1"
        );
        let bad = [fx(2), fx(3)];
        let c = [fx(4), fx(1)];
        assert!(broadcast_dims(&bad, &c).is_err());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(SymDim::batch().to_string(), "B");
        assert_eq!(fx(7).to_string(), "7");
        assert_eq!(SymDim::batch().times(fx(3)).to_string(), "3*B");
        assert_eq!(SymDim::Unknown.to_string(), "?");
        assert_eq!(ShapeFact::batched(&[4]).to_string(), "[B, 4]");
        assert_eq!(ShapeFact::Any.to_string(), "[*]");
    }

    #[test]
    fn shape_fact_json_roundtrip() {
        for fact in [
            ShapeFact::Any,
            ShapeFact::fixed(&[2, 3]),
            ShapeFact::batched(&[5]),
            ShapeFact::Known(vec![SymDim::Unknown, fx(1)]),
        ] {
            let s = hb_json::to_string(&fact);
            let back: ShapeFact = match hb_json::from_str(&s) {
                Ok(v) => v,
                Err(e) => panic!("roundtrip {s}: {e}"),
            };
            assert_eq!(back, fact, "{s}");
        }
    }
}
