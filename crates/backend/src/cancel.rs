//! Cooperative cancellation for in-flight graph executions.
//!
//! A [`CancelToken`] is a cheap, clonable handle threaded into the
//! executor loops (both the refcount and the planned arena paths), which
//! check it between node evaluations. A request that blows its deadline
//! or whose client walked away therefore stops *mid-graph* — paying at
//! most one more kernel — instead of running the whole program to
//! completion and discarding the answer.
//!
//! Two triggers flip a token:
//!
//! * an explicit [`CancelToken::cancel`] call (supervisor shutdown,
//!   client disconnect), and
//! * an optional wall-clock deadline baked in at construction
//!   ([`CancelToken::with_deadline`]) — the common serving case, where
//!   no watcher thread is needed: the executor itself observes that the
//!   budget is gone at its next checkpoint.
//!
//! Cancellation is *cooperative*: a single long-running kernel is not
//! interrupted, only the gaps between kernels are observed. `hb-lint`
//! warns when a served graph collapses into one fused mega-node and
//! therefore offers no checkpoints at all.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug, Default)]
struct CancelInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A shared cancellation flag with an optional built-in deadline.
///
/// Cloning shares the flag: cancelling any clone cancels them all.
/// The default token never cancels.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that additionally reports cancelled once `deadline` has
    /// passed, with no watcher thread involved.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// A token whose deadline is `budget` from now.
    pub fn deadline_in(budget: Duration) -> CancelToken {
        CancelToken::with_deadline(Instant::now() + budget)
    }

    /// Flips the flag; every holder of a clone observes it at its next
    /// checkpoint. Idempotent.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// True once the token is cancelled or its deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        match self.inner.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// The built-in deadline, if one was set at construction.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_token_never_cancels() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.deadline().is_none());
    }

    #[test]
    fn explicit_cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
        assert!(c.is_cancelled());
    }

    #[test]
    fn past_deadline_reports_cancelled() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        let future = CancelToken::deadline_in(Duration::from_secs(3600));
        assert!(!future.is_cancelled());
    }
}
