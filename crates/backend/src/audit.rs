//! Static memory-plan auditor: independent safety verification of
//! [`MemoryPlan`]s.
//!
//! The planner ([`MemoryPlan::build`]) and this auditor answer the same
//! question — "may these two values share an arena slot?" — but from
//! opposite directions. The planner *constructs* an assignment from its
//! own liveness bookkeeping; the auditor re-derives view aliasing,
//! last-uses, and output pinning from scratch, then replays the plan's
//! slot assignments on a timeline and rejects any plan where
//!
//! * two simultaneously-live values occupy the same slot,
//! * an in-place kernel overwrites an operand that is not genuinely
//!   dead (or is a graph output, or lives in a different slot than the
//!   plan claims),
//! * a matmul's staging scratch slot aliases any live value, or
//! * a step's declared shape/dtype/slot capacity contradicts the
//!   graph's verified shape facts.
//!
//! The auditor deliberately shares no state with the planner (it is
//! also `absint`-independent): a bookkeeping bug in `plan.rs` cannot
//! silently excuse itself here. It runs as a debug assertion on every
//! plan build and behind `hb-lint --audit-plans`.

use std::fmt;

use hb_tensor::DType;

use crate::graph::{Graph, GraphError, NodeId};
use crate::op::Op;
use crate::plan::{concretize, Inplace, MemoryPlan, Step};

/// Why a memory plan failed the audit.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanAuditError {
    /// Shape inference failed, so the plan cannot be checked at all.
    Graph(GraphError),
    /// The plan's step list does not cover the graph's nodes.
    StepCount {
        /// Steps in the plan.
        steps: usize,
        /// Nodes in the graph.
        nodes: usize,
    },
    /// A step references a slot index outside the arena.
    BadSlot {
        /// Offending node.
        node: NodeId,
        /// Claimed slot index.
        slot: usize,
    },
    /// A node writes a slot whose dtype differs from the node's.
    SlotDtype {
        /// Offending node.
        node: NodeId,
        /// Claimed slot index.
        slot: usize,
        /// The node's dtype.
        node_dtype: DType,
        /// The slot's dtype.
        slot_dtype: DType,
    },
    /// A node's output does not fit in its slot.
    SlotTooSmall {
        /// Offending node.
        node: NodeId,
        /// Claimed slot index.
        slot: usize,
        /// Elements the node's output needs.
        need: usize,
        /// Elements the slot holds.
        have: usize,
    },
    /// A step's declared concrete shape contradicts the verified shape
    /// fact at this plan's batch.
    ShapeMismatch {
        /// Offending node.
        node: NodeId,
    },
    /// An input/constant or pure view node claims an arena slot.
    NotAKernel {
        /// Offending node.
        node: NodeId,
    },
    /// Two simultaneously-live values share a slot.
    LiveOverlap {
        /// The node whose write collides.
        node: NodeId,
        /// The contested slot.
        slot: usize,
        /// The earlier, still-live occupant.
        occupant: NodeId,
    },
    /// An in-place kernel's destination operand is not genuinely dead at
    /// the node (it has later uses or is a graph output).
    InplaceNotDead {
        /// Offending node.
        node: NodeId,
        /// The operand whose slot is overwritten.
        operand: NodeId,
    },
    /// An in-place kernel claims a different slot than its destination
    /// operand actually occupies.
    InplaceSlotMismatch {
        /// Offending node.
        node: NodeId,
        /// The operand whose slot should be reused.
        operand: NodeId,
    },
    /// An in-place kernel whose other operands alias the destination
    /// buffer.
    InplaceAliasedOperand {
        /// Offending node.
        node: NodeId,
    },
    /// An in-place destination whose element count cannot host the
    /// output.
    InplaceShape {
        /// Offending node.
        node: NodeId,
    },
    /// A matmul staging scratch slot aliases a live value (or is
    /// undersized / wrongly typed).
    ScratchConflict {
        /// Offending node.
        node: NodeId,
        /// The scratch slot.
        scratch: usize,
        /// What went wrong.
        why: &'static str,
    },
    /// The plan's expected input shape disagrees with the graph's
    /// declared input shape at this batch.
    InputShape {
        /// Offending input slot.
        slot: usize,
    },
}

impl fmt::Display for PlanAuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanAuditError::Graph(e) => write!(f, "plan audit: shape inference failed: {e}"),
            PlanAuditError::StepCount { steps, nodes } => {
                write!(f, "plan audit: {steps} steps for {nodes} nodes")
            }
            PlanAuditError::BadSlot { node, slot } => {
                write!(f, "plan audit: node {node} references missing slot {slot}")
            }
            PlanAuditError::SlotDtype {
                node,
                slot,
                node_dtype,
                slot_dtype,
            } => write!(
                f,
                "plan audit: node {node} ({node_dtype:?}) writes slot {slot} of dtype {slot_dtype:?}"
            ),
            PlanAuditError::SlotTooSmall {
                node,
                slot,
                need,
                have,
            } => write!(
                f,
                "plan audit: node {node} needs {need} elements but slot {slot} holds {have}"
            ),
            PlanAuditError::ShapeMismatch { node } => write!(
                f,
                "plan audit: node {node}'s planned shape contradicts its verified shape fact"
            ),
            PlanAuditError::NotAKernel { node } => write!(
                f,
                "plan audit: node {node} is a value/view node but claims an arena slot"
            ),
            PlanAuditError::LiveOverlap {
                node,
                slot,
                occupant,
            } => write!(
                f,
                "plan audit: node {node} writes slot {slot} while node {occupant} is still live in it"
            ),
            PlanAuditError::InplaceNotDead { node, operand } => write!(
                f,
                "plan audit: node {node} overwrites operand {operand} in place, but the operand is not dead"
            ),
            PlanAuditError::InplaceSlotMismatch { node, operand } => write!(
                f,
                "plan audit: node {node} claims an in-place write but its slot differs from operand {operand}'s"
            ),
            PlanAuditError::InplaceAliasedOperand { node } => write!(
                f,
                "plan audit: node {node} writes in place over a buffer another operand still reads"
            ),
            PlanAuditError::InplaceShape { node } => write!(
                f,
                "plan audit: node {node}'s in-place destination cannot host its output"
            ),
            PlanAuditError::ScratchConflict {
                node,
                scratch,
                why,
            } => write!(
                f,
                "plan audit: node {node}'s matmul scratch slot {scratch} is unsafe: {why}"
            ),
            PlanAuditError::InputShape { slot } => write!(
                f,
                "plan audit: expected input shape for slot {slot} contradicts the graph declaration"
            ),
        }
    }
}

impl std::error::Error for PlanAuditError {}

/// True when `op` is realized as a zero-copy alias of its input on the
/// non-kernel path (metadata views and identity casts).
fn is_view(op: &Op, in_dtype: DType, out_dtype: DType) -> bool {
    match op {
        Op::Reshape { .. }
        | Op::Unsqueeze(_)
        | Op::Squeeze(_)
        | Op::Transpose(_, _)
        | Op::Slice { .. } => true,
        Op::Cast(_) => in_dtype == out_dtype,
        _ => false,
    }
}

fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Statically verifies `plan` against `graph`. See the module docs for
/// the property list.
///
/// # Errors
///
/// The first violated property, as a [`PlanAuditError`].
pub fn audit_plan(graph: &Graph, plan: &MemoryPlan) -> Result<(), PlanAuditError> {
    let shapes = graph.infer_shapes().map_err(PlanAuditError::Graph)?;
    let dtypes = graph.infer_dtypes();
    let n = graph.nodes.len();
    if plan.steps.len() != n {
        return Err(PlanAuditError::StepCount {
            steps: plan.steps.len(),
            nodes: n,
        });
    }

    // 1. Alias roots, re-derived from the graph alone: a view chains to
    //    its first input's root; everything else roots itself.
    let mut root: Vec<NodeId> = (0..n).collect();
    for (id, node) in graph.nodes.iter().enumerate() {
        if let Some(&src) = node.inputs.first() {
            if is_view(&node.op, dtypes[src], dtypes[id]) {
                root[id] = root[src];
            }
        }
    }

    // 2. Last uses per root (reading any alias keeps the root's buffer
    //    live), and output pinning (an output root lives forever).
    let mut last_use: Vec<Option<NodeId>> = vec![None; n];
    for (id, node) in graph.nodes.iter().enumerate() {
        for &src in &node.inputs {
            let r = root[src];
            last_use[r] = Some(last_use[r].map_or(id, |u: NodeId| u.max(id)));
        }
    }
    let mut pinned = vec![false; n];
    for &o in &graph.outputs {
        pinned[root[o]] = true;
    }
    let live_through = |r: NodeId, at: NodeId| pinned[r] || last_use[r].is_some_and(|u| u >= at);
    let live_after = |r: NodeId, at: NodeId| pinned[r] || last_use[r].is_some_and(|u| u > at);

    // 3. Replay the plan's writes on a timeline.
    let mut slot_of: Vec<Option<usize>> = vec![None; n];
    for (id, step) in plan.steps.iter().enumerate() {
        let Step::Kernel {
            slot,
            shape,
            inplace,
        } = step
        else {
            continue;
        };
        let (slot, shape) = (*slot, shape.as_slice());
        let node = &graph.nodes[id];

        if matches!(node.op, Op::Input(_) | Op::Const(_)) || root[id] != id {
            return Err(PlanAuditError::NotAKernel { node: id });
        }
        let Some(spec) = plan.slots.get(slot) else {
            return Err(PlanAuditError::BadSlot { node: id, slot });
        };
        if spec.dtype != dtypes[id] {
            return Err(PlanAuditError::SlotDtype {
                node: id,
                slot,
                node_dtype: dtypes[id],
                slot_dtype: spec.dtype,
            });
        }
        match concretize(&shapes[id], plan.batch) {
            Some(expect) if expect == shape => {}
            _ => return Err(PlanAuditError::ShapeMismatch { node: id }),
        }
        let need = numel(shape);
        if spec.len < need {
            return Err(PlanAuditError::SlotTooSmall {
                node: id,
                slot,
                need,
                have: spec.len,
            });
        }

        match inplace {
            Inplace::No => {
                // A fresh write may only claim a slot whose previous
                // occupant is fully retired *before* this node — an
                // operand read by this very node still counts as live.
                for (r, s) in slot_of.iter().enumerate().take(id) {
                    if *s == Some(slot) && live_through(r, id) {
                        return Err(PlanAuditError::LiveOverlap {
                            node: id,
                            slot,
                            occupant: r,
                        });
                    }
                }
            }
            Inplace::Map | Inplace::Fused { .. } => {
                let pos = match inplace {
                    Inplace::Fused { operand } => *operand,
                    _ => 0,
                };
                let Some(&dst) = node.inputs.get(pos) else {
                    return Err(PlanAuditError::InplaceShape { node: id });
                };
                let r = root[dst];
                if slot_of[r] != Some(slot) {
                    return Err(PlanAuditError::InplaceSlotMismatch {
                        node: id,
                        operand: r,
                    });
                }
                if live_after(r, id) {
                    return Err(PlanAuditError::InplaceNotDead {
                        node: id,
                        operand: r,
                    });
                }
                // The destination must host the output exactly, and no
                // other operand may read the buffer being overwritten.
                match concretize(&shapes[dst], plan.batch) {
                    Some(s) if numel(&s) == need => {}
                    _ => return Err(PlanAuditError::InplaceShape { node: id }),
                }
                for (j, &src) in node.inputs.iter().enumerate() {
                    if j != pos && slot_of[root[src]] == Some(slot) {
                        return Err(PlanAuditError::InplaceAliasedOperand { node: id });
                    }
                }
                // Any third value parked in this slot must also be dead.
                for (r2, s) in slot_of.iter().enumerate().take(id) {
                    if r2 != r && *s == Some(slot) && live_through(r2, id) {
                        return Err(PlanAuditError::LiveOverlap {
                            node: id,
                            slot,
                            occupant: r2,
                        });
                    }
                }
            }
            Inplace::MatMulLhs { scratch } => {
                let scratch = *scratch;
                let Some(&lhs) = node.inputs.first() else {
                    return Err(PlanAuditError::InplaceShape { node: id });
                };
                let r = root[lhs];
                if slot_of[r] != Some(slot) {
                    return Err(PlanAuditError::InplaceSlotMismatch {
                        node: id,
                        operand: r,
                    });
                }
                if live_after(r, id) {
                    return Err(PlanAuditError::InplaceNotDead {
                        node: id,
                        operand: r,
                    });
                }
                if node.inputs.get(1).is_some_and(|&rhs| root[rhs] == r) {
                    return Err(PlanAuditError::InplaceAliasedOperand { node: id });
                }
                let lhs_shape = concretize(&shapes[lhs], plan.batch)
                    .ok_or(PlanAuditError::InplaceShape { node: id })?;
                if lhs_shape.len() < 2 || spec.len < numel(&lhs_shape) {
                    return Err(PlanAuditError::InplaceShape { node: id });
                }
                let (m, k) = (
                    lhs_shape[lhs_shape.len() - 2],
                    lhs_shape[lhs_shape.len() - 1],
                );
                let Some(sspec) = plan.slots.get(scratch) else {
                    return Err(PlanAuditError::ScratchConflict {
                        node: id,
                        scratch,
                        why: "missing slot",
                    });
                };
                if sspec.dtype != DType::F32 {
                    return Err(PlanAuditError::ScratchConflict {
                        node: id,
                        scratch,
                        why: "not f32",
                    });
                }
                if sspec.len < hb_tensor::matmul::matmul_in_place_scratch_len(m, k) {
                    return Err(PlanAuditError::ScratchConflict {
                        node: id,
                        scratch,
                        why: "undersized",
                    });
                }
                if scratch == slot {
                    return Err(PlanAuditError::ScratchConflict {
                        node: id,
                        scratch,
                        why: "aliases the destination",
                    });
                }
                for (r2, s) in slot_of.iter().enumerate().take(id) {
                    if *s == Some(scratch) && live_through(r2, id) {
                        return Err(PlanAuditError::ScratchConflict {
                            node: id,
                            scratch,
                            why: "aliases a live value",
                        });
                    }
                }
                // A third value parked in the destination slot must be
                // dead as well.
                for (r2, s) in slot_of.iter().enumerate().take(id) {
                    if r2 != r && *s == Some(slot) && live_through(r2, id) {
                        return Err(PlanAuditError::LiveOverlap {
                            node: id,
                            slot,
                            occupant: r2,
                        });
                    }
                }
            }
        }
        slot_of[id] = Some(slot);
    }

    // 4. The plan's request-validation shapes must match the graph's
    //    declared input shapes at this batch.
    for (slot, expect) in plan.input_shapes.iter().enumerate() {
        if let Some(expect) = expect {
            match concretize(&graph.input_shape(slot), plan.batch) {
                Some(s) if &s == expect => {}
                _ => return Err(PlanAuditError::InputShape { slot }),
            }
        }
    }

    Ok(())
}
