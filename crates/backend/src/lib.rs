//! Tensor DAG runtime for the Hummingbird reproduction.
//!
//! The Hummingbird compiler (crate `hb-core`) lowers predictive pipelines
//! into a [`Graph`] of tensor operations ([`Op`]). This crate plays the
//! role of the DNN runtimes in the paper:
//!
//! * [`Backend::Eager`] — node-at-a-time interpretation with a fresh
//!   allocation per op and no graph-level planning (PyTorch-eager stand-in);
//! * [`Backend::Script`] — a pre-planned topological program with early
//!   buffer release (TorchScript stand-in);
//! * [`Backend::Compiled`] — an optimizing compiler performing constant
//!   folding, common-subexpression elimination, dead-code elimination, and
//!   element-wise kernel fusion into bytecode kernels (TVM stand-in).
//!
//! Execution devices are modeled by [`Device`]: the host CPU runs for
//! real; GPU devices (K80/P100/V100 presets from the paper's §6.1.1
//! hardware-scaling experiment) are *simulated* with a roofline
//! performance model — results are always computed on the CPU, while
//! latency and device-memory pressure are derived analytically per kernel.

// Pure-safe-Rust policy: every crate in this workspace is 100% safe
// Rust; see DESIGN.md ("Unsafe-code policy").
#![forbid(unsafe_code)]

pub mod absint;
pub mod artifact;
pub mod audit;
pub mod cancel;
pub mod cost;
pub mod dedup;
pub mod device;
pub mod exec;
pub mod fault;
pub mod fuse;
pub mod graph;
pub mod lir;
pub mod op;
pub mod optimize;
pub mod plan;
pub mod verify;

pub use absint::ValueFact;
pub use artifact::{Artifact, LirCert};
pub use audit::{audit_plan, PlanAuditError};
pub use cancel::CancelToken;
pub use cost::{
    cost_cert, cost_certs, cost_summary, envelope_for, CostCert, CostError, CostPoly, CostSummary,
    TimeEnvelope, COST_BUCKETS,
};
pub use dedup::{ConstPool, DedupStats};
pub use device::{Device, DeviceSpec};
pub use exec::{ExecError, Executable, RunStats};
pub use fault::{FaultPlan, FaultScope};
pub use graph::{Graph, GraphBuilder, GraphError, NodeId};
pub use lir::{LirError, LirProgram};
pub use op::Op;
pub use plan::{Inplace, MemoryPlan, PlanError};
pub use verify::{GraphSignature, ShapeFact, SymDim};

/// Which execution backend a graph is lowered to.
///
/// The three backends mirror the paper's PyTorch / TorchScript / TVM
/// targets (§3.2): they produce bit-identical outputs and differ only in
/// planning and optimization effort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Un-planned, op-at-a-time interpretation ("PyTorch").
    Eager,
    /// Pre-planned topological program with early frees ("TorchScript").
    Script,
    /// Fully optimized: folding + CSE + DCE + kernel fusion ("TVM").
    Compiled,
}

impl Backend {
    /// All backends, in the order the paper's tables list them.
    pub const ALL: [Backend; 3] = [Backend::Eager, Backend::Script, Backend::Compiled];

    /// Short label used in bench output tables.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Eager => "HB-Eager",
            Backend::Script => "HB-Script",
            Backend::Compiled => "HB-Compiled",
        }
    }
}
