//! Graph executors: the Eager, Script, and Compiled backends.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hb_tensor::{alloc, DynTensor, Tensor};

use crate::cancel::CancelToken;
use crate::device::{Device, DeviceSpec};
use crate::fault::FaultPlan;
use crate::graph::Graph;
use crate::op::{DestMut, Op};
use crate::optimize::{optimize, OptStats};
use crate::plan::{infer_batch, MemoryPlan};
use crate::Backend;

/// Bound on the per-executable plan cache: one warm plan per recently-seen
/// batch size, evicted least-recently-used (PRETZEL-style per-shape plan
/// caching, bounded so adversarial batch-size churn cannot grow memory).
const PLAN_CACHE_CAP: usize = 8;

/// A cached plan plus its live arena buffers.
struct PlanState {
    plan: MemoryPlan,
    slots: Vec<DynTensor>,
}

/// One plan-cache entry: batch size → shared plan state, or `None` when
/// that batch defeats planning (negative cache).
type PlanEntry = (usize, Option<Arc<Mutex<PlanState>>>);

/// Failure modes of compiled-graph execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The (simulated) accelerator ran out of device memory — mirrors the
    /// paper's K80 OOM at 1M-record batches under TorchScript.
    DeviceOom {
        /// Peak modeled residency the run required.
        needed: u64,
        /// Device capacity.
        capacity: u64,
    },
    /// Wrong number of graph inputs supplied.
    InputCount {
        /// Inputs the graph declares.
        expected: usize,
        /// Inputs supplied.
        got: usize,
    },
    /// An input had the wrong dtype.
    InputDType {
        /// Input slot index.
        slot: usize,
    },
    /// A kernel failed mid-run — either an injected fault or a panic
    /// caught at the per-node unwind boundary (e.g. a shape mismatch fed
    /// by a malformed request).
    Kernel {
        /// Node whose kernel failed.
        node: usize,
        /// The kernel's panic or fault message.
        message: String,
    },
    /// Lowering to the backend failed (injected compile-pass fault).
    Lowering {
        /// Description of the lowering failure.
        message: String,
    },
    /// The run observed its [`CancelToken`] between node evaluations and
    /// stopped cooperatively (deadline blown or shutdown requested)
    /// before reaching `node`.
    Cancelled {
        /// The node whose evaluation was skipped.
        node: usize,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::DeviceOom { needed, capacity } => {
                write!(f, "device OOM: needed {needed} bytes, capacity {capacity}")
            }
            ExecError::InputCount { expected, got } => {
                write!(f, "expected {expected} inputs, got {got}")
            }
            ExecError::InputDType { slot } => write!(f, "wrong dtype for input {slot}"),
            ExecError::Kernel { node, message } => {
                write!(f, "kernel failure at node {node}: {message}")
            }
            ExecError::Lowering { message } => write!(f, "lowering failed: {message}"),
            ExecError::Cancelled { node } => {
                write!(f, "execution cancelled cooperatively before node {node}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl ExecError {
    /// True for failures that a retry might clear (kernel-level faults);
    /// request-shaped errors (`InputCount`/`InputDType`), capacity
    /// errors (`DeviceOom`), and cooperative cancellation are
    /// deterministic (for the lifetime of the request) and not worth
    /// retrying.
    pub fn is_transient(&self) -> bool {
        matches!(self, ExecError::Kernel { .. })
    }

    /// True when the run stopped because its [`CancelToken`] fired.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, ExecError::Cancelled { .. })
    }
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "kernel panicked".to_string()
    }
}

/// Measurements from one execution.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Measured wall-clock time of the host execution.
    pub wall: Duration,
    /// Modeled latency when running on a simulated device.
    pub simulated: Option<Duration>,
    /// Non-metadata kernels launched.
    pub kernel_launches: usize,
    /// Total modeled FLOPs.
    pub flops: f64,
    /// Total modeled bytes of memory traffic.
    pub bytes: f64,
    /// Total output elements traversed by launched kernels (the
    /// `hb-backend::cost` element-traversal counter, measured side).
    pub traversals: f64,
    /// Measured peak host tensor bytes during the run.
    pub peak_tensor_bytes: usize,
    /// Modeled peak device-memory residency (parameters + live
    /// intermediates), for simulated devices.
    pub sim_peak_bytes: u64,
    /// Tensor storage allocations performed during the run. A warm planned
    /// run on the Compiled backend performs zero.
    pub allocations: usize,
    /// Bytes of the static arena backing this run (planned runs only).
    pub arena_bytes: usize,
    /// True when the run executed a warm memory plan instead of the
    /// refcount path.
    pub planned: bool,
    /// Cumulative count of runs of this executable that were stopped
    /// mid-graph by cooperative cancellation (deadline/shutdown), as of
    /// the end of this run. A serving stack under deadline pressure sees
    /// this grow instead of paying for full-graph executions whose
    /// answers nobody wants.
    pub cancelled: u64,
}

impl RunStats {
    /// The latency this run "took" on its device: modeled time for
    /// simulated accelerators, measured wall time for the CPU.
    pub fn device_time(&self) -> Duration {
        self.simulated.unwrap_or(self.wall)
    }
}

/// A graph lowered to a backend and bound to a device, ready to run.
pub struct Executable {
    graph: Graph,
    backend: Backend,
    device: Device,
    /// Per-node count of consumers, for early buffer release (Script and
    /// Compiled backends only).
    refcounts: Option<Vec<u32>>,
    opt_stats: Option<OptStats>,
    compile_time: Duration,
    pool: Option<rayon::ThreadPool>,
    faults: FaultPlan,
    runs: AtomicU64,
    /// Runs stopped mid-graph by cooperative cancellation.
    cancelled: AtomicU64,
    /// LRU cache of memory plans keyed by batch size (Compiled backend
    /// only). `None` entries negative-cache batches that defeat planning
    /// so they are not re-attempted every run.
    plans: Mutex<Vec<PlanEntry>>,
}

impl Executable {
    /// Lowers `graph` to `backend` on `device`.
    ///
    /// This is the paper's *conversion* step (Table 10): Eager does almost
    /// nothing, Script plans buffer lifetimes, Compiled additionally runs
    /// the whole optimization pipeline.
    pub fn new(graph: Graph, backend: Backend, device: Device) -> Executable {
        match Executable::try_new_with_faults(graph, backend, device, FaultPlan::none()) {
            Ok(exe) => exe,
            // Unreachable with no faults; try_new only fails on injection.
            Err(e) => panic!("fault-free lowering failed: {e}"),
        }
    }

    /// Lowers `graph` with a [`FaultPlan`] attached.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Lowering`] when the plan injects a
    /// compile-pass failure and `backend` is [`Backend::Compiled`].
    pub fn try_new_with_faults(
        graph: Graph,
        backend: Backend,
        device: Device,
        faults: FaultPlan,
    ) -> Result<Executable, ExecError> {
        let start = Instant::now();
        graph.validate();
        if faults.compile_fail && backend == Backend::Compiled {
            return Err(ExecError::Lowering {
                message: "injected optimization-pass failure".to_string(),
            });
        }
        let (graph, refcounts, opt_stats) = match backend {
            Backend::Eager => (graph, None, None),
            Backend::Script => {
                let rc = compute_refcounts(&graph);
                (graph, Some(rc), None)
            }
            Backend::Compiled => {
                let (g, stats) = optimize(&graph);
                let rc = compute_refcounts(&g);
                (g, Some(rc), Some(stats))
            }
        };
        #[allow(clippy::disallowed_methods)] // invariant, message documents it
        let pool = match device {
            Device::Cpu { threads } if threads > 0 => Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("failed to build thread pool"),
            ),
            _ => None,
        };
        Ok(Executable {
            graph,
            backend,
            device,
            refcounts,
            opt_stats,
            compile_time: start.elapsed(),
            pool,
            faults,
            runs: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            plans: Mutex::new(Vec::new()),
        })
    }

    /// Lowers `graph` like the Compiled backend but with selected
    /// optimization passes — the ablation entry point.
    pub fn with_toggles(
        graph: Graph,
        toggles: crate::optimize::PassToggles,
        device: Device,
    ) -> Executable {
        let start = Instant::now();
        graph.validate();
        let (g, stats) = crate::optimize::optimize_with(&graph, toggles);
        let rc = compute_refcounts(&g);
        #[allow(clippy::disallowed_methods)] // invariant, message documents it
        let pool = match device {
            Device::Cpu { threads } if threads > 0 => Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("failed to build thread pool"),
            ),
            _ => None,
        };
        Executable {
            graph: g,
            backend: Backend::Compiled,
            device,
            refcounts: Some(rc),
            opt_stats: Some(stats),
            compile_time: start.elapsed(),
            pool,
            faults: FaultPlan::none(),
            runs: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            plans: Mutex::new(Vec::new()),
        }
    }

    /// The backend this executable was lowered to.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The device this executable is bound to.
    pub fn device(&self) -> Device {
        self.device
    }

    /// The (possibly optimized) graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Time spent lowering the graph (the paper's conversion time,
    /// Table 10).
    pub fn compile_time(&self) -> Duration {
        self.compile_time
    }

    /// Optimizer counters (Compiled backend only).
    pub fn opt_stats(&self) -> Option<OptStats> {
        self.opt_stats
    }

    /// Abstract-interpretation facts for every output, assuming finite
    /// f32 inputs (the serving admission precondition — see
    /// [`Graph::finite_input_facts`]). Computed over the lowered graph,
    /// so Compiled executables report facts for the optimized program
    /// actually run.
    ///
    /// # Errors
    ///
    /// Propagates structural errors from shape inference; a graph that
    /// passed the verifier never fails here.
    pub fn output_value_facts(&self) -> Result<Vec<crate::ValueFact>, crate::GraphError> {
        let inputs = self.graph.finite_input_facts();
        self.graph.output_value_facts(&inputs)
    }

    /// Runs the graph, returning the output tensors.
    pub fn run(&self, inputs: &[DynTensor]) -> Result<Vec<DynTensor>, ExecError> {
        self.run_with_stats(inputs).map(|(o, _)| o)
    }

    /// Runs the graph, also returning execution measurements.
    ///
    /// On the Compiled backend, repeat batch sizes are served from a warm
    /// memory plan (arena-backed, allocation-free kernels); the first
    /// sighting of a batch size builds and caches the plan while running
    /// on the refcount path.
    pub fn run_with_stats(
        &self,
        inputs: &[DynTensor],
    ) -> Result<(Vec<DynTensor>, RunStats), ExecError> {
        self.run_with_stats_cancel(inputs, None)
    }

    /// Like [`Executable::run_with_stats`], but checks `cancel` between
    /// node evaluations: a fired token stops the run mid-graph with
    /// [`ExecError::Cancelled`] instead of executing the remaining
    /// kernels. Pass `None` to run uninterruptible.
    pub fn run_with_stats_cancel(
        &self,
        inputs: &[DynTensor],
        cancel: Option<&CancelToken>,
    ) -> Result<(Vec<DynTensor>, RunStats), ExecError> {
        self.validate_inputs(inputs)?;
        match &self.pool {
            Some(pool) => pool.install(|| self.execute(inputs, true, cancel)),
            None => self.execute(inputs, true, cancel),
        }
    }

    /// Runs of this executable stopped mid-graph by cooperative
    /// cancellation (mirrored into [`RunStats::cancelled`]).
    pub fn cancelled_runs(&self) -> u64 {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Runs the graph on the refcount path even when a warm plan exists —
    /// the baseline side of planned-vs-refcount comparisons.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Executable::run_with_stats`].
    pub fn run_refcount_with_stats(
        &self,
        inputs: &[DynTensor],
    ) -> Result<(Vec<DynTensor>, RunStats), ExecError> {
        self.validate_inputs(inputs)?;
        match &self.pool {
            Some(pool) => pool.install(|| self.execute(inputs, false, None)),
            None => self.execute(inputs, false, None),
        }
    }

    /// Returns a twin executable whose fused kernels run on the legacy
    /// stack interpreter instead of the verified register LIR — the
    /// baseline side of LIR-dispatch comparisons. Outputs stay
    /// bit-identical (both dispatchers implement the same bytecode
    /// semantics); only the inner-loop execution strategy differs. The
    /// twin starts with a cold plan cache and fresh run counters.
    pub fn with_fused_stack_dispatch(&self) -> Executable {
        self.with_fused_dispatch(crate::fuse::Dispatch::Stack)
    }

    /// Returns a twin executable whose fused kernels are pinned to the
    /// generic register VM — the middle rung of the dispatch ladder
    /// (codegen → LIR-VM → stack), skipping peephole forms and codegen
    /// classes. Together with [`Executable::with_fused_stack_dispatch`]
    /// this lets chaos/fault and differential tests force every rung
    /// and hold all of them to bit-identical outputs.
    pub fn with_fused_vm_dispatch(&self) -> Executable {
        self.with_fused_dispatch(crate::fuse::Dispatch::Vm)
    }

    /// Clones the executable with every fused kernel pinned to `rung`.
    /// The twin starts with a cold plan cache and fresh run counters.
    fn with_fused_dispatch(&self, rung: crate::fuse::Dispatch) -> Executable {
        let mut graph = self.graph.clone();
        for node in &mut graph.nodes {
            if let Op::Fused(k) = &node.op {
                let pinned = match rung {
                    crate::fuse::Dispatch::Stack => k.with_stack_dispatch(),
                    crate::fuse::Dispatch::Vm => k.with_vm_dispatch(),
                    crate::fuse::Dispatch::Auto => (**k).clone(),
                };
                node.op = Op::Fused(std::sync::Arc::new(pinned));
            }
        }
        #[allow(clippy::disallowed_methods)] // invariant, message documents it
        let pool = match self.device {
            Device::Cpu { threads } if threads > 0 => Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("failed to build thread pool"),
            ),
            _ => None,
        };
        Executable {
            graph,
            backend: self.backend,
            device: self.device,
            refcounts: self.refcounts.clone(),
            opt_stats: self.opt_stats,
            compile_time: self.compile_time,
            pool,
            faults: self.faults.clone(),
            runs: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            plans: Mutex::new(Vec::new()),
        }
    }

    /// Builds the memory plan this executable's (optimized) graph gets at
    /// `batch` — introspection for benches, audits, and the plan-
    /// determinism CI check. Does not touch the plan cache.
    ///
    /// # Errors
    ///
    /// Returns [`crate::plan::PlanError`] when the graph defeats planning
    /// at this batch.
    pub fn plan_for_batch(&self, batch: usize) -> Result<MemoryPlan, crate::plan::PlanError> {
        MemoryPlan::build(&self.graph, batch)
    }

    /// Interns this executable's constant tensors into a shared
    /// [`crate::dedup::ConstPool`], collapsing parameter blocks that
    /// other registered graphs already hold to one shared buffer.
    /// Replacements are bit-identical; call at registration time, before
    /// serving traffic.
    pub fn intern_constants(&mut self, pool: &crate::dedup::ConstPool) -> crate::dedup::DedupStats {
        crate::dedup::intern_graph_consts(&mut self.graph, pool)
    }

    /// Bytes of arena backing currently held by the warm plan cache
    /// (summed over cached batch sizes) — the per-model plan-cache
    /// component of a store's memory accounting.
    pub fn plan_cache_bytes(&self) -> usize {
        let cache = self.plans.lock().unwrap_or_else(|p| p.into_inner());
        cache
            .iter()
            .filter_map(|(_, state)| state.as_ref())
            .filter_map(|s| s.try_lock().ok().map(|g| g.plan.arena_bytes))
            .sum()
    }

    /// Constant bytes of this executable's graph not already counted in
    /// `seen` (storage identity; see [`crate::dedup::unique_const_bytes`]).
    pub fn unique_const_bytes(&self, seen: &mut std::collections::HashSet<usize>) -> usize {
        crate::dedup::unique_const_bytes(&self.graph, seen)
    }

    fn validate_inputs(&self, inputs: &[DynTensor]) -> Result<(), ExecError> {
        if inputs.len() != self.graph.input_dtypes.len() {
            return Err(ExecError::InputCount {
                expected: self.graph.input_dtypes.len(),
                got: inputs.len(),
            });
        }
        for (slot, (t, dt)) in inputs
            .iter()
            .zip(self.graph.input_dtypes.iter())
            .enumerate()
        {
            if t.dtype() != *dt {
                return Err(ExecError::InputDType { slot });
            }
        }
        Ok(())
    }

    /// Times every node individually (diagnostic; ignores early frees).
    pub fn profile(&self, inputs: &[DynTensor]) -> Vec<(String, Duration)> {
        let mut vals: Vec<Option<DynTensor>> = vec![None; self.graph.nodes.len()];
        let mut out = Vec::new();
        for (id, node) in self.graph.nodes.iter().enumerate() {
            let t = Instant::now();
            let v = match &node.op {
                Op::Input(slot) => inputs[*slot].clone(),
                op => {
                    #[allow(clippy::disallowed_methods)] // freed-too-early is a planner bug
                    let ins: Vec<&DynTensor> = node
                        .inputs
                        .iter()
                        .map(|&i| vals[i].as_ref().expect("executor: operand freed too early"))
                        .collect();
                    op.eval(&ins)
                }
            };
            let label = format!("{:?}", node.op);
            out.push((label.chars().take(60).collect(), t.elapsed()));
            vals[id] = Some(v);
        }
        out
    }

    /// Dispatches one run: injected-fault gates, then the planned arena
    /// path when a warm plan matches, else the refcount path.
    fn execute(
        &self,
        inputs: &[DynTensor],
        allow_planned: bool,
        cancel: Option<&CancelToken>,
    ) -> Result<(Vec<DynTensor>, RunStats), ExecError> {
        let run_index = self.runs.fetch_add(1, Ordering::Relaxed);
        let faults_active = !self.faults.is_none() && self.faults.active_for_run(run_index);
        if faults_active && self.faults.oom {
            let capacity = match &self.device {
                Device::Sim(s) => s.mem_bytes,
                Device::Cpu { .. } => 0,
            };
            return Err(ExecError::DeviceOom {
                needed: u64::MAX,
                capacity,
            });
        }
        if allow_planned && self.backend == Backend::Compiled {
            if let Some(state) = self.plan_for(inputs) {
                // A busy mutex means a concurrent run holds the arena;
                // fall through to the (lock-free) refcount path instead
                // of queueing behind it.
                if let Ok(mut guard) = state.try_lock() {
                    return self.execute_planned(inputs, &mut guard, faults_active, cancel);
                }
            }
        }
        self.execute_refcount(inputs, faults_active, cancel)
    }

    /// Cancellation checkpoint between node evaluations: records the
    /// cancelled run and returns the typed error when `cancel` fired.
    fn check_cancel(&self, cancel: Option<&CancelToken>, node: usize) -> Result<(), ExecError> {
        if let Some(tok) = cancel {
            if tok.is_cancelled() {
                self.cancelled.fetch_add(1, Ordering::Relaxed);
                return Err(ExecError::Cancelled { node });
            }
        }
        Ok(())
    }

    /// Looks up (or, on first sighting of a batch size, builds) the warm
    /// plan matching this request. Returns `None` when the request should
    /// run on the refcount path: unplannable graph, first-seen batch,
    /// shape mismatch, or lock contention.
    fn plan_for(&self, inputs: &[DynTensor]) -> Option<Arc<Mutex<PlanState>>> {
        let batch = infer_batch(&self.graph, inputs)?;
        let mut cache = self.plans.lock().ok()?;
        if let Some(pos) = cache.iter().position(|(b, _)| *b == batch) {
            // LRU: refresh this batch's position.
            let entry = cache.remove(pos);
            cache.insert(0, entry);
            let state = cache[0].1.clone()?;
            {
                // Distinct shapes can share a batch key (e.g. B² dims);
                // the plan stores exact input shapes to disambiguate.
                let guard = state.try_lock().ok()?;
                if !guard.plan.matches_inputs(inputs) {
                    return None;
                }
            }
            return Some(state);
        }
        // First sighting: build and cache, but serve this request on the
        // refcount path — plan building is compile-like work that should
        // not sit on a request's critical path twice.
        let built = MemoryPlan::build(&self.graph, batch)
            .ok()
            .filter(|p| p.planned_kernels > 0 && p.matches_inputs(inputs));
        let entry = built.map(|plan| {
            let slots = plan.allocate_slots();
            Arc::new(Mutex::new(PlanState { plan, slots }))
        });
        cache.insert(0, (batch, entry));
        cache.truncate(PLAN_CACHE_CAP);
        None
    }

    fn execute_refcount(
        &self,
        inputs: &[DynTensor],
        faults_active: bool,
        cancel: Option<&CancelToken>,
    ) -> Result<(Vec<DynTensor>, RunStats), ExecError> {
        let spec: Option<&DeviceSpec> = match &self.device {
            Device::Sim(s) => Some(s),
            Device::Cpu { .. } => None,
        };
        let free_early = self.refcounts.is_some();
        let start = Instant::now();
        alloc::reset_peak();
        let host_before = alloc::current_bytes();
        let allocs_before = alloc::alloc_count();

        let n = self.graph.nodes.len();
        let mut vals: Vec<Option<DynTensor>> = vec![None; n];
        let mut rc: Vec<u32> = match &self.refcounts {
            Some(rc) => rc.clone(),
            // Eager recomputes consumer counts every run — part of its
            // per-run interpretation overhead.
            None => compute_refcounts(&self.graph),
        };
        // Outputs must survive to the end regardless of consumer count.
        for &o in &self.graph.outputs {
            rc[o] = u32::MAX;
        }

        let mut stats = RunStats::default();
        let mut sim_time = 0.0f64;
        // Modeled device residency: parameters stay resident; inputs are
        // transferred up front.
        let mut sim_live: u64 = self.graph.const_bytes() as u64;
        let mut sim_peak: u64 = sim_live;
        if let Some(s) = spec {
            let in_bytes: f64 = inputs.iter().map(|t| t.nbytes() as f64).sum();
            sim_time += s.transfer_time(in_bytes);
            sim_live += in_bytes as u64;
            sim_peak = sim_peak.max(sim_live);
        }

        for id in 0..n {
            self.check_cancel(cancel, id)?;
            let node = &self.graph.nodes[id];
            let out = match &node.op {
                Op::Input(slot) => inputs[*slot].clone(),
                op => {
                    #[allow(clippy::disallowed_methods)] // freed-too-early is a planner bug
                    let ins: Vec<&DynTensor> = node
                        .inputs
                        .iter()
                        .map(|&i| vals[i].as_ref().expect("executor: operand freed too early"))
                        .collect();
                    // Per-node unwind boundary: kernels validate shapes by
                    // panicking (trusted-graph fast path), so a malformed
                    // request that slips past input validation surfaces
                    // here as a typed error instead of unwinding through
                    // the serving stack.
                    let out = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        op.eval(&ins)
                    })) {
                        Ok(v) => v,
                        Err(p) => {
                            return Err(ExecError::Kernel {
                                node: id,
                                message: panic_message(p),
                            })
                        }
                    };
                    let cost = op.cost(&ins, &out);
                    if !cost.metadata_only {
                        stats.kernel_launches += 1;
                        stats.flops += cost.flops;
                        stats.bytes += cost.bytes;
                        stats.traversals += cost.traversals;
                        if let Some(s) = spec {
                            sim_time += s.kernel_time(cost.flops, cost.bytes);
                        }
                        if faults_active {
                            if let Some(d) = self.faults.slow_kernel {
                                std::thread::sleep(d);
                            }
                            if self.faults.kernel_error {
                                return Err(ExecError::Kernel {
                                    node: id,
                                    message: "injected kernel fault".to_string(),
                                });
                            }
                        }
                    }
                    if spec.is_some() && !matches!(op, Op::Const(_)) {
                        sim_live += out.nbytes() as u64;
                        sim_peak = sim_peak.max(sim_live);
                    }
                    out
                }
            };
            vals[id] = Some(out);
            // Release operands whose last consumer this was.
            if free_early {
                for &i in &self.graph.nodes[id].inputs {
                    if rc[i] != u32::MAX {
                        rc[i] -= 1;
                        if rc[i] == 0 {
                            // Parameters (consts) stay resident on device;
                            // only intermediates release modeled memory.
                            let is_const = matches!(self.graph.nodes[i].op, Op::Const(_));
                            if let (Some(_), Some(v), false) = (spec, vals[i].as_ref(), is_const) {
                                sim_live = sim_live.saturating_sub(v.nbytes() as u64);
                            }
                            vals[i] = None;
                        }
                    }
                }
            }
        }

        if let Some(s) = spec {
            #[allow(clippy::disallowed_methods)] // outputs are pinned by refcounting
            let out_bytes: f64 = self
                .graph
                .outputs
                .iter()
                .map(|&o| {
                    vals[o]
                        .as_ref()
                        .expect("executor: output freed before return")
                        .nbytes() as f64
                })
                .sum();
            sim_time += s.transfer_time(out_bytes);
            stats.simulated = Some(Duration::from_secs_f64(sim_time));
            stats.sim_peak_bytes = sim_peak;
            if sim_peak > s.mem_bytes {
                return Err(ExecError::DeviceOom {
                    needed: sim_peak,
                    capacity: s.mem_bytes,
                });
            }
        }

        #[allow(clippy::disallowed_methods)] // outputs are pinned by refcounting
        let mut outputs: Vec<DynTensor> = self
            .graph
            .outputs
            .iter()
            .map(|&o| {
                vals[o]
                    .clone()
                    .expect("executor: output freed before return")
            })
            .collect();
        if faults_active && self.faults.nan_poison {
            // Silent corruption: replace f32 outputs with NaN while still
            // reporting success. Downstream output validation must catch it.
            for out in &mut outputs {
                if let DynTensor::F32(t) = out {
                    *out = DynTensor::F32(Tensor::from_fn(t.shape(), |_| f32::NAN));
                }
            }
        }
        stats.wall = start.elapsed();
        stats.peak_tensor_bytes = alloc::peak_bytes().saturating_sub(host_before);
        stats.allocations = alloc::alloc_count().saturating_sub(allocs_before);
        stats.cancelled = self.cancelled.load(Ordering::Relaxed);
        Ok((outputs, stats))
    }

    /// Executes a warm memory plan: kernels write into pre-allocated arena
    /// slots via [`Op::eval_into`], node values are zero-copy views of
    /// their slot, and a steady-state run performs no tensor allocations.
    ///
    /// Fault injection, the per-node unwind boundary, and the simulated-
    /// device model behave exactly as on the refcount path.
    fn execute_planned(
        &self,
        inputs: &[DynTensor],
        state: &mut PlanState,
        faults_active: bool,
        cancel: Option<&CancelToken>,
    ) -> Result<(Vec<DynTensor>, RunStats), ExecError> {
        use crate::plan::{Inplace, Step};
        let PlanState { plan, slots } = state;
        let spec: Option<&DeviceSpec> = match &self.device {
            Device::Sim(s) => Some(s),
            Device::Cpu { .. } => None,
        };
        let start = Instant::now();
        alloc::reset_peak();
        let host_before = alloc::current_bytes();
        let allocs_before = alloc::alloc_count();

        let n = self.graph.nodes.len();
        let mut vals: Vec<Option<DynTensor>> = vec![None; n];
        let mut rc: Vec<u32> = match &self.refcounts {
            Some(rc) => rc.clone(),
            None => compute_refcounts(&self.graph),
        };
        for &o in &self.graph.outputs {
            rc[o] = u32::MAX;
        }

        let mut stats = RunStats {
            planned: true,
            arena_bytes: plan.arena_bytes,
            ..RunStats::default()
        };
        let mut sim_time = 0.0f64;
        let mut sim_live: u64 = self.graph.const_bytes() as u64;
        let mut sim_peak: u64 = sim_live;
        if let Some(s) = spec {
            let in_bytes: f64 = inputs.iter().map(|t| t.nbytes() as f64).sum();
            sim_time += s.transfer_time(in_bytes);
            sim_live += in_bytes as u64;
            sim_peak = sim_peak.max(sim_live);
        }

        for id in 0..n {
            self.check_cancel(cancel, id)?;
            let node = &self.graph.nodes[id];
            let (out, cost) = match &node.op {
                Op::Input(slot) => (inputs[*slot].clone(), None),
                op => {
                    let (out, cost) = match &plan.steps[id] {
                        Step::Value => {
                            #[allow(clippy::disallowed_methods)] // freed-too-early is a planner bug
                            let ins: Vec<&DynTensor> = node
                                .inputs
                                .iter()
                                .map(|&i| {
                                    vals[i].as_ref().expect("executor: operand freed too early")
                                })
                                .collect();
                            let out =
                                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    op.eval(&ins)
                                })) {
                                    Ok(v) => v,
                                    Err(p) => {
                                        return Err(ExecError::Kernel {
                                            node: id,
                                            message: panic_message(p),
                                        })
                                    }
                                };
                            let cost = op.cost(&ins, &out);
                            (out, Some(cost))
                        }
                        Step::Kernel {
                            slot,
                            shape,
                            inplace: Inplace::Map,
                        } => {
                            let src = node.inputs[0];
                            // Drop the dying operand's view to restore slot
                            // uniqueness; its data lives in the slot itself.
                            // Release its modeled residency here — the free
                            // loop below will find it already gone.
                            if spec.is_some() {
                                if let Some(v) = vals[src].as_ref() {
                                    sim_live = sim_live.saturating_sub(v.nbytes() as u64);
                                }
                            }
                            vals[src] = None;
                            let applied = match &mut slots[*slot] {
                                DynTensor::F32(t) => match t.as_mut_slice() {
                                    Some(buf) => {
                                        if let Err(p) =
                                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                                || op.apply_inplace_f32(buf),
                                            ))
                                        {
                                            return Err(ExecError::Kernel {
                                                node: id,
                                                message: panic_message(p),
                                            });
                                        }
                                        true
                                    }
                                    None => false,
                                },
                                _ => false,
                            };
                            let out = if applied {
                                slot_view(&slots[*slot], shape)
                            } else {
                                // Self-heal: a stale alias still pins the
                                // slot, so rebuild the operand from the
                                // (unmodified) slot data and run the
                                // allocating kernel instead.
                                let rebuilt = slot_view(&slots[*slot], shape);
                                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    op.eval(&[&rebuilt])
                                })) {
                                    Ok(v) => v,
                                    Err(p) => {
                                        return Err(ExecError::Kernel {
                                            node: id,
                                            message: panic_message(p),
                                        })
                                    }
                                }
                            };
                            // A unary map's cost is symmetric in operand
                            // and result, so the result stands in for the
                            // dropped operand.
                            let cost = op.cost(&[&out], &out);
                            (out, Some(cost))
                        }
                        Step::Kernel {
                            slot,
                            shape,
                            inplace: Inplace::Fused { operand },
                        } => {
                            let numel: usize = shape.iter().product();
                            let src = node.inputs[*operand];
                            // Drop the dying operand's view to restore slot
                            // uniqueness; its data lives in the slot itself.
                            if spec.is_some() {
                                if let Some(v) = vals[src].as_ref() {
                                    sim_live = sim_live.saturating_sub(v.nbytes() as u64);
                                }
                            }
                            vals[src] = None;
                            #[allow(clippy::disallowed_methods)] // freed-too-early is a planner bug
                            let ins: Vec<Option<&DynTensor>> = node
                                .inputs
                                .iter()
                                .enumerate()
                                .map(|(j, &i)| {
                                    if j == *operand {
                                        None
                                    } else {
                                        Some(
                                            vals[i]
                                                .as_ref()
                                                .expect("executor: operand freed too early"),
                                        )
                                    }
                                })
                                .collect();
                            let kern = match op {
                                Op::Fused(k) => k,
                                _ => {
                                    return Err(ExecError::Kernel {
                                        node: id,
                                        message: "planner marked a non-fused op Inplace::Fused"
                                            .to_string(),
                                    })
                                }
                            };
                            let applied = match &mut slots[*slot] {
                                DynTensor::F32(t) => match t.as_mut_slice() {
                                    Some(buf) => {
                                        if let Err(p) = std::panic::catch_unwind(
                                            std::panic::AssertUnwindSafe(|| {
                                                kern.eval_in_place(
                                                    *operand,
                                                    &ins,
                                                    shape,
                                                    &mut buf[..numel],
                                                )
                                            }),
                                        ) {
                                            return Err(ExecError::Kernel {
                                                node: id,
                                                message: panic_message(p),
                                            });
                                        }
                                        true
                                    }
                                    None => false,
                                },
                                _ => false,
                            };
                            let out = if applied {
                                slot_view(&slots[*slot], shape)
                            } else {
                                // Self-heal: a stale alias still pins the
                                // slot, so rebuild the operand from the
                                // (unmodified) slot data and run the
                                // allocating kernel instead.
                                let rebuilt = slot_view(&slots[*slot], shape);
                                let full: Vec<&DynTensor> =
                                    ins.iter().map(|o| o.unwrap_or(&rebuilt)).collect();
                                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    op.eval(&full)
                                })) {
                                    Ok(v) => v,
                                    Err(p) => {
                                        return Err(ExecError::Kernel {
                                            node: id,
                                            message: panic_message(p),
                                        })
                                    }
                                }
                            };
                            // The destroyed operand had exactly the output
                            // shape, so the result stands in for it in the
                            // (shape-only) cost model.
                            let cost = {
                                let cost_ins: Vec<&DynTensor> =
                                    ins.iter().map(|o| o.unwrap_or(&out)).collect();
                                op.cost(&cost_ins, &out)
                            };
                            (out, Some(cost))
                        }
                        Step::Kernel {
                            slot,
                            shape,
                            inplace: Inplace::MatMulLhs { scratch },
                        } => {
                            // Capture the dying LHS's shape, then drop its
                            // view so the slot regains Arc uniqueness.
                            #[allow(clippy::disallowed_methods)] // freed-too-early is a planner bug
                            let lhs_shape: Vec<usize> = vals[node.inputs[0]]
                                .as_ref()
                                .expect("executor: operand freed too early")
                                .shape()
                                .to_vec();
                            if spec.is_some() {
                                if let Some(v) = vals[node.inputs[0]].as_ref() {
                                    sim_live = sim_live.saturating_sub(v.nbytes() as u64);
                                }
                            }
                            vals[node.inputs[0]] = None;
                            #[allow(clippy::disallowed_methods)] // freed-too-early is a planner bug
                            let rhs_val = vals[node.inputs[1]]
                                .as_ref()
                                .expect("executor: operand freed too early");
                            let rhs = match rhs_val {
                                DynTensor::F32(t) => t,
                                _ => {
                                    return Err(ExecError::Kernel {
                                        node: id,
                                        message: "planner marked a non-f32 matmul in-place"
                                            .to_string(),
                                    })
                                }
                            };
                            // Two distinct slots (data + panel scratch) need
                            // simultaneous mutable access.
                            let (lo, hi) = ((*slot).min(*scratch), (*slot).max(*scratch));
                            let applied = {
                                let (left, right) = slots.split_at_mut(hi);
                                let (data_slot, scratch_slot) = if *slot < *scratch {
                                    (&mut left[lo], &mut right[0])
                                } else {
                                    (&mut right[0], &mut left[lo])
                                };
                                match (data_slot, scratch_slot) {
                                    (DynTensor::F32(d), DynTensor::F32(s)) => {
                                        match (d.as_mut_slice(), s.as_mut_slice()) {
                                            (Some(buf), Some(scr)) => {
                                                if let Err(p) = std::panic::catch_unwind(
                                                    std::panic::AssertUnwindSafe(|| {
                                                        hb_tensor::matmul::matmul_in_place(
                                                            buf, &lhs_shape, rhs, scr,
                                                        )
                                                    }),
                                                ) {
                                                    return Err(ExecError::Kernel {
                                                        node: id,
                                                        message: panic_message(p),
                                                    });
                                                }
                                                true
                                            }
                                            _ => false,
                                        }
                                    }
                                    _ => false,
                                }
                            };
                            let out = if applied {
                                slot_view(&slots[*slot], shape)
                            } else {
                                // Self-heal: the LHS data is still intact in
                                // its slot; rebuild it and run allocating.
                                let rebuilt = slot_view(&slots[*slot], &lhs_shape);
                                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    op.eval(&[&rebuilt, rhs_val])
                                })) {
                                    Ok(v) => v,
                                    Err(p) => {
                                        return Err(ExecError::Kernel {
                                            node: id,
                                            message: panic_message(p),
                                        })
                                    }
                                }
                            };
                            // Cost reads only shapes, so a shape-correct
                            // view of the (now overwritten) slot stands in
                            // for the destroyed LHS.
                            let cost = {
                                let lhs_standin = slot_view(&slots[*slot], &lhs_shape);
                                op.cost(&[&lhs_standin, rhs_val], &out)
                            };
                            (out, Some(cost))
                        }
                        Step::Kernel {
                            slot,
                            shape,
                            inplace: Inplace::No,
                        } => {
                            let numel: usize = shape.iter().product();
                            // Self-heal: if a previous run's caller still
                            // holds views into this slot, replace the
                            // buffer (a counted allocation).
                            let unique = match &mut slots[*slot] {
                                DynTensor::F32(t) => t.as_mut_slice().is_some(),
                                DynTensor::I64(t) => t.as_mut_slice().is_some(),
                                DynTensor::Bool(t) => t.as_mut_slice().is_some(),
                                DynTensor::U8(t) => t.as_mut_slice().is_some(),
                            };
                            if !unique {
                                slots[*slot] = plan.slots[*slot].allocate();
                            }
                            #[allow(clippy::disallowed_methods)] // freed-too-early is a planner bug
                            let ins: Vec<&DynTensor> = node
                                .inputs
                                .iter()
                                .map(|&i| {
                                    vals[i].as_ref().expect("executor: operand freed too early")
                                })
                                .collect();
                            let res = {
                                #[allow(clippy::disallowed_methods)] // uniqueness ensured above
                                let dest = match &mut slots[*slot] {
                                    DynTensor::F32(t) => DestMut::F32(
                                        &mut t.as_mut_slice().expect("slot is unique")[..numel],
                                    ),
                                    DynTensor::I64(t) => DestMut::I64(
                                        &mut t.as_mut_slice().expect("slot is unique")[..numel],
                                    ),
                                    DynTensor::Bool(t) => DestMut::Bool(
                                        &mut t.as_mut_slice().expect("slot is unique")[..numel],
                                    ),
                                    DynTensor::U8(_) => {
                                        return Err(ExecError::Kernel {
                                            node: id,
                                            message: "planner assigned a u8 arena slot".to_string(),
                                        })
                                    }
                                };
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    op.eval_into(&ins, dest)
                                }))
                            };
                            if let Err(p) = res {
                                return Err(ExecError::Kernel {
                                    node: id,
                                    message: panic_message(p),
                                });
                            }
                            let out = slot_view(&slots[*slot], shape);
                            let cost = op.cost(&ins, &out);
                            (out, Some(cost))
                        }
                    };
                    (out, cost)
                }
            };
            if let Some(cost) = cost {
                if !cost.metadata_only {
                    stats.kernel_launches += 1;
                    stats.flops += cost.flops;
                    stats.bytes += cost.bytes;
                    stats.traversals += cost.traversals;
                    if let Some(s) = spec {
                        sim_time += s.kernel_time(cost.flops, cost.bytes);
                    }
                    if faults_active {
                        if let Some(d) = self.faults.slow_kernel {
                            std::thread::sleep(d);
                        }
                        if self.faults.kernel_error {
                            return Err(ExecError::Kernel {
                                node: id,
                                message: "injected kernel fault".to_string(),
                            });
                        }
                    }
                }
                if spec.is_some() && !matches!(node.op, Op::Const(_)) {
                    sim_live += out.nbytes() as u64;
                    sim_peak = sim_peak.max(sim_live);
                }
            }
            vals[id] = Some(out);
            for &i in &self.graph.nodes[id].inputs {
                if rc[i] != u32::MAX && rc[i] > 0 {
                    rc[i] -= 1;
                    if rc[i] == 0 {
                        let is_const = matches!(self.graph.nodes[i].op, Op::Const(_));
                        if let (Some(_), Some(v), false) = (spec, vals[i].as_ref(), is_const) {
                            sim_live = sim_live.saturating_sub(v.nbytes() as u64);
                        }
                        vals[i] = None;
                    }
                }
            }
        }

        if let Some(s) = spec {
            #[allow(clippy::disallowed_methods)] // outputs are pinned by refcounting
            let out_bytes: f64 = self
                .graph
                .outputs
                .iter()
                .map(|&o| {
                    vals[o]
                        .as_ref()
                        .expect("executor: output freed before return")
                        .nbytes() as f64
                })
                .sum();
            sim_time += s.transfer_time(out_bytes);
            stats.simulated = Some(Duration::from_secs_f64(sim_time));
            stats.sim_peak_bytes = sim_peak;
            if sim_peak > s.mem_bytes {
                return Err(ExecError::DeviceOom {
                    needed: sim_peak,
                    capacity: s.mem_bytes,
                });
            }
        }

        #[allow(clippy::disallowed_methods)] // outputs are pinned by refcounting
        let mut outputs: Vec<DynTensor> = self
            .graph
            .outputs
            .iter()
            .map(|&o| {
                vals[o]
                    .clone()
                    .expect("executor: output freed before return")
            })
            .collect();
        if faults_active && self.faults.nan_poison {
            for out in &mut outputs {
                if let DynTensor::F32(t) = out {
                    *out = DynTensor::F32(Tensor::from_fn(t.shape(), |_| f32::NAN));
                }
            }
        }
        stats.wall = start.elapsed();
        // The arena is allocated once at plan time, outside this run's
        // peak window; report it alongside transient allocations so the
        // figure stays comparable with refcount runs.
        stats.peak_tensor_bytes = plan
            .arena_bytes
            .saturating_add(alloc::peak_bytes().saturating_sub(host_before));
        stats.allocations = alloc::alloc_count().saturating_sub(allocs_before);
        stats.cancelled = self.cancelled.load(Ordering::Relaxed);
        Ok((outputs, stats))
    }
}

/// A zero-copy view of an arena slot's leading `shape`-full of elements.
fn slot_view(slot: &DynTensor, shape: &[usize]) -> DynTensor {
    let numel: usize = shape.iter().product();
    match slot {
        DynTensor::F32(t) => DynTensor::F32(t.slice(0, 0, numel).reshape(shape)),
        DynTensor::I64(t) => DynTensor::I64(t.slice(0, 0, numel).reshape(shape)),
        DynTensor::Bool(t) => DynTensor::Bool(t.slice(0, 0, numel).reshape(shape)),
        DynTensor::U8(t) => DynTensor::U8(t.slice(0, 0, numel).reshape(shape)),
    }
}

/// Counts how many nodes consume each node's value.
fn compute_refcounts(graph: &Graph) -> Vec<u32> {
    let mut rc = vec![0u32; graph.nodes.len()];
    for node in &graph.nodes {
        for &i in &node.inputs {
            rc[i] += 1;
        }
    }
    rc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{K80, P100};
    use crate::graph::GraphBuilder;
    use hb_tensor::{DType, Tensor};

    /// y = relu(x @ w + b), a tiny linear layer.
    fn linear_graph() -> Graph {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let w = b.constant(Tensor::from_vec(vec![1.0f32, -1.0, 0.5, 2.0], &[2, 2]));
        let bias = b.constant(Tensor::from_vec(vec![0.1f32, -0.2], &[2]));
        let mm = b.matmul(x, w);
        let s = b.add(mm, bias);
        let y = b.push(Op::Relu, vec![s]);
        b.output(y);
        b.build()
    }

    fn sample_input() -> DynTensor {
        DynTensor::F32(Tensor::from_vec(vec![1.0, 2.0, -1.0, 0.0], &[2, 2]))
    }

    #[test]
    fn all_backends_agree() {
        let mut outs = Vec::new();
        for backend in Backend::ALL {
            let exe = Executable::new(linear_graph(), backend, Device::cpu());
            let out = exe.run(&[sample_input()]).unwrap();
            outs.push(out[0].as_f32().to_vec());
        }
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[1], outs[2]);
    }

    #[test]
    fn compiled_fuses_add_relu() {
        let eager = Executable::new(linear_graph(), Backend::Eager, Device::cpu());
        let compiled = Executable::new(linear_graph(), Backend::Compiled, Device::cpu());
        let (_, es) = eager.run_with_stats(&[sample_input()]).unwrap();
        let (_, cs) = compiled.run_with_stats(&[sample_input()]).unwrap();
        assert!(
            cs.kernel_launches < es.kernel_launches,
            "{} !< {}",
            cs.kernel_launches,
            es.kernel_launches
        );
    }

    #[test]
    fn input_validation_errors() {
        let exe = Executable::new(linear_graph(), Backend::Script, Device::cpu());
        assert!(matches!(
            exe.run(&[]),
            Err(ExecError::InputCount {
                expected: 1,
                got: 0
            })
        ));
        let wrong = DynTensor::I64(Tensor::from_vec(vec![1i64], &[1]));
        assert!(matches!(
            exe.run(&[wrong]),
            Err(ExecError::InputDType { slot: 0 })
        ));
    }

    #[test]
    fn simulated_device_reports_latency() {
        let exe = Executable::new(linear_graph(), Backend::Compiled, Device::Sim(P100));
        let (out, stats) = exe.run_with_stats(&[sample_input()]).unwrap();
        assert_eq!(out[0].shape(), &[2, 2]);
        let sim = stats.simulated.expect("simulated time present");
        assert!(sim > Duration::ZERO);
        assert!(stats.sim_peak_bytes > 0);
    }

    #[test]
    fn simulated_oom_on_tiny_device() {
        let tiny = DeviceSpec {
            mem_bytes: 48,
            ..K80
        };
        let exe = Executable::new(linear_graph(), Backend::Script, Device::Sim(tiny));
        match exe.run(&[sample_input()]) {
            Err(ExecError::DeviceOom { .. }) => {}
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn eager_holds_more_memory_than_script() {
        // A chain of adds: Script frees intermediates, Eager keeps all.
        let build = || {
            let mut b = GraphBuilder::new();
            let x = b.input(DType::F32);
            let mut cur = x;
            for _ in 0..16 {
                cur = b.add_scalar(cur, 1.0);
            }
            b.output(cur);
            b.build()
        };
        let big = DynTensor::F32(Tensor::<f32>::zeros(&[64, 1024]));
        let eager = Executable::new(build(), Backend::Eager, Device::Sim(P100));
        let script = Executable::new(build(), Backend::Script, Device::Sim(P100));
        let (_, es) = eager.run_with_stats(&[big.clone()]).unwrap();
        let (_, ss) = script.run_with_stats(&[big]).unwrap();
        assert!(es.sim_peak_bytes > ss.sim_peak_bytes);
    }

    #[test]
    fn single_thread_pool_runs() {
        let exe = Executable::new(linear_graph(), Backend::Script, Device::cpu1());
        let out = exe.run(&[sample_input()]).unwrap();
        assert_eq!(out[0].shape(), &[2, 2]);
    }

    #[test]
    fn pre_cancelled_token_stops_before_any_kernel() {
        let exe = Executable::new(linear_graph(), Backend::Script, Device::cpu());
        let tok = CancelToken::new();
        tok.cancel();
        match exe.run_with_stats_cancel(&[sample_input()], Some(&tok)) {
            Err(ExecError::Cancelled { node: 0 }) => {}
            other => panic!("expected Cancelled at node 0, got {other:?}"),
        }
        assert_eq!(exe.cancelled_runs(), 1);
        // A later uncancelled run succeeds and reports the cumulative count.
        let (_, stats) = exe.run_with_stats_cancel(&[sample_input()], None).unwrap();
        assert_eq!(stats.cancelled, 1);
    }

    #[test]
    fn expired_deadline_token_cancels_mid_graph() {
        let exe = Executable::new(linear_graph(), Backend::Compiled, Device::cpu());
        let tok = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        let res = exe.run_with_stats_cancel(&[sample_input()], Some(&tok));
        assert!(matches!(res, Err(ExecError::Cancelled { .. })));
        assert!(exe.cancelled_runs() > 0);
        assert!(!ExecError::Cancelled { node: 3 }.is_transient());
        assert!(ExecError::Cancelled { node: 3 }.is_cancelled());
    }

    #[test]
    fn compile_time_recorded_and_compiled_slowest() {
        let e = Executable::new(linear_graph(), Backend::Eager, Device::cpu());
        let c = Executable::new(linear_graph(), Backend::Compiled, Device::cpu());
        // Compiled runs optimization passes, so conversion must do work.
        assert!(c.compile_time() >= e.compile_time() || c.opt_stats().is_some());
    }
}
