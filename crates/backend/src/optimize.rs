//! Graph-level optimization passes for the Compiled backend: constant
//! folding, common-subexpression elimination, dead-code elimination, and
//! the fusion driver.
//!
//! These are the "runtime-specific optimizations" the paper delegates to
//! the DNN runtime (§5, citing TVM); the Hummingbird-specific
//! runtime-*independent* optimizations (feature-selection push-down and
//! injection) live in `hb-core`.

use std::collections::HashMap;

use hb_tensor::DynTensor;

use crate::fuse::fuse_elementwise;
use crate::graph::{Graph, Node, NodeId};
use crate::op::Op;

/// Counters describing what the optimizer did to a graph.
#[derive(Debug, Clone, Copy, Default)]
pub struct OptStats {
    /// Nodes evaluated at compile time and replaced by constants.
    pub folded: usize,
    /// Nodes merged by common-subexpression elimination.
    pub cse_merged: usize,
    /// Fused element-wise kernels created.
    pub fused_kernels: usize,
    /// Node count before optimization.
    pub nodes_before: usize,
    /// Node count after optimization.
    pub nodes_after: usize,
}

/// Upper bound on the element count of a folded constant; folding a huge
/// intermediate would trade compile-time memory for nothing.
const FOLD_LIMIT: usize = 1 << 22;

/// Evaluates nodes whose inputs are all constants, replacing them with
/// `Const` nodes. Returns the rewritten graph and the fold count.
pub fn fold_constants(graph: &Graph) -> (Graph, usize) {
    let mut out = graph.clone();
    let mut folded = 0usize;
    // Cache of constant values per node (only for Const nodes).
    let mut consts: Vec<Option<DynTensor>> = out
        .nodes
        .iter()
        .map(|n| match &n.op {
            Op::Const(v) => Some(v.clone()),
            _ => None,
        })
        .collect();
    for id in 0..out.nodes.len() {
        let node = &out.nodes[id];
        if matches!(node.op, Op::Input(_) | Op::Const(_) | Op::Fused(_)) {
            continue;
        }
        if node.inputs.is_empty() || !node.inputs.iter().all(|&i| consts[i].is_some()) {
            continue;
        }
        #[allow(clippy::disallowed_methods)] // all_const guarantees the operand is present
        let ins: Vec<&DynTensor> = node
            .inputs
            .iter()
            .map(|&i| consts[i].as_ref().expect("const-fold operand"))
            .collect();
        // Size guard: do not materialize giant folded tensors.
        if ins.iter().map(|t| t.numel()).sum::<usize>() > FOLD_LIMIT {
            continue;
        }
        let v = node.op.eval(&ins);
        if v.numel() > FOLD_LIMIT {
            continue;
        }
        consts[id] = Some(v.clone());
        out.nodes[id] = Node {
            op: Op::Const(v),
            inputs: vec![],
        };
        folded += 1;
    }
    (out, folded)
}

/// Merges structurally identical nodes (same op parameters, same inputs).
/// Returns the rewritten graph and the merge count.
pub fn cse(graph: &Graph) -> (Graph, usize) {
    let mut remap: Vec<NodeId> = (0..graph.nodes.len()).collect();
    let mut seen: HashMap<(String, Vec<NodeId>), NodeId> = HashMap::new();
    let mut out = graph.clone();
    let mut merged = 0usize;
    for id in 0..out.nodes.len() {
        // Rewrite inputs through the remap first.
        let inputs: Vec<NodeId> = out.nodes[id].inputs.iter().map(|&i| remap[i]).collect();
        out.nodes[id].inputs = inputs.clone();
        if let Some(key) = out.nodes[id].op.cse_key() {
            match seen.entry((key, inputs)) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    remap[id] = *e.get();
                    merged += 1;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(id);
                }
            }
        }
    }
    for o in out.outputs.iter_mut() {
        *o = remap[*o];
    }
    (out, merged)
}

/// Removes nodes unreachable from the outputs, compacting ids.
pub fn dce(graph: &Graph) -> Graph {
    let n = graph.nodes.len();
    let mut live = vec![false; n];
    let mut stack: Vec<NodeId> = graph.outputs.clone();
    while let Some(id) = stack.pop() {
        if live[id] {
            continue;
        }
        live[id] = true;
        stack.extend_from_slice(&graph.nodes[id].inputs);
    }
    let mut remap = vec![usize::MAX; n];
    let mut nodes = Vec::with_capacity(n);
    for id in 0..n {
        if live[id] {
            let mut node = graph.nodes[id].clone();
            node.inputs = node.inputs.iter().map(|&i| remap[i]).collect();
            remap[id] = nodes.len();
            nodes.push(node);
        }
    }
    Graph {
        nodes,
        outputs: graph.outputs.iter().map(|&o| remap[o]).collect(),
        input_dtypes: graph.input_dtypes.clone(),
        input_shapes: graph.input_shapes.clone(),
    }
}

/// Which Compiled-backend passes run; used by the ablation benchmarks to
/// attribute the backend's gains to individual optimizations.
#[derive(Debug, Clone, Copy)]
pub struct PassToggles {
    /// Constant folding.
    pub fold: bool,
    /// Common-subexpression elimination.
    pub cse: bool,
    /// Element-wise kernel fusion.
    pub fuse: bool,
}

impl Default for PassToggles {
    fn default() -> Self {
        PassToggles {
            fold: true,
            cse: true,
            fuse: true,
        }
    }
}

/// Full Compiled-backend pipeline: fold → CSE → fuse → DCE.
pub fn optimize(graph: &Graph) -> (Graph, OptStats) {
    optimize_with(graph, PassToggles::default())
}

/// Compiled-backend pipeline with selectable passes (DCE always runs —
/// it only removes dead nodes and costs nothing at run time).
///
/// Every pass is translation-validated: when the incoming graph passes
/// the static verifier, each rewrite must keep it passing with an
/// identical inferred output signature. A violation is an optimizer bug
/// and panics (internal invariant failure), turning a silent miscompile
/// into a compile-time failure. Graphs that do not verify to begin with
/// are optimized without validation — the admission gates reject them
/// elsewhere.
pub fn optimize_with(graph: &Graph, toggles: PassToggles) -> (Graph, OptStats) {
    let nodes_before = graph.nodes.len();
    let reference = graph.verify().ok();
    let check = |pass: &str, g: &Graph| {
        let Some(want) = reference.as_ref() else {
            return;
        };
        match g.verify() {
            Ok(got) if got == *want => {}
            Ok(got) => panic!(
                "translation validation failed: {pass} changed the output signature from {want} to {got}"
            ),
            Err(e) => panic!("translation validation failed: {pass} produced an invalid graph: {e}"),
        }
    };
    let (g, folded) = if toggles.fold {
        fold_constants(graph)
    } else {
        (graph.clone(), 0)
    };
    check("constant folding", &g);
    let (g, cse_merged) = if toggles.cse { cse(&g) } else { (g, 0) };
    check("cse", &g);
    let g = dce(&g);
    check("dce", &g);
    let (g, fused_kernels) = if toggles.fuse {
        fuse_elementwise(&g)
    } else {
        (g, 0)
    };
    check("fusion", &g);
    let g = dce(&g);
    check("dce", &g);
    g.validate();
    let stats = OptStats {
        folded,
        cse_merged,
        fused_kernels,
        nodes_before,
        nodes_after: g.nodes.len(),
    };
    (g, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use hb_tensor::{DType, Tensor};

    fn run(g: &Graph, inputs: &[DynTensor]) -> Vec<DynTensor> {
        let mut vals: Vec<Option<DynTensor>> = vec![None; g.nodes.len()];
        for (id, node) in g.nodes.iter().enumerate() {
            let v = match &node.op {
                Op::Input(slot) => inputs[*slot].clone(),
                op => {
                    let ins: Vec<&DynTensor> = node
                        .inputs
                        .iter()
                        .map(|&i| vals[i].as_ref().unwrap())
                        .collect();
                    op.eval(&ins)
                }
            };
            vals[id] = Some(v);
        }
        g.outputs
            .iter()
            .map(|&o| vals[o].clone().unwrap())
            .collect()
    }

    #[test]
    fn fold_evaluates_const_subgraphs() {
        let mut b = GraphBuilder::new();
        let c1 = b.constant(Tensor::from_vec(vec![1.0f32, 2.0], &[2]));
        let c2 = b.constant(Tensor::from_vec(vec![3.0f32, 4.0], &[2]));
        let s = b.add(c1, c2);
        let x = b.input(DType::F32);
        let y = b.add(x, s);
        b.output(y);
        let g = b.build();
        let (folded, n) = fold_constants(&g);
        assert_eq!(n, 1);
        assert!(matches!(folded.nodes[s].op, Op::Const(_)));
        let out = run(
            &folded,
            &[DynTensor::F32(Tensor::from_vec(vec![0.0, 0.0], &[2]))],
        );
        assert_eq!(out[0].as_f32().to_vec(), vec![4.0, 6.0]);
    }

    #[test]
    fn cse_merges_identical_subtrees() {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let a1 = b.add_scalar(x, 1.0);
        let a2 = b.add_scalar(x, 1.0);
        let y = b.add(a1, a2);
        b.output(y);
        let g = b.build();
        let (merged, n) = cse(&g);
        assert_eq!(n, 1);
        assert_eq!(merged.nodes[y].inputs, vec![a1, a1]);
    }

    #[test]
    fn dce_drops_unreachable() {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let _dead = b.add_scalar(x, 99.0);
        let y = b.mul_scalar(x, 2.0);
        b.output(y);
        let g = b.build();
        let pruned = dce(&g);
        assert_eq!(pruned.nodes.len(), 2);
        let out = run(
            &pruned,
            &[DynTensor::F32(Tensor::from_vec(vec![3.0], &[1]))],
        );
        assert_eq!(out[0].as_f32().to_vec(), vec![6.0]);
    }

    #[test]
    fn optimize_preserves_semantics() {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let c1 = b.constant(Tensor::scalar(2.0f32));
        let c2 = b.constant(Tensor::scalar(3.0f32));
        let cc = b.add(c1, c2); // foldable
        let m = b.mul(x, cc);
        let r = b.push(Op::Relu, vec![m]);
        let dup = b.mul(x, cc); // CSE with m? inputs differ post-fold; same const -> merged
        let s = b.add(r, dup);
        b.output(s);
        let g = b.build();
        let (opt, stats) = optimize(&g);
        assert!(stats.nodes_after <= stats.nodes_before);
        let input = DynTensor::F32(Tensor::from_vec(vec![-1.0, 2.0], &[2]));
        let want = run(&g, &[input.clone()]);
        let got = run(&opt, &[input]);
        assert_eq!(want[0].as_f32().to_vec(), got[0].as_f32().to_vec());
    }

    #[test]
    fn optimize_reduces_kernel_count() {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let t1 = b.add_scalar(x, 1.0);
        let t2 = b.mul_scalar(t1, 2.0);
        let t3 = b.push(Op::Relu, vec![t2]);
        let t4 = b.push(Op::Sigmoid, vec![t3]);
        b.output(t4);
        let g = b.build();
        let (opt, stats) = optimize(&g);
        assert_eq!(stats.fused_kernels, 1);
        assert!(opt.kernel_count() < g.kernel_count());
    }
}
