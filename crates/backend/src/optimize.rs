//! Graph-level optimization passes for the Compiled backend: constant
//! folding, common-subexpression elimination, dead-code elimination, and
//! the fusion driver.
//!
//! These are the "runtime-specific optimizations" the paper delegates to
//! the DNN runtime (§5, citing TVM); the Hummingbird-specific
//! runtime-*independent* optimizations (feature-selection push-down and
//! injection) live in `hb-core`.

use std::collections::HashMap;

use hb_tensor::DynTensor;

use crate::absint;
use crate::fuse::fuse_elementwise;
use crate::graph::{Graph, Node, NodeId};
use crate::op::Op;
use crate::verify::ShapeFact;

/// Counters describing what the optimizer did to a graph.
#[derive(Debug, Clone, Copy, Default)]
pub struct OptStats {
    /// Nodes evaluated at compile time and replaced by constants.
    pub folded: usize,
    /// Nodes merged by common-subexpression elimination.
    pub cse_merged: usize,
    /// Analysis-directed rewrites applied (statically-decided
    /// clamps/wheres/min-max eliminated, sigmoids pinned).
    pub value_rewrites: usize,
    /// Fused element-wise kernels created.
    pub fused_kernels: usize,
    /// Node count before optimization.
    pub nodes_before: usize,
    /// Node count after optimization.
    pub nodes_after: usize,
}

/// Upper bound on the element count of a folded constant; folding a huge
/// intermediate would trade compile-time memory for nothing.
const FOLD_LIMIT: usize = 1 << 22;

/// Evaluates nodes whose inputs are all constants, replacing them with
/// `Const` nodes. Returns the rewritten graph and the fold count.
pub fn fold_constants(graph: &Graph) -> (Graph, usize) {
    let mut out = graph.clone();
    let mut folded = 0usize;
    // Cache of constant values per node (only for Const nodes).
    let mut consts: Vec<Option<DynTensor>> = out
        .nodes
        .iter()
        .map(|n| match &n.op {
            Op::Const(v) => Some(v.clone()),
            _ => None,
        })
        .collect();
    for id in 0..out.nodes.len() {
        let node = &out.nodes[id];
        if matches!(node.op, Op::Input(_) | Op::Const(_) | Op::Fused(_)) {
            continue;
        }
        if node.inputs.is_empty() || !node.inputs.iter().all(|&i| consts[i].is_some()) {
            continue;
        }
        #[allow(clippy::disallowed_methods)] // all_const guarantees the operand is present
        let ins: Vec<&DynTensor> = node
            .inputs
            .iter()
            .map(|&i| consts[i].as_ref().expect("const-fold operand"))
            .collect();
        // Size guard: do not materialize giant folded tensors.
        if ins.iter().map(|t| t.numel()).sum::<usize>() > FOLD_LIMIT {
            continue;
        }
        let v = node.op.eval(&ins);
        if v.numel() > FOLD_LIMIT {
            continue;
        }
        consts[id] = Some(v.clone());
        out.nodes[id] = Node {
            op: Op::Const(v),
            inputs: vec![],
        };
        folded += 1;
    }
    (out, folded)
}

/// Merges structurally identical nodes (same op parameters, same inputs).
/// Returns the rewritten graph and the merge count.
pub fn cse(graph: &Graph) -> (Graph, usize) {
    let mut remap: Vec<NodeId> = (0..graph.nodes.len()).collect();
    let mut seen: HashMap<(String, Vec<NodeId>), NodeId> = HashMap::new();
    let mut out = graph.clone();
    let mut merged = 0usize;
    for id in 0..out.nodes.len() {
        // Rewrite inputs through the remap first.
        let inputs: Vec<NodeId> = out.nodes[id].inputs.iter().map(|&i| remap[i]).collect();
        out.nodes[id].inputs = inputs.clone();
        if let Some(key) = out.nodes[id].op.cse_key() {
            match seen.entry((key, inputs)) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    remap[id] = *e.get();
                    merged += 1;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(id);
                }
            }
        }
    }
    for o in out.outputs.iter_mut() {
        *o = remap[*o];
    }
    (out, merged)
}

/// Removes nodes unreachable from the outputs, compacting ids.
pub fn dce(graph: &Graph) -> Graph {
    let n = graph.nodes.len();
    let mut live = vec![false; n];
    let mut stack: Vec<NodeId> = graph.outputs.clone();
    while let Some(id) = stack.pop() {
        if live[id] {
            continue;
        }
        live[id] = true;
        stack.extend_from_slice(&graph.nodes[id].inputs);
    }
    let mut remap = vec![usize::MAX; n];
    let mut nodes = Vec::with_capacity(n);
    for id in 0..n {
        if live[id] {
            let mut node = graph.nodes[id].clone();
            node.inputs = node.inputs.iter().map(|&i| remap[i]).collect();
            remap[id] = nodes.len();
            nodes.push(node);
        }
    }
    Graph {
        nodes,
        outputs: graph.outputs.iter().map(|&o| remap[o]).collect(),
        input_dtypes: graph.input_dtypes.clone(),
        input_shapes: graph.input_shapes.clone(),
    }
}

/// Analysis-directed rewrites: uses the abstract interpreter's value
/// facts (intervals + NaN/Inf taint, computed under dtype-top input
/// facts so every rewrite holds for *all* possible inputs) to eliminate
/// ops whose predicate is statically decided:
///
/// * `Clamp{lo, hi}` whose operand interval already lies in `[lo, hi]`
///   — the clamp is the identity on every reachable value (NaN
///   propagates identically through both sides);
/// * `Where(cond, a, b)` whose Bool condition is pinned to all-true or
///   all-false — the taken branch replaces the select (only when its
///   static shape provably equals the select's, so broadcasts survive);
/// * `Maximum(a, b)` where `a.lo >= b.hi`: the concrete kernel is
///   `if b > a { b } else { a }`, which returns `a` on ties and
///   whenever either operand is NaN, so this replacement is exact with
///   no NaN side conditions (`Minimum` dually at `a.hi <= b.lo`);
/// * `Sigmoid` whose operand interval pins the f32 result to exactly
///   0.0 or 1.0 — strength-reduced to the degenerate `Clamp{c, c}`,
///   which maps every reachable value to the same constant while
///   propagating NaN exactly like sigmoid does.
///
/// Every rewrite is value-preserving bit-for-bit, and the pass runs
/// under the same translation-validation check as the structural passes.
pub fn value_rewrites(graph: &Graph) -> (Graph, usize) {
    let input_tops = absint::top_input_facts(graph);
    let (facts, shapes) = match (graph.infer_values(&input_tops), graph.infer_shapes()) {
        (Ok(f), Ok(s)) => (f, s),
        _ => return (graph.clone(), 0),
    };
    // A branch may replace a select only when both static shapes are
    // fully known and equal (Unknown dims must not absorb the check).
    let same_shape = |a: &ShapeFact, b: &ShapeFact| match (a.dims(), b.dims()) {
        (Some(x), Some(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.known_eq(*q) == Some(true))
        }
        _ => false,
    };
    let mut out = graph.clone();
    let mut remap: Vec<NodeId> = (0..out.nodes.len()).collect();
    let mut fired = 0usize;
    for id in 0..out.nodes.len() {
        let inputs: Vec<NodeId> = out.nodes[id].inputs.iter().map(|&i| remap[i]).collect();
        out.nodes[id].inputs = inputs.clone();
        let fact = |k: usize| facts[inputs[k]];
        let replacement: Option<NodeId> = match &out.nodes[id].op {
            Op::Clamp { lo, hi } => {
                // A finite interval inside [lo, hi] also rules out ±inf
                // values (they would violate the interval invariant), so
                // no extra taint condition is needed; NaN passes through
                // both the clamp and its elimination unchanged.
                let x = fact(0);
                x.within(f64::from(*lo), f64::from(*hi)).then(|| inputs[0])
            }
            Op::Where => {
                let c = fact(0);
                if c.lo >= 1.0 && same_shape(&shapes[inputs[1]], &shapes[id]) {
                    Some(inputs[1])
                } else if c.hi <= 0.0 && same_shape(&shapes[inputs[2]], &shapes[id]) {
                    Some(inputs[2])
                } else {
                    None
                }
            }
            Op::Maximum => {
                let (a, b) = (fact(0), fact(1));
                if a.lo >= b.hi && same_shape(&shapes[inputs[0]], &shapes[id]) {
                    Some(inputs[0])
                } else if b.lo > a.hi
                    && !a.can_nan
                    && !b.can_nan
                    && same_shape(&shapes[inputs[1]], &shapes[id])
                {
                    // Strict: on ties (and on NaN) the kernel returns a.
                    Some(inputs[1])
                } else {
                    None
                }
            }
            Op::Minimum => {
                let (a, b) = (fact(0), fact(1));
                if a.hi <= b.lo && same_shape(&shapes[inputs[0]], &shapes[id]) {
                    Some(inputs[0])
                } else if b.hi < a.lo
                    && !a.can_nan
                    && !b.can_nan
                    && same_shape(&shapes[inputs[1]], &shapes[id])
                {
                    Some(inputs[1])
                } else {
                    None
                }
            }
            Op::Sigmoid => {
                // f32 sigmoid is exactly 1.0 for x >= 20 and exactly 0.0
                // for x <= -90 (see absint::a_sigmoid); the degenerate
                // clamp reproduces that constant — including
                // sigmoid(±inf) — and propagates NaN identically.
                let x = fact(0);
                if x.lo >= 20.0 {
                    out.nodes[id].op = Op::Clamp { lo: 1.0, hi: 1.0 };
                    fired += 1;
                } else if x.hi <= -90.0 {
                    out.nodes[id].op = Op::Clamp { lo: 0.0, hi: 0.0 };
                    fired += 1;
                }
                None
            }
            _ => None,
        };
        if let Some(r) = replacement {
            remap[id] = r;
            fired += 1;
        }
    }
    for o in out.outputs.iter_mut() {
        *o = remap[*o];
    }
    (out, fired)
}

/// Which Compiled-backend passes run; used by the ablation benchmarks to
/// attribute the backend's gains to individual optimizations.
#[derive(Debug, Clone, Copy)]
pub struct PassToggles {
    /// Constant folding.
    pub fold: bool,
    /// Common-subexpression elimination.
    pub cse: bool,
    /// Abstract-interpretation-directed value rewrites.
    pub value_rewrites: bool,
    /// Element-wise kernel fusion.
    pub fuse: bool,
}

impl Default for PassToggles {
    fn default() -> Self {
        PassToggles {
            fold: true,
            cse: true,
            value_rewrites: true,
            fuse: true,
        }
    }
}

/// Full Compiled-backend pipeline: fold → CSE → fuse → DCE.
pub fn optimize(graph: &Graph) -> (Graph, OptStats) {
    optimize_with(graph, PassToggles::default())
}

/// Compiled-backend pipeline with selectable passes (DCE always runs —
/// it only removes dead nodes and costs nothing at run time).
///
/// Every pass is translation-validated: when the incoming graph passes
/// the static verifier, each rewrite must keep it passing with an
/// identical inferred output signature. A violation is an optimizer bug
/// and panics (internal invariant failure), turning a silent miscompile
/// into a compile-time failure. Graphs that do not verify to begin with
/// are optimized without validation — the admission gates reject them
/// elsewhere.
pub fn optimize_with(graph: &Graph, toggles: PassToggles) -> (Graph, OptStats) {
    let nodes_before = graph.nodes.len();
    let reference = graph.verify().ok();
    let check = |pass: &str, g: &Graph| {
        let Some(want) = reference.as_ref() else {
            return;
        };
        match g.verify() {
            Ok(got) if got == *want => {}
            Ok(got) => panic!(
                "translation validation failed: {pass} changed the output signature from {want} to {got}"
            ),
            Err(e) => panic!("translation validation failed: {pass} produced an invalid graph: {e}"),
        }
    };
    let (g, folded) = if toggles.fold {
        fold_constants(graph)
    } else {
        (graph.clone(), 0)
    };
    check("constant folding", &g);
    let (g, value_rewritten) = if toggles.value_rewrites {
        value_rewrites(&g)
    } else {
        (g, 0)
    };
    check("value rewrites", &g);
    let (g, cse_merged) = if toggles.cse { cse(&g) } else { (g, 0) };
    check("cse", &g);
    let g = dce(&g);
    check("dce", &g);
    let (g, fused_kernels) = if toggles.fuse {
        fuse_elementwise(&g)
    } else {
        (g, 0)
    };
    check("fusion", &g);
    let g = dce(&g);
    check("dce", &g);
    g.validate();
    let stats = OptStats {
        folded,
        cse_merged,
        value_rewrites: value_rewritten,
        fused_kernels,
        nodes_before,
        nodes_after: g.nodes.len(),
    };
    (g, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use hb_tensor::{DType, Tensor};

    fn run(g: &Graph, inputs: &[DynTensor]) -> Vec<DynTensor> {
        let mut vals: Vec<Option<DynTensor>> = vec![None; g.nodes.len()];
        for (id, node) in g.nodes.iter().enumerate() {
            let v = match &node.op {
                Op::Input(slot) => inputs[*slot].clone(),
                op => {
                    let ins: Vec<&DynTensor> = node
                        .inputs
                        .iter()
                        .map(|&i| vals[i].as_ref().unwrap())
                        .collect();
                    op.eval(&ins)
                }
            };
            vals[id] = Some(v);
        }
        g.outputs
            .iter()
            .map(|&o| vals[o].clone().unwrap())
            .collect()
    }

    #[test]
    fn fold_evaluates_const_subgraphs() {
        let mut b = GraphBuilder::new();
        let c1 = b.constant(Tensor::from_vec(vec![1.0f32, 2.0], &[2]));
        let c2 = b.constant(Tensor::from_vec(vec![3.0f32, 4.0], &[2]));
        let s = b.add(c1, c2);
        let x = b.input(DType::F32);
        let y = b.add(x, s);
        b.output(y);
        let g = b.build();
        let (folded, n) = fold_constants(&g);
        assert_eq!(n, 1);
        assert!(matches!(folded.nodes[s].op, Op::Const(_)));
        let out = run(
            &folded,
            &[DynTensor::F32(Tensor::from_vec(vec![0.0, 0.0], &[2]))],
        );
        assert_eq!(out[0].as_f32().to_vec(), vec![4.0, 6.0]);
    }

    #[test]
    fn cse_merges_identical_subtrees() {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let a1 = b.add_scalar(x, 1.0);
        let a2 = b.add_scalar(x, 1.0);
        let y = b.add(a1, a2);
        b.output(y);
        let g = b.build();
        let (merged, n) = cse(&g);
        assert_eq!(n, 1);
        assert_eq!(merged.nodes[y].inputs, vec![a1, a1]);
    }

    #[test]
    fn dce_drops_unreachable() {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let _dead = b.add_scalar(x, 99.0);
        let y = b.mul_scalar(x, 2.0);
        b.output(y);
        let g = b.build();
        let pruned = dce(&g);
        assert_eq!(pruned.nodes.len(), 2);
        let out = run(
            &pruned,
            &[DynTensor::F32(Tensor::from_vec(vec![3.0], &[1]))],
        );
        assert_eq!(out[0].as_f32().to_vec(), vec![6.0]);
    }

    #[test]
    fn optimize_preserves_semantics() {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let c1 = b.constant(Tensor::scalar(2.0f32));
        let c2 = b.constant(Tensor::scalar(3.0f32));
        let cc = b.add(c1, c2); // foldable
        let m = b.mul(x, cc);
        let r = b.push(Op::Relu, vec![m]);
        let dup = b.mul(x, cc); // CSE with m? inputs differ post-fold; same const -> merged
        let s = b.add(r, dup);
        b.output(s);
        let g = b.build();
        let (opt, stats) = optimize(&g);
        assert!(stats.nodes_after <= stats.nodes_before);
        let input = DynTensor::F32(Tensor::from_vec(vec![-1.0, 2.0], &[2]));
        let want = run(&g, &[input.clone()]);
        let got = run(&opt, &[input]);
        assert_eq!(want[0].as_f32().to_vec(), got[0].as_f32().to_vec());
    }

    #[test]
    fn value_rewrite_drops_redundant_clamp_after_sigmoid() {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let s = b.push(Op::Sigmoid, vec![x]);
        let c = b.push(Op::Clamp { lo: 0.0, hi: 1.0 }, vec![s]);
        b.output(c);
        let g = b.build();
        let (opt, fired) = value_rewrites(&g);
        assert_eq!(fired, 1);
        assert_eq!(
            opt.outputs,
            vec![s],
            "the clamp must forward to the sigmoid"
        );
        let input = DynTensor::F32(Tensor::from_vec(vec![-5.0, 0.0, 7.0, f32::NAN], &[4]));
        let want = run(&g, &[input.clone()]);
        let got = run(&dce(&opt), &[input]);
        assert_eq!(
            want[0]
                .as_f32()
                .iter()
                .map(f32::to_bits)
                .collect::<Vec<_>>(),
            got[0].as_f32().iter().map(f32::to_bits).collect::<Vec<_>>(),
            "elimination must be bit-identical, NaN included"
        );
    }

    #[test]
    fn value_rewrite_resolves_statically_false_where() {
        // where(isnan(sigmoid(x)·0 + bool-derived…), fill, v) with v
        // provably NaN-free: the guard collapses to v.
        let mut b = GraphBuilder::new();
        let x = b.input_with_shape(DType::F32, crate::verify::ShapeFact::batched(&[3]));
        let s = b.push(Op::Sigmoid, vec![x]); // NaN only if x is NaN
        let nf = b.push(Op::Abs, vec![s]);
        let cond = b.push(Op::IsNan, vec![nf]);
        let zero = b.mul_scalar(nf, 0.0);
        let w = b.where_(cond, zero, nf);
        b.output(w);
        let g = b.build();
        // Under top inputs x may be NaN, so nothing fires…
        let (_, fired_top) = value_rewrites(&g);
        assert_eq!(fired_top, 0, "NaN-able input must block the guard drop");
        // …but behind a comparison (which launders NaN into Bool) the
        // subgraph is provably NaN-free and the guard drops.
        let mut b = GraphBuilder::new();
        let x = b.input_with_shape(DType::F32, crate::verify::ShapeFact::batched(&[3]));
        let zero_c = b.constant(Tensor::scalar(0.0f32));
        let m = b.push(Op::Gt, vec![x, zero_c]);
        let f = b.push(Op::Cast(DType::F32), vec![m]);
        let cond = b.push(Op::IsNan, vec![f]);
        let fill = b.mul_scalar(f, 0.0);
        let w = b.where_(cond, fill, f);
        b.output(w);
        let g = b.build();
        let (opt, fired) = value_rewrites(&g);
        assert_eq!(fired, 1);
        assert_eq!(opt.outputs, vec![f]);
    }

    #[test]
    fn value_rewrite_decides_maximum_with_constant() {
        let mut b = GraphBuilder::new();
        let x = b.input_with_shape(DType::F32, crate::verify::ShapeFact::batched(&[3]));
        let s = b.push(Op::Sigmoid, vec![x]); // in [0, 1]
        let floor = b.constant(Tensor::from_vec(vec![2.0f32], &[1]));
        let m = b.push(Op::Maximum, vec![floor, s]); // always the constant… but shapes differ
        b.output(m);
        let g = b.build();
        let (_, fired) = value_rewrites(&g);
        // [1]-shaped const vs batched sigmoid: shape guard must block.
        assert_eq!(fired, 0, "broadcasted maximum must not be replaced");

        let mut b = GraphBuilder::new();
        let x = b.input_with_shape(DType::F32, crate::verify::ShapeFact::batched(&[3]));
        let s = b.push(Op::Sigmoid, vec![x]);
        let shifted = b.add_scalar(s, 5.0); // in [5 - eps, 6 + eps]
        let m = b.push(Op::Maximum, vec![shifted, s]); // shifted always wins
        b.output(m);
        let g = b.build();
        let (opt, fired) = value_rewrites(&g);
        assert_eq!(fired, 1);
        assert_eq!(opt.outputs, vec![shifted]);
    }

    #[test]
    fn value_rewrite_pins_saturated_sigmoid() {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let s = b.push(Op::Sigmoid, vec![x]); // [0, 1]
        let big = b.add_scalar(s, 50.0); // [50 - eps, 51 + eps]
        let pinned = b.push(Op::Sigmoid, vec![big]);
        b.output(pinned);
        let g = b.build();
        let (opt, fired) = value_rewrites(&g);
        assert_eq!(fired, 1);
        assert!(
            matches!(opt.nodes[pinned].op, Op::Clamp { lo, hi } if lo == 1.0 && hi == 1.0),
            "saturated sigmoid must strength-reduce to the degenerate clamp"
        );
        let input = DynTensor::F32(Tensor::from_vec(vec![-1e9, 0.0, 3.5], &[3]));
        let want = run(&g, &[input.clone()]);
        let got = run(&opt, &[input]);
        assert_eq!(want[0].as_f32().to_vec(), got[0].as_f32().to_vec());
    }

    #[test]
    fn value_rewrites_are_translation_validated_in_pipeline() {
        let mut b = GraphBuilder::new();
        let x = b.input_with_shape(DType::F32, crate::verify::ShapeFact::batched(&[3]));
        let s = b.push(Op::Sigmoid, vec![x]);
        let c = b.push(Op::Clamp { lo: 0.0, hi: 1.0 }, vec![s]);
        let cond = b.push(Op::IsNan, vec![c]);
        let fill = b.mul_scalar(c, 0.0);
        let w = b.where_(cond, fill, c);
        b.output(w);
        let g = b.build();
        let (opt, stats) = optimize(&g);
        assert!(stats.value_rewrites >= 1);
        let input = DynTensor::F32(Tensor::from_vec(vec![-2.0, 0.5, 9.0], &[3]));
        let want = run(&g, &[input.clone()]);
        let got = run(&opt, &[input]);
        assert_eq!(want[0].as_f32().to_vec(), got[0].as_f32().to_vec());
    }

    #[test]
    fn optimize_reduces_kernel_count() {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let t1 = b.add_scalar(x, 1.0);
        let t2 = b.mul_scalar(t1, 2.0);
        let t3 = b.push(Op::Relu, vec![t2]);
        let t4 = b.push(Op::Sigmoid, vec![t3]);
        b.output(t4);
        let g = b.build();
        let (opt, stats) = optimize(&g);
        assert_eq!(stats.fused_kernels, 1);
        assert!(opt.kernel_count() < g.kernel_count());
    }
}
