//! Abstract interpretation over the tensor IR: per-tensor value
//! intervals plus NaN/Inf taint.
//!
//! The shape/dtype verifier (PR 2) proves *structural* facts about a
//! graph; this module proves *value* facts. Two composable abstract
//! domains run in lock-step over every node:
//!
//! * **interval analysis** — each tensor gets `[lo, hi]` bounds with
//!   ±Inf endpoints, and constant tensors are refined element-wise to
//!   their tight min/max;
//! * **NaN/Inf taint** — `can_nan` / `can_inf` flags recording whether
//!   any element of the tensor may be a NaN or a ±Inf at runtime.
//!
//! The soundness contract for a [`ValueFact`] attached to a node is:
//! for every concrete execution whose graph inputs satisfy their
//! declared input facts,
//!
//! 1. every non-NaN element `v` of the node's tensor satisfies
//!    `lo <= v <= hi` (infinities included — an element can only be
//!    `+inf` when `hi == +inf`),
//! 2. a NaN element can occur only if `can_nan` is set, and
//! 3. a ±Inf element can occur only if `can_inf` is set.
//!
//! Note the asymmetry of (1) and (3): an infinite endpoint merely says
//! the value is *unbounded*; `can_inf` says an actual IEEE infinity may
//! be produced (e.g. by f32 overflow or division by zero).
//!
//! Transfer functions mirror this repository's concrete kernels, not
//! textbook real arithmetic. That matters in several places:
//!
//! * tensor `maximum`/`minimum` are `if b > a { b } else { a }`-shaped,
//!   so a NaN in either operand yields `a` — while the fused-kernel
//!   `Max`/`Min` instructions use `f32::max`/`f32::min`, which launder
//!   single-operand NaNs;
//! * tensor `relu` (`if x < 0 { 0 } else { x }`) propagates NaN, while
//!   the fused `Relu` (`x.max(0.0)`) maps NaN to 0;
//! * `sigmoid`/`softmax` are *hard*-bounded to `[0, 1]` by their f32
//!   implementations (the denominator is ≥ 1, and rounding a true
//!   quotient ≤ 1 to nearest cannot exceed 1), so no rounding slack is
//!   added to those bounds;
//! * all other f32 arithmetic is widened by a small relative slack
//!   (scaled by the reduction length for `Sum`/`Mean`/`MatMul`) so that
//!   floating-point rounding can never escape the interval.
//!
//! [`Graph::infer_values`] runs the analysis in one topological pass
//! (the IR is a DAG in evaluation order, so a single pass reaches the
//! fixed point) and returns one fact per node. Consumers: the
//! analysis-directed rewrites in [`crate::optimize`], the serving
//! layer's static admission proofs, and `hb-lint` diagnostics.

use hb_tensor::{DType, DynTensor};

use crate::fuse::{FusedKernel, Instr};
use crate::graph::{Graph, GraphError};
use crate::lir;
use crate::op::Op;
use crate::verify::{ShapeFact, SymDim};

/// Relative rounding slack applied to widen elementwise f32 arithmetic.
/// f32 unit roundoff is ~1.2e-7; two orders of magnitude of headroom
/// keeps the analysis sound across fused re-associations.
const REL_EW: f64 = 1e-5;

/// Additional per-term relative slack for length-`k` f32 reductions.
const REL_PER_TERM: f64 = 1e-6;

/// Absolute slack absorbing subnormal rounding near zero.
const ABS_EPS: f64 = 1e-30;

/// Interval + NaN/Inf taint for one tensor. See the module docs for the
/// exact soundness contract.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ValueFact {
    /// Lower bound on every non-NaN element (−inf = unbounded below).
    pub lo: f64,
    /// Upper bound on every non-NaN element (+inf = unbounded above).
    pub hi: f64,
    /// Whether any element may be NaN.
    pub can_nan: bool,
    /// Whether any element may be an IEEE ±infinity.
    pub can_inf: bool,
}

hb_json::json_struct!(ValueFact {
    lo,
    hi,
    can_nan,
    can_inf
});

impl ValueFact {
    /// A fact with the given bounds and no taint.
    pub fn finite(lo: f64, hi: f64) -> ValueFact {
        ValueFact {
            lo,
            hi,
            can_nan: false,
            can_inf: false,
        }
    }

    /// The degenerate single-value fact.
    pub fn point(v: f64) -> ValueFact {
        ValueFact::finite(v, v)
    }

    /// The weakest sound fact for a tensor of dtype `dt`: everything the
    /// dtype can represent.
    pub fn top(dt: DType) -> ValueFact {
        match dt {
            DType::F32 => ValueFact {
                lo: f64::NEG_INFINITY,
                hi: f64::INFINITY,
                can_nan: true,
                can_inf: true,
            },
            DType::I64 => ValueFact::finite(i64::MIN as f64, i64::MAX as f64),
            DType::U8 => ValueFact::finite(0.0, 255.0),
            DType::Bool => ValueFact::finite(0.0, 1.0),
        }
    }

    /// Element-wise tight bounds for a constant tensor. Empty tensors
    /// get the vacuous `[0, 0]` (no elements exist, so any interval is
    /// sound).
    pub fn constant(t: &DynTensor) -> ValueFact {
        fn scan<T: Copy, F: Fn(T) -> f64>(it: impl Iterator<Item = T>, as_f64: F) -> ValueFact {
            let mut f = ValueFact::finite(f64::INFINITY, f64::NEG_INFINITY);
            let mut any = false;
            for v in it {
                let v = as_f64(v);
                any = true;
                if v.is_nan() {
                    f.can_nan = true;
                    continue;
                }
                if v.is_infinite() {
                    f.can_inf = true;
                }
                f.lo = f.lo.min(v);
                f.hi = f.hi.max(v);
            }
            if !any || f.lo > f.hi {
                // Empty, or every element was NaN: the interval part is
                // vacuous.
                f.lo = 0.0;
                f.hi = 0.0;
            }
            f
        }
        match t {
            DynTensor::F32(t) => scan(t.iter(), f64::from),
            DynTensor::I64(t) => scan(t.iter(), |v| v as f64),
            DynTensor::U8(t) => scan(t.iter(), f64::from),
            DynTensor::Bool(t) => scan(t.iter(), |v| if v { 1.0 } else { 0.0 }),
        }
    }

    /// Least upper bound of two facts (used for `Where`, `Concat`, …).
    pub fn join(&self, o: &ValueFact) -> ValueFact {
        ValueFact {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
            can_nan: self.can_nan || o.can_nan,
            can_inf: self.can_inf || o.can_inf,
        }
    }

    /// Intersection with a dtype's representable range (used to refine
    /// caller-declared input facts).
    pub fn meet_dtype(&self, dt: DType) -> ValueFact {
        let top = ValueFact::top(dt);
        let lo = self.lo.max(top.lo);
        let hi = self.hi.min(top.hi);
        ValueFact {
            // A contradictory meet (caller promised more than the dtype
            // can hold) degrades to the dtype top rather than an empty
            // interval.
            lo: if lo <= hi { lo } else { top.lo },
            hi: if lo <= hi { hi } else { top.hi },
            can_nan: self.can_nan && top.can_nan,
            can_inf: self.can_inf && top.can_inf,
        }
    }

    /// True when the interval is a subset of `[lo, hi]`.
    pub fn within(&self, lo: f64, hi: f64) -> bool {
        self.lo >= lo && self.hi <= hi
    }

    /// True when this fact is at least as precise as `o`: a narrower
    /// (or equal) interval and no taint `o` lacks. Used by translation
    /// validation — an optimized lowering may *refine* the bytecode's
    /// fact but must never claim values the bytecode analysis excludes.
    pub fn refines(&self, o: &ValueFact) -> bool {
        self.lo >= o.lo
            && self.hi <= o.hi
            && (!self.can_nan || o.can_nan)
            && (!self.can_inf || o.can_inf)
    }

    /// True when every non-NaN value equals `v` exactly.
    pub fn pinned_to(&self, v: f64) -> bool {
        self.lo == v && self.hi == v
    }

    /// Whether `+inf` may actually occur as an element value.
    fn has_pos_inf(&self) -> bool {
        self.can_inf && self.hi == f64::INFINITY
    }

    /// Whether `-inf` may actually occur as an element value.
    fn has_neg_inf(&self) -> bool {
        self.can_inf && self.lo == f64::NEG_INFINITY
    }

    /// Whether 0 lies in the interval (or a NaN could stand in for it
    /// after a laundering cast).
    pub fn contains_zero(&self) -> bool {
        self.lo <= 0.0 && self.hi >= 0.0
    }

    /// Widens both finite endpoints by `rel` relative slack (plus a tiny
    /// absolute term), absorbing floating-point rounding of the concrete
    /// kernel. Infinite endpoints are left alone.
    fn widened(&self, rel: f64) -> ValueFact {
        let mag = {
            let a = if self.lo.is_finite() {
                self.lo.abs()
            } else {
                0.0
            };
            let b = if self.hi.is_finite() {
                self.hi.abs()
            } else {
                0.0
            };
            a.max(b)
        };
        let slack = rel * mag + ABS_EPS;
        ValueFact {
            lo: if self.lo.is_finite() {
                self.lo - slack
            } else {
                self.lo
            },
            hi: if self.hi.is_finite() {
                self.hi + slack
            } else {
                self.hi
            },
            ..*self
        }
    }

    /// Post-processes an *arithmetic* f32 result: any endpoint beyond
    /// f32's finite range means the kernel may round to ±inf, so the
    /// endpoint saturates and the Inf taint turns on. Selection ops
    /// (min/max/gather/where/clamp) must NOT call this — they cannot
    /// create magnitudes their inputs lacked.
    fn finalize_f32(mut self) -> ValueFact {
        let max = f64::from(f32::MAX);
        if self.hi > max {
            self.hi = f64::INFINITY;
            self.can_inf = true;
        }
        if self.lo < -max {
            self.lo = f64::NEG_INFINITY;
            self.can_inf = true;
        }
        self
    }

    /// Post-processes an i64 result: wrap-around overflow makes any
    /// out-of-range endpoint degrade to the full i64 range.
    fn finalize_i64(mut self) -> ValueFact {
        if self.lo < i64::MIN as f64 || self.hi > i64::MAX as f64 || self.lo.is_nan() {
            self.lo = i64::MIN as f64;
            self.hi = i64::MAX as f64;
        }
        self.can_nan = false;
        self.can_inf = false;
        self
    }

    /// Dtype-directed finalization for arithmetic results.
    fn finalize(self, dt: DType) -> ValueFact {
        match dt {
            DType::F32 => self.finalize_f32(),
            DType::I64 => self.finalize_i64(),
            DType::U8 => ValueFact::finite(0.0, 255.0),
            DType::Bool => ValueFact::finite(self.lo.clamp(0.0, 1.0), self.hi.clamp(0.0, 1.0)),
        }
    }
}

/// `x * y` on interval endpoints with the convention `0 * ±inf = 0`
/// (the possibility of an actual `0 * inf = NaN` is tracked separately
/// by the taint domain).
fn mul_ep(x: f64, y: f64) -> f64 {
    if x == 0.0 || y == 0.0 {
        0.0
    } else {
        x * y
    }
}

/// Hull of the four endpoint products.
fn mul_hull(a: &ValueFact, b: &ValueFact) -> (f64, f64) {
    let c = [
        mul_ep(a.lo, b.lo),
        mul_ep(a.lo, b.hi),
        mul_ep(a.hi, b.lo),
        mul_ep(a.hi, b.hi),
    ];
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in c {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

/// `x + y` on interval endpoints: an `inf + (-inf)` pair makes endpoint
/// arithmetic ill-defined (the NaN *value* possibility is tracked by
/// the taint domain), so the indeterminate endpoint degrades to the
/// conservative bound for its side instead of poisoning the interval
/// with a NaN endpoint.
fn add_ep(x: f64, y: f64, conservative: f64) -> f64 {
    let v = x + y;
    if v.is_nan() {
        conservative
    } else {
        v
    }
}

fn a_add(a: &ValueFact, b: &ValueFact, dt: DType) -> ValueFact {
    let nan_cancel = (a.has_pos_inf() && b.has_neg_inf()) || (a.has_neg_inf() && b.has_pos_inf());
    let f = ValueFact {
        lo: add_ep(a.lo, b.lo, f64::NEG_INFINITY),
        hi: add_ep(a.hi, b.hi, f64::INFINITY),
        can_nan: a.can_nan || b.can_nan || nan_cancel,
        can_inf: a.can_inf || b.can_inf,
    };
    let f = if dt == DType::F32 {
        f.widened(REL_EW)
    } else {
        f
    };
    f.finalize(dt)
}

fn a_sub(a: &ValueFact, b: &ValueFact, dt: DType) -> ValueFact {
    let nan_cancel = (a.has_pos_inf() && b.has_pos_inf()) || (a.has_neg_inf() && b.has_neg_inf());
    let f = ValueFact {
        lo: add_ep(a.lo, -b.hi, f64::NEG_INFINITY),
        hi: add_ep(a.hi, -b.lo, f64::INFINITY),
        can_nan: a.can_nan || b.can_nan || nan_cancel,
        can_inf: a.can_inf || b.can_inf,
    };
    let f = if dt == DType::F32 {
        f.widened(REL_EW)
    } else {
        f
    };
    f.finalize(dt)
}

fn a_mul(a: &ValueFact, b: &ValueFact, dt: DType) -> ValueFact {
    let (lo, hi) = mul_hull(a, b);
    let zero_times_inf = (a.can_inf && b.contains_zero()) || (b.can_inf && a.contains_zero());
    let f = ValueFact {
        lo,
        hi,
        can_nan: a.can_nan || b.can_nan || zero_times_inf,
        can_inf: a.can_inf || b.can_inf,
    };
    let f = if dt == DType::F32 {
        f.widened(REL_EW)
    } else {
        f
    };
    f.finalize(dt)
}

fn a_div(a: &ValueFact, b: &ValueFact, dt: DType) -> ValueFact {
    let mut can_nan = a.can_nan || b.can_nan || (a.can_inf && b.can_inf);
    if b.contains_zero() {
        // x/0 = ±inf, 0/0 = NaN (f32); i64 division by zero panics, so
        // any value that *is* produced satisfies the top interval.
        can_nan = can_nan || a.contains_zero() || a.can_nan;
        let f = ValueFact {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            can_nan,
            can_inf: true,
        };
        return f.finalize(dt);
    }
    // 0 ∉ b: the quotient is monotone in each argument on each side.
    // When both operands reach infinite magnitude an inf/inf pair makes
    // endpoint arithmetic ill-defined; degrade to the full interval.
    let unbounded_pair =
        (!a.lo.is_finite() || !a.hi.is_finite()) && (!b.lo.is_finite() || !b.hi.is_finite());
    let (lo, hi) = if unbounded_pair {
        (f64::NEG_INFINITY, f64::INFINITY)
    } else {
        let c = [a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi];
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for v in c {
            if v.is_nan() {
                continue;
            }
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    };
    let mut f = ValueFact {
        lo,
        hi,
        can_nan,
        can_inf: a.can_inf,
    };
    if dt == DType::I64 {
        // Integer division truncates toward zero; trunc is monotone.
        f.lo = f.lo.trunc();
        f.hi = f.hi.trunc();
    }
    let f = if dt == DType::F32 {
        f.widened(REL_EW)
    } else {
        f
    };
    f.finalize(dt)
}

/// Tensor `maximum`: `if b > a { b } else { a }` — a NaN in *either*
/// operand yields `a`'s element.
fn a_maximum(a: &ValueFact, b: &ValueFact) -> ValueFact {
    let mut f = ValueFact {
        lo: a.lo.max(b.lo),
        hi: a.hi.max(b.hi),
        can_nan: a.can_nan,
        can_inf: false,
    };
    if b.can_nan {
        // b NaN selects a's element, which may lie anywhere in a.
        f.lo = f.lo.min(a.lo);
        f.hi = f.hi.max(a.hi);
    }
    // Conservative Inf taint: selection cannot invent infinities.
    f.can_inf = a.can_inf || b.can_inf;
    f
}

/// Tensor `minimum`: `if b < a { b } else { a }`.
fn a_minimum(a: &ValueFact, b: &ValueFact) -> ValueFact {
    let mut f = ValueFact {
        lo: a.lo.min(b.lo),
        hi: a.hi.min(b.hi),
        can_nan: a.can_nan,
        can_inf: a.can_inf || b.can_inf,
    };
    if b.can_nan {
        f.lo = f.lo.min(a.lo);
        f.hi = f.hi.max(a.hi);
    }
    f
}

/// Fused `Max` instruction: `f32::max` launders a single NaN operand.
fn k_max(a: &ValueFact, b: &ValueFact) -> ValueFact {
    let mut f = ValueFact {
        lo: a.lo.max(b.lo),
        hi: a.hi.max(b.hi),
        can_nan: a.can_nan && b.can_nan,
        can_inf: a.can_inf || b.can_inf,
    };
    if a.can_nan {
        f.lo = f.lo.min(b.lo);
        f.hi = f.hi.max(b.hi);
    }
    if b.can_nan {
        f.lo = f.lo.min(a.lo);
        f.hi = f.hi.max(a.hi);
    }
    f
}

/// Fused `Min` instruction: `f32::min`.
fn k_min(a: &ValueFact, b: &ValueFact) -> ValueFact {
    let mut f = ValueFact {
        lo: a.lo.min(b.lo),
        hi: a.hi.min(b.hi),
        can_nan: a.can_nan && b.can_nan,
        can_inf: a.can_inf || b.can_inf,
    };
    if a.can_nan {
        f.lo = f.lo.min(b.lo);
        f.hi = f.hi.max(b.hi);
    }
    if b.can_nan {
        f.lo = f.lo.min(a.lo);
        f.hi = f.hi.max(a.hi);
    }
    f
}

/// Comparison result domain: Bool-valued `[0, 1]`, pinned when the
/// operand intervals decide the predicate for every element pair.
/// NaN compares false on every predicate except `Ne`.
fn a_cmp(op: &Op, a: &ValueFact, b: &ValueFact) -> ValueFact {
    let no_nan = !a.can_nan && !b.can_nan;
    let (always, never) = match op {
        Op::Lt => (no_nan && a.hi < b.lo, a.lo >= b.hi),
        Op::Le => (no_nan && a.hi <= b.lo, a.lo > b.hi),
        Op::Gt => (no_nan && a.lo > b.hi, a.hi <= b.lo),
        Op::Ge => (no_nan && a.lo >= b.hi, a.hi < b.lo),
        Op::EqOp => (
            no_nan && a.pinned_to(a.lo) && b.pinned_to(a.lo),
            a.hi < b.lo || b.hi < a.lo,
        ),
        // NaN != x is true, so `Ne` pins to true under disjointness OR
        // guaranteed NaN; we only exploit disjointness.
        Op::NeOp => (
            a.hi < b.lo || b.hi < a.lo,
            no_nan && a.pinned_to(a.lo) && b.pinned_to(a.lo),
        ),
        _ => (false, false),
    };
    if always {
        ValueFact::point(1.0)
    } else if never {
        ValueFact::point(0.0)
    } else {
        ValueFact::finite(0.0, 1.0)
    }
}

/// `Where(cond, a, b)` over Bool conditions.
fn a_where(cond: &ValueFact, a: &ValueFact, b: &ValueFact) -> ValueFact {
    if cond.lo >= 1.0 {
        *a
    } else if cond.hi <= 0.0 {
        *b
    } else {
        a.join(b)
    }
}

/// Monotone unary f32 map evaluated on both endpoints (in f64) and
/// widened; `exact` skips the rounding slack for correctly-rounded
/// kernels.
fn mono_map(f: &ValueFact, g: impl Fn(f64) -> f64, exact: bool) -> ValueFact {
    let out = ValueFact {
        lo: g(f.lo),
        hi: g(f.hi),
        ..*f
    };
    if exact {
        out
    } else {
        out.widened(REL_EW)
    }
}

fn a_sigmoid(x: &ValueFact) -> ValueFact {
    // f32 sigmoid 1/(1+exp(-x)) pins exactly: at x >= 20, exp(-x) is
    // below half an ulp of 1.0, so the denominator rounds to 1.0 and
    // the quotient is exactly 1.0 (this includes x = +inf). At
    // x <= -90, exp(-x) overflows f32 to +inf and 1/inf is exactly 0.0
    // (including x = -inf).
    if x.lo >= 20.0 {
        return ValueFact {
            lo: 1.0,
            hi: 1.0,
            can_nan: x.can_nan,
            can_inf: false,
        };
    }
    if x.hi <= -90.0 {
        return ValueFact {
            lo: 0.0,
            hi: 0.0,
            can_nan: x.can_nan,
            can_inf: false,
        };
    }
    // Monotone refinement, then intersect with the hard [0, 1] bound —
    // the f32 implementation cannot escape it (denominator >= 1, and a
    // true quotient <= 1 rounds to <= 1).
    let m = mono_map(x, |v| 1.0 / (1.0 + (-v).exp()), false);
    ValueFact {
        lo: m.lo.clamp(0.0, 1.0),
        hi: m.hi.clamp(0.0, 1.0),
        can_nan: x.can_nan,
        can_inf: false,
    }
}

fn a_tanh(x: &ValueFact) -> ValueFact {
    let m = mono_map(x, f64::tanh, false);
    ValueFact {
        lo: m.lo.clamp(-1.0, 1.0),
        hi: m.hi.clamp(-1.0, 1.0),
        can_nan: x.can_nan,
        can_inf: false,
    }
}

fn a_exp(x: &ValueFact) -> ValueFact {
    let m = mono_map(x, f64::exp, false);
    ValueFact {
        lo: m.lo.max(0.0),
        hi: m.hi,
        can_nan: x.can_nan,
        can_inf: false,
    }
    .finalize_f32()
}

fn a_ln(x: &ValueFact) -> ValueFact {
    // ln of a negative is NaN; ln(±0) is -inf.
    let lo = if x.lo <= 0.0 {
        f64::NEG_INFINITY
    } else {
        (x.lo.ln() - REL_EW * x.lo.ln().abs() - ABS_EPS).min(x.lo.ln())
    };
    let hi = if x.hi <= 0.0 {
        f64::NEG_INFINITY
    } else {
        x.hi.ln() + REL_EW * x.hi.ln().abs() + ABS_EPS
    };
    ValueFact {
        lo,
        hi,
        can_nan: x.can_nan || x.lo < 0.0,
        can_inf: x.can_inf || x.contains_zero(),
    }
}

fn a_sqrt(x: &ValueFact) -> ValueFact {
    // IEEE sqrt is correctly rounded, but only relative to its own f32
    // argument: these endpoints are evaluated in f64, and the f32
    // kernel result can land half an ulp below sqrt(lo). Widen like
    // every other elementwise map, keeping the hard >= 0 floor.
    let f = ValueFact {
        lo: x.lo.max(0.0).sqrt(),
        hi: x.hi.max(0.0).sqrt(),
        can_nan: x.can_nan || x.lo < 0.0,
        can_inf: x.can_inf && x.hi == f64::INFINITY,
    }
    .widened(REL_EW);
    ValueFact {
        lo: f.lo.max(0.0),
        ..f
    }
}

fn a_abs(x: &ValueFact) -> ValueFact {
    let (lo, hi) = if x.lo >= 0.0 {
        (x.lo, x.hi)
    } else if x.hi <= 0.0 {
        (-x.hi, -x.lo)
    } else {
        (0.0, x.hi.max(-x.lo))
    };
    ValueFact { lo, hi, ..*x }
}

fn a_neg(x: &ValueFact) -> ValueFact {
    ValueFact {
        lo: -x.hi,
        hi: -x.lo,
        ..*x
    }
}

/// Tensor `relu`: `if x < 0 { 0 } else { x }` — NaN propagates.
fn a_relu_tensor(x: &ValueFact) -> ValueFact {
    ValueFact {
        lo: x.lo.max(0.0),
        hi: x.hi.max(0.0),
        can_nan: x.can_nan,
        can_inf: x.can_inf && x.hi == f64::INFINITY,
    }
}

/// Fused `Relu` instruction: `x.max(0.0)` — NaN is laundered to 0.
fn a_relu_fused(x: &ValueFact) -> ValueFact {
    ValueFact {
        lo: x.lo.max(0.0),
        hi: x.hi.max(0.0).max(0.0),
        can_nan: false,
        can_inf: x.can_inf && x.hi == f64::INFINITY,
    }
}

fn a_clamp(x: &ValueFact, lo: f64, hi: f64) -> ValueFact {
    ValueFact {
        lo: x.lo.clamp(lo, hi),
        hi: x.hi.clamp(lo, hi),
        can_nan: x.can_nan,
        can_inf: x.can_inf && (lo == f64::NEG_INFINITY || hi == f64::INFINITY),
    }
}

fn a_pow(x: &ValueFact, p: f64) -> ValueFact {
    if p == 0.0 {
        // powf(x, 0) == 1 for every x, including NaN and ±inf.
        return ValueFact::point(1.0);
    }
    if p == 1.0 {
        return *x;
    }
    let integral = p.fract() == 0.0;
    let can_nan = x.can_nan || (!integral && x.lo < 0.0);
    let can_inf = x.can_inf || (p < 0.0 && x.contains_zero());
    let ep = |v: f64| v.powf(p);
    let mut cands: Vec<f64> = Vec::new();
    if x.lo >= 0.0 || integral {
        cands.push(ep(x.lo));
        cands.push(ep(x.hi));
    } else {
        // Negative, non-integral exponents: only the x >= 0 part of the
        // domain produces numbers.
        cands.push(ep(0.0));
        if x.hi >= 0.0 {
            cands.push(ep(x.hi));
        }
    }
    if x.contains_zero() {
        cands.push(ep(0.0));
    }
    if integral && x.lo < 0.0 && x.hi > 0.0 {
        // Even powers bottom out at 0 inside the interval.
        cands.push(0.0);
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for c in cands {
        if c.is_nan() {
            continue;
        }
        lo = lo.min(c);
        hi = hi.max(c);
    }
    if lo > hi {
        // All candidates NaN: vacuous interval.
        lo = 0.0;
        hi = 0.0;
    }
    ValueFact {
        lo,
        hi,
        can_nan,
        can_inf,
    }
    .widened(REL_EW)
    .finalize_f32()
}

/// `(kmin, kmax)` bounds on one symbolic axis length. A batch-carrying
/// dim can be 0 (empty batch) and is unbounded above.
fn axis_count(shape: &ShapeFact, axis: usize) -> (usize, Option<usize>) {
    match shape.dims().and_then(|d| d.get(axis)) {
        Some(SymDim::Sym { coeff, pow: 0 }) => (*coeff, Some(*coeff)),
        _ => (0, None),
    }
}

/// Interval of `k · v` for `v ∈ [lo, hi]`, `k ∈ [kmin, kmax]`
/// (`kmax = None` means unbounded).
fn scale_count(f: &ValueFact, kmin: usize, kmax: Option<usize>) -> ValueFact {
    let kmin = kmin as f64;
    let kmax = kmax.map_or(f64::INFINITY, |k| k as f64);
    let c = [
        mul_ep(kmin, f.lo),
        mul_ep(kmin, f.hi),
        mul_ep(kmax, f.lo),
        mul_ep(kmax, f.hi),
    ];
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in c {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    ValueFact { lo, hi, ..*f }
}

/// Sum over an axis of `k ∈ [kmin, kmax]` terms.
fn a_sum(x: &ValueFact, kmin: usize, kmax: Option<usize>, dt: DType) -> ValueFact {
    let mut f = scale_count(x, kmin, kmax);
    // A sum of both-signed infinities is NaN.
    f.can_nan = x.can_nan || (x.has_pos_inf() && x.has_neg_inf());
    f.can_inf = x.can_inf;
    // An empty reduction yields exactly 0.
    if kmin == 0 {
        f.lo = f.lo.min(0.0);
        f.hi = f.hi.max(0.0);
    }
    match (dt, kmax) {
        (DType::F32, Some(k)) => f.widened(REL_EW + k as f64 * REL_PER_TERM).finalize_f32(),
        (DType::F32, None) => {
            // Unbounded reduction length: same-signed fp accumulation
            // stays on its side of zero, so hulling with 0 absorbs any
            // rounding drift without a finite slack term.
            f.lo = f.lo.min(0.0);
            f.hi = f.hi.max(0.0);
            f.finalize_f32()
        }
        (_, _) => f.finalize(dt),
    }
}

fn a_mean(x: &ValueFact, kmin: usize, kmax: Option<usize>, dt: DType) -> ValueFact {
    let s = a_sum(x, kmin, kmax, dt);
    // The concrete kernel divides by max(k, 1).
    let nmin = kmin.max(1) as f64;
    let nmax = kmax.map_or(f64::INFINITY, |k| k.max(1) as f64);
    let c = [s.lo / nmin, s.lo / nmax, s.hi / nmin, s.hi / nmax];
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in c {
        if v.is_nan() {
            continue;
        }
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo > hi {
        lo = 0.0;
        hi = 0.0;
    }
    let f = ValueFact { lo, hi, ..s };
    if dt == DType::F32 {
        f.widened(REL_EW).finalize_f32()
    } else {
        f.finalize(dt)
    }
}

fn a_reduce_max(x: &ValueFact, kmin: usize, dt: DType) -> ValueFact {
    // The fold `if v > acc { v } else { acc }` starts at MIN_VALUE and
    // skips NaN (NaN > acc is false), so the result is never NaN; an
    // empty (or all-NaN) run yields MIN_VALUE — -inf for f32.
    let mut f = ValueFact {
        lo: x.lo,
        hi: x.hi,
        can_nan: false,
        can_inf: x.can_inf,
    };
    if kmin == 0 || x.can_nan {
        match dt {
            DType::F32 => {
                f.lo = f64::NEG_INFINITY;
                f.can_inf = true;
            }
            _ => {
                f = f.join(&ValueFact::point(ValueFact::top(dt).lo));
            }
        }
    }
    f
}

fn a_logsumexp(x: &ValueFact, kmin: usize, kmax: Option<usize>) -> ValueFact {
    // result = m + ln(Σ exp(v - m)) with m the NaN-skipping max: the sum
    // s satisfies 1 <= s <= k (each term <= exp(0) = 1 and the max
    // contributes exactly 1), so lo <= m <= result <= hi + ln(k).
    let mut f = ValueFact {
        lo: x.lo,
        hi: x.hi + kmax.map_or(f64::INFINITY, |k| (k.max(1) as f64).ln()),
        can_nan: x.can_nan || x.can_inf,
        can_inf: x.can_inf,
    };
    if kmin == 0 {
        // Empty run: m = -inf.
        f.lo = f64::NEG_INFINITY;
        f.can_inf = true;
        f.can_nan = true;
    }
    f.widened(REL_EW).finalize_f32()
}

/// Cast between dtypes, mirroring `DynTensor::cast`'s saturating,
/// NaN-laundering `as` conversions.
fn a_cast(x: &ValueFact, from: DType, to: DType) -> ValueFact {
    if from == to {
        return *x;
    }
    match to {
        DType::Bool => {
            // v != 0; NaN is truthy.
            if x.pinned_to(0.0) && !x.can_nan {
                ValueFact::point(0.0)
            } else if x.lo > 0.0 || x.hi < 0.0 {
                ValueFact::point(1.0)
            } else {
                ValueFact::finite(0.0, 1.0)
            }
        }
        DType::I64 => {
            // `as i64` truncates toward zero, saturates, maps NaN to 0.
            let mut lo = x.lo.max(i64::MIN as f64).trunc();
            let mut hi = x.hi.min(i64::MAX as f64).trunc();
            if x.can_nan {
                lo = lo.min(0.0);
                hi = hi.max(0.0);
            }
            ValueFact::finite(lo, hi)
        }
        DType::F32 => {
            // Widening an integer (or bool) into f32 only loses
            // precision, never range; bool is exact.
            let f = ValueFact {
                can_nan: x.can_nan,
                can_inf: x.can_inf,
                ..*x
            };
            if from == DType::Bool || from == DType::U8 {
                f
            } else {
                f.widened(REL_EW)
            }
        }
        DType::U8 => {
            let mut lo = x.lo.clamp(0.0, 255.0).trunc();
            let mut hi = x.hi.clamp(0.0, 255.0).trunc();
            if x.can_nan || x.can_inf || lo > hi {
                lo = 0.0;
                hi = 255.0;
            }
            ValueFact::finite(lo, hi)
        }
    }
}

/// Boolean connective over Bool tensors, with refinement when an operand
/// is pinned.
fn a_bool2(op: &Op, a: &ValueFact, b: &ValueFact) -> ValueFact {
    let t = |f: &ValueFact| f.lo >= 1.0;
    let f_ = |f: &ValueFact| f.hi <= 0.0;
    let pinned = match op {
        Op::And => {
            if f_(a) || f_(b) {
                Some(0.0)
            } else if t(a) && t(b) {
                Some(1.0)
            } else {
                None
            }
        }
        Op::Or => {
            if t(a) || t(b) {
                Some(1.0)
            } else if f_(a) && f_(b) {
                Some(0.0)
            } else {
                None
            }
        }
        Op::Xor => {
            if (t(a) && f_(b)) || (f_(a) && t(b)) {
                Some(1.0)
            } else if (t(a) && t(b)) || (f_(a) && f_(b)) {
                Some(0.0)
            } else {
                None
            }
        }
        _ => None,
    };
    match pinned {
        Some(v) => ValueFact::point(v),
        None => ValueFact::finite(0.0, 1.0),
    }
}

/// The transfer function: the output fact of one op given its input
/// facts, input shape facts, input dtypes, and output dtype. Exhaustive
/// over [`Op`] — adding a variant without extending this match is a
/// compile error.
pub fn transfer(
    op: &Op,
    ins: &[ValueFact],
    in_shapes: &[&ShapeFact],
    in_dtypes: &[DType],
    out_dtype: DType,
) -> ValueFact {
    let i = |k: usize| ins.get(k).copied().unwrap_or(ValueFact::top(DType::F32));
    match op {
        Op::Input(_) => ValueFact::top(out_dtype),
        Op::Const(t) => ValueFact::constant(t),
        Op::MatMul => {
            let (kmin, kmax) = in_shapes
                .first()
                .map(|s| {
                    let rank = s.rank().unwrap_or(0);
                    if rank == 0 {
                        (0, None)
                    } else {
                        axis_count(s, rank - 1)
                    }
                })
                .unwrap_or((0, None));
            let p = a_mul(&i(0), &i(1), DType::F32);
            a_sum(&p, kmin.max(1), kmax, out_dtype)
        }
        Op::Add => a_add(&i(0), &i(1), out_dtype),
        Op::Sub => a_sub(&i(0), &i(1), out_dtype),
        Op::Mul => a_mul(&i(0), &i(1), out_dtype),
        Op::Div => a_div(&i(0), &i(1), out_dtype),
        Op::Minimum => a_minimum(&i(0), &i(1)),
        Op::Maximum => a_maximum(&i(0), &i(1)),
        Op::AddScalar(s) => {
            let c = if out_dtype == DType::I64 {
                (*s as i64) as f64
            } else {
                *s
            };
            a_add(&i(0), &ValueFact::point(c), out_dtype)
        }
        Op::MulScalar(s) => {
            let c = if out_dtype == DType::I64 {
                (*s as i64) as f64
            } else {
                *s
            };
            a_mul(&i(0), &ValueFact::point(c), out_dtype)
        }
        Op::PowScalar(p) => a_pow(&i(0), *p),
        Op::Lt | Op::Le | Op::Gt | Op::Ge | Op::EqOp | Op::NeOp => a_cmp(op, &i(0), &i(1)),
        Op::And | Op::Or | Op::Xor => a_bool2(op, &i(0), &i(1)),
        Op::Not => {
            let a = i(0);
            if a.lo >= 1.0 {
                ValueFact::point(0.0)
            } else if a.hi <= 0.0 {
                ValueFact::point(1.0)
            } else {
                ValueFact::finite(0.0, 1.0)
            }
        }
        Op::Where => a_where(&i(0), &i(1), &i(2)),
        Op::Gather { .. } | Op::GatherRows => i(0),
        Op::IndexSelect { .. } => i(0),
        Op::Concat { .. } => {
            let mut f = i(0);
            for k in 1..ins.len() {
                f = f.join(&i(k));
            }
            f
        }
        Op::Reshape { .. }
        | Op::Unsqueeze(_)
        | Op::Squeeze(_)
        | Op::Transpose(_, _)
        | Op::Slice { .. } => i(0),
        Op::Sum { axis, .. } => {
            let (kmin, kmax) = in_shapes
                .first()
                .map_or((0, None), |s| axis_count(s, *axis));
            a_sum(&i(0), kmin, kmax, out_dtype)
        }
        Op::Mean { axis, .. } => {
            let (kmin, kmax) = in_shapes
                .first()
                .map_or((0, None), |s| axis_count(s, *axis));
            a_mean(&i(0), kmin, kmax, out_dtype)
        }
        Op::ReduceMax { axis, .. } => {
            let (kmin, _) = in_shapes
                .first()
                .map_or((0, None), |s| axis_count(s, *axis));
            a_reduce_max(&i(0), kmin, in_dtypes.first().copied().unwrap_or(out_dtype))
        }
        Op::ArgMax { axis, .. } => {
            let (_, kmax) = in_shapes
                .first()
                .map_or((0, None), |s| axis_count(s, *axis));
            ValueFact::finite(
                0.0,
                kmax.map_or(f64::INFINITY, |k| k.saturating_sub(1) as f64),
            )
        }
        Op::LogSumExp { axis, .. } => {
            let (kmin, kmax) = in_shapes
                .first()
                .map_or((0, None), |s| axis_count(s, *axis));
            a_logsumexp(&i(0), kmin, kmax)
        }
        Op::Softmax { .. } => {
            // Max-stabilized softmax is hard-bounded in [0, 1]: the
            // denominator's partial fp sums dominate every numerator, so
            // each quotient rounds to at most 1.
            let x = i(0);
            ValueFact {
                lo: 0.0,
                hi: 1.0,
                can_nan: x.can_nan || x.can_inf,
                can_inf: false,
            }
        }
        Op::Relu => a_relu_tensor(&i(0)),
        Op::Sigmoid => a_sigmoid(&i(0)),
        Op::Tanh => a_tanh(&i(0)),
        Op::Exp => a_exp(&i(0)),
        Op::Ln => a_ln(&i(0)),
        Op::Sqrt => a_sqrt(&i(0)),
        Op::Abs => a_abs(&i(0)),
        Op::Neg => a_neg(&i(0)),
        Op::IsNan => {
            let x = i(0);
            if x.can_nan {
                ValueFact::finite(0.0, 1.0)
            } else {
                ValueFact::point(0.0)
            }
        }
        Op::Clamp { lo, hi } => a_clamp(&i(0), f64::from(*lo), f64::from(*hi)),
        Op::Cast(to) => a_cast(&i(0), in_dtypes.first().copied().unwrap_or(DType::F32), *to),
        Op::Sqdist => {
            let (dmin, dmax) = in_shapes
                .first()
                .map(|s| {
                    let rank = s.rank().unwrap_or(0);
                    if rank == 0 {
                        (0, None)
                    } else {
                        axis_count(s, rank - 1)
                    }
                })
                .unwrap_or((0, None));
            let d = a_sub(&i(0), &i(1), DType::F32);
            let sq = a_mul(&d, &d, DType::F32);
            // The a²+b²-2ab expansion can round slightly negative, so
            // the lower bound is NOT clamped at 0; widen generously.
            a_sum(&sq, dmin, dmax, DType::F32).widened(REL_EW)
        }
        Op::Fused(k) => transfer_fused(k, ins, in_dtypes),
    }
}

/// Sound fact for a scalar immediate: ±Inf and NaN immediates carry
/// their taint instead of polluting the interval with NaN endpoints.
fn imm_fact(v: f32) -> ValueFact {
    let d = f64::from(v);
    if d.is_nan() {
        ValueFact {
            lo: 0.0,
            hi: 0.0,
            can_nan: true,
            can_inf: false,
        }
    } else {
        ValueFact {
            lo: d,
            hi: d,
            can_nan: false,
            can_inf: d.is_infinite(),
        }
    }
}

/// Abstract transfer for a fused-tier binary operator. Shared by the
/// bytecode stack walker and the LIR walker so translation validation
/// compares like with like.
fn fact_bin(op: lir::BinOp, a: &ValueFact, b: &ValueFact) -> ValueFact {
    use lir::BinOp as B;
    match op {
        B::Add => a_add(a, b, DType::F32),
        B::Sub => a_sub(a, b, DType::F32),
        B::Mul => a_mul(a, b, DType::F32),
        B::Div => a_div(a, b, DType::F32),
        B::Min => k_min(a, b),
        B::Max => k_max(a, b),
        B::Lt => a_cmp(&Op::Lt, a, b),
        B::Le => a_cmp(&Op::Le, a, b),
        B::Gt => a_cmp(&Op::Gt, a, b),
        B::Ge => a_cmp(&Op::Ge, a, b),
        B::Eq => a_cmp(&Op::EqOp, a, b),
        B::Ne => a_cmp(&Op::NeOp, a, b),
        B::And | B::Or | B::Xor => {
            // Truthiness is v != 0.0 and NaN is truthy, so pinning
            // requires NaN-free operands.
            let t = |f: &ValueFact| f.can_nan || !f.contains_zero();
            let known_t = |f: &ValueFact| !f.contains_zero();
            let known_f = |f: &ValueFact| f.pinned_to(0.0) && !f.can_nan;
            let pinned = match op {
                B::And => {
                    if known_f(a) || known_f(b) {
                        Some(0.0)
                    } else if known_t(a) && known_t(b) && t(a) && t(b) {
                        Some(1.0)
                    } else {
                        None
                    }
                }
                B::Or => {
                    if known_t(a) || known_t(b) {
                        Some(1.0)
                    } else if known_f(a) && known_f(b) {
                        Some(0.0)
                    } else {
                        None
                    }
                }
                _ => None,
            };
            match pinned {
                Some(v) => ValueFact::point(v),
                None => ValueFact::finite(0.0, 1.0),
            }
        }
    }
}

/// Abstract transfer for a fused-tier unary operator.
fn fact_un(op: lir::UnOp, a: &ValueFact) -> ValueFact {
    use lir::UnOp as U;
    match op {
        U::Not => {
            // Not = (a == 0.0); NaN == 0 is false, so NaN maps to 0.
            if a.pinned_to(0.0) && !a.can_nan {
                ValueFact::point(1.0)
            } else if !a.contains_zero() {
                ValueFact::point(0.0)
            } else {
                ValueFact::finite(0.0, 1.0)
            }
        }
        U::Relu => a_relu_fused(a),
        U::Sigmoid => a_sigmoid(a),
        U::Tanh => a_tanh(a),
        U::Exp => a_exp(a),
        U::Ln => a_ln(a),
        U::Sqrt => a_sqrt(a),
        U::Abs => a_abs(a),
        U::Neg => a_neg(a),
        U::IsNan => {
            if a.can_nan {
                ValueFact::finite(0.0, 1.0)
            } else {
                ValueFact::point(0.0)
            }
        }
        U::Bool01 => a_cast(a, DType::F32, DType::Bool),
    }
}

/// Abstract transfer for select: `cond != 0` (NaN truthy) picks `a`.
fn fact_select(cond: &ValueFact, a: &ValueFact, b: &ValueFact) -> ValueFact {
    if !cond.contains_zero() {
        *a
    } else if cond.pinned_to(0.0) && !cond.can_nan {
        *b
    } else {
        a.join(b)
    }
}

/// Abstractly interprets fused bytecode over the value domain,
/// returning the fact *pushed by each instruction* in program order
/// (every fused instruction pushes exactly one value). The per-push
/// resolution is what lets translation validation compare against the
/// LIR's per-register facts position by position.
pub(crate) fn transfer_stack(program: &[Instr], loaded: &[ValueFact]) -> Vec<ValueFact> {
    let top = ValueFact::top(DType::F32);
    let mut stack: Vec<ValueFact> = Vec::with_capacity(8);
    let mut pushes: Vec<ValueFact> = Vec::with_capacity(program.len());
    for instr in program {
        let f = if let Some(b) = lir::bin_of(instr) {
            let y = stack.pop().unwrap_or(top);
            let x = stack.pop().unwrap_or(top);
            fact_bin(b, &x, &y)
        } else if let Some(u) = lir::un_of(instr) {
            let x = stack.pop().unwrap_or(top);
            fact_un(u, &x)
        } else {
            match instr {
                Instr::Load(i) => loaded.get(*i).copied().unwrap_or(top),
                Instr::Imm(v) => imm_fact(*v),
                Instr::Select => {
                    let b = stack.pop().unwrap_or(top);
                    let a = stack.pop().unwrap_or(top);
                    let cond = stack.pop().unwrap_or(top);
                    fact_select(&cond, &a, &b)
                }
                Instr::Clamp(lo, hi) => {
                    let a = stack.pop().unwrap_or(top);
                    a_clamp(&a, f64::from(*lo), f64::from(*hi))
                }
                Instr::Pow(p) => {
                    let a = stack.pop().unwrap_or(top);
                    a_pow(&a, f64::from(*p))
                }
                Instr::AddImm(v) => {
                    let a = stack.pop().unwrap_or(top);
                    fact_bin(lir::BinOp::Add, &a, &imm_fact(*v))
                }
                Instr::MulImm(v) => {
                    let a = stack.pop().unwrap_or(top);
                    fact_bin(lir::BinOp::Mul, &a, &imm_fact(*v))
                }
                other => unreachable!("instruction not covered by fused transfer: {other:?}"),
            }
        };
        stack.push(f);
        pushes.push(f);
    }
    pushes
}

/// Abstractly interprets a LIR program over the value domain, returning
/// one fact per virtual register (indexed by destination register).
pub fn transfer_lir(p: &lir::LirProgram, loaded: &[ValueFact]) -> Vec<ValueFact> {
    let top = ValueFact::top(DType::F32);
    let mut facts: Vec<ValueFact> = vec![top; p.instrs.len()];
    for ins in &p.instrs {
        let f = {
            let g = |v: lir::VReg| facts.get(v as usize).copied().unwrap_or(top);
            match &ins.op {
                lir::LirOp::Load(k) => loaded.get(*k).copied().unwrap_or(top),
                lir::LirOp::Imm(v) => imm_fact(*v),
                lir::LirOp::Bin(b, x, y) => fact_bin(*b, &g(*x), &g(*y)),
                lir::LirOp::BinImm(b, x, c) => fact_bin(*b, &g(*x), &imm_fact(*c)),
                lir::LirOp::ImmBin(b, c, x) => fact_bin(*b, &imm_fact(*c), &g(*x)),
                lir::LirOp::Un(u, x) => fact_un(*u, &g(*x)),
                lir::LirOp::Select { cond, a, b } => fact_select(&g(*cond), &g(*a), &g(*b)),
                lir::LirOp::Clamp(x, lo, hi) => a_clamp(&g(*x), f64::from(*lo), f64::from(*hi)),
                lir::LirOp::Pow(x, e) => a_pow(&g(*x), f64::from(*e)),
            }
        };
        facts[ins.dst as usize] = f;
    }
    facts
}

/// Bit-exact fact equality (a plain `==` would make two identically-NaN
/// endpoints compare unequal and fail validation spuriously).
fn fact_bits_eq(a: &ValueFact, b: &ValueFact) -> bool {
    a.lo.to_bits() == b.lo.to_bits()
        && a.hi.to_bits() == b.hi.to_bits()
        && a.can_nan == b.can_nan
        && a.can_inf == b.can_inf
}

/// Translation-validates a bytecode → LIR lowering over the abstract
/// value domain, under two input regimes (unconstrained f32 and a
/// finite window): the *raw* lowering's per-register facts must equal
/// the bytecode's per-push facts position by position (the lowering is
/// 1:1), and the *optimized* program's output fact must refine the
/// bytecode's output fact — the optimizer may sharpen what it proves
/// but can never claim values the bytecode analysis excludes.
///
/// # Errors
///
/// A description of the first divergence found.
pub fn validate_fused_lowering(
    program: &[Instr],
    raw: &lir::LirProgram,
    opt: &lir::LirProgram,
) -> Result<(), String> {
    let top = ValueFact::top(DType::F32);
    let regimes: [Vec<ValueFact>; 2] = [
        vec![top; raw.n_inputs],
        vec![ValueFact::finite(-1e4, 1e4); raw.n_inputs],
    ];
    for (ri, loaded) in regimes.iter().enumerate() {
        let sf = transfer_stack(program, loaded);
        let lf = transfer_lir(raw, loaded);
        if sf.len() != lf.len() {
            return Err(format!(
                "regime {ri}: bytecode pushes {} values but the lowering defines {} registers",
                sf.len(),
                lf.len()
            ));
        }
        for (i, (s, l)) in sf.iter().zip(lf.iter()).enumerate() {
            if !fact_bits_eq(s, l) {
                return Err(format!(
                    "regime {ri}: value facts diverge at instruction {i}: bytecode {s:?} vs LIR {l:?}"
                ));
            }
        }
        let stack_out = sf.last().copied().unwrap_or(top);
        let of = transfer_lir(opt, loaded);
        let opt_out = of.get(opt.out as usize).copied().unwrap_or(top);
        if !opt_out.refines(&stack_out) {
            return Err(format!(
                "regime {ri}: optimized LIR output fact {opt_out:?} does not refine bytecode fact {stack_out:?}"
            ));
        }
    }
    Ok(())
}

/// Abstractly interprets a fused kernel's bytecode over the value
/// domain: a stack machine over [`ValueFact`]s mirroring the concrete
/// f32 evaluator (inputs are loaded *as f32*, the result is cast to the
/// kernel's output dtype).
pub fn transfer_fused(k: &FusedKernel, ins: &[ValueFact], in_dtypes: &[DType]) -> ValueFact {
    let loaded: Vec<ValueFact> = ins
        .iter()
        .enumerate()
        .map(|(idx, f)| {
            let from = in_dtypes.get(idx).copied().unwrap_or(DType::F32);
            a_cast(f, from, DType::F32)
        })
        .collect();
    let facts = transfer_stack(k.program(), &loaded);
    let result = facts.last().copied().unwrap_or(ValueFact::top(DType::F32));
    a_cast(&result, DType::F32, k.out_dtype)
}

impl Graph {
    /// Runs the abstract interpretation: one [`ValueFact`] per node.
    ///
    /// `input_facts` declares what the caller knows about each graph
    /// input slot; missing slots default to the dtype top (all
    /// representable values, NaN and Inf included). Declared facts are
    /// intersected with the dtype's representable range, so an
    /// over-promise cannot make the analysis unsound by construction —
    /// soundness is then conditional on inputs actually satisfying the
    /// declared facts.
    ///
    /// # Errors
    ///
    /// Propagates structural errors from shape inference; a graph that
    /// passes [`Graph::verify`] never fails here.
    pub fn infer_values(&self, input_facts: &[ValueFact]) -> Result<Vec<ValueFact>, GraphError> {
        let shapes = self.infer_shapes()?;
        let dtypes = self.infer_dtypes();
        let mut facts: Vec<ValueFact> = Vec::with_capacity(self.nodes.len());
        for (id, node) in self.nodes.iter().enumerate() {
            let f = match &node.op {
                Op::Input(slot) => input_facts
                    .get(*slot)
                    .copied()
                    .unwrap_or(ValueFact::top(dtypes[id]))
                    .meet_dtype(dtypes[id]),
                Op::Const(t) => ValueFact::constant(t),
                op => {
                    let ins: Vec<ValueFact> = node.inputs.iter().map(|&i| facts[i]).collect();
                    let in_shapes: Vec<&ShapeFact> =
                        node.inputs.iter().map(|&i| &shapes[i]).collect();
                    let in_dtypes: Vec<DType> = node.inputs.iter().map(|&i| dtypes[i]).collect();
                    let mut f = transfer(op, &ins, &in_shapes, &in_dtypes, dtypes[id]);
                    // White-box refinement for the imputer idiom
                    // `Where(IsNan(x), fill, x)`: the NaN branch is never
                    // selected when x is NaN-free at that element, so the
                    // result inherits only `fill`'s NaN taint.
                    if matches!(op, Op::Where) && node.inputs.len() == 3 {
                        let (c, a, b) = (node.inputs[0], node.inputs[1], node.inputs[2]);
                        if matches!(self.nodes[c].op, Op::IsNan)
                            && self.nodes[c].inputs.first() == Some(&b)
                        {
                            f.can_nan = facts[a].can_nan;
                        }
                    }
                    f
                }
            };
            facts.push(f);
        }
        Ok(facts)
    }

    /// The facts of the graph's outputs under `input_facts` (see
    /// [`Graph::infer_values`]), in output order.
    ///
    /// # Errors
    ///
    /// Propagates structural errors from shape inference.
    pub fn output_value_facts(
        &self,
        input_facts: &[ValueFact],
    ) -> Result<Vec<ValueFact>, GraphError> {
        let facts = self.infer_values(input_facts)?;
        Ok(self.outputs.iter().map(|&o| facts[o]).collect())
    }

    /// Input facts asserting every f32 input element is a finite f32
    /// (the serving layer's admission precondition: requests carrying
    /// NaN/Inf are exempt from output corruption checks anyway).
    pub fn finite_input_facts(&self) -> Vec<ValueFact> {
        self.input_dtypes
            .iter()
            .map(|&dt| match dt {
                DType::F32 => ValueFact::finite(-f64::from(f32::MAX), f64::from(f32::MAX)),
                other => ValueFact::top(other),
            })
            .collect()
    }
}

/// Convenience: dtype-top facts for every input slot (what the
/// optimizer uses — rewrites must hold for *all* inputs).
pub fn top_input_facts(graph: &Graph) -> Vec<ValueFact> {
    graph
        .input_dtypes
        .iter()
        .map(|&dt| ValueFact::top(dt))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_tensor::Tensor;

    fn top() -> ValueFact {
        ValueFact::top(DType::F32)
    }

    #[test]
    fn constant_scan_is_tight() {
        let t = DynTensor::F32(Tensor::from_vec(vec![1.0, -2.5, 3.0, f32::NAN], &[4]));
        let f = ValueFact::constant(&t);
        assert_eq!(f.lo, -2.5);
        assert_eq!(f.hi, 3.0);
        assert!(f.can_nan);
        assert!(!f.can_inf);
    }

    #[test]
    fn sigmoid_is_hard_bounded_and_pins() {
        let f = a_sigmoid(&top());
        assert!(f.within(0.0, 1.0));
        assert!(!f.can_inf);
        let hi = a_sigmoid(&ValueFact::finite(25.0, 100.0));
        assert!(hi.pinned_to(1.0));
        let lo = a_sigmoid(&ValueFact::finite(-200.0, -95.0));
        assert!(lo.pinned_to(0.0));
    }

    #[test]
    fn maximum_keeps_a_nan_taint_only() {
        let a = ValueFact {
            can_nan: false,
            ..ValueFact::finite(5.0, 9.0)
        };
        let b = ValueFact {
            can_nan: true,
            ..ValueFact::finite(0.0, 1.0)
        };
        let f = a_maximum(&a, &b);
        assert!(!f.can_nan, "tensor maximum returns a when b is NaN");
        let g = a_maximum(&b, &a);
        assert!(g.can_nan, "a NaN in the first operand propagates");
    }

    #[test]
    fn fused_relu_launders_nan() {
        let x = ValueFact {
            can_nan: true,
            ..ValueFact::finite(-3.0, 4.0)
        };
        let f = a_relu_fused(&x);
        assert!(!f.can_nan);
        assert!(f.within(0.0, 4.0 + 1.0));
        let t = a_relu_tensor(&x);
        assert!(t.can_nan, "tensor relu propagates NaN");
    }

    #[test]
    fn div_by_interval_containing_zero_taints() {
        let f = a_div(
            &ValueFact::finite(1.0, 2.0),
            &ValueFact::finite(-1.0, 1.0),
            DType::F32,
        );
        assert!(f.can_inf);
        let g = a_div(
            &ValueFact::finite(0.0, 2.0),
            &ValueFact::finite(-1.0, 1.0),
            DType::F32,
        );
        assert!(g.can_nan, "0/0 is NaN");
    }

    #[test]
    fn overflow_finalizes_to_inf() {
        let big = ValueFact::finite(0.0, 3.0e38);
        let f = a_add(&big, &big, DType::F32);
        assert!(f.can_inf);
        assert_eq!(f.hi, f64::INFINITY);
    }
}
