//! Codegen stage 2: compiles whole verified LIR programs onto
//! pre-instantiated, monomorphized kernel classes instead of the
//! generic register VM.
//!
//! The peephole [`super::vm::LirForm`] tier only recognizes programs
//! that reduce to a *single* scalar map. Real fused clusters are small
//! multi-op programs — `1 - p` lowers to two immediate stages,
//! `sigmoid(x + b)` to an immediate add feeding a unary, and tree
//! ensembles produce compare+select clusters — and all of those fell
//! back to the interpreted VM, which runs one vectorized pass *per
//! instruction* over block buffers (with a destination-buffer move and
//! a final result copy).
//!
//! This module closes that gap with a pattern compiler: it maps a
//! verified, optimized, register-allocated program onto a
//! [`KernelClass`] — a closed set of fused scalar shapes whose inner
//! loops are written out monomorphically, make exactly one pass over
//! the data, and keep every intermediate in a register. The register VM
//! remains the universal fallback, and the legacy stack interpreter the
//! reference rung, so the dispatch ladder is codegen → LIR-VM → stack.
//!
//! Bit-identity discipline: every class computes through the *same*
//! scalar functions the VM uses ([`bin_scalar`]/[`un_scalar`]), in the
//! same program order, with intermediates that the VM would also round
//! to f32 (every LIR value is f32). The differential suite in
//! `tests/codegen.rs` holds all three rungs to `to_bits` equality over
//! randomized programs seeded with NaN/±Inf/-0.0.

use super::opt::{LirExec, Loc};
use super::vm::{bin_scalar, un_scalar};
use super::{LirInstr, LirOp, LirProgram, UnOp, VReg};

/// One scalar stage applied to a running value: the three-address forms
/// whose single variable operand is the previous stage's result. The
/// immediate rides in the stage, so a chain of stages is a fused scalar
/// pipeline with no intermediate buffers.
#[derive(Clone, Copy, Debug)]
pub enum Stage {
    /// `v = f(v, c)`.
    BinImm(fn(f32, f32) -> f32, f32),
    /// `v = f(c, v)`.
    ImmBin(fn(f32, f32) -> f32, f32),
    /// `v = f(v)`.
    Un(fn(f32) -> f32),
    /// `v = v.clamp(lo, hi)`.
    Clamp(f32, f32),
    /// `v = v.powf(e)`.
    Pow(f32),
}

impl Stage {
    /// Applies the stage to one scalar. `#[inline(always)]` so the
    /// class loops compile to straight-line code — the stage value is
    /// loop-invariant and the match folds into the instantiated loop.
    #[inline(always)]
    fn apply(self, v: f32) -> f32 {
        match self {
            Stage::BinImm(f, c) => f(v, c),
            Stage::ImmBin(f, c) => f(c, v),
            Stage::Un(f) => f(v),
            Stage::Clamp(lo, hi) => v.clamp(lo, hi),
            Stage::Pow(e) => v.powf(e),
        }
    }

    /// Recognizes an op as a stage over operand `prev`.
    fn of(op: &LirOp, prev: VReg) -> Option<Stage> {
        match op {
            LirOp::BinImm(b, a, c) if *a == prev => Some(Stage::BinImm(bin_scalar(*b), *c)),
            LirOp::ImmBin(b, c, a) if *a == prev => Some(Stage::ImmBin(bin_scalar(*b), *c)),
            LirOp::Un(u, a) if *a == prev => Some(Stage::Un(un_scalar(*u))),
            LirOp::Clamp(a, lo, hi) if *a == prev => Some(Stage::Clamp(*lo, *hi)),
            LirOp::Pow(a, e) if *a == prev => Some(Stage::Pow(*e)),
            _ => None,
        }
    }
}

/// A select operand: a direct input read or a constant (constants feed
/// `Select` as prefilled registers, so the defining `Imm` is visible).
#[derive(Clone, Copy, Debug)]
pub enum Src {
    /// Input slot.
    In(usize),
    /// Immediate value.
    Imm(f32),
}

impl Src {
    #[inline(always)]
    fn get(self, vals: &[Vec<f32>], j: usize) -> f32 {
        match self {
            Src::In(k) => vals[k][j],
            Src::Imm(c) => c,
        }
    }
}

/// A select condition: a direct input or a single comparison over
/// direct inputs / immediates.
#[derive(Clone, Copy, Debug)]
pub enum Cond {
    /// Condition read straight from an input slot.
    In(usize),
    /// `f(in_x, in_y)`.
    Bin(fn(f32, f32) -> f32, usize, usize),
    /// `f(in_x, c)`.
    BinImm(fn(f32, f32) -> f32, usize, f32),
    /// `f(c, in_x)`.
    ImmBin(fn(f32, f32) -> f32, f32, usize),
}

impl Cond {
    #[inline(always)]
    fn eval(self, vals: &[Vec<f32>], j: usize) -> f32 {
        match self {
            Cond::In(k) => vals[k][j],
            Cond::Bin(f, x, y) => f(vals[x][j], vals[y][j]),
            Cond::BinImm(f, x, c) => f(vals[x][j], c),
            Cond::ImmBin(f, c, x) => f(c, vals[x][j]),
        }
    }
}

/// A monomorphized kernel class: one fused scalar shape covering a
/// whole LIR program. Detection runs once at kernel construction on the
/// verified + optimized + allocated program, so a class that exists has
/// already passed every LIR gate.
#[derive(Clone, Copy, Debug, Default)]
pub enum KernelClass {
    /// No class matched; run the register VM.
    #[default]
    None,
    /// `out = s2(s1(in_a))` — e.g. `1 - p` (`*(-1)` then `+1`) and
    /// `sigmoid(x + b)`, the two hot tree-ensemble heads.
    Chain2 {
        /// Input slot.
        a: usize,
        /// First stage.
        s1: Stage,
        /// Second stage.
        s2: Stage,
    },
    /// `out = s3(s2(s1(in_a)))` — e.g. `sigmoid(x * s + b)`.
    Chain3 {
        /// Input slot.
        a: usize,
        /// First stage.
        s1: Stage,
        /// Second stage.
        s2: Stage,
        /// Third stage.
        s3: Stage,
    },
    /// `out = s(f(in_a, in_b))` — a binary root feeding one stage,
    /// e.g. `relu(a - b)` or `(a < b) * c`.
    Bin2Then {
        /// Left input slot.
        a: usize,
        /// Right input slot.
        b: usize,
        /// Binary function.
        f: fn(f32, f32) -> f32,
        /// Post-stage.
        s: Stage,
    },
    /// `out = f2(f1(in_a, in_b), c)` (or mirrored when the feeder is
    /// the root's right operand) — two chained binaries over three
    /// direct/constant sources, e.g. the forest featurizer's scaling
    /// kernel `(x - lo) * scale`.
    Bin3 {
        /// Left input slot of the feeder binary.
        a: usize,
        /// Right input slot of the feeder binary.
        b: usize,
        /// Feeder binary function.
        f1: fn(f32, f32) -> f32,
        /// The root binary's other operand.
        c: Src,
        /// Root binary function.
        f2: fn(f32, f32) -> f32,
        /// True when the feeder result is the root binary's left
        /// operand.
        feeder_left: bool,
    },
    /// [`KernelClass::Bin3`] feeding one stage — e.g. the end-to-end
    /// featurizer's binarizer head `((x - lo) * scale) > t`.
    Bin3Then {
        /// Left input slot of the feeder binary.
        a: usize,
        /// Right input slot of the feeder binary.
        b: usize,
        /// Feeder binary function.
        f1: fn(f32, f32) -> f32,
        /// The mid binary's other operand.
        c: Src,
        /// Mid binary function.
        f2: fn(f32, f32) -> f32,
        /// True when the feeder result is the mid binary's left
        /// operand.
        feeder_left: bool,
        /// Post-stage.
        s: Stage,
    },
    /// `out = cond != 0 ? t : e` with the condition a direct input or a
    /// single comparison — the tree-traversal compare+select cluster.
    Select {
        /// The condition.
        cond: Cond,
        /// Taken when the condition is truthy.
        t: Src,
        /// Taken when the condition is exactly 0.0.
        e: Src,
    },
    /// `out = isnan(x) ? x : clamp(x, lo, hi)` — the NaN-preserving
    /// sanitize head.
    SanitizeClamp {
        /// Input slot.
        a: usize,
        /// Lower bound.
        lo: f32,
        /// Upper bound.
        hi: f32,
    },
}

impl KernelClass {
    /// True when no class was recognized.
    pub fn is_none(&self) -> bool {
        matches!(self, KernelClass::None)
    }

    /// Short label for cert/lint/bench reporting.
    pub fn label(&self) -> &'static str {
        match self {
            KernelClass::None => "vm",
            KernelClass::Chain2 { .. } => "chain2",
            KernelClass::Chain3 { .. } => "chain3",
            KernelClass::Bin2Then { .. } => "bin2-then",
            KernelClass::Bin3 { .. } => "bin3",
            KernelClass::Bin3Then { .. } => "bin3-then",
            KernelClass::Select {
                cond: Cond::In(_), ..
            } => "select",
            KernelClass::Select { .. } => "cmp-select",
            KernelClass::SanitizeClamp { .. } => "sanitize-clamp",
        }
    }

    /// Runs the class over one gathered block (`vals[k][..len]` per
    /// input slot), writing `out[..len]`. One pass, no intermediate
    /// buffers — the monomorphized replacement for `vm::run_block`.
    pub fn run_block(&self, vals: &[Vec<f32>], len: usize, out: &mut [f32]) {
        match *self {
            KernelClass::None => unreachable!("caller dispatches None to the register VM"),
            KernelClass::Chain2 { a, s1, s2 } => {
                for (o, &x) in out[..len].iter_mut().zip(&vals[a][..len]) {
                    *o = s2.apply(s1.apply(x));
                }
            }
            KernelClass::Chain3 { a, s1, s2, s3 } => {
                for (o, &x) in out[..len].iter_mut().zip(&vals[a][..len]) {
                    *o = s3.apply(s2.apply(s1.apply(x)));
                }
            }
            KernelClass::Bin2Then { a, b, f, s } => {
                for (j, o) in out[..len].iter_mut().enumerate() {
                    *o = s.apply(f(vals[a][j], vals[b][j]));
                }
            }
            KernelClass::Bin3 {
                a,
                b,
                f1,
                c,
                f2,
                feeder_left,
            } => {
                for (j, o) in out[..len].iter_mut().enumerate() {
                    let t = f1(vals[a][j], vals[b][j]);
                    let cv = c.get(vals, j);
                    *o = if feeder_left { f2(t, cv) } else { f2(cv, t) };
                }
            }
            KernelClass::Bin3Then {
                a,
                b,
                f1,
                c,
                f2,
                feeder_left,
                s,
            } => {
                for (j, o) in out[..len].iter_mut().enumerate() {
                    let t = f1(vals[a][j], vals[b][j]);
                    let cv = c.get(vals, j);
                    *o = s.apply(if feeder_left { f2(t, cv) } else { f2(cv, t) });
                }
            }
            KernelClass::Select { cond, t, e } => {
                for (j, o) in out[..len].iter_mut().enumerate() {
                    *o = if cond.eval(vals, j) != 0.0 {
                        t.get(vals, j)
                    } else {
                        e.get(vals, j)
                    };
                }
            }
            KernelClass::SanitizeClamp { a, lo, hi } => {
                for (o, &x) in out[..len].iter_mut().zip(&vals[a][..len]) {
                    *o = if x.is_nan() { x } else { x.clamp(lo, hi) };
                }
            }
        }
    }

    /// Runs the class over one output row with strided input reads —
    /// the row-loop fast path that skips block gathering entirely.
    ///
    /// `aliased` names an input slot whose values live in `orow` itself
    /// (the in-place path): reads of that slot come from the row before
    /// each element is overwritten, exactly like the peephole forms'
    /// in-place arms, so in-place results stay bit-identical to the
    /// allocating path.
    pub fn run_row(
        &self,
        aliased: Option<usize>,
        slices: &[&[f32]],
        bases: &[isize],
        inner_strides: &[usize],
        orow: &mut [f32],
    ) {
        // Reads slot `k` at row position `j`; `cur` is the row's value
        // at `j` before this element is written.
        let rd = |k: usize, j: usize, cur: f32| -> f32 {
            if aliased == Some(k) {
                cur
            } else {
                slices[k][bases[k] as usize + j * inner_strides[k]]
            }
        };
        match *self {
            KernelClass::None => unreachable!("caller dispatches None to the register VM"),
            KernelClass::Chain2 { a, s1, s2 } => {
                for (j, o) in orow.iter_mut().enumerate() {
                    let x = rd(a, j, *o);
                    *o = s2.apply(s1.apply(x));
                }
            }
            KernelClass::Chain3 { a, s1, s2, s3 } => {
                for (j, o) in orow.iter_mut().enumerate() {
                    let x = rd(a, j, *o);
                    *o = s3.apply(s2.apply(s1.apply(x)));
                }
            }
            KernelClass::Bin2Then { a, b, f, s } => {
                for (j, o) in orow.iter_mut().enumerate() {
                    let (x, y) = (rd(a, j, *o), rd(b, j, *o));
                    *o = s.apply(f(x, y));
                }
            }
            KernelClass::Bin3 {
                a,
                b,
                f1,
                c,
                f2,
                feeder_left,
            } => {
                for (j, o) in orow.iter_mut().enumerate() {
                    let cur = *o;
                    let t = f1(rd(a, j, cur), rd(b, j, cur));
                    let cv = match c {
                        Src::In(k) => rd(k, j, cur),
                        Src::Imm(v) => v,
                    };
                    *o = if feeder_left { f2(t, cv) } else { f2(cv, t) };
                }
            }
            KernelClass::Bin3Then {
                a,
                b,
                f1,
                c,
                f2,
                feeder_left,
                s,
            } => {
                for (j, o) in orow.iter_mut().enumerate() {
                    let cur = *o;
                    let t = f1(rd(a, j, cur), rd(b, j, cur));
                    let cv = match c {
                        Src::In(k) => rd(k, j, cur),
                        Src::Imm(v) => v,
                    };
                    *o = s.apply(if feeder_left { f2(t, cv) } else { f2(cv, t) });
                }
            }
            KernelClass::Select { cond, t, e } => {
                let cnd = |j: usize, cur: f32| -> f32 {
                    match cond {
                        Cond::In(k) => rd(k, j, cur),
                        Cond::Bin(f, x, y) => f(rd(x, j, cur), rd(y, j, cur)),
                        Cond::BinImm(f, x, c) => f(rd(x, j, cur), c),
                        Cond::ImmBin(f, c, x) => f(c, rd(x, j, cur)),
                    }
                };
                let arm = |s: Src, j: usize, cur: f32| -> f32 {
                    match s {
                        Src::In(k) => rd(k, j, cur),
                        Src::Imm(c) => c,
                    }
                };
                for (j, o) in orow.iter_mut().enumerate() {
                    let cur = *o;
                    *o = if cnd(j, cur) != 0.0 {
                        arm(t, j, cur)
                    } else {
                        arm(e, j, cur)
                    };
                }
            }
            KernelClass::SanitizeClamp { a, lo, hi } => {
                for (j, o) in orow.iter_mut().enumerate() {
                    let x = rd(a, j, *o);
                    *o = if x.is_nan() { x } else { x.clamp(lo, hi) };
                }
            }
        }
    }
}

/// Looks up the instruction defining virtual register `v`.
fn def(p: &LirProgram, v: VReg) -> Option<&LirInstr> {
    p.instrs.iter().find(|i| i.dst == v)
}

/// Input slot of `v` if the allocator placed it as a direct input read.
fn slot(e: &LirExec, v: VReg) -> Option<usize> {
    match e.loc[v as usize] {
        Loc::In(k) => Some(k as usize),
        Loc::Reg(_) => None,
    }
}

/// Resolves `v` as a select operand: direct input or constant.
fn src_of(p: &LirProgram, e: &LirExec, v: VReg) -> Option<Src> {
    if let Some(k) = slot(e, v) {
        return Some(Src::In(k));
    }
    match def(p, v).map(|i| &i.op) {
        Some(LirOp::Imm(c)) => Some(Src::Imm(*c)),
        _ => None,
    }
}

/// Resolves `v` as a select condition: direct input or one comparison
/// (any binary op — truthiness, not just predicates, matches the VM's
/// `!= 0.0` test) over direct inputs and immediates.
fn cond_of(p: &LirProgram, e: &LirExec, v: VReg) -> Option<Cond> {
    if let Some(k) = slot(e, v) {
        return Some(Cond::In(k));
    }
    match def(p, v).map(|i| &i.op) {
        Some(LirOp::Bin(b, x, y)) => match (slot(e, *x), slot(e, *y)) {
            (Some(x), Some(y)) => Some(Cond::Bin(bin_scalar(*b), x, y)),
            _ => None,
        },
        Some(LirOp::BinImm(b, x, c)) => slot(e, *x).map(|x| Cond::BinImm(bin_scalar(*b), x, *c)),
        Some(LirOp::ImmBin(b, c, x)) => slot(e, *x).map(|x| Cond::ImmBin(bin_scalar(*b), *c, x)),
        _ => None,
    }
}

/// Compiles a verified+allocated program onto a [`KernelClass`], or
/// [`KernelClass::None`] when no monomorphized shape covers it (the
/// register VM then runs it). Runs after [`super::vm::detect_form`]:
/// single-compute programs a peephole form already covers stay with the
/// form, so this matcher focuses on the multi-op shapes.
pub fn detect_class(p: &LirProgram, e: &LirExec) -> KernelClass {
    let Some(root) = def(p, p.out) else {
        return KernelClass::None;
    };
    let computes: Vec<&LirInstr> = p
        .instrs
        .iter()
        .filter(|i| !matches!(i.op, LirOp::Load(_) | LirOp::Imm(_)))
        .collect();

    // Select with a direct/constant condition and operands: the one
    // single-compute shape the peephole tier has no form for.
    if let LirOp::Select { cond, a, b } = &root.op {
        let cluster_ok = match computes.len() {
            1 => true,
            // Allow exactly one feeder: the condition's comparison.
            2 => computes
                .iter()
                .any(|i| i.dst == *cond && !std::ptr::eq(*i, root)),
            _ => false,
        };
        if cluster_ok {
            if let (Some(cond), Some(t), Some(e2)) =
                (cond_of(p, e, *cond), src_of(p, e, *a), src_of(p, e, *b))
            {
                return KernelClass::Select { cond, t, e: e2 };
            }
        }
        // The NaN-preserving sanitize cluster:
        // `select(isnan(x), x, clamp(x, lo, hi))`.
        if computes.len() == 3 {
            if let (Some(LirOp::Un(UnOp::IsNan, cx)), Some(xa), Some(LirOp::Clamp(ca, lo, hi))) = (
                def(p, *cond).map(|i| &i.op),
                slot(e, *a),
                def(p, *b).map(|i| &i.op),
            ) {
                if slot(e, *cx) == Some(xa) && slot(e, *ca) == Some(xa) {
                    return KernelClass::SanitizeClamp {
                        a: xa,
                        lo: *lo,
                        hi: *hi,
                    };
                }
            }
        }
        return KernelClass::None;
    }

    // Stage chains and binary-rooted stages: walk back from the root
    // through single-operand stages to the value that starts the chain.
    match computes.len() {
        2 => {
            let feeder = computes.iter().find(|i| !std::ptr::eq(**i, root));
            let Some(feeder) = feeder else {
                return KernelClass::None;
            };
            // Two chained binaries over three sources: the root is a
            // full binary (not a stage) whose other operand is a direct
            // read or constant.
            if let (LirOp::Bin(b2, x, y), LirOp::Bin(b1, fa, fb)) = (&root.op, &feeder.op) {
                if let (Some(sa), Some(sb)) = (slot(e, *fa), slot(e, *fb)) {
                    let fed = if *x == feeder.dst {
                        Some((*y, true))
                    } else if *y == feeder.dst {
                        Some((*x, false))
                    } else {
                        None
                    };
                    if let Some((other, feeder_left)) = fed {
                        if let Some(c) = src_of(p, e, other) {
                            return KernelClass::Bin3 {
                                a: sa,
                                b: sb,
                                f1: bin_scalar(*b1),
                                c,
                                f2: bin_scalar(*b2),
                                feeder_left,
                            };
                        }
                    }
                }
            }
            let Some(s2) = Stage::of(&root.op, feeder.dst) else {
                return KernelClass::None;
            };
            // Chain over one input: feeder is itself a stage over a
            // direct read.
            if let Some(&a) = feeder.op.operands().first() {
                if let (Some(slot_a), Some(s1)) = (slot(e, a), Stage::of(&feeder.op, a)) {
                    return KernelClass::Chain2 { a: slot_a, s1, s2 };
                }
            }
            // Binary feeder over two direct reads.
            if let LirOp::Bin(b, x, y) = &feeder.op {
                if let (Some(x), Some(y)) = (slot(e, *x), slot(e, *y)) {
                    return KernelClass::Bin2Then {
                        a: x,
                        b: y,
                        f: bin_scalar(*b),
                        s: s2,
                    };
                }
            }
            KernelClass::None
        }
        3 => {
            // The root must be a stage over a computed mid value; the
            // shape below it decides the class.
            let mid = computes
                .iter()
                .find(|i| root.op.operands().contains(&i.dst));
            let Some(mid) = mid else {
                return KernelClass::None;
            };
            let Some(s_last) = Stage::of(&root.op, mid.dst) else {
                return KernelClass::None;
            };
            let first = computes
                .iter()
                .find(|i| mid.op.operands().contains(&i.dst) && !std::ptr::eq(**i, root));
            let Some(first) = first else {
                return KernelClass::None;
            };
            // Stage over two chained binaries: the binarizer heads,
            // e.g. `((x - lo) * scale) > t`.
            if let (LirOp::Bin(b2, x, y), LirOp::Bin(b1, fa, fb)) = (&mid.op, &first.op) {
                if let (Some(sa), Some(sb)) = (slot(e, *fa), slot(e, *fb)) {
                    let fed = if *x == first.dst {
                        Some((*y, true))
                    } else if *y == first.dst {
                        Some((*x, false))
                    } else {
                        None
                    };
                    if let Some((other, feeder_left)) = fed {
                        if let Some(c) = src_of(p, e, other) {
                            return KernelClass::Bin3Then {
                                a: sa,
                                b: sb,
                                f1: bin_scalar(*b1),
                                c,
                                f2: bin_scalar(*b2),
                                feeder_left,
                                s: s_last,
                            };
                        }
                    }
                }
            }
            // Three-stage chain over one input.
            let Some(s2) = Stage::of(&mid.op, first.dst) else {
                return KernelClass::None;
            };
            let Some(&a) = first.op.operands().first() else {
                return KernelClass::None;
            };
            match (slot(e, a), Stage::of(&first.op, a)) {
                (Some(slot_a), Some(s1)) => KernelClass::Chain3 {
                    a: slot_a,
                    s1,
                    s2,
                    s3: s_last,
                },
                _ => KernelClass::None,
            }
        }
        _ => KernelClass::None,
    }
}

#[cfg(test)]
mod tests {
    use super::super::opt::{allocate, optimize, verify_alloc};
    use super::super::vm::{detect_form, run_block};
    use super::*;
    use crate::fuse::Instr;
    use hb_tensor::DType;

    fn build(prog: &[Instr], n_inputs: usize) -> (LirProgram, LirExec) {
        let p =
            LirProgram::lower(prog, n_inputs, DType::F32).unwrap_or_else(|e| panic!("lower: {e}"));
        p.verify().unwrap_or_else(|e| panic!("verify: {e}"));
        let (q, _) = optimize(&p);
        q.verify()
            .unwrap_or_else(|e| panic!("post-opt verify: {e}"));
        let e = allocate(&q).unwrap_or_else(|e| panic!("allocate: {e}"));
        verify_alloc(&q, &e).unwrap_or_else(|er| panic!("verify_alloc: {er}"));
        (q, e)
    }

    /// Asserts class-vs-VM bit identity over adversarial values.
    fn assert_class_matches_vm(prog: &[Instr], n_inputs: usize, expect: &str) {
        let (p, e) = build(prog, n_inputs);
        let class = detect_class(&p, &e);
        assert_eq!(class.label(), expect, "class for {prog:?}");
        if class.is_none() {
            return;
        }
        let specials = [
            1.0,
            -1.0,
            0.0,
            -0.0,
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            0.5,
        ];
        let len = specials.len();
        let vals: Vec<Vec<f32>> = (0..n_inputs)
            .map(|k| (0..len).map(|j| specials[(j + k) % len]).collect())
            .collect();
        let mut regs: Vec<Vec<f32>> = vec![vec![0.0; len]; e.n_regs.max(1)];
        let mut vm_out = vec![0.0f32; len];
        run_block(&p, &e, &vals, &mut regs, len, &mut vm_out);
        let mut class_out = vec![0.0f32; len];
        class.run_block(&vals, len, &mut class_out);
        for j in 0..len {
            assert_eq!(
                class_out[j].to_bits(),
                vm_out[j].to_bits(),
                "class {expect} diverged from VM at {j}: {} vs {}",
                class_out[j],
                vm_out[j]
            );
        }
        // Row runner against the block runner (contiguous rows).
        let slices: Vec<&[f32]> = vals.iter().map(|v| v.as_slice()).collect();
        let bases = vec![0isize; n_inputs];
        let strides = vec![1usize; n_inputs];
        let mut row_out = vec![0.0f32; len];
        class.run_row(None, &slices, &bases, &strides, &mut row_out);
        for j in 0..len {
            assert_eq!(
                row_out[j].to_bits(),
                vm_out[j].to_bits(),
                "row runner at {j}"
            );
        }
    }

    #[test]
    fn chain2_covers_the_complement_head() {
        // 1 - p as the fuser emits it: p * -1 + 1.
        assert_class_matches_vm(
            &[Instr::Load(0), Instr::MulImm(-1.0), Instr::AddImm(1.0)],
            1,
            "chain2",
        );
    }

    #[test]
    fn chain2_covers_the_sigmoid_head() {
        assert_class_matches_vm(
            &[
                Instr::Load(0),
                Instr::Imm(-1.394_615_9),
                Instr::Add,
                Instr::Sigmoid,
            ],
            1,
            "chain2",
        );
    }

    #[test]
    fn chain3_covers_affine_sigmoid() {
        assert_class_matches_vm(
            &[
                Instr::Load(0),
                Instr::MulImm(0.5),
                Instr::AddImm(-2.0),
                Instr::Sigmoid,
            ],
            1,
            "chain3",
        );
    }

    #[test]
    fn bin2_then_covers_relu_of_difference() {
        assert_class_matches_vm(
            &[Instr::Load(0), Instr::Load(1), Instr::Sub, Instr::Relu],
            2,
            "bin2-then",
        );
    }

    #[test]
    fn bin3_covers_the_feature_scaling_kernel() {
        // (x0 - x1) * x2 — the forest featurizer's scaling kernel.
        assert_class_matches_vm(
            &[
                Instr::Load(0),
                Instr::Load(1),
                Instr::Sub,
                Instr::Load(2),
                Instr::Mul,
            ],
            3,
            "bin3",
        );
    }

    #[test]
    fn bin3_covers_the_mirrored_feeder() {
        // x0 * (x1 - x2) — the feeder binary on the root's right.
        assert_class_matches_vm(
            &[
                Instr::Load(0),
                Instr::Load(1),
                Instr::Load(2),
                Instr::Sub,
                Instr::Mul,
            ],
            3,
            "bin3",
        );
    }

    #[test]
    fn bin3_then_covers_the_binarizer_head() {
        // ((x0 - x1) * x2) > 0.5 — the end-to-end featurizer's
        // binarizer (`Imm; Gt` optimizes to a BinImm stage).
        assert_class_matches_vm(
            &[
                Instr::Load(0),
                Instr::Load(1),
                Instr::Sub,
                Instr::Load(2),
                Instr::Mul,
                Instr::Imm(0.5),
                Instr::Gt,
            ],
            3,
            "bin3-then",
        );
    }

    #[test]
    fn cmp_select_covers_the_tree_cluster() {
        // select(a < b, x, y)
        assert_class_matches_vm(
            &[
                Instr::Load(0),
                Instr::Load(1),
                Instr::Lt,
                Instr::Load(2),
                Instr::Load(3),
                Instr::Select,
            ],
            4,
            "cmp-select",
        );
    }

    #[test]
    fn select_with_direct_cond_and_imm_arm() {
        assert_class_matches_vm(
            &[
                Instr::Load(0),
                Instr::Load(1),
                Instr::Imm(0.25),
                Instr::Select,
            ],
            2,
            "select",
        );
    }

    #[test]
    fn sanitize_clamp_cluster() {
        // select(isnan(x), x, clamp(x, -1, 1))
        assert_class_matches_vm(
            &[
                Instr::Load(0),
                Instr::IsNan,
                Instr::Load(0),
                Instr::Load(0),
                Instr::Clamp(-1.0, 1.0),
                Instr::Select,
            ],
            1,
            "sanitize-clamp",
        );
    }

    #[test]
    fn peephole_formed_programs_are_left_to_forms() {
        // A single Bin over direct inputs has a LirForm; the class
        // matcher is only consulted when the form is None, but it must
        // also not claim shapes it cannot run.
        let (p, e) = build(&[Instr::Load(0), Instr::Load(1), Instr::Lt], 2);
        assert!(!detect_form(&p, &e).is_none());
    }

    #[test]
    fn deep_programs_fall_back_to_vm() {
        // Four chained stages: beyond every class; must yield None.
        let (p, e) = build(
            &[
                Instr::Load(0),
                Instr::MulImm(2.0),
                Instr::AddImm(1.0),
                Instr::Relu,
                Instr::Sigmoid,
            ],
            1,
        );
        assert!(detect_class(&p, &e).is_none());
    }

    #[test]
    fn in_place_row_reads_before_writing() {
        // Chain2 with the input aliased to the output row.
        let (p, e) = build(
            &[Instr::Load(0), Instr::MulImm(-1.0), Instr::AddImm(1.0)],
            1,
        );
        let class = detect_class(&p, &e);
        let vals = vec![vec![0.25f32, -3.0, f32::NAN, 7.5]];
        let mut regs: Vec<Vec<f32>> = vec![vec![0.0; 4]; e.n_regs.max(1)];
        let mut want = vec![0.0f32; 4];
        run_block(&p, &e, &vals, &mut regs, 4, &mut want);
        let mut row = vals[0].clone();
        class.run_row(Some(0), &[&[]], &[0], &[1], &mut row);
        let got: Vec<u32> = row.iter().map(|v| v.to_bits()).collect();
        let wantb: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, wantb);
    }
}
