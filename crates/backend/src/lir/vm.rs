//! The register VM: executes a verified, allocated LIR program over one
//! `BLOCK`-wide vector of gathered inputs, plus the peephole form
//! detector that replaces the old ad-hoc `FastPath` specializations.
//!
//! The scalar functions here are the *single source of truth* for the
//! whole tier: the VM's inner loops, the optimizer's constant folder,
//! and the peephole row loops all call [`bin_scalar`]/[`un_scalar`], so
//! every dispatch strategy computes bit-identical results (NaN
//! payloads, `-0.0`, min/max NaN-laundering included). They mirror the
//! stack interpreter's tables in `fuse.rs` exactly — the differential
//! suite in `tests/lir.rs` holds both sides to `to_bits` equality.

use super::opt::{LirExec, Loc};
use super::{BinOp, LirOp, LirProgram, UnOp};

/// Scalar implementation of a [`BinOp`] (identical to the stack
/// interpreter's table).
pub fn bin_scalar(op: BinOp) -> fn(f32, f32) -> f32 {
    match op {
        BinOp::Add => |a, b| a + b,
        BinOp::Sub => |a, b| a - b,
        BinOp::Mul => |a, b| a * b,
        BinOp::Div => |a, b| a / b,
        BinOp::Min => f32::min,
        BinOp::Max => f32::max,
        BinOp::Lt => |a, b| f32::from(a < b),
        BinOp::Le => |a, b| f32::from(a <= b),
        BinOp::Gt => |a, b| f32::from(a > b),
        BinOp::Ge => |a, b| f32::from(a >= b),
        BinOp::Eq => |a, b| f32::from(a == b),
        BinOp::Ne => |a, b| f32::from(a != b),
        BinOp::And => |a, b| f32::from(a != 0.0 && b != 0.0),
        BinOp::Or => |a, b| f32::from(a != 0.0 || b != 0.0),
        BinOp::Xor => |a, b| f32::from((a != 0.0) ^ (b != 0.0)),
    }
}

/// Scalar implementation of a [`UnOp`] (identical to the stack
/// interpreter's table).
pub fn un_scalar(op: UnOp) -> fn(f32) -> f32 {
    match op {
        UnOp::Not => |a| f32::from(a == 0.0),
        UnOp::Relu => |a| a.max(0.0),
        UnOp::Sigmoid => |a| 1.0 / (1.0 + (-a).exp()),
        UnOp::Tanh => f32::tanh,
        UnOp::Exp => f32::exp,
        UnOp::Ln => f32::ln,
        UnOp::Sqrt => f32::sqrt,
        UnOp::Abs => f32::abs,
        UnOp::Neg => |a| -a,
        UnOp::IsNan => |a| f32::from(a.is_nan()),
        UnOp::Bool01 => |a| f32::from(a != 0.0),
    }
}

/// Resolves an operand's block slice: physical register or gathered
/// input block. Destination buffers are moved out of `regs` before this
/// is called, so the immutable borrow here is safe without aliasing.
fn src<'a>(loc: Loc, vals: &'a [Vec<f32>], regs: &'a [Vec<f32>], len: usize) -> &'a [f32] {
    match loc {
        Loc::Reg(r) => &regs[r as usize][..len],
        Loc::In(k) => &vals[k as usize][..len],
    }
}

/// Runs a verified+allocated program over one gathered block.
///
/// `vals` are the per-input gathered blocks (as in the stack
/// interpreter); `regs` is the physical register file (`e.n_regs`
/// buffers of at least `len`); the f32 result lands in `out[..len]`.
///
/// Per instruction the VM does exactly one vectorizable loop — no stack
/// pointer, no `Load` copies (input operands read `vals` directly), no
/// per-instruction `match` re-dispatch beyond the single opcode match.
pub fn run_block(
    p: &LirProgram,
    e: &LirExec,
    vals: &[Vec<f32>],
    regs: &mut [Vec<f32>],
    len: usize,
    out: &mut [f32],
) {
    for &(r, v) in &e.prefill {
        regs[r as usize][..len].fill(v);
    }
    for ins in &p.instrs {
        let d = match e.loc[ins.dst as usize] {
            Loc::Reg(r) => r as usize,
            Loc::In(_) => continue, // Loads read their input block lazily
        };
        // Move the destination buffer out so operand reads can borrow
        // the register file immutably; the allocator's no-alias rule
        // (revalidated by `verify_alloc`) guarantees no operand lives
        // in register `d`.
        let mut dbuf = std::mem::take(&mut regs[d]);
        match &ins.op {
            LirOp::Load(_) | LirOp::Imm(_) => {} // Imm handled by prefill
            LirOp::Bin(op, a, b) => {
                let f = bin_scalar(*op);
                let sa = src(e.loc[*a as usize], vals, regs, len);
                let sb = src(e.loc[*b as usize], vals, regs, len);
                for ((o, &x), &y) in dbuf[..len].iter_mut().zip(sa).zip(sb) {
                    *o = f(x, y);
                }
            }
            LirOp::BinImm(op, a, c) => {
                let f = bin_scalar(*op);
                let sa = src(e.loc[*a as usize], vals, regs, len);
                for (o, &x) in dbuf[..len].iter_mut().zip(sa) {
                    *o = f(x, *c);
                }
            }
            LirOp::ImmBin(op, c, a) => {
                let f = bin_scalar(*op);
                let sa = src(e.loc[*a as usize], vals, regs, len);
                for (o, &x) in dbuf[..len].iter_mut().zip(sa) {
                    *o = f(*c, x);
                }
            }
            LirOp::Un(op, a) => {
                let f = un_scalar(*op);
                let sa = src(e.loc[*a as usize], vals, regs, len);
                for (o, &x) in dbuf[..len].iter_mut().zip(sa) {
                    *o = f(x);
                }
            }
            LirOp::Select { cond, a, b } => {
                let sc = src(e.loc[*cond as usize], vals, regs, len);
                let sa = src(e.loc[*a as usize], vals, regs, len);
                let sb = src(e.loc[*b as usize], vals, regs, len);
                for j in 0..len {
                    dbuf[j] = if sc[j] != 0.0 { sa[j] } else { sb[j] };
                }
            }
            LirOp::Clamp(a, lo, hi) => {
                let sa = src(e.loc[*a as usize], vals, regs, len);
                for (o, &x) in dbuf[..len].iter_mut().zip(sa) {
                    *o = x.clamp(*lo, *hi);
                }
            }
            LirOp::Pow(a, exp) => {
                let sa = src(e.loc[*a as usize], vals, regs, len);
                for (o, &x) in dbuf[..len].iter_mut().zip(sa) {
                    *o = x.powf(*exp);
                }
            }
        }
        regs[d] = dbuf;
    }
    match e.loc[p.out as usize] {
        Loc::Reg(r) => out[..len].copy_from_slice(&regs[r as usize][..len]),
        Loc::In(k) => out[..len].copy_from_slice(&vals[k as usize][..len]),
    }
}

/// A whole-kernel peephole form: programs that reduce to one scalar map
/// over direct input reads. These replace the old `FastPath`
/// specializations, and because they are recognized on the *optimized*
/// LIR they catch shapes the raw-bytecode matcher missed (e.g.
/// `Imm; Load; Sub` becomes [`LirForm::ImmBin`] after immediate
/// sinking, and CSE'd duplicate loads still match).
///
/// Both `fill` and `fill_in_place` use these in row loops that read
/// operands straight from input slices, skipping the block gather
/// entirely.
#[derive(Clone, Copy, Debug, Default)]
pub enum LirForm {
    /// No whole-kernel form; run [`run_block`].
    #[default]
    None,
    /// Output is input `a` unchanged.
    Copy {
        /// Source input slot.
        a: usize,
    },
    /// Output is the constant `c` everywhere.
    Fill {
        /// The constant.
        c: f32,
    },
    /// `out[i] = f(in_a[i], in_b[i])`.
    Bin2 {
        /// Left input slot.
        a: usize,
        /// Right input slot.
        b: usize,
        /// Scalar function.
        f: fn(f32, f32) -> f32,
    },
    /// `out[i] = f(in_a[i], c)`.
    BinImm {
        /// Input slot.
        a: usize,
        /// Right immediate.
        c: f32,
        /// Scalar function.
        f: fn(f32, f32) -> f32,
    },
    /// `out[i] = f(c, in_a[i])`.
    ImmBin {
        /// Left immediate.
        c: f32,
        /// Input slot.
        a: usize,
        /// Scalar function.
        f: fn(f32, f32) -> f32,
    },
    /// `out[i] = f(in_a[i])`.
    Un {
        /// Input slot.
        a: usize,
        /// Scalar function.
        f: fn(f32) -> f32,
    },
    /// `out[i] = in_a[i].clamp(lo, hi)`.
    Clamp {
        /// Input slot.
        a: usize,
        /// Lower bound.
        lo: f32,
        /// Upper bound.
        hi: f32,
    },
    /// `out[i] = in_a[i].powf(e)`.
    Pow {
        /// Input slot.
        a: usize,
        /// Exponent.
        e: f32,
    },
}

impl LirForm {
    /// True when no whole-kernel form was recognized.
    pub fn is_none(&self) -> bool {
        matches!(self, LirForm::None)
    }

    /// Short label for lint/bench reporting.
    pub fn label(&self) -> &'static str {
        match self {
            LirForm::None => "vm",
            LirForm::Copy { .. } => "copy",
            LirForm::Fill { .. } => "fill",
            LirForm::Bin2 { .. } => "bin2",
            LirForm::BinImm { .. } => "bin-imm",
            LirForm::ImmBin { .. } => "imm-bin",
            LirForm::Un { .. } => "un",
            LirForm::Clamp { .. } => "clamp",
            LirForm::Pow { .. } => "pow",
        }
    }

    /// The input slot this form reads per element, if any.
    pub fn input(&self) -> Option<usize> {
        match self {
            LirForm::None | LirForm::Fill { .. } => None,
            LirForm::Copy { a }
            | LirForm::BinImm { a, .. }
            | LirForm::ImmBin { a, .. }
            | LirForm::Un { a, .. }
            | LirForm::Clamp { a, .. }
            | LirForm::Pow { a, .. } => Some(*a),
            LirForm::Bin2 { a, .. } => Some(*a), // primary; `b` via inputs()
        }
    }

    /// All input slots this form reads.
    pub fn inputs(&self) -> Vec<usize> {
        match self {
            LirForm::None | LirForm::Fill { .. } => Vec::new(),
            LirForm::Copy { a }
            | LirForm::BinImm { a, .. }
            | LirForm::ImmBin { a, .. }
            | LirForm::Un { a, .. }
            | LirForm::Clamp { a, .. }
            | LirForm::Pow { a, .. } => vec![*a],
            LirForm::Bin2 { a, b, .. } => vec![*a, *b],
        }
    }
}

/// Detects a whole-kernel form over an optimized+allocated program: the
/// output instruction must be the program's only compute (everything
/// else `Load`s read directly from inputs), with every operand either a
/// direct input read or — for `Fill` — a single immediate.
pub fn detect_form(p: &LirProgram, e: &LirExec) -> LirForm {
    // Input slot of a vreg if it is a direct input read.
    let slot = |v: super::VReg| match e.loc[v as usize] {
        Loc::In(k) => Some(k as usize),
        Loc::Reg(_) => None,
    };
    let Some(root) = p.instrs.iter().find(|i| i.dst == p.out) else {
        return LirForm::None;
    };
    // Compute instructions besides the root disqualify the form.
    let computes = p
        .instrs
        .iter()
        .filter(|i| !matches!(i.op, LirOp::Load(_) | LirOp::Imm(_)))
        .count();
    match &root.op {
        LirOp::Load(k) if computes == 0 => LirForm::Copy { a: *k },
        LirOp::Imm(c) if computes == 0 => LirForm::Fill { c: *c },
        _ if computes != 1 => LirForm::None,
        LirOp::Bin(op, a, b) => match (slot(*a), slot(*b)) {
            (Some(a), Some(b)) => LirForm::Bin2 {
                a,
                b,
                f: bin_scalar(*op),
            },
            _ => LirForm::None,
        },
        LirOp::BinImm(op, a, c) => match slot(*a) {
            Some(a) => LirForm::BinImm {
                a,
                c: *c,
                f: bin_scalar(*op),
            },
            None => LirForm::None,
        },
        LirOp::ImmBin(op, c, a) => match slot(*a) {
            Some(a) => LirForm::ImmBin {
                c: *c,
                a,
                f: bin_scalar(*op),
            },
            None => LirForm::None,
        },
        LirOp::Un(op, a) => match slot(*a) {
            Some(a) => LirForm::Un {
                a,
                f: un_scalar(*op),
            },
            None => LirForm::None,
        },
        LirOp::Clamp(a, lo, hi) => match slot(*a) {
            Some(a) => LirForm::Clamp {
                a,
                lo: *lo,
                hi: *hi,
            },
            None => LirForm::None,
        },
        LirOp::Pow(a, exp) => match slot(*a) {
            Some(a) => LirForm::Pow { a, e: *exp },
            None => LirForm::None,
        },
        _ => LirForm::None,
    }
}

#[cfg(test)]
mod tests {
    use super::super::opt::{allocate, optimize, verify_alloc};
    use super::*;
    use crate::fuse::Instr;
    use hb_tensor::DType;

    fn build(prog: &[Instr], n_inputs: usize) -> (LirProgram, LirExec) {
        let p =
            LirProgram::lower(prog, n_inputs, DType::F32).unwrap_or_else(|e| panic!("lower: {e}"));
        p.verify().unwrap_or_else(|e| panic!("verify: {e}"));
        let (q, _) = optimize(&p);
        q.verify()
            .unwrap_or_else(|e| panic!("post-opt verify: {e}"));
        let e = allocate(&q).unwrap_or_else(|e| panic!("allocate: {e}"));
        verify_alloc(&q, &e).unwrap_or_else(|er| panic!("verify_alloc: {er}"));
        (q, e)
    }

    fn run(p: &LirProgram, e: &LirExec, vals: &[Vec<f32>]) -> Vec<f32> {
        let len = vals.first().map_or(1, Vec::len);
        let mut regs: Vec<Vec<f32>> = vec![vec![0.0; len]; e.n_regs];
        let mut out = vec![0.0; len];
        run_block(p, e, vals, &mut regs, len, &mut out);
        out
    }

    #[test]
    fn vm_matches_hand_computation() {
        // relu((a + b) * 0.5)
        let (p, e) = build(
            &[
                Instr::Load(0),
                Instr::Load(1),
                Instr::Add,
                Instr::MulImm(0.5),
                Instr::Relu,
            ],
            2,
        );
        let vals = vec![vec![1.0, -8.0, 3.0], vec![5.0, 2.0, -3.0]];
        assert_eq!(run(&p, &e, &vals), vec![3.0, 0.0, 0.0]);
    }

    #[test]
    fn vm_nan_laundering_matches_scalar_minmax() {
        // max(a, b): f32::max launders NaN from either side.
        let (p, e) = build(&[Instr::Load(0), Instr::Load(1), Instr::Max], 2);
        let vals = vec![vec![f32::NAN, 2.0], vec![1.0, f32::NAN]];
        assert_eq!(run(&p, &e, &vals), vec![1.0, 2.0]);
    }

    #[test]
    fn detect_form_sees_through_optimizer() {
        // Imm 10; Load 0; Sub  =>  ImmBin(Sub, 10, x) — the old
        // FastPath matcher missed this shape entirely.
        let (p, e) = build(&[Instr::Imm(10.0), Instr::Load(0), Instr::Sub], 1);
        match detect_form(&p, &e) {
            LirForm::ImmBin { c, a, f } => {
                assert_eq!(c, 10.0);
                assert_eq!(a, 0);
                assert_eq!(f(10.0, 3.0), 7.0);
            }
            other => panic!("expected ImmBin, got {other:?}"),
        }
    }

    #[test]
    fn detect_form_copy_and_fill() {
        let (p, e) = build(
            &[
                Instr::Load(0),
                Instr::Imm(3.5),
                Instr::Mul,
                Instr::MulImm(0.0),
            ],
            1,
        );
        // (x * 3.5) * 0.0 is NOT folded to Fill (NaN/Inf inputs), so it
        // stays a real program.
        assert!(!matches!(detect_form(&p, &e), LirForm::Fill { .. }));
        let (p2, e2) = build(&[Instr::Imm(2.0), Instr::Imm(3.0), Instr::Add], 0);
        assert!(matches!(detect_form(&p2, &e2), LirForm::Fill { c } if c == 5.0));
    }
}
