//! Static analyses and transforms over verified LIR programs:
//! constant propagation + local CSE, liveness with dead-instruction
//! elimination, liveness-driven linear-scan register allocation into a
//! fixed physical register file, and an independent allocation
//! validator ([`verify_alloc`]) that replays the allocation against the
//! program's liveness the same way `audit_plan` replays memory plans.
//!
//! Every rewrite here is held to *bit-identity* with the stack
//! interpreter, which rules out the usual algebraic menu:
//!
//! - No operand reordering (commutative canonicalization): NaN payloads
//!   and `-0.0` are not symmetric in practice.
//! - No identity folds (`x + 0.0` is not `x` when `x == -0.0`).
//! - Constant folding evaluates with the *same* scalar functions the VM
//!   and the stack interpreter use ([`super::vm::bin_scalar`],
//!   [`super::vm::un_scalar`]), on the same hardware, so folded bits
//!   equal runtime bits.
//! - CSE keys on exact f32 bit patterns, so two immediates are "equal"
//!   only when they are the same bits.

use std::collections::HashMap;

use super::vm::{bin_scalar, un_scalar};
use super::{BinOp, LirError, LirInstr, LirOp, LirProgram, VReg, REG_FILE};

/// Where a virtual register's value lives at run time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Loc {
    /// A physical register (an f32 block buffer owned by the VM).
    Reg(u8),
    /// Read directly from gathered input block `k` — `Load`s are free:
    /// they never copy into a register.
    In(u16),
}

/// A validated register allocation: the executable half of a kernel.
#[derive(Clone, Debug, PartialEq)]
pub struct LirExec {
    /// Location of each virtual register, indexed by vreg.
    pub loc: Vec<Loc>,
    /// Physical registers allocated (block buffers the VM owns).
    pub n_regs: usize,
    /// `(reg, value)` immediates splatted once at block start.
    /// Immediate registers are dedicated — never reused by the
    /// allocator — so the prefill survives the whole block.
    pub prefill: Vec<(u8, f32)>,
    /// Peak simultaneously-live virtual registers (before allocation);
    /// reported by `hb-lint` as register pressure.
    pub max_live: usize,
}

/// What the optimizer did, for lint reporting and bench tables.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LirOptStats {
    /// Instructions replaced by folded immediates or forwarded
    /// `Select` arms.
    pub folded: usize,
    /// Instructions deduplicated by local CSE.
    pub csed: usize,
    /// Dead instructions eliminated.
    pub dce: usize,
}

impl LirOptStats {
    /// Total instructions removed relative to the raw lowering.
    pub fn eliminated(&self) -> usize {
        self.folded + self.csed + self.dce
    }
}

/// Per-program liveness: for each vreg, the last instruction index that
/// reads it (the program output counts as a read at `instrs.len()`).
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Last use per vreg; equals the def index for dead registers.
    pub last_use: Vec<usize>,
    /// Peak simultaneously-live registers.
    pub max_live: usize,
}

/// Computes liveness over a *verified* canonical program.
pub fn liveness(p: &LirProgram) -> Liveness {
    let n = p.instrs.len();
    let mut last_use = vec![0usize; n];
    for (i, ins) in p.instrs.iter().enumerate() {
        last_use[ins.dst as usize] = i; // dead until proven used
        for v in ins.op.operands() {
            last_use[v as usize] = i;
        }
    }
    last_use[p.out as usize] = n;
    // Sweep once: each instruction births one value; values whose last
    // use is here (including a dead def nothing reads) die after it.
    let mut deaths = vec![0usize; n + 1];
    for v in 0..n {
        deaths[last_use[v]] += 1;
    }
    let mut live = 0usize;
    let mut max_live = 0usize;
    for &d in deaths.iter().take(n) {
        live += 1;
        max_live = max_live.max(live);
        live -= d.min(live);
    }
    Liveness { last_use, max_live }
}

/// CSE key: ops with immediates key on exact bit patterns.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Key {
    Load(usize),
    Imm(u32),
    Bin(BinOp, VReg, VReg),
    BinImm(BinOp, VReg, u32),
    ImmBin(BinOp, u32, VReg),
    Un(super::UnOp, VReg),
    Select(VReg, VReg, VReg),
    Clamp(VReg, u32, u32),
    Pow(VReg, u32),
}

fn key_of(op: &LirOp) -> Key {
    match op {
        LirOp::Load(k) => Key::Load(*k),
        LirOp::Imm(v) => Key::Imm(v.to_bits()),
        LirOp::Bin(b, x, y) => Key::Bin(*b, *x, *y),
        LirOp::BinImm(b, x, c) => Key::BinImm(*b, *x, c.to_bits()),
        LirOp::ImmBin(b, c, x) => Key::ImmBin(*b, c.to_bits(), *x),
        LirOp::Un(u, x) => Key::Un(*u, *x),
        LirOp::Select { cond, a, b } => Key::Select(*cond, *a, *b),
        LirOp::Clamp(x, lo, hi) => Key::Clamp(*x, lo.to_bits(), hi.to_bits()),
        LirOp::Pow(x, e) => Key::Pow(*x, e.to_bits()),
    }
}

/// Evaluates an operation whose operands are all known constants, using
/// the runtime scalar functions so the fold is bit-identical to what
/// the VM would have computed.
fn fold(op: &LirOp, c: impl Fn(VReg) -> Option<f32>) -> Option<f32> {
    Some(match op {
        LirOp::Load(_) => return None,
        LirOp::Imm(v) => *v,
        LirOp::Bin(b, x, y) => bin_scalar(*b)(c(*x)?, c(*y)?),
        LirOp::BinImm(b, x, k) => bin_scalar(*b)(c(*x)?, *k),
        LirOp::ImmBin(b, k, x) => bin_scalar(*b)(*k, c(*x)?),
        LirOp::Un(u, x) => un_scalar(*u)(c(*x)?),
        LirOp::Select { .. } => return None, // handled as arm forwarding
        LirOp::Clamp(x, lo, hi) => c(*x)?.clamp(*lo, *hi),
        LirOp::Pow(x, e) => c(*x)?.powf(*e),
    })
}

/// One forward value-numbering pass (constant propagation, immediate
/// sinking into `BinImm`/`ImmBin`, `Select` arm forwarding, local CSE)
/// followed by backward dead-code elimination and renumbering. The
/// result is a canonical verified-shape program; callers re-run
/// [`LirProgram::verify`] on it as part of the gate.
pub fn optimize(p: &LirProgram) -> (LirProgram, LirOptStats) {
    let n = p.instrs.len();
    let mut stats = LirOptStats::default();
    // Value-numbering state over the *new* instruction list.
    let mut out: Vec<LirInstr> = Vec::with_capacity(n);
    let mut konst: Vec<Option<f32>> = Vec::with_capacity(n);
    let mut seen: HashMap<Key, VReg> = HashMap::with_capacity(n);
    // Old vreg -> new vreg.
    let mut map: Vec<VReg> = vec![0; n];

    for old in &p.instrs {
        let m = |v: &VReg| map[*v as usize];
        // Rewrite operands through the map first.
        let mapped = match &old.op {
            LirOp::Load(k) => LirOp::Load(*k),
            LirOp::Imm(v) => LirOp::Imm(*v),
            LirOp::Bin(b, x, y) => LirOp::Bin(*b, m(x), m(y)),
            LirOp::BinImm(b, x, c) => LirOp::BinImm(*b, m(x), *c),
            LirOp::ImmBin(b, c, x) => LirOp::ImmBin(*b, *c, m(x)),
            LirOp::Un(u, x) => LirOp::Un(*u, m(x)),
            LirOp::Select { cond, a, b } => LirOp::Select {
                cond: m(cond),
                a: m(a),
                b: m(b),
            },
            LirOp::Clamp(x, lo, hi) => LirOp::Clamp(m(x), *lo, *hi),
            LirOp::Pow(x, e) => LirOp::Pow(m(x), *e),
        };
        let c_of = |v: VReg| konst.get(v as usize).copied().flatten();
        // A Select whose condition is a known constant forwards one arm
        // without emitting anything (NaN conditions are truthy, exactly
        // like the interpreter's `c != 0.0`).
        if let LirOp::Select { cond, a, b } = &mapped {
            if let Some(cc) = c_of(*cond) {
                map[old.dst as usize] = if cc != 0.0 { *a } else { *b };
                stats.folded += 1;
                continue;
            }
        }
        // Constant-fold, or sink a constant operand into an immediate
        // form (keeping operand order — never commuting). A fold whose
        // result is NaN is deliberately left in place: `imm_fact(NaN)`
        // carries a placeholder `[0, 0]` interval that need not sit
        // inside the folded chain's computed fact, so collapsing the
        // chain would widen the abstract output and flunk translation
        // validation's refinement check. Keeping the chain keeps the
        // optimized walk's facts identical to the bytecode walk's.
        let new_op = if !matches!(mapped, LirOp::Imm(_)) {
            if let Some(v) = fold(&mapped, c_of).filter(|v| !v.is_nan()) {
                stats.folded += 1;
                LirOp::Imm(v)
            } else if let LirOp::Bin(b, x, y) = mapped {
                match (c_of(x), c_of(y)) {
                    (_, Some(cy)) => LirOp::BinImm(b, x, cy),
                    (Some(cx), _) => LirOp::ImmBin(b, cx, y),
                    _ => mapped,
                }
            } else {
                mapped
            }
        } else {
            mapped
        };
        // Local CSE: bitwise-identical computations collapse.
        let key = key_of(&new_op);
        if let Some(&prev) = seen.get(&key) {
            map[old.dst as usize] = prev;
            stats.csed += 1;
            continue;
        }
        let dst = out.len() as VReg;
        let ty = super::infer_ty(&new_op, |v| {
            out.get(v as usize).map_or(super::RegTy::F32, |i| i.ty)
        });
        if let LirOp::Imm(v) = new_op {
            konst.push(Some(v));
        } else {
            konst.push(None);
        }
        seen.insert(key, dst);
        out.push(LirInstr {
            dst,
            ty,
            op: new_op,
        });
        map[old.dst as usize] = dst;
    }

    let new_out = map[p.out as usize];
    // Backward DCE from the output, then renumber densely.
    let mut used = vec![false; out.len()];
    used[new_out as usize] = true;
    for i in (0..out.len()).rev() {
        if used[i] {
            for v in out[i].op.operands() {
                used[v as usize] = true;
            }
        }
    }
    stats.dce = used.iter().filter(|u| !**u).count();
    let mut renum: Vec<VReg> = vec![0; out.len()];
    let mut kept: Vec<LirInstr> = Vec::with_capacity(out.len() - stats.dce);
    for (i, ins) in out.into_iter().enumerate() {
        if !used[i] {
            continue;
        }
        let r = |v: &VReg| renum[*v as usize];
        let op = match &ins.op {
            LirOp::Load(k) => LirOp::Load(*k),
            LirOp::Imm(v) => LirOp::Imm(*v),
            LirOp::Bin(b, x, y) => LirOp::Bin(*b, r(x), r(y)),
            LirOp::BinImm(b, x, c) => LirOp::BinImm(*b, r(x), *c),
            LirOp::ImmBin(b, c, x) => LirOp::ImmBin(*b, *c, r(x)),
            LirOp::Un(u, x) => LirOp::Un(*u, r(x)),
            LirOp::Select { cond, a, b } => LirOp::Select {
                cond: r(cond),
                a: r(a),
                b: r(b),
            },
            LirOp::Clamp(x, lo, hi) => LirOp::Clamp(r(x), *lo, *hi),
            LirOp::Pow(x, e) => LirOp::Pow(r(x), *e),
        };
        let dst = kept.len() as VReg;
        renum[i] = dst;
        kept.push(LirInstr {
            dst,
            ty: ins.ty,
            op,
        });
    }
    (
        LirProgram {
            n_inputs: p.n_inputs,
            out_dtype: p.out_dtype,
            out: renum[new_out as usize],
            instrs: kept,
        },
        stats,
    )
}

/// Liveness-driven linear-scan allocation of a verified canonical
/// program into the fixed register file.
///
/// - `Load` results read directly from the gathered input blocks
///   ([`Loc::In`]) — no copy, no register.
/// - `Imm` results get *dedicated* registers, splatted once per block
///   via [`LirExec::prefill`] and never returned to the free pool.
/// - Compute destinations are allocated *before* dying operands are
///   released, so a destination's physical register never aliases an
///   operand's — the VM relies on this to move the destination buffer
///   out while reading operand buffers.
///
/// # Errors
///
/// [`LirError::RegisterPressure`] when more than [`REG_FILE`] physical
/// registers would be needed.
pub fn allocate(p: &LirProgram) -> Result<LirExec, LirError> {
    let lv = liveness(p);
    let n = p.instrs.len();
    let mut loc: Vec<Loc> = vec![Loc::Reg(0); n];
    let mut dedicated = vec![false; n]; // vregs whose register is never freed
    let mut prefill: Vec<(u8, f32)> = Vec::new();
    let mut next: usize = 0;
    let mut free: Vec<u8> = Vec::new();

    // Immediates first: dedicated registers, filled at block start.
    for ins in &p.instrs {
        if let LirOp::Imm(v) = ins.op {
            if next >= REG_FILE {
                return Err(LirError::RegisterPressure {
                    needed: next + 1,
                    limit: REG_FILE,
                });
            }
            let r = next as u8;
            next += 1;
            loc[ins.dst as usize] = Loc::Reg(r);
            dedicated[ins.dst as usize] = true;
            prefill.push((r, v));
        }
    }

    for (i, ins) in p.instrs.iter().enumerate() {
        let d = ins.dst as usize;
        match ins.op {
            LirOp::Load(k) => {
                loc[d] = Loc::In(k as u16);
                continue;
            }
            LirOp::Imm(_) => continue, // pre-allocated above
            _ => {}
        }
        // Allocate the destination before releasing dying operands:
        // this is what enforces the no-alias rule.
        let r = if let Some(r) = free.pop() {
            r
        } else {
            if next >= REG_FILE {
                return Err(LirError::RegisterPressure {
                    needed: next + 1,
                    limit: REG_FILE,
                });
            }
            next += 1;
            (next - 1) as u8
        };
        loc[d] = Loc::Reg(r);
        // Release operands whose last use is this instruction.
        let mut ops = ins.op.operands();
        ops.sort_unstable();
        ops.dedup();
        for v in ops {
            let vi = v as usize;
            if lv.last_use[vi] == i && !dedicated[vi] {
                if let Loc::Reg(or) = loc[vi] {
                    free.push(or);
                }
            }
        }
        // A destination nothing ever reads (dead code that survived —
        // only in unoptimized programs) frees immediately.
        if lv.last_use[d] == i && !dedicated[d] {
            free.push(r);
        }
    }

    Ok(LirExec {
        loc,
        n_regs: next,
        prefill,
        max_live: lv.max_live,
    })
}

/// Independently validates a register allocation against the program,
/// the same way `audit_plan` replays memory plans: location kinds must
/// match the ops (`Load` ↔ its input slot, everything else ↔ a physical
/// register), physical registers must be in range, destinations must
/// not alias their operands, immediates must have bit-exact prefill
/// entries, and a sequential clobber simulation proves no value is
/// overwritten in its register before its last use.
///
/// # Errors
///
/// The first defect found, as a typed [`LirError`].
pub fn verify_alloc(p: &LirProgram, e: &LirExec) -> Result<(), LirError> {
    let n = p.instrs.len();
    if e.loc.len() != n {
        return Err(LirError::AllocLenMismatch {
            locs: e.loc.len(),
            instrs: n,
        });
    }
    if e.n_regs > REG_FILE {
        return Err(LirError::RegisterPressure {
            needed: e.n_regs,
            limit: REG_FILE,
        });
    }
    let lv = liveness(p);
    // owner[r] = vreg whose value currently lives in physical reg r.
    let mut owner: Vec<Option<VReg>> = vec![None; e.n_regs];
    for &(r, _) in &e.prefill {
        if r as usize >= e.n_regs {
            return Err(LirError::PhysRegOutOfRange {
                instr: 0,
                reg: r as usize,
                n_regs: e.n_regs,
            });
        }
    }
    // Prefill establishes ownership for immediates before any instr.
    for (i, ins) in p.instrs.iter().enumerate() {
        if let LirOp::Imm(v) = ins.op {
            match e.loc[ins.dst as usize] {
                Loc::Reg(r) => {
                    let hit = e
                        .prefill
                        .iter()
                        .any(|&(pr, pv)| pr == r && pv.to_bits() == v.to_bits());
                    if !hit {
                        return Err(LirError::PrefillMismatch { instr: i });
                    }
                    owner[r as usize] = Some(ins.dst);
                }
                Loc::In(_) => return Err(LirError::LocKindMismatch { instr: i }),
            }
        }
    }
    for (i, ins) in p.instrs.iter().enumerate() {
        let d = ins.dst as usize;
        // Check operand locations *before* the destination write lands.
        let dst_reg = match (&ins.op, e.loc[d]) {
            (LirOp::Load(k), Loc::In(slot)) => {
                if slot as usize != *k {
                    return Err(LirError::LocKindMismatch { instr: i });
                }
                None
            }
            (LirOp::Load(_), Loc::Reg(_)) => return Err(LirError::LocKindMismatch { instr: i }),
            (LirOp::Imm(_), Loc::Reg(_)) => None, // ownership set above
            (_, Loc::In(_)) => return Err(LirError::LocKindMismatch { instr: i }),
            (_, Loc::Reg(r)) => {
                if r as usize >= e.n_regs {
                    return Err(LirError::PhysRegOutOfRange {
                        instr: i,
                        reg: r as usize,
                        n_regs: e.n_regs,
                    });
                }
                Some(r)
            }
        };
        for v in ins.op.operands() {
            match e.loc[v as usize] {
                Loc::In(_) => {} // reads the gathered input block, always valid
                Loc::Reg(r) => {
                    if r as usize >= e.n_regs {
                        return Err(LirError::PhysRegOutOfRange {
                            instr: i,
                            reg: r as usize,
                            n_regs: e.n_regs,
                        });
                    }
                    if Some(r) == dst_reg {
                        return Err(LirError::AliasedDest {
                            instr: i,
                            reg: r as usize,
                        });
                    }
                    if owner[r as usize] != Some(v) {
                        return Err(LirError::Clobbered {
                            instr: i,
                            vreg: v,
                            reg: r as usize,
                        });
                    }
                }
            }
        }
        if let Some(r) = dst_reg {
            // Overwriting a register whose current value is still live
            // after this instruction is a clobber.
            if let Some(prev) = owner[r as usize] {
                if prev as usize != d && lv.last_use[prev as usize] > i {
                    return Err(LirError::Clobbered {
                        instr: i,
                        vreg: prev,
                        reg: r as usize,
                    });
                }
            }
            owner[r as usize] = Some(ins.dst);
        }
    }
    // The output must still own its location at program end.
    match e.loc[p.out as usize] {
        Loc::In(slot) => {
            let is_load = matches!(
                p.instrs.get(p.out as usize).map(|i| &i.op),
                Some(LirOp::Load(k)) if *k == slot as usize
            );
            if !is_load {
                return Err(LirError::LocKindMismatch {
                    instr: p.out as usize,
                });
            }
        }
        Loc::Reg(r) => {
            if owner.get(r as usize).copied().flatten() != Some(p.out) {
                return Err(LirError::Clobbered {
                    instr: n,
                    vreg: p.out,
                    reg: r as usize,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::{LirProgram, RegTy};
    use super::*;
    use crate::fuse::Instr;
    use hb_tensor::DType;

    fn lower(prog: &[Instr], n_inputs: usize) -> LirProgram {
        let p =
            LirProgram::lower(prog, n_inputs, DType::F32).unwrap_or_else(|e| panic!("lower: {e}"));
        p.verify().unwrap_or_else(|e| panic!("verify: {e}"));
        p
    }

    #[test]
    fn cse_dedups_repeated_loads_and_subexpressions() {
        // sigmoid(x0 + x1) * (x0 + x1)
        let p = lower(
            &[
                Instr::Load(0),
                Instr::Load(1),
                Instr::Add,
                Instr::Sigmoid,
                Instr::Load(0),
                Instr::Load(1),
                Instr::Add,
                Instr::Mul,
            ],
            2,
        );
        let (q, stats) = optimize(&p);
        q.verify()
            .unwrap_or_else(|e| panic!("post-opt verify: {e}"));
        // Load(0), Load(1), and the second Add all CSE away.
        assert_eq!(stats.csed, 3);
        assert_eq!(q.instrs.len(), 5);
    }

    #[test]
    fn const_folding_collapses_immediate_chains() {
        // (2 + 3) * x  ==>  ImmBin(Mul, 5, x)... operand order: Imm*Load
        let p = lower(
            &[
                Instr::Imm(2.0),
                Instr::Imm(3.0),
                Instr::Add,
                Instr::Load(0),
                Instr::Mul,
            ],
            1,
        );
        let (q, stats) = optimize(&p);
        q.verify()
            .unwrap_or_else(|e| panic!("post-opt verify: {e}"));
        assert!(stats.folded >= 1);
        assert!(stats.dce >= 1, "folded immediates become dead");
        // Only the Load and the immediate multiply survive.
        assert_eq!(q.instrs.len(), 2);
        assert!(matches!(
            q.instrs[1].op,
            super::super::LirOp::ImmBin(BinOp::Mul, c, _) if c == 5.0
        ));
    }

    #[test]
    fn select_with_constant_condition_forwards_an_arm() {
        // where(1.0, x0, x1) ==> x0
        let p = lower(
            &[
                Instr::Imm(1.0),
                Instr::Load(0),
                Instr::Load(1),
                Instr::Select,
            ],
            2,
        );
        let (q, stats) = optimize(&p);
        q.verify()
            .unwrap_or_else(|e| panic!("post-opt verify: {e}"));
        assert_eq!(stats.folded, 1);
        assert_eq!(q.instrs.len(), 1);
        assert!(matches!(q.instrs[0].op, super::super::LirOp::Load(0)));
    }

    #[test]
    fn allocation_validates_and_respects_no_alias() {
        let p = lower(
            &[
                Instr::Load(0),
                Instr::Load(1),
                Instr::Add,
                Instr::Imm(0.5),
                Instr::Mul,
                Instr::Relu,
            ],
            2,
        );
        let (q, _) = optimize(&p);
        let e = allocate(&q).unwrap_or_else(|e| panic!("allocate: {e}"));
        verify_alloc(&q, &e).unwrap_or_else(|er| panic!("verify_alloc: {er}"));
        assert!(e.n_regs <= REG_FILE);
    }

    #[test]
    fn verify_alloc_rejects_aliased_destination() {
        let p = lower(&[Instr::Load(0), Instr::Sigmoid, Instr::Relu], 1);
        let mut e = allocate(&p).unwrap_or_else(|e| panic!("allocate: {e}"));
        // Force Relu's destination onto Sigmoid's register while
        // claiming Sigmoid's value as operand: a self-alias.
        e.loc[2] = e.loc[1];
        assert!(matches!(
            verify_alloc(&p, &e),
            Err(LirError::AliasedDest { .. })
        ));
    }

    #[test]
    fn verify_alloc_rejects_clobbered_live_value() {
        // x0+x1 stays live across sigmoid(x0), then both combine.
        let p = lower(
            &[
                Instr::Load(0),
                Instr::Load(1),
                Instr::Add,
                Instr::Load(0),
                Instr::Sigmoid,
                Instr::Mul,
            ],
            2,
        );
        let e = allocate(&p).unwrap_or_else(|e| panic!("allocate: {e}"));
        verify_alloc(&p, &e).unwrap_or_else(|er| panic!("pristine alloc must pass: {er}"));
        // Put sigmoid's result in the same register as the still-live
        // Add result.
        let mut bad = e.clone();
        bad.loc[4] = bad.loc[2];
        let err = verify_alloc(&p, &bad).expect_err("clobber must be rejected");
        assert!(
            matches!(
                err,
                LirError::Clobbered { .. } | LirError::AliasedDest { .. }
            ),
            "got {err}"
        );
    }

    #[test]
    fn bool_types_flow_through_optimizer() {
        // (x0 < x1) & isnan(x0)
        let p = lower(
            &[
                Instr::Load(0),
                Instr::Load(1),
                Instr::Lt,
                Instr::Load(0),
                Instr::IsNan,
                Instr::And,
            ],
            2,
        );
        let (q, _) = optimize(&p);
        q.verify()
            .unwrap_or_else(|e| panic!("post-opt verify: {e}"));
        assert_eq!(q.ty(q.out), RegTy::Bool);
    }
}
