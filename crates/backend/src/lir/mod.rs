//! Verified register LIR for fused element-wise kernels.
//!
//! The fused-kernel tier (`fuse.rs`) compiles element-wise clusters into
//! a stack bytecode. Stack dispatch is compact but pays for itself at
//! run time: every `Load` copies a whole block, every instruction moves
//! the stack pointer, and values shared between sub-expressions are
//! re-pushed once per use. This module lowers that bytecode into a
//! *typed, register-based linear IR* — three-address instructions over
//! single-assignment virtual registers — and makes the lowered form the
//! executable one (`vm.rs` interprets it over the same `BLOCK`-wide
//! vectorized buffers the stack machine used).
//!
//! In the spirit of the repo's `verify.rs` compile gate and the absint
//! translation-validation tradition, no LIR program is executable until
//! it has passed [`LirProgram::verify`]: def-before-use over virtual
//! registers, single assignment, operand/destination range checks, a
//! declared-vs-inferred type check per instruction, and a live output
//! register. A second gate ([`opt::verify_alloc`]) independently
//! validates the register allocation the VM will index with: every
//! physical register in range, destinations never aliasing operands
//! (the VM moves the destination buffer out while reading operands),
//! and no live value clobbered before its last use.
//!
//! The pipeline, run once at kernel-construction time:
//!
//! ```text
//! stack bytecode ──lower──► LIR (SSA) ──verify──► optimize (const-prop
//!   + local CSE + DCE) ──re-verify──► allocate registers ──validate──►
//!   executable { LirProgram, LirExec, peephole LirForm }
//! ```
//!
//! Lowering is translation-validated against the bytecode two ways (see
//! `absint::validate_fused_lowering`): abstract value facts transferred
//! instruction-by-instruction must agree with the stack walker's facts,
//! and the randomized differential suite (`tests/lir.rs`) executes both
//! dispatchers bit-identically over the whole op vocabulary.

pub mod codegen;
pub mod opt;
pub mod vm;

use hb_tensor::DType;

use crate::fuse::Instr;

/// A virtual register: the value produced by one LIR instruction.
/// Canonical programs number them densely in instruction order.
pub type VReg = u32;

/// Hard capacity of the physical register file the VM allocates
/// (`BLOCK`-wide f32 buffers). Programs needing more fail allocation
/// with [`LirError::RegisterPressure`]; real fused kernels use a
/// handful.
pub const REG_FILE: usize = 64;

/// Soft register-pressure budget: `hb-lint` warns when a kernel's
/// allocated register file exceeds this (the working set stops fitting
/// comfortably in L1 alongside the gathered input blocks).
pub const REG_BUDGET: usize = 16;

/// Binary operators (three-address form of the stack machine's binary
/// instructions).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `a + b`.
    Add,
    /// `a - b`.
    Sub,
    /// `a * b`.
    Mul,
    /// `a / b`.
    Div,
    /// IEEE `minNum` (NaN-laundering: `min(NaN, x) == x`).
    Min,
    /// IEEE `maxNum` (NaN-laundering: `max(NaN, x) == x`).
    Max,
    /// `a < b` as 0.0/1.0.
    Lt,
    /// `a <= b` as 0.0/1.0.
    Le,
    /// `a > b` as 0.0/1.0.
    Gt,
    /// `a >= b` as 0.0/1.0.
    Ge,
    /// `a == b` as 0.0/1.0.
    Eq,
    /// `a != b` as 0.0/1.0.
    Ne,
    /// Truthiness AND (`a != 0 && b != 0`; NaN is truthy).
    And,
    /// Truthiness OR.
    Or,
    /// Truthiness XOR.
    Xor,
}

impl BinOp {
    /// True for operators whose result is always exactly 0.0 or 1.0.
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::Eq
                | BinOp::Ne
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
        )
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `a == 0.0` as 0.0/1.0 (NaN maps to 0).
    Not,
    /// `max(a, 0.0)` (NaN propagates — tensor-Relu semantics differ).
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Ln,
    /// Square root.
    Sqrt,
    /// Absolute value.
    Abs,
    /// Negation.
    Neg,
    /// NaN test as 0.0/1.0.
    IsNan,
    /// Normalize to exactly 0.0/1.0 (`a != 0.0`).
    Bool01,
}

impl UnOp {
    /// True for operators whose result is always exactly 0.0 or 1.0.
    pub fn is_predicate(self) -> bool {
        matches!(self, UnOp::Not | UnOp::IsNan | UnOp::Bool01)
    }
}

/// Static type of a virtual register's value.
///
/// `Bool` is the refinement "every element is exactly 0.0 or 1.0" (the
/// kernel's boolean encoding); it is usable anywhere an `F32` is. The
/// verifier checks each instruction's *declared* type against the type
/// inference below, so a corrupted program cannot claim a boolean it
/// never established.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegTy {
    /// Arbitrary f32 (including NaN/±Inf).
    F32,
    /// Exactly 0.0 or 1.0.
    Bool,
}

impl std::fmt::Display for RegTy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegTy::F32 => write!(f, "f32"),
            RegTy::Bool => write!(f, "bool01"),
        }
    }
}

/// One three-address operation. Immediate-operand forms ([`LirOp::BinImm`],
/// [`LirOp::ImmBin`]) exist so constant propagation never has to reorder
/// operands — f32 NaN payloads are not commutative in practice, and the
/// whole tier is held to bit-identity with the stack interpreter.
#[derive(Clone, Debug, PartialEq)]
pub enum LirOp {
    /// Read external input `k` (as f32; the block gather already
    /// converted bool/i64/u8 inputs).
    Load(usize),
    /// A scalar immediate.
    Imm(f32),
    /// `dst = op(a, b)`.
    Bin(BinOp, VReg, VReg),
    /// `dst = op(a, imm)` — right-immediate form.
    BinImm(BinOp, VReg, f32),
    /// `dst = op(imm, a)` — left-immediate form.
    ImmBin(BinOp, f32, VReg),
    /// `dst = op(a)`.
    Un(UnOp, VReg),
    /// `dst = cond != 0.0 ? a : b` (NaN condition is truthy).
    Select {
        /// Condition register.
        cond: VReg,
        /// Taken when the condition is truthy.
        a: VReg,
        /// Taken when the condition is exactly 0.0.
        b: VReg,
    },
    /// `dst = a.clamp(lo, hi)`.
    Clamp(VReg, f32, f32),
    /// `dst = a.powf(e)`.
    Pow(VReg, f32),
}

impl LirOp {
    /// The virtual registers this operation reads, in operand order.
    pub fn operands(&self) -> Vec<VReg> {
        match self {
            LirOp::Load(_) | LirOp::Imm(_) => Vec::new(),
            LirOp::Bin(_, a, b) => vec![*a, *b],
            LirOp::BinImm(_, a, _) | LirOp::ImmBin(_, _, a) => vec![*a],
            LirOp::Un(_, a) | LirOp::Clamp(a, _, _) | LirOp::Pow(a, _) => vec![*a],
            LirOp::Select { cond, a, b } => vec![*cond, *a, *b],
        }
    }
}

/// One LIR instruction: `dst: ty = op`.
#[derive(Clone, Debug, PartialEq)]
pub struct LirInstr {
    /// Destination virtual register (canonically the instruction index).
    pub dst: VReg,
    /// Declared result type; [`LirProgram::verify`] checks it against
    /// the inferred type.
    pub ty: RegTy,
    /// The operation.
    pub op: LirOp,
}

/// A lowered fused-kernel program over virtual registers.
#[derive(Clone, Debug, PartialEq)]
pub struct LirProgram {
    /// Number of external tensor inputs.
    pub n_inputs: usize,
    /// Dtype of the kernel output (the f32 result is converted exactly
    /// like the stack machine's).
    pub out_dtype: DType,
    /// Virtual register holding the kernel result.
    pub out: VReg,
    /// Instructions in execution (topological) order.
    pub instrs: Vec<LirInstr>,
}

/// Typed verification / lowering failures. Every variant names the
/// instruction it fired at, so seeded-corruption tests can assert the
/// exact defect class detected.
#[derive(Clone, Debug, PartialEq)]
pub enum LirError {
    /// The stack bytecode being lowered underflowed (it would have been
    /// rejected by `FusedKernel::try_new` first; defense in depth).
    StackUnderflow {
        /// Bytecode index of the underflowing instruction.
        at: usize,
    },
    /// Lowering finished with other than one value on the stack.
    NotSingleValue {
        /// Values left on the virtual stack.
        left: usize,
    },
    /// An operand register is read before any instruction defines it.
    UseBeforeDef {
        /// Offending instruction index.
        instr: usize,
        /// The undefined register.
        vreg: VReg,
    },
    /// An operand register index is outside the program's register
    /// space entirely.
    OperandOutOfRange {
        /// Offending instruction index.
        instr: usize,
        /// The out-of-range register.
        vreg: VReg,
    },
    /// A virtual register is assigned twice (SSA violation).
    Reassigned {
        /// Offending instruction index.
        instr: usize,
        /// The doubly-assigned register.
        vreg: VReg,
    },
    /// A destination register index is outside the program's register
    /// space.
    DstOutOfRange {
        /// Offending instruction index.
        instr: usize,
        /// The out-of-range register.
        vreg: VReg,
    },
    /// An instruction's declared type disagrees with type inference —
    /// a type-confused operand or forged boolean refinement.
    TypeConfused {
        /// Offending instruction index.
        instr: usize,
        /// The type the instruction declares.
        declared: RegTy,
        /// The type inference derives.
        inferred: RegTy,
    },
    /// A `Load` addresses an input slot the kernel does not have.
    InputOutOfRange {
        /// Offending instruction index.
        instr: usize,
        /// The loaded slot.
        slot: usize,
        /// Inputs the kernel declares.
        n_inputs: usize,
    },
    /// The output register is never defined (dead output register).
    DeadOutput {
        /// The undefined output register.
        out: VReg,
        /// Registers the program defines.
        defined: usize,
    },
    /// Register allocation needs more physical registers than the file
    /// holds.
    RegisterPressure {
        /// Registers the program's liveness demands.
        needed: usize,
        /// The register-file capacity ([`REG_FILE`]).
        limit: usize,
    },
    /// The allocation's location table does not cover the program.
    AllocLenMismatch {
        /// Locations in the allocation.
        locs: usize,
        /// Instructions in the program.
        instrs: usize,
    },
    /// An instruction's location kind is wrong (e.g. a `Load` not
    /// mapped to its input slot, or a compute result without a
    /// physical register).
    LocKindMismatch {
        /// Offending instruction index.
        instr: usize,
    },
    /// A physical register index is outside the allocated file.
    PhysRegOutOfRange {
        /// Offending instruction index.
        instr: usize,
        /// The out-of-range physical register.
        reg: usize,
        /// Allocated register-file size.
        n_regs: usize,
    },
    /// A destination physical register aliases one of its own operand
    /// registers (the VM moves the destination buffer out while
    /// reading operands, so aliasing would read freed storage).
    AliasedDest {
        /// Offending instruction index.
        instr: usize,
        /// The aliased physical register.
        reg: usize,
    },
    /// A physical register is overwritten while an earlier value
    /// stored in it is still live.
    Clobbered {
        /// Instruction that reads the clobbered value.
        instr: usize,
        /// The virtual register whose value was lost.
        vreg: VReg,
        /// The physical register it lived in.
        reg: usize,
    },
    /// An immediate's prefill entry is missing or carries different
    /// bits than the instruction's immediate.
    PrefillMismatch {
        /// Offending instruction index.
        instr: usize,
    },
}

impl std::fmt::Display for LirError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LirError::StackUnderflow { at } => {
                write!(f, "stack bytecode underflows at instruction {at}")
            }
            LirError::NotSingleValue { left } => {
                write!(f, "lowering left {left} values on the stack, expected 1")
            }
            LirError::UseBeforeDef { instr, vreg } => {
                write!(f, "instr {instr}: register r{vreg} used before definition")
            }
            LirError::OperandOutOfRange { instr, vreg } => {
                write!(f, "instr {instr}: operand register r{vreg} out of range")
            }
            LirError::Reassigned { instr, vreg } => {
                write!(f, "instr {instr}: register r{vreg} assigned twice")
            }
            LirError::DstOutOfRange { instr, vreg } => {
                write!(f, "instr {instr}: destination register r{vreg} out of range")
            }
            LirError::TypeConfused {
                instr,
                declared,
                inferred,
            } => write!(
                f,
                "instr {instr}: type-confused operand: declares {declared}, inference says {inferred}"
            ),
            LirError::InputOutOfRange {
                instr,
                slot,
                n_inputs,
            } => write!(
                f,
                "instr {instr}: loads input {slot} but the kernel has {n_inputs} inputs"
            ),
            LirError::DeadOutput { out, defined } => write!(
                f,
                "output register r{out} is dead: only {defined} registers are defined"
            ),
            LirError::RegisterPressure { needed, limit } => write!(
                f,
                "register pressure {needed} exceeds the register file ({limit})"
            ),
            LirError::AllocLenMismatch { locs, instrs } => write!(
                f,
                "allocation covers {locs} registers but the program has {instrs}"
            ),
            LirError::LocKindMismatch { instr } => {
                write!(f, "instr {instr}: allocated location kind mismatches the op")
            }
            LirError::PhysRegOutOfRange { instr, reg, n_regs } => write!(
                f,
                "instr {instr}: physical register {reg} out of range (file holds {n_regs})"
            ),
            LirError::AliasedDest { instr, reg } => write!(
                f,
                "instr {instr}: destination aliases operand register {reg}"
            ),
            LirError::Clobbered { instr, vreg, reg } => write!(
                f,
                "instr {instr}: value r{vreg} in physical register {reg} was clobbered before its last use"
            ),
            LirError::PrefillMismatch { instr } => {
                write!(f, "instr {instr}: immediate prefill missing or bit-mismatched")
            }
        }
    }
}

impl std::error::Error for LirError {}

/// Maps a stack binary instruction to its [`BinOp`], if it is one.
pub(crate) fn bin_of(ins: &Instr) -> Option<BinOp> {
    Some(match ins {
        Instr::Add => BinOp::Add,
        Instr::Sub => BinOp::Sub,
        Instr::Mul => BinOp::Mul,
        Instr::Div => BinOp::Div,
        Instr::Min => BinOp::Min,
        Instr::Max => BinOp::Max,
        Instr::Lt => BinOp::Lt,
        Instr::Le => BinOp::Le,
        Instr::Gt => BinOp::Gt,
        Instr::Ge => BinOp::Ge,
        Instr::Eq => BinOp::Eq,
        Instr::Ne => BinOp::Ne,
        Instr::And => BinOp::And,
        Instr::Or => BinOp::Or,
        Instr::Xor => BinOp::Xor,
        _ => return None,
    })
}

/// Maps a stack unary instruction to its [`UnOp`], if it is one.
pub(crate) fn un_of(ins: &Instr) -> Option<UnOp> {
    Some(match ins {
        Instr::Not => UnOp::Not,
        Instr::Relu => UnOp::Relu,
        Instr::Sigmoid => UnOp::Sigmoid,
        Instr::Tanh => UnOp::Tanh,
        Instr::Exp => UnOp::Exp,
        Instr::Ln => UnOp::Ln,
        Instr::Sqrt => UnOp::Sqrt,
        Instr::Abs => UnOp::Abs,
        Instr::Neg => UnOp::Neg,
        Instr::IsNan => UnOp::IsNan,
        Instr::Bool01 => UnOp::Bool01,
        _ => return None,
    })
}

impl LirProgram {
    /// Lowers a (stack-validated) bytecode program into canonical SSA
    /// LIR: instruction `i` defines virtual register `i`, in the exact
    /// order the stack machine would compute the values. One vreg per
    /// bytecode instruction, so translation validation can compare
    /// value facts position-by-position.
    ///
    /// # Errors
    ///
    /// Returns [`LirError::StackUnderflow`] / [`LirError::NotSingleValue`]
    /// for malformed bytecode (already rejected upstream by
    /// `FusedKernel::try_new`).
    pub fn lower(program: &[Instr], n_inputs: usize, out_dtype: DType) -> Result<Self, LirError> {
        let mut instrs: Vec<LirInstr> = Vec::with_capacity(program.len());
        let mut stack: Vec<VReg> = Vec::with_capacity(8);
        for (at, ins) in program.iter().enumerate() {
            let pop = |stack: &mut Vec<VReg>| stack.pop().ok_or(LirError::StackUnderflow { at });
            let op = if let Some(b) = bin_of(ins) {
                let rhs = pop(&mut stack)?;
                let lhs = pop(&mut stack)?;
                LirOp::Bin(b, lhs, rhs)
            } else if let Some(u) = un_of(ins) {
                LirOp::Un(u, pop(&mut stack)?)
            } else {
                match ins {
                    Instr::Load(k) => LirOp::Load(*k),
                    Instr::Imm(v) => LirOp::Imm(*v),
                    Instr::Select => {
                        let b = pop(&mut stack)?;
                        let a = pop(&mut stack)?;
                        let cond = pop(&mut stack)?;
                        LirOp::Select { cond, a, b }
                    }
                    Instr::Clamp(lo, hi) => LirOp::Clamp(pop(&mut stack)?, *lo, *hi),
                    Instr::Pow(e) => LirOp::Pow(pop(&mut stack)?, *e),
                    Instr::AddImm(c) => LirOp::BinImm(BinOp::Add, pop(&mut stack)?, *c),
                    Instr::MulImm(c) => LirOp::BinImm(BinOp::Mul, pop(&mut stack)?, *c),
                    other => unreachable!("stack instruction not covered by lowering: {other:?}"),
                }
            };
            let dst = instrs.len() as VReg;
            let ty = infer_ty(&op, |v| instrs.get(v as usize).map_or(RegTy::F32, |i| i.ty));
            instrs.push(LirInstr { dst, ty, op });
            stack.push(dst);
        }
        if stack.len() != 1 {
            return Err(LirError::NotSingleValue { left: stack.len() });
        }
        Ok(LirProgram {
            n_inputs,
            out_dtype,
            out: stack[0],
            instrs,
        })
    }

    /// The static verification gate: a program must pass before it is
    /// ever executable. Checks, per instruction: destination in range
    /// and assigned exactly once (single assignment), every operand
    /// defined by an *earlier* instruction (def-before-use), `Load`
    /// slots inside the kernel's input count, and the declared type
    /// equal to the inferred type. Finally the output register must be
    /// defined (no dead output).
    ///
    /// # Errors
    ///
    /// The first defect found, as a typed [`LirError`].
    pub fn verify(&self) -> Result<(), LirError> {
        let n = self.instrs.len();
        let mut ty_of: Vec<Option<RegTy>> = vec![None; n];
        for (i, ins) in self.instrs.iter().enumerate() {
            let d = ins.dst as usize;
            if d >= n {
                return Err(LirError::DstOutOfRange {
                    instr: i,
                    vreg: ins.dst,
                });
            }
            if ty_of[d].is_some() {
                return Err(LirError::Reassigned {
                    instr: i,
                    vreg: ins.dst,
                });
            }
            for v in ins.op.operands() {
                let vi = v as usize;
                if vi >= n {
                    return Err(LirError::OperandOutOfRange { instr: i, vreg: v });
                }
                if ty_of[vi].is_none() {
                    return Err(LirError::UseBeforeDef { instr: i, vreg: v });
                }
            }
            if let LirOp::Load(slot) = ins.op {
                if slot >= self.n_inputs {
                    return Err(LirError::InputOutOfRange {
                        instr: i,
                        slot,
                        n_inputs: self.n_inputs,
                    });
                }
            }
            let inferred = infer_ty(&ins.op, |v| {
                ty_of
                    .get(v as usize)
                    .copied()
                    .flatten()
                    .unwrap_or(RegTy::F32)
            });
            if ins.ty != inferred {
                return Err(LirError::TypeConfused {
                    instr: i,
                    declared: ins.ty,
                    inferred,
                });
            }
            ty_of[d] = Some(ins.ty);
        }
        let o = self.out as usize;
        if o >= n || ty_of[o].is_none() {
            return Err(LirError::DeadOutput {
                out: self.out,
                defined: ty_of.iter().filter(|t| t.is_some()).count(),
            });
        }
        Ok(())
    }

    /// The declared type of virtual register `v` (`F32` when out of
    /// range; callers verify first).
    pub fn ty(&self, v: VReg) -> RegTy {
        // Canonical programs index registers by instruction; fall back
        // to a scan for non-canonical (hand-built test) programs.
        match self.instrs.get(v as usize) {
            Some(i) if i.dst == v => i.ty,
            _ => self
                .instrs
                .iter()
                .find(|i| i.dst == v)
                .map_or(RegTy::F32, |i| i.ty),
        }
    }
}

/// Infers an operation's result type from its operand types.
fn infer_ty(op: &LirOp, ty_of: impl Fn(VReg) -> RegTy) -> RegTy {
    match op {
        LirOp::Load(_) => RegTy::F32,
        LirOp::Imm(v) => {
            if *v == 0.0 || *v == 1.0 {
                RegTy::Bool
            } else {
                RegTy::F32
            }
        }
        LirOp::Bin(b, _, _) | LirOp::BinImm(b, _, _) | LirOp::ImmBin(b, _, _) => {
            if b.is_predicate() {
                RegTy::Bool
            } else {
                RegTy::F32
            }
        }
        LirOp::Un(u, _) => {
            if u.is_predicate() {
                RegTy::Bool
            } else {
                RegTy::F32
            }
        }
        LirOp::Select { a, b, .. } => {
            if ty_of(*a) == RegTy::Bool && ty_of(*b) == RegTy::Bool {
                RegTy::Bool
            } else {
                RegTy::F32
            }
        }
        LirOp::Clamp(_, _, _) | LirOp::Pow(_, _) => RegTy::F32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_program() -> LirProgram {
        // (in0 + in1) * 2
        LirProgram::lower(
            &[
                Instr::Load(0),
                Instr::Load(1),
                Instr::Add,
                Instr::MulImm(2.0),
            ],
            2,
            DType::F32,
        )
        .unwrap_or_else(|e| panic!("lowering failed: {e}"))
    }

    #[test]
    fn lowering_is_canonical_ssa() {
        let p = simple_program();
        assert_eq!(p.instrs.len(), 4);
        for (i, ins) in p.instrs.iter().enumerate() {
            assert_eq!(ins.dst as usize, i);
        }
        assert_eq!(p.out, 3);
        assert_eq!(p.instrs[2].op, LirOp::Bin(BinOp::Add, 0, 1));
        assert_eq!(p.instrs[3].op, LirOp::BinImm(BinOp::Mul, 2, 2.0));
        p.verify().unwrap_or_else(|e| panic!("verify: {e}"));
    }

    #[test]
    fn select_lowering_keeps_operand_order() {
        // where(in0 < in1, in0, in1)
        let p = LirProgram::lower(
            &[
                Instr::Load(0),
                Instr::Load(1),
                Instr::Lt,
                Instr::Load(0),
                Instr::Load(1),
                Instr::Select,
            ],
            2,
            DType::F32,
        )
        .unwrap_or_else(|e| panic!("lowering failed: {e}"));
        assert_eq!(
            p.instrs[5].op,
            LirOp::Select {
                cond: 2,
                a: 3,
                b: 4
            }
        );
        assert_eq!(p.instrs[2].ty, RegTy::Bool);
        p.verify().unwrap_or_else(|e| panic!("verify: {e}"));
    }

    #[test]
    fn verify_rejects_use_before_def() {
        let mut p = simple_program();
        // Make the Add read a register defined later.
        p.instrs[2].op = LirOp::Bin(BinOp::Add, 0, 3);
        assert_eq!(
            p.verify(),
            Err(LirError::UseBeforeDef { instr: 2, vreg: 3 })
        );
    }

    #[test]
    fn verify_rejects_type_confusion() {
        let mut p = simple_program();
        p.instrs[2].ty = RegTy::Bool; // Add does not produce a boolean.
        assert_eq!(
            p.verify(),
            Err(LirError::TypeConfused {
                instr: 2,
                declared: RegTy::Bool,
                inferred: RegTy::F32
            })
        );
    }

    #[test]
    fn verify_rejects_dead_output() {
        let mut p = simple_program();
        p.out = 17;
        assert!(matches!(p.verify(), Err(LirError::DeadOutput { .. })));
    }
}
