//! Fault injection for chaos testing the serving stack.
//!
//! A [`FaultPlan`] is attached to an [`crate::Executable`] at lowering
//! time and deterministically triggers the failure modes a production
//! serving runtime must survive: device OOM, slow kernels (deadline
//! pressure), kernel errors, compile-pass failures, and NaN poisoning
//! (silent corruption that the serving layer must *detect*, since the
//! executor reports success).
//!
//! Everything here is simulation — no fault actually exhausts memory or
//! corrupts unrelated state. The point is that `hb-serve`'s degradation
//! ladder and the chaos test suite can prove that every fault either
//! surfaces as a typed error or is masked by a lower rung producing
//! correct output.

use std::time::Duration;

/// Which executions a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultScope {
    /// Fault fires on every run.
    #[default]
    Always,
    /// Fault fires on the first `n` runs, then the executable recovers —
    /// models transient faults that retry-with-backoff should absorb.
    FirstRuns(u32),
}

/// A deterministic fault-injection plan.
///
/// The default plan injects nothing. Each field independently enables
/// one failure mode; the chaos suite exercises every combination.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Pretend the device ran out of memory: every run fails with
    /// [`crate::ExecError::DeviceOom`].
    pub oom: bool,
    /// Sleep this long per (non-metadata) kernel launch, simulating a
    /// degraded device or noisy neighbor. Surfaces as deadline misses in
    /// the serving layer, never as an error here.
    pub slow_kernel: Option<Duration>,
    /// Fail the first kernel launch of a run with
    /// [`crate::ExecError::Kernel`].
    pub kernel_error: bool,
    /// Fail lowering to the `Compiled` backend, simulating an
    /// optimization-pass bug. Eager/Script lowering is unaffected, which
    /// is exactly what lets the serving ladder degrade around it.
    pub compile_fail: bool,
    /// Overwrite every f32 output with NaN *after* a successful run —
    /// silent corruption. The executor still returns `Ok`; detecting
    /// this is the serving layer's job.
    pub nan_poison: bool,
    /// How long run-time faults (`oom`, `slow_kernel`, `kernel_error`,
    /// `nan_poison`) persist.
    pub scope: FaultScope,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True if no fault is enabled.
    pub fn is_none(&self) -> bool {
        !self.oom
            && self.slow_kernel.is_none()
            && !self.kernel_error
            && !self.compile_fail
            && !self.nan_poison
    }

    /// True if run-time faults should fire for the `run_index`-th
    /// execution (0-based).
    pub fn active_for_run(&self, run_index: u64) -> bool {
        match self.scope {
            FaultScope::Always => true,
            FaultScope::FirstRuns(n) => run_index < u64::from(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        assert!(p.active_for_run(0));
    }

    #[test]
    fn first_runs_scope_expires() {
        let p = FaultPlan {
            kernel_error: true,
            scope: FaultScope::FirstRuns(2),
            ..FaultPlan::none()
        };
        assert!(p.active_for_run(0));
        assert!(p.active_for_run(1));
        assert!(!p.active_for_run(2));
    }
}
