//! Fault injection for chaos testing the serving stack.
//!
//! A [`FaultPlan`] is attached to an [`crate::Executable`] at lowering
//! time and deterministically triggers the failure modes a production
//! serving runtime must survive: device OOM, slow kernels (deadline
//! pressure), kernel errors, compile-pass failures, and NaN poisoning
//! (silent corruption that the serving layer must *detect*, since the
//! executor reports success).
//!
//! Everything here is simulation — no fault actually exhausts memory or
//! corrupts unrelated state. The point is that `hb-serve`'s degradation
//! ladder and the chaos test suite can prove that every fault either
//! surfaces as a typed error or is masked by a lower rung producing
//! correct output.

use std::time::Duration;

/// Which executions a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultScope {
    /// Fault fires on every run.
    #[default]
    Always,
    /// Fault fires on the first `n` runs, then the executable recovers —
    /// models transient faults that retry-with-backoff should absorb.
    FirstRuns(u32),
    /// Fault fires on roughly one run in `period`, on a pseudo-random
    /// schedule derived deterministically from [`FaultPlan::seed`] and
    /// the run index — intermittent faults that nonetheless reproduce
    /// exactly under the same seed (`HB_CHAOS_SEED`).
    Seeded {
        /// Average runs between firings (`0` or `1` fires every run).
        period: u32,
    },
}

/// A deterministic fault-injection plan.
///
/// The default plan injects nothing. Each field independently enables
/// one failure mode; the chaos suite exercises every combination.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Pretend the device ran out of memory: every run fails with
    /// [`crate::ExecError::DeviceOom`].
    pub oom: bool,
    /// Sleep this long per (non-metadata) kernel launch, simulating a
    /// degraded device or noisy neighbor. Surfaces as deadline misses in
    /// the serving layer, never as an error here.
    pub slow_kernel: Option<Duration>,
    /// Fail the first kernel launch of a run with
    /// [`crate::ExecError::Kernel`].
    pub kernel_error: bool,
    /// Fail lowering to the `Compiled` backend, simulating an
    /// optimization-pass bug. Eager/Script lowering is unaffected, which
    /// is exactly what lets the serving ladder degrade around it.
    pub compile_fail: bool,
    /// Overwrite every f32 output with NaN *after* a successful run —
    /// silent corruption. The executor still returns `Ok`; detecting
    /// this is the serving layer's job.
    pub nan_poison: bool,
    /// How long run-time faults (`oom`, `slow_kernel`, `kernel_error`,
    /// `nan_poison`) persist.
    pub scope: FaultScope,
    /// Seed for the [`FaultScope::Seeded`] schedule, and the value chaos
    /// suites print so a failing run reproduces exactly. `0` by default;
    /// [`FaultPlan::with_env_seed`] lets `HB_CHAOS_SEED` override it.
    pub seed: u64,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Applies the `HB_CHAOS_SEED` environment override to this plan's
    /// seed, if set — the hook every chaos/soak suite threads through so
    /// a CI failure reproduces locally with one env var.
    pub fn with_env_seed(mut self) -> FaultPlan {
        if let Some(seed) = chaos_seed_override() {
            self.seed = seed;
        }
        self
    }

    /// True if no fault is enabled.
    pub fn is_none(&self) -> bool {
        !self.oom
            && self.slow_kernel.is_none()
            && !self.kernel_error
            && !self.compile_fail
            && !self.nan_poison
    }

    /// True if run-time faults should fire for the `run_index`-th
    /// execution (0-based). Deterministic: the same plan (including
    /// seed) and run index always agree.
    pub fn active_for_run(&self, run_index: u64) -> bool {
        match self.scope {
            FaultScope::Always => true,
            FaultScope::FirstRuns(n) => run_index < u64::from(n),
            FaultScope::Seeded { period } => {
                if period <= 1 {
                    return true;
                }
                splitmix64(self.seed ^ run_index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                    .is_multiple_of(u64::from(period))
            }
        }
    }
}

/// The `HB_CHAOS_SEED` override, when set and parseable (decimal, or
/// hex with an `0x` prefix).
pub fn chaos_seed_override() -> Option<u64> {
    std::env::var("HB_CHAOS_SEED")
        .ok()
        .as_deref()
        .and_then(parse_chaos_seed)
}

/// Pure parser behind [`chaos_seed_override`], separated so tests need
/// not mutate process-global environment state.
fn parse_chaos_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed hash from (seed, index) to
/// a fire/skip decision.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        assert!(p.active_for_run(0));
    }

    #[test]
    fn first_runs_scope_expires() {
        let p = FaultPlan {
            kernel_error: true,
            scope: FaultScope::FirstRuns(2),
            ..FaultPlan::none()
        };
        assert!(p.active_for_run(0));
        assert!(p.active_for_run(1));
        assert!(!p.active_for_run(2));
    }

    #[test]
    fn seeded_scope_is_deterministic_and_seed_sensitive() {
        let plan = |seed| FaultPlan {
            kernel_error: true,
            scope: FaultScope::Seeded { period: 4 },
            seed,
            ..FaultPlan::none()
        };
        let fires =
            |seed: u64| -> Vec<bool> { (0..256).map(|i| plan(seed).active_for_run(i)).collect() };
        assert_eq!(fires(7), fires(7), "same seed → same schedule");
        assert_ne!(fires(7), fires(8), "different seed → different schedule");
        let count = fires(7).iter().filter(|&&b| b).count();
        assert!(
            (16..=112).contains(&count),
            "period-4 schedule should fire roughly 1-in-4, got {count}/256"
        );
    }

    #[test]
    fn seeded_scope_degenerate_periods_always_fire() {
        for period in [0, 1] {
            let p = FaultPlan {
                nan_poison: true,
                scope: FaultScope::Seeded { period },
                seed: 3,
                ..FaultPlan::none()
            };
            assert!(p.active_for_run(0) && p.active_for_run(99));
        }
    }

    #[test]
    fn chaos_seed_parses_decimal_and_hex() {
        assert_eq!(parse_chaos_seed("42"), Some(42));
        assert_eq!(parse_chaos_seed(" 42 "), Some(42));
        assert_eq!(parse_chaos_seed("0xdeadbeef"), Some(0xdead_beef));
        assert_eq!(parse_chaos_seed("0XFF"), Some(255));
        assert_eq!(parse_chaos_seed("nonsense"), None);
        assert_eq!(parse_chaos_seed(""), None);
    }
}
