//! Static cost certification: sound per-pipeline work/footprint bounds
//! (DESIGN.md §5g).
//!
//! The verifier proves *what shape* a pipeline computes; this module
//! proves *how much work* that computation performs. It walks the
//! optimized graph with the same symbolic shape facts the verifier
//! derived — every dimension a [`SymDim`] monomial `coeff · B^pow` over
//! the batch size `B` — and mirrors the concrete roofline model
//! [`Op::cost`] symbolically, yielding per-node and whole-graph
//! polynomials in `B` for three counters:
//!
//! * **flops** — modeled floating-point work,
//! * **traversals** — output elements written by launched kernels,
//! * **bytes** — modeled memory traffic.
//!
//! Concretizing the polynomials at a batch bucket produces a
//! [`CostCert`]: counters plus the arena footprint of the PR-3 memory
//! plan at that bucket (re-audited by the independent plan auditor
//! before it is certified) and the kernel-launch count.
//!
//! # The honesty rule
//!
//! The **counters are sound**: they are derived from the same formulas
//! the executor's measured [`crate::RunStats`] accumulates, over shapes
//! the verifier proved, so for every admissible batch the measured
//! counters equal the certified ones *exactly* (the soundness suite
//! gates this across the model zoo). The **wall-clock envelope is
//! calibrated, not sound**: [`envelope_for`] multiplies the per-class
//! counter split by a small per-kernel-class rate table microbenched
//! once on this machine (cached on disk like `hb_tensor::tune`) and
//! widened by generous margins. The suite validates `measured ∈
//! [lo·(1−ε), hi·(1+ε)]`, but a different machine, thermal state, or
//! scheduler can in principle escape it — which is why certificates
//! embed only the counters, never the envelope.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use hb_tensor::{DType, DynTensor, Tensor};

use crate::graph::{Graph, GraphError};
use crate::op::Op;
use crate::plan::{MemoryPlan, PlanError};
use crate::verify::{ShapeFact, SymDim};

/// Batch buckets certificates are derived at by default — the serving
/// coalescer's bucket ladder prefix plus a large-batch point.
pub const COST_BUCKETS: [usize; 4] = [1, 16, 64, 256];

/// One monomial `coeff · B^pow` of a cost polynomial. Coefficients are
/// exact integers stored in f64 (the counter formulas only ever produce
/// integers; f64 keeps them bit-compatible with the measured
/// [`crate::RunStats`] accumulators).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PolyTerm {
    /// Constant factor.
    pub coeff: f64,
    /// Power of the symbolic batch size.
    pub pow: u32,
}

hb_json::json_struct!(PolyTerm { coeff, pow });

/// A cost counter as a polynomial in the symbolic batch size `B`:
/// the sum of its terms, kept sorted by ascending power with like
/// powers merged.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CostPoly {
    /// Monomial terms, ascending in `pow`, at most one per power.
    pub terms: Vec<PolyTerm>,
}

hb_json::json_struct!(CostPoly { terms });

impl CostPoly {
    /// The zero polynomial.
    pub fn zero() -> CostPoly {
        CostPoly::default()
    }

    /// Adds `coeff · B^pow`, merging with an existing term of the same
    /// power.
    pub fn add_term(&mut self, coeff: f64, pow: u32) {
        if coeff == 0.0 {
            return;
        }
        match self.terms.binary_search_by_key(&pow, |t| t.pow) {
            Ok(i) => self.terms[i].coeff += coeff,
            Err(i) => self.terms.insert(i, PolyTerm { coeff, pow }),
        }
    }

    /// Adds a [`SymDim`] monomial scaled by `scale`.
    fn add_mono(&mut self, m: SymDim, scale: f64) -> Option<()> {
        match m {
            SymDim::Sym { coeff, pow } => {
                self.add_term(coeff as f64 * scale, pow);
                Some(())
            }
            SymDim::Unknown => None,
        }
    }

    /// Accumulates another polynomial.
    pub fn absorb(&mut self, other: &CostPoly) {
        for t in &other.terms {
            self.add_term(t.coeff, t.pow);
        }
    }

    /// Evaluates the polynomial at concrete batch `b`. Exact as long as
    /// every term value stays below 2^53 (the counter formulas do).
    pub fn eval(&self, b: usize) -> f64 {
        self.terms
            .iter()
            .map(|t| {
                let p = (b as u128).pow(t.pow);
                t.coeff * p as f64
            })
            .sum()
    }

    /// True when no term survives.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }
}

impl std::fmt::Display for CostPoly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        // Highest power first, the way humans read polynomials.
        for (i, t) in self.terms.iter().rev().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            match t.pow {
                0 => write!(f, "{}", t.coeff)?,
                1 if t.coeff == 1.0 => write!(f, "B")?,
                1 => write!(f, "{}*B", t.coeff)?,
                p if t.coeff == 1.0 => write!(f, "B^{p}")?,
                p => write!(f, "{}*B^{p}", t.coeff)?,
            }
        }
        Ok(())
    }
}

/// Why a graph has no cost certificate.
#[derive(Debug, Clone, PartialEq)]
pub enum CostError {
    /// The verifier rejected the graph (nothing to certify).
    Graph(GraphError),
    /// A node's counters depend on a statically unknown dimension, so
    /// no sound bound exists.
    Unknown {
        /// First offending node.
        node: usize,
        /// Operator label.
        op: String,
    },
    /// The memory planner could not concretize the graph at the bucket.
    Plan(PlanError),
    /// The independent plan auditor rejected the plan whose arena bound
    /// the certificate would have recorded.
    Audit(String),
}

impl std::fmt::Display for CostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CostError::Graph(e) => write!(f, "cost: graph rejected: {e}"),
            CostError::Unknown { node, op } => {
                write!(f, "cost: node {node} ({op}) has statically unknown work")
            }
            CostError::Plan(e) => write!(f, "cost: memory plan failed: {e}"),
            CostError::Audit(e) => write!(f, "cost: plan audit failed: {e}"),
        }
    }
}

impl std::error::Error for CostError {}

/// Coarse kernel-class attribution of one node, the key into the
/// calibrated rate table. Fused kernels carry the codegen class the
/// dispatcher actually selected (`fused:chain2`, `fused:vm`, …).
fn node_class(op: &Op) -> Option<String> {
    Some(match op {
        Op::MatMul | Op::Sqdist => "matmul".to_string(),
        Op::Exp | Op::Ln | Op::Sqrt | Op::Tanh | Op::Sigmoid | Op::PowScalar(_) => {
            "transcendental".to_string()
        }
        Op::Softmax { .. }
        | Op::LogSumExp { .. }
        | Op::Sum { .. }
        | Op::Mean { .. }
        | Op::ReduceMax { .. }
        | Op::ArgMax { .. } => "reduce".to_string(),
        Op::Gather { .. } | Op::GatherRows | Op::IndexSelect { .. } => "gather".to_string(),
        Op::Fused(k) => format!("fused:{}", k.class_label()),
        Op::Input(_)
        | Op::Const(_)
        | Op::Reshape { .. }
        | Op::Unsqueeze(_)
        | Op::Squeeze(_)
        | Op::Transpose(..)
        | Op::Slice { .. } => return None,
        _ => "element".to_string(),
    })
}

/// Symbolic per-node counters: the [`Op::cost`] roofline model mirrored
/// over [`ShapeFact`]s instead of concrete tensors.
#[derive(Clone, Debug)]
pub struct NodeCost {
    /// Graph node id.
    pub node: usize,
    /// Operator label (payloads elided).
    pub op: String,
    /// Rate-table class; `None` for metadata-only nodes.
    pub class: Option<String>,
    /// Modeled FLOPs as a polynomial in `B`.
    pub flops: CostPoly,
    /// Output elements traversed, polynomial in `B`.
    pub traversals: CostPoly,
    /// Modeled bytes moved, polynomial in `B`.
    pub bytes: CostPoly,
}

/// Symbolic product of a fact's dims (a scalar fact is the empty
/// product, 1).
fn numel(fact: &ShapeFact) -> Option<SymDim> {
    let dims = fact.dims()?;
    let mut n = SymDim::fixed(1);
    for &d in dims {
        n = n.times(d);
    }
    match n {
        SymDim::Unknown => None,
        m => Some(m),
    }
}

/// Symbolic byte size of a fact at a dtype.
fn nbytes(fact: &ShapeFact, dt: DType) -> Option<SymDim> {
    Some(numel(fact)?.times(SymDim::fixed(dt.size_of())))
}

/// `max(m, 1)` over all batch sizes `B ≥ 1`: a nonzero monomial's
/// minimum is its coefficient, so only the zero monomial clamps.
fn max1(m: SymDim) -> SymDim {
    match m {
        SymDim::Sym { coeff: 0, .. } => SymDim::fixed(1),
        other => other,
    }
}

/// Derives the symbolic counters of every node, or the first reason no
/// sound derivation exists.
///
/// # Errors
///
/// [`CostError::Graph`] when shape inference fails, [`CostError::Unknown`]
/// when a needed dimension is statically unknown.
pub fn cost_nodes(graph: &Graph) -> Result<Vec<NodeCost>, CostError> {
    let facts = graph.infer_shapes().map_err(CostError::Graph)?;
    let dtypes = graph.infer_dtypes();
    let mut out = Vec::with_capacity(graph.nodes.len());
    for (id, node) in graph.nodes.iter().enumerate() {
        let unknown = || CostError::Unknown {
            node: id,
            op: node.op.label(),
        };
        let class = node_class(&node.op);
        if class.is_none() {
            // Metadata-only: zero cost by definition, shapes irrelevant.
            out.push(NodeCost {
                node: id,
                op: node.op.label(),
                class: None,
                flops: CostPoly::zero(),
                traversals: CostPoly::zero(),
                bytes: CostPoly::zero(),
            });
            continue;
        }
        let out_fact = &facts[id];
        let out_dt = dtypes[id];
        let out_n = numel(out_fact).ok_or_else(unknown)?;
        let out_bytes = nbytes(out_fact, out_dt).ok_or_else(unknown)?;
        let mut in_bytes = CostPoly::zero();
        for &i in &node.inputs {
            in_bytes
                .add_mono(nbytes(&facts[i], dtypes[i]).ok_or_else(unknown)?, 1.0)
                .ok_or_else(unknown)?;
        }

        let mut flops = CostPoly::zero();
        let mut bytes = CostPoly::zero();
        let std_bytes = |bytes: &mut CostPoly| {
            bytes.absorb(&in_bytes);
            let _ = bytes.add_mono(out_bytes, 1.0);
        };
        match &node.op {
            Op::MatMul => {
                let a = facts[node.inputs[0]].dims().ok_or_else(unknown)?;
                let b = facts[node.inputs[1]].dims().ok_or_else(unknown)?;
                if a.len() < 2 || b.is_empty() {
                    return Err(unknown());
                }
                let m = a[a.len() - 2];
                let k = a[a.len() - 1];
                let n = b[b.len() - 1];
                let mn = m.times(n);
                // Mirrors `out_n / (m*n).max(1.0)` then `.max(1.0)`:
                // a zero m·n zeroes out_n too, so the concrete quotient
                // is 0 and clamps to 1 — with the whole product already 0.
                let batch = match mn {
                    SymDim::Sym { coeff: 0, .. } => SymDim::fixed(1),
                    mn => max1(out_n.div_exact(mn).ok_or_else(unknown)?),
                };
                let work = m.times(k).times(n).times(batch);
                flops.add_mono(work, 2.0).ok_or_else(unknown)?;
                std_bytes(&mut bytes);
            }
            Op::Sqdist => {
                let a = facts[node.inputs[0]].dims().ok_or_else(unknown)?;
                let bdims = facts[node.inputs[1]].dims().ok_or_else(unknown)?;
                if a.len() < 2 || bdims.is_empty() {
                    return Err(unknown());
                }
                let n = a[0];
                let m = bdims[0];
                let d = a[1];
                flops
                    .add_mono(n.times(m).times(d), 2.0)
                    .ok_or_else(unknown)?;
                flops.add_mono(n.times(m), 3.0).ok_or_else(unknown)?;
                std_bytes(&mut bytes);
            }
            Op::Exp | Op::Ln | Op::Sqrt | Op::Tanh | Op::Sigmoid | Op::PowScalar(_) => {
                flops.add_mono(out_n, 10.0).ok_or_else(unknown)?;
                std_bytes(&mut bytes);
            }
            Op::Softmax { .. } | Op::LogSumExp { .. } => {
                let in_n = numel(&facts[node.inputs[0]]).ok_or_else(unknown)?;
                flops.add_mono(in_n, 12.0).ok_or_else(unknown)?;
                for t in &in_bytes.terms {
                    bytes.add_term(2.0 * t.coeff, t.pow);
                }
                bytes.add_mono(out_bytes, 1.0).ok_or_else(unknown)?;
            }
            Op::Gather { .. } | Op::GatherRows | Op::IndexSelect { .. } => {
                flops.add_mono(out_n, 1.0).ok_or_else(unknown)?;
                bytes.add_mono(out_bytes, 2.0).ok_or_else(unknown)?;
                if let Some(&last) = node.inputs.last() {
                    bytes
                        .add_mono(nbytes(&facts[last], dtypes[last]).ok_or_else(unknown)?, 1.0)
                        .ok_or_else(unknown)?;
                }
            }
            Op::Fused(k) => {
                flops
                    .add_mono(out_n, k.program_len() as f64)
                    .ok_or_else(unknown)?;
                std_bytes(&mut bytes);
            }
            _ => {
                flops.add_mono(out_n, 1.0).ok_or_else(unknown)?;
                std_bytes(&mut bytes);
            }
        }
        let mut traversals = CostPoly::zero();
        traversals.add_mono(out_n, 1.0).ok_or_else(unknown)?;
        out.push(NodeCost {
            node: id,
            op: node.op.label(),
            class,
            flops,
            traversals,
            bytes,
        });
    }
    Ok(out)
}

/// Whole-graph symbolic counters: the sum of every node's polynomials
/// plus the (batch-independent) kernel-launch count.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CostSummary {
    /// Total modeled FLOPs per run, polynomial in `B`.
    pub flops: CostPoly,
    /// Total output elements traversed per run, polynomial in `B`.
    pub traversals: CostPoly,
    /// Total modeled bytes moved per run, polynomial in `B`.
    pub bytes: CostPoly,
    /// Kernels launched per run (metadata ops excluded).
    pub kernel_launches: usize,
}

hb_json::json_struct!(CostSummary {
    flops,
    traversals,
    bytes,
    kernel_launches
});

/// Derives the whole-graph symbolic cost summary.
///
/// # Errors
///
/// See [`cost_nodes`].
pub fn cost_summary(graph: &Graph) -> Result<CostSummary, CostError> {
    let nodes = cost_nodes(graph)?;
    let mut s = CostSummary::default();
    for n in &nodes {
        if n.class.is_some() {
            s.kernel_launches += 1;
        }
        s.flops.absorb(&n.flops);
        s.traversals.absorb(&n.traversals);
        s.bytes.absorb(&n.bytes);
    }
    Ok(s)
}

/// FLOPs attributed to one kernel class at a concrete bucket, the
/// basis of the calibrated time envelope.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassWork {
    /// Rate-table class (`matmul`, `fused:chain2`, …).
    pub class: String,
    /// Concrete FLOPs this class performs at the cert's bucket.
    pub flops: f64,
}

hb_json::json_struct!(ClassWork { class, flops });

/// A per-batch-bucket cost certificate: sound counters plus the audited
/// arena footprint. Machine-independent — the calibrated time envelope
/// is computed separately by [`envelope_for`] and never serialized.
#[derive(Clone, Debug, PartialEq)]
pub struct CostCert {
    /// The batch bucket this certificate is concretized at.
    pub batch: usize,
    /// Exact modeled FLOPs per run at this bucket.
    pub flops: f64,
    /// Exact output elements traversed per run at this bucket.
    pub traversals: f64,
    /// Exact modeled bytes moved per run at this bucket.
    pub bytes: f64,
    /// Kernels launched per run.
    pub kernel_launches: usize,
    /// Arena footprint of the memory plan at this bucket, re-checked by
    /// the independent plan auditor before certification.
    pub arena_bytes: usize,
    /// Per-class FLOP split (sorted by class), for envelope derivation
    /// and lint display.
    pub classes: Vec<ClassWork>,
}

hb_json::json_struct!(CostCert {
    batch,
    flops,
    traversals,
    bytes,
    kernel_launches,
    arena_bytes,
    classes
});

/// Derives the certificate for `graph` at one batch bucket.
///
/// # Errors
///
/// [`CostError`] when the counters are not statically derivable, the
/// memory plan fails at this bucket, or the plan auditor rejects it.
pub fn cost_cert(graph: &Graph, batch: usize) -> Result<CostCert, CostError> {
    let nodes = cost_nodes(graph)?;
    let plan = MemoryPlan::build(graph, batch).map_err(CostError::Plan)?;
    // The arena bound is only certified after the *independent* auditor
    // re-derives liveness and aliasing from scratch (release builds skip
    // the planner's internal debug audit).
    crate::audit::audit_plan(graph, &plan).map_err(|e| CostError::Audit(e.to_string()))?;
    let mut flops = 0.0;
    let mut traversals = 0.0;
    let mut bytes = 0.0;
    let mut launches = 0usize;
    let mut classes: Vec<ClassWork> = Vec::new();
    for n in &nodes {
        let Some(class) = &n.class else { continue };
        launches += 1;
        let f = n.flops.eval(batch);
        flops += f;
        traversals += n.traversals.eval(batch);
        bytes += n.bytes.eval(batch);
        match classes.iter_mut().find(|c| &c.class == class) {
            Some(c) => c.flops += f,
            None => classes.push(ClassWork {
                class: class.clone(),
                flops: f,
            }),
        }
    }
    classes.sort_by(|a, b| a.class.cmp(&b.class));
    Ok(CostCert {
        batch,
        flops,
        traversals,
        bytes,
        kernel_launches: launches,
        arena_bytes: plan.arena_bytes,
        classes,
    })
}

/// Derives certificates at each bucket (see [`COST_BUCKETS`]).
///
/// # Errors
///
/// See [`cost_cert`]; the first failing bucket aborts.
pub fn cost_certs(graph: &Graph, buckets: &[usize]) -> Result<Vec<CostCert>, CostError> {
    buckets.iter().map(|&b| cost_cert(graph, b)).collect()
}

// ---------------------------------------------------------------------
// Calibrated wall-clock envelope.
// ---------------------------------------------------------------------

/// A calibrated wall-clock envelope `[lo, hi]` for one certified run.
/// *Not* sound — see the module honesty rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimeEnvelope {
    /// Calibrated floor: no run of the certified work completes faster.
    pub lo: Duration,
    /// Calibrated ceiling: an unloaded machine finishes within this.
    pub hi: Duration,
}

impl TimeEnvelope {
    /// The arithmetic midpoint, used to cold-start serving EWMAs.
    pub fn midpoint(&self) -> Duration {
        (self.lo + self.hi) / 2
    }
}

/// Floor margin on the measured best-case rate (generous: the floor
/// must hold under turbo, perfect caches, and all cores).
const LO_MARGIN: f64 = 0.05;
/// Ceiling margin on the measured worst-case rate (generous: the
/// ceiling must hold under scheduler noise and cold caches).
const HI_MARGIN: f64 = 50.0;
/// Per-kernel-launch overhead floor: a launch is at least a call and a
/// loop setup.
const LAUNCH_OVERHEAD_LO_NS: f64 = 20.0;
/// Per-kernel-launch overhead ceiling (descheduling between kernels).
const LAUNCH_OVERHEAD_HI_NS: f64 = 200_000.0;

/// ns-per-flop rate band of one kernel class.
#[derive(Clone, Copy, Debug)]
struct RateBand {
    lo: f64,
    hi: f64,
}

struct Calibration {
    rates: HashMap<String, RateBand>,
}

/// The classes the microbench measures. Fused kernels map onto
/// `fused:vm` (block-interpreted) or `fused:spec` (specialized row
/// kernels) — individual codegen classes share the specialized band.
const CALIB_CLASSES: [&str; 7] = [
    "element",
    "matmul",
    "transcendental",
    "reduce",
    "gather",
    "fused:spec",
    "fused:vm",
];

/// Ultra-wide fallback band used when calibration is disabled
/// (`HB_COST=off`) or a class failed to measure.
const FALLBACK_BAND: RateBand = RateBand { lo: 1e-3, hi: 1e3 };

fn calib_path() -> std::path::PathBuf {
    match std::env::var_os("HB_COST_CACHE") {
        Some(p) => std::path::PathBuf::from(p),
        // Keyed by build profile: debug-build rates are an order of
        // magnitude slower than release rates, and an envelope floor
        // calibrated under one profile is unsound under the other.
        None => {
            let profile = if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            };
            std::env::temp_dir().join(format!("hb-cost-calib-v1-{profile}.txt"))
        }
    }
}

fn load_calibration() -> Option<HashMap<String, RateBand>> {
    let text = std::fs::read_to_string(calib_path()).ok()?;
    let mut rates = HashMap::new();
    for line in text.lines() {
        let mut it = line.split_whitespace();
        if it.next() != Some("v1") {
            continue;
        }
        let (Some(class), Some(lo), Some(hi)) = (it.next(), it.next(), it.next()) else {
            continue;
        };
        let (Ok(lo), Ok(hi)) = (lo.parse::<f64>(), hi.parse::<f64>()) else {
            continue;
        };
        if lo > 0.0 && hi >= lo {
            rates.insert(class.to_string(), RateBand { lo, hi });
        }
    }
    // A partial file (interrupted write, older class set) is re-measured.
    CALIB_CLASSES
        .iter()
        .all(|c| rates.contains_key(*c))
        .then_some(rates)
}

fn store_calibration(rates: &HashMap<String, RateBand>) {
    let mut lines: Vec<String> = rates
        .iter()
        .map(|(c, r)| format!("v1 {c} {:e} {:e}", r.lo, r.hi))
        .collect();
    lines.sort();
    // Best effort, like the tile tuner: an unwritable temp dir only
    // costs re-measurement next process.
    let _ = std::fs::write(calib_path(), lines.join("\n") + "\n");
}

/// Times `f` with one warmup round and `reps` measured rounds; returns
/// (best, worst) ns per unit of `units` work.
fn measure_rate(units: f64, reps: usize, mut f: impl FnMut()) -> RateBand {
    f(); // warmup
    let mut lo = f64::INFINITY;
    let mut hi: f64 = 0.0;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        let ns = t0.elapsed().as_nanos() as f64;
        let rate = (ns / units).max(1e-9);
        lo = lo.min(rate);
        hi = hi.max(rate);
    }
    RateBand { lo, hi }
}

fn tensor(n: usize) -> DynTensor {
    DynTensor::F32(Tensor::from_fn(&[n], |i| (i[0] % 97) as f32 * 0.25 + 0.5))
}

/// Microbenches every class band. Workloads are small (sub-millisecond)
/// representatives; margins, not workload fidelity, make the envelope
/// hold.
fn measure_calibration() -> HashMap<String, RateBand> {
    let mut rates = HashMap::new();
    let reps = 4;
    let n = 16_384usize;

    let x = tensor(n);
    let y = tensor(n);
    rates.insert(
        "element".to_string(),
        measure_rate(n as f64, reps, || {
            let _ = Op::Add.eval(&[&x, &y]);
        }),
    );
    rates.insert(
        "transcendental".to_string(),
        measure_rate(10.0 * n as f64, reps, || {
            let _ = Op::Sigmoid.eval(&[&x]);
        }),
    );

    let d = 64usize;
    let a = DynTensor::F32(Tensor::from_fn(&[d, d], |i| {
        ((i[0] * d + i[1]) % 13) as f32 * 0.1
    }));
    let b = DynTensor::F32(Tensor::from_fn(&[d, d], |i| {
        ((i[0] + i[1] * d) % 11) as f32 * 0.1
    }));
    rates.insert(
        "matmul".to_string(),
        measure_rate(2.0 * (d * d * d) as f64, reps, || {
            let _ = Op::MatMul.eval(&[&a, &b]);
        }),
    );

    let rows = 256usize;
    let cols = 64usize;
    let m = DynTensor::F32(Tensor::from_fn(&[rows, cols], |i| {
        ((i[0] + i[1]) % 7) as f32 * 0.3
    }));
    rates.insert(
        "reduce".to_string(),
        measure_rate(12.0 * (rows * cols) as f64, reps, || {
            let _ = Op::Softmax { axis: 1 }.eval(&[&m]);
        }),
    );

    // GatherRows wants [B, N, W] data and [B, n] indices.
    let gb = 8usize;
    let gn = 128usize;
    let data = DynTensor::F32(Tensor::from_fn(&[gb, rows, cols], |i| {
        ((i[0] + i[1] + i[2]) % 7) as f32 * 0.3
    }));
    let idx = DynTensor::I64(Tensor::from_fn(&[gb, gn], |i| {
        ((i[0] * 31 + i[1] * 7) % rows) as i64
    }));
    rates.insert(
        "gather".to_string(),
        measure_rate((gb * gn * cols) as f64, reps, || {
            let _ = Op::GatherRows.eval(&[&data, &idx]);
        }),
    );

    use crate::fuse::{FusedKernel, Instr};
    // A two-op chain resolves to a specialized codegen class…
    let spec = FusedKernel::new(
        1,
        DType::F32,
        vec![Instr::Load(0), Instr::AddImm(1.0), Instr::Relu],
    );
    // …while a stack-shuffling 3-input program falls back to the VM.
    let vm = FusedKernel::new(
        3,
        DType::F32,
        vec![
            Instr::Load(0),
            Instr::Load(1),
            Instr::Mul,
            Instr::Load(2),
            Instr::Load(0),
            Instr::Max,
            Instr::Add,
            Instr::Sigmoid,
        ],
    );
    let z = tensor(n);
    rates.insert(
        "fused:spec".to_string(),
        measure_rate((spec.program_len() * n) as f64, reps, || {
            let _ = spec.eval(&[&x]);
        }),
    );
    rates.insert(
        "fused:vm".to_string(),
        measure_rate((vm.program_len() * n) as f64, reps, || {
            let _ = vm.eval(&[&x, &y, &z]);
        }),
    );
    rates
}

fn calibration() -> &'static Mutex<Calibration> {
    static CALIB: OnceLock<Mutex<Calibration>> = OnceLock::new();
    CALIB.get_or_init(|| {
        let rates = if std::env::var("HB_COST").as_deref() == Ok("off") {
            HashMap::new()
        } else {
            match load_calibration() {
                Some(r) => r,
                None => {
                    let r = measure_calibration();
                    store_calibration(&r);
                    r
                }
            }
        };
        Mutex::new(Calibration { rates })
    })
}

/// The calibrated rate table: `(class, lo, hi)` in ns per flop, sorted
/// by class — for lint and bench display.
pub fn calibration_snapshot() -> Vec<(String, f64, f64)> {
    let calib = calibration().lock().unwrap_or_else(|p| p.into_inner());
    let mut rows: Vec<(String, f64, f64)> = calib
        .rates
        .iter()
        .map(|(c, r)| (c.clone(), r.lo, r.hi))
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

fn band_for(rates: &HashMap<String, RateBand>, class: &str) -> RateBand {
    if let Some(r) = rates.get(class) {
        return *r;
    }
    if class.starts_with("fused:") {
        // Unmeasured codegen classes share the specialized band.
        if let Some(r) = rates.get("fused:spec") {
            return *r;
        }
    }
    rates.get("element").copied().unwrap_or(FALLBACK_BAND)
}

/// Computes the calibrated wall-clock envelope of one certified run by
/// pricing the certificate's per-class FLOP split against the machine's
/// microbenched rate table (measured once, cached on disk).
pub fn envelope_for(cert: &CostCert) -> TimeEnvelope {
    let calib = calibration().lock().unwrap_or_else(|p| p.into_inner());
    let mut lo_ns = cert.kernel_launches as f64 * LAUNCH_OVERHEAD_LO_NS;
    let mut hi_ns = cert.kernel_launches as f64 * LAUNCH_OVERHEAD_HI_NS;
    for cw in &cert.classes {
        let band = band_for(&calib.rates, &cw.class);
        lo_ns += cw.flops * band.lo * LO_MARGIN;
        hi_ns += cw.flops * band.hi * HI_MARGIN;
    }
    TimeEnvelope {
        lo: Duration::from_nanos(lo_ns as u64),
        hi: Duration::from_nanos(hi_ns.min(u64::MAX as f64) as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::{Backend, Device};

    fn linear_graph() -> Graph {
        let mut b = GraphBuilder::new();
        let x = b.input_with_shape(DType::F32, ShapeFact::batched(&[4]));
        let w = b.constant(Tensor::<f32>::from_fn(&[4, 3], |i| (i[0] + i[1]) as f32));
        let y = b.matmul(x, w);
        let s = b.sigmoid(y);
        b.output(s);
        b.build()
    }

    #[test]
    fn poly_arithmetic_and_display() {
        let mut p = CostPoly::zero();
        p.add_term(3.0, 1);
        p.add_term(2.0, 0);
        p.add_term(4.0, 1);
        assert_eq!(p.eval(10), 72.0);
        assert_eq!(p.to_string(), "7*B + 2");
        assert_eq!(CostPoly::zero().to_string(), "0");
        assert!(CostPoly::zero().is_zero());
    }

    #[test]
    fn summary_matches_hand_derivation() {
        let g = linear_graph();
        let s = cost_summary(&g).unwrap_or_else(|e| panic!("{e}"));
        // MatMul: 2·B·4·3 = 24B flops; Sigmoid: 10·3B = 30B flops.
        assert_eq!(s.flops.eval(1), 54.0);
        assert_eq!(s.flops.eval(100), 5400.0);
        // Traversals: 3B (matmul out) + 3B (sigmoid out).
        assert_eq!(s.traversals.eval(8), 48.0);
        assert_eq!(s.kernel_launches, 2);
    }

    #[test]
    fn certified_counters_match_measured_exactly() {
        let g = linear_graph();
        for backend in [Backend::Eager, Backend::Script, Backend::Compiled] {
            let exe = crate::Executable::new(g.clone(), backend, Device::cpu());
            for batch in [1usize, 16, 64] {
                let cert = cost_cert(exe.graph(), batch).unwrap_or_else(|e| panic!("cert: {e}"));
                let x = DynTensor::F32(Tensor::from_fn(&[batch, 4], |i| {
                    (i[0] * 4 + i[1]) as f32 * 0.1
                }));
                let (_, stats) = exe
                    .run_with_stats(std::slice::from_ref(&x))
                    .unwrap_or_else(|e| panic!("run: {e}"));
                assert_eq!(stats.flops, cert.flops, "{backend:?} flops at B={batch}");
                assert_eq!(stats.bytes, cert.bytes, "{backend:?} bytes at B={batch}");
                assert_eq!(
                    stats.traversals, cert.traversals,
                    "{backend:?} traversals at B={batch}"
                );
                assert_eq!(
                    stats.kernel_launches, cert.kernel_launches,
                    "{backend:?} launches at B={batch}"
                );
            }
        }
    }

    #[test]
    fn cert_arena_matches_plan() {
        let g = linear_graph();
        let cert = cost_cert(&g, 32).unwrap_or_else(|e| panic!("{e}"));
        let plan = MemoryPlan::build(&g, 32).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(cert.arena_bytes, plan.arena_bytes);
    }

    #[test]
    fn unknown_shapes_refuse_certification() {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32); // no declared shape
        let y = b.sigmoid(x);
        b.output(y);
        let g = b.build();
        assert!(matches!(cost_summary(&g), Err(CostError::Unknown { .. })));
    }

    #[test]
    fn cert_round_trips_through_json() {
        let g = linear_graph();
        let cert = cost_cert(&g, 16).unwrap_or_else(|e| panic!("{e}"));
        let json = hb_json::to_string(&cert);
        let back: CostCert = hb_json::from_str(&json).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(back, cert);
        let s = cost_summary(&g).unwrap_or_else(|e| panic!("{e}"));
        let back_s: CostSummary =
            hb_json::from_str(&hb_json::to_string(&s)).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(back_s, s);
    }

    #[test]
    fn envelope_orders_and_contains_midpoint() {
        let g = linear_graph();
        let cert = cost_cert(&g, 64).unwrap_or_else(|e| panic!("{e}"));
        let env = envelope_for(&cert);
        assert!(
            env.lo < env.hi,
            "lo {:?} must undercut hi {:?}",
            env.lo,
            env.hi
        );
        assert!(env.lo <= env.midpoint() && env.midpoint() <= env.hi);
        assert!(
            env.lo > Duration::ZERO,
            "launch overhead floors the envelope"
        );
    }
}
