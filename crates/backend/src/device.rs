//! Execution devices and the simulated-accelerator performance model.
//!
//! The paper evaluates on an Azure NC6 v2 (6-core Xeon E5-2690 v4 + NVIDIA
//! P100) and scales across K80/P100/V100 generations (§6.1.1, Figure 6).
//! This environment has no GPU, so accelerators are **simulated**: compiled
//! graphs execute on the host CPU for correctness, while latency is
//! derived from a roofline model — per kernel,
//! `launch_overhead + max(flops / peak_flops, bytes / bandwidth)` — plus
//! PCIe transfer time for graph inputs and outputs. Device memory is
//! modeled from tensor residency so that OOM behaviour (e.g. TorchScript
//! failing on the K80 at 1M-record batches, §6.1.1) reproduces.

/// Physical characteristics of a (simulated) accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name ("K80", "P100", "V100").
    pub name: &'static str,
    /// Peak fp32 throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// Device memory bandwidth in GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Fixed cost of launching one kernel, in microseconds.
    pub launch_overhead_us: f64,
    /// Effective host↔device transfer bandwidth in GB/s.
    pub pcie_gbs: f64,
    /// Device memory capacity in bytes.
    pub mem_bytes: u64,
    /// Release year (Figure 6 orders devices by generation).
    pub year: u32,
    /// Hourly price (USD) of the Azure VM carrying this device, used by
    /// the Figure 7 cost experiment.
    pub hourly_usd: f64,
}

/// NVIDIA K80 (2014) — one GK210 die, as Azure NC6 exposes it.
pub const K80: DeviceSpec = DeviceSpec {
    name: "K80",
    peak_gflops: 4113.0,
    mem_bandwidth_gbs: 240.0,
    launch_overhead_us: 10.0,
    pcie_gbs: 8.0,
    mem_bytes: 12 * (1 << 30),
    year: 2014,
    hourly_usd: 0.90,
};

/// NVIDIA P100 (2016), the paper's primary GPU (Azure NC6 v2).
pub const P100: DeviceSpec = DeviceSpec {
    name: "P100",
    peak_gflops: 9300.0,
    mem_bandwidth_gbs: 732.0,
    launch_overhead_us: 7.0,
    pcie_gbs: 12.0,
    mem_bytes: 16 * (1 << 30),
    year: 2016,
    hourly_usd: 2.07,
};

/// NVIDIA V100 (2017), Azure NC6 v3.
pub const V100: DeviceSpec = DeviceSpec {
    name: "V100",
    peak_gflops: 14900.0,
    mem_bandwidth_gbs: 900.0,
    launch_overhead_us: 5.0,
    pcie_gbs: 12.0,
    mem_bytes: 16 * (1 << 30),
    year: 2017,
    hourly_usd: 3.06,
};

/// Hourly price (USD) of the CPU-only comparison VM (Azure E8 v3) used by
/// the Figure 7 cost experiment.
pub const CPU_VM_HOURLY_USD: f64 = 0.504;

/// Where a compiled graph executes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Device {
    /// The host CPU, measured for real. `threads == 0` means "all cores";
    /// the paper uses 6 cores for batch experiments and 1 core for
    /// request/response.
    Cpu {
        /// Worker thread count (0 = default Rayon pool).
        threads: usize,
    },
    /// A simulated accelerator: results computed on the host, latency and
    /// memory modeled from the spec.
    Sim(DeviceSpec),
}

impl Device {
    /// All-core CPU device.
    pub fn cpu() -> Device {
        Device::Cpu { threads: 0 }
    }

    /// Single-core CPU device (request/response setting).
    pub fn cpu1() -> Device {
        Device::Cpu { threads: 1 }
    }

    /// True for simulated accelerators.
    pub fn is_simulated(&self) -> bool {
        matches!(self, Device::Sim(_))
    }

    /// Display label for bench tables.
    pub fn label(&self) -> String {
        match self {
            Device::Cpu { threads: 0 } => "CPU".to_string(),
            Device::Cpu { threads } => format!("CPU({threads})"),
            Device::Sim(s) => format!("{} (sim)", s.name),
        }
    }
}

impl DeviceSpec {
    /// Roofline execution time for one kernel, in seconds.
    pub fn kernel_time(&self, flops: f64, bytes: f64) -> f64 {
        let compute = flops / (self.peak_gflops * 1e9);
        let memory = bytes / (self.mem_bandwidth_gbs * 1e9);
        self.launch_overhead_us * 1e-6 + compute.max(memory)
    }

    /// Host↔device transfer time for `bytes`, in seconds.
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        // A fixed ~20µs latency per transfer batch models driver overhead.
        20e-6 + bytes / (self.pcie_gbs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generations_get_faster() {
        // A mid-size GEMM: newer devices must be strictly faster.
        let flops = 2.0 * 10_000.0 * 500.0 * 100.0;
        let bytes = 4.0 * (10_000.0 * 500.0 + 500.0 * 100.0 + 10_000.0 * 100.0);
        let tk = K80.kernel_time(flops, bytes);
        let tp = P100.kernel_time(flops, bytes);
        let tv = V100.kernel_time(flops, bytes);
        assert!(tk > tp && tp > tv, "{tk} {tp} {tv}");
    }

    #[test]
    fn small_kernels_are_launch_bound() {
        let t = V100.kernel_time(100.0, 400.0);
        assert!((t - V100.launch_overhead_us * 1e-6).abs() / t < 0.01);
    }

    #[test]
    fn large_kernels_are_roofline_bound() {
        // 1 GB of traffic on the V100 ≈ 1/900 s, far above launch cost.
        let t = V100.kernel_time(0.0, 1e9);
        assert!(t > 1e-3);
    }

    #[test]
    fn transfer_scales_with_bytes() {
        let t1 = P100.transfer_time(1e6);
        let t2 = P100.transfer_time(1e9);
        assert!(t2 > t1 * 100.0);
    }

    #[test]
    fn device_labels() {
        assert_eq!(Device::cpu().label(), "CPU");
        assert_eq!(Device::cpu1().label(), "CPU(1)");
        assert_eq!(Device::Sim(P100).label(), "P100 (sim)");
        assert!(Device::Sim(K80).is_simulated());
    }
}
