//! Graph operators and their evaluation kernels.
//!
//! The operator set matches paper Table 2: `matmul, add, mul, div, lt, le,
//! eq, gt, ge, &, |, xor, gather, index_select, cat, reshape, cast, abs,
//! pow, exp, argmax, max, sum, relu, tanh, sigmoid, logsumexp, isnan,
//! where`, plus the shape plumbing (`unsqueeze`, `transpose`, `slice`) that
//! the converters need and a fused `sqdist` following §4.2's
//! quadratic-expansion trick.

use std::sync::Arc;

use hb_tensor::{DType, DynTensor, Tensor};

use crate::fuse::FusedKernel;
use crate::graph::{GraphError, NodeId};
use crate::verify::{broadcast_dims, broadcast_facts, unify_eq, ShapeFact, SymDim};

/// A single tensor operation in a [`crate::Graph`].
#[derive(Clone, Debug)]
pub enum Op {
    /// Reads graph input slot `n`.
    Input(usize),
    /// A compile-time constant (model parameters).
    Const(DynTensor),
    /// Batched matrix multiplication with batch-dim broadcasting.
    MatMul,
    /// Element-wise sum with broadcasting.
    Add,
    /// Element-wise difference with broadcasting.
    Sub,
    /// Element-wise product with broadcasting.
    Mul,
    /// Element-wise quotient with broadcasting.
    Div,
    /// Element-wise minimum with broadcasting.
    Minimum,
    /// Element-wise maximum with broadcasting.
    Maximum,
    /// Adds a scalar to every element (f32 or i64 tensors).
    AddScalar(f64),
    /// Multiplies every element by a scalar (f32 or i64 tensors).
    MulScalar(f64),
    /// Raises every element to a scalar power (f32 tensors).
    PowScalar(f64),
    /// `a < b` → bool mask.
    Lt,
    /// `a <= b` → bool mask.
    Le,
    /// `a > b` → bool mask.
    Gt,
    /// `a >= b` → bool mask.
    Ge,
    /// `a == b` → bool mask.
    EqOp,
    /// `a != b` → bool mask.
    NeOp,
    /// Logical AND of bool masks.
    And,
    /// Logical OR of bool masks.
    Or,
    /// Logical XOR of bool masks.
    Xor,
    /// Logical NOT of a bool mask.
    Not,
    /// `where(cond, a, b)` with broadcasting.
    Where,
    /// `torch.gather` along `axis` (inputs: data, i64 index).
    Gather {
        /// Gather axis.
        axis: usize,
    },
    /// Batched row lookup: data `[B, N, W]`, i64 index `[B, n]` →
    /// `[B, n, W]` (the TreeTraversal leaf-payload composite).
    GatherRows,
    /// Selects fixed positions along `axis` (compile-time indices).
    IndexSelect {
        /// Selection axis.
        axis: usize,
        /// Positions to keep, in output order.
        indices: Arc<Vec<usize>>,
    },
    /// Concatenates all inputs along `axis`.
    Concat {
        /// Concatenation axis.
        axis: usize,
    },
    /// Reshape; `-1` infers one dimension, `0` copies the input dimension.
    Reshape {
        /// Target dims with ONNX-style `0`/`-1` placeholders.
        dims: Vec<i64>,
    },
    /// Inserts a size-1 axis.
    Unsqueeze(usize),
    /// Removes a size-1 axis.
    Squeeze(usize),
    /// Swaps two axes.
    Transpose(usize, usize),
    /// Keeps `start..end` along `axis`.
    Slice {
        /// Sliced axis.
        axis: usize,
        /// First kept index.
        start: usize,
        /// One past the last kept index.
        end: usize,
    },
    /// Sum reduction along `axis`.
    Sum {
        /// Reduced axis.
        axis: usize,
        /// Keep the reduced axis as size 1.
        keepdim: bool,
    },
    /// Mean reduction along `axis`.
    Mean {
        /// Reduced axis.
        axis: usize,
        /// Keep the reduced axis as size 1.
        keepdim: bool,
    },
    /// Max reduction along `axis`.
    ReduceMax {
        /// Reduced axis.
        axis: usize,
        /// Keep the reduced axis as size 1.
        keepdim: bool,
    },
    /// Index of the max along `axis` (→ i64).
    ArgMax {
        /// Reduced axis.
        axis: usize,
        /// Keep the reduced axis as size 1.
        keepdim: bool,
    },
    /// Stabilized `log(Σexp)` along `axis`.
    LogSumExp {
        /// Reduced axis.
        axis: usize,
        /// Keep the reduced axis as size 1.
        keepdim: bool,
    },
    /// Softmax along `axis`.
    Softmax {
        /// Normalized axis.
        axis: usize,
    },
    /// `max(x, 0)`.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Ln,
    /// Square root.
    Sqrt,
    /// Absolute value.
    Abs,
    /// Negation.
    Neg,
    /// NaN test → bool mask.
    IsNan,
    /// Clamp into `[lo, hi]`.
    Clamp {
        /// Lower bound.
        lo: f32,
        /// Upper bound.
        hi: f32,
    },
    /// Dtype conversion.
    Cast(DType),
    /// Squared Euclidean distance matrix `[n,d]×[m,d] → [n,m]` via the
    /// quadratic expansion of §4.2 (no `n×m×d` intermediate).
    Sqdist,
    /// A fused element-wise kernel produced by the Compiled backend's
    /// fusion pass; never constructed by converters directly.
    Fused(Arc<FusedKernel>),
}

/// A typed mutable destination for [`Op::eval_into`] — a uniquely-owned
/// window of an arena slot, sized exactly to the output's element count.
///
/// `U8` is intentionally absent: no operator in the Table 2 set produces a
/// u8 output except `Cast`, and u8 casts are rare enough that the planner
/// simply routes them through the allocating fallback path.
#[derive(Debug)]
pub enum DestMut<'a> {
    /// Destination for an f32-typed output.
    F32(&'a mut [f32]),
    /// Destination for an i64-typed output.
    I64(&'a mut [i64]),
    /// Destination for a bool-typed output.
    Bool(&'a mut [bool]),
}

/// FLOP and byte-traffic estimate for one operator execution, consumed by
/// the simulated-device roofline model.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpCost {
    /// Floating-point (or comparable) operations performed.
    pub flops: f64,
    /// Bytes moved through memory (reads + writes).
    pub bytes: f64,
    /// Output elements the kernel traverses (writes) — the uniform
    /// "element traversal" counter certified by `hb-backend::cost`.
    pub traversals: f64,
    /// True for zero-cost metadata ops that launch no kernel.
    pub metadata_only: bool,
}

fn bin_f32(
    a: &DynTensor,
    b: &DynTensor,
    f: impl Fn(&Tensor<f32>, &Tensor<f32>) -> Tensor<f32>,
    g: impl Fn(&Tensor<i64>, &Tensor<i64>) -> Tensor<i64>,
) -> DynTensor {
    match (a, b) {
        (DynTensor::F32(x), DynTensor::F32(y)) => DynTensor::F32(f(x, y)),
        (DynTensor::I64(x), DynTensor::I64(y)) => DynTensor::I64(g(x, y)),
        _ => panic!(
            "binary op dtype mismatch: {:?} vs {:?}",
            a.dtype(),
            b.dtype()
        ),
    }
}

fn cmp_op(
    a: &DynTensor,
    b: &DynTensor,
    f: impl Fn(&Tensor<f32>, &Tensor<f32>) -> Tensor<bool>,
    g: impl Fn(&Tensor<i64>, &Tensor<i64>) -> Tensor<bool>,
) -> DynTensor {
    match (a, b) {
        (DynTensor::F32(x), DynTensor::F32(y)) => DynTensor::Bool(f(x, y)),
        (DynTensor::I64(x), DynTensor::I64(y)) => DynTensor::Bool(g(x, y)),
        _ => panic!(
            "comparison dtype mismatch: {:?} vs {:?}",
            a.dtype(),
            b.dtype()
        ),
    }
}

impl Op {
    /// Number of inputs this op consumes (`None` = variadic).
    pub fn arity(&self) -> Option<usize> {
        Some(match self {
            Op::Input(_) | Op::Const(_) => 0,
            Op::MatMul
            | Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Div
            | Op::Minimum
            | Op::Maximum
            | Op::Lt
            | Op::Le
            | Op::Gt
            | Op::Ge
            | Op::EqOp
            | Op::NeOp
            | Op::And
            | Op::Or
            | Op::Xor
            | Op::Gather { .. }
            | Op::GatherRows
            | Op::Sqdist => 2,
            Op::Where => 3,
            Op::Concat { .. } => return None,
            Op::Fused(k) => k.n_inputs,
            _ => 1,
        })
    }

    /// Evaluates the operator over already-computed inputs.
    ///
    /// # Panics
    ///
    /// Panics on dtype or shape mismatches — compiled graphs are validated
    /// by construction and by the output-validation test suite.
    pub fn eval(&self, inputs: &[&DynTensor]) -> DynTensor {
        match self {
            Op::Input(_) => panic!("Input nodes are resolved by the executor"),
            Op::Const(v) => v.clone(),
            Op::MatMul => DynTensor::F32(inputs[0].as_f32().matmul(inputs[1].as_f32())),
            Op::Add => bin_f32(inputs[0], inputs[1], |a, b| a.add(b), |a, b| a.add(b)),
            Op::Sub => bin_f32(inputs[0], inputs[1], |a, b| a.sub(b), |a, b| a.sub(b)),
            Op::Mul => bin_f32(inputs[0], inputs[1], |a, b| a.mul(b), |a, b| a.mul(b)),
            Op::Div => bin_f32(inputs[0], inputs[1], |a, b| a.div(b), |a, b| a.div(b)),
            Op::Minimum => bin_f32(
                inputs[0],
                inputs[1],
                |a, b| a.minimum(b),
                |a, b| a.minimum(b),
            ),
            Op::Maximum => bin_f32(
                inputs[0],
                inputs[1],
                |a, b| a.maximum(b),
                |a, b| a.maximum(b),
            ),
            Op::AddScalar(s) => match inputs[0] {
                DynTensor::F32(t) => DynTensor::F32(t.add_scalar(*s as f32)),
                DynTensor::I64(t) => DynTensor::I64(t.add_scalar(*s as i64)),
                other => panic!("add_scalar on {:?}", other.dtype()),
            },
            Op::MulScalar(s) => match inputs[0] {
                DynTensor::F32(t) => DynTensor::F32(t.mul_scalar(*s as f32)),
                DynTensor::I64(t) => DynTensor::I64(t.mul_scalar(*s as i64)),
                other => panic!("mul_scalar on {:?}", other.dtype()),
            },
            Op::PowScalar(e) => DynTensor::F32(inputs[0].as_f32().pow_scalar(*e as f32)),
            Op::Lt => cmp_op(inputs[0], inputs[1], |a, b| a.lt(b), |a, b| a.lt(b)),
            Op::Le => cmp_op(inputs[0], inputs[1], |a, b| a.le(b), |a, b| a.le(b)),
            Op::Gt => cmp_op(inputs[0], inputs[1], |a, b| a.gt(b), |a, b| a.gt(b)),
            Op::Ge => cmp_op(inputs[0], inputs[1], |a, b| a.ge(b), |a, b| a.ge(b)),
            Op::EqOp => cmp_op(inputs[0], inputs[1], |a, b| a.eq_t(b), |a, b| a.eq_t(b)),
            Op::NeOp => cmp_op(inputs[0], inputs[1], |a, b| a.ne_t(b), |a, b| a.ne_t(b)),
            Op::And => DynTensor::Bool(inputs[0].as_bool().and(inputs[1].as_bool())),
            Op::Or => DynTensor::Bool(inputs[0].as_bool().or(inputs[1].as_bool())),
            Op::Xor => DynTensor::Bool(inputs[0].as_bool().xor(inputs[1].as_bool())),
            Op::Not => DynTensor::Bool(inputs[0].as_bool().not()),
            Op::Where => {
                let cond = inputs[0].as_bool();
                match (inputs[1], inputs[2]) {
                    (DynTensor::F32(a), DynTensor::F32(b)) => {
                        DynTensor::F32(cond.where_select(a, b))
                    }
                    (DynTensor::I64(a), DynTensor::I64(b)) => {
                        DynTensor::I64(cond.where_select(a, b))
                    }
                    _ => panic!("where branches must share a dtype"),
                }
            }
            Op::Gather { axis } => {
                let idx = inputs[1].as_i64();
                match inputs[0] {
                    DynTensor::F32(t) => DynTensor::F32(t.gather(*axis, idx)),
                    DynTensor::I64(t) => DynTensor::I64(t.gather(*axis, idx)),
                    other => panic!("gather on {:?}", other.dtype()),
                }
            }
            Op::GatherRows => {
                let idx = inputs[1].as_i64();
                match inputs[0] {
                    DynTensor::F32(t) => DynTensor::F32(t.gather_rows(idx)),
                    DynTensor::I64(t) => DynTensor::I64(t.gather_rows(idx)),
                    other => panic!("gather_rows on {:?}", other.dtype()),
                }
            }
            Op::IndexSelect { axis, indices } => match inputs[0] {
                DynTensor::F32(t) => DynTensor::F32(t.index_select(*axis, indices)),
                DynTensor::I64(t) => DynTensor::I64(t.index_select(*axis, indices)),
                other => panic!("index_select on {:?}", other.dtype()),
            },
            Op::Concat { axis } => match inputs[0] {
                DynTensor::F32(_) => {
                    let ts: Vec<&Tensor<f32>> = inputs.iter().map(|t| t.as_f32()).collect();
                    DynTensor::F32(Tensor::concat(&ts, *axis))
                }
                DynTensor::I64(_) => {
                    let ts: Vec<&Tensor<i64>> = inputs.iter().map(|t| t.as_i64()).collect();
                    DynTensor::I64(Tensor::concat(&ts, *axis))
                }
                other => panic!("concat on {:?}", other.dtype()),
            },
            Op::Reshape { dims } => {
                let shape = resolve_reshape(inputs[0].shape(), dims);
                inputs[0].reshape(&shape)
            }
            Op::Unsqueeze(axis) => match inputs[0] {
                DynTensor::F32(t) => DynTensor::F32(t.unsqueeze(*axis)),
                DynTensor::I64(t) => DynTensor::I64(t.unsqueeze(*axis)),
                DynTensor::U8(t) => DynTensor::U8(t.unsqueeze(*axis)),
                DynTensor::Bool(t) => DynTensor::Bool(t.unsqueeze(*axis)),
            },
            Op::Squeeze(axis) => match inputs[0] {
                DynTensor::F32(t) => DynTensor::F32(t.squeeze(*axis)),
                DynTensor::I64(t) => DynTensor::I64(t.squeeze(*axis)),
                DynTensor::U8(t) => DynTensor::U8(t.squeeze(*axis)),
                DynTensor::Bool(t) => DynTensor::Bool(t.squeeze(*axis)),
            },
            Op::Transpose(a, b) => match inputs[0] {
                DynTensor::F32(t) => DynTensor::F32(t.transpose(*a, *b)),
                DynTensor::I64(t) => DynTensor::I64(t.transpose(*a, *b)),
                DynTensor::U8(t) => DynTensor::U8(t.transpose(*a, *b)),
                DynTensor::Bool(t) => DynTensor::Bool(t.transpose(*a, *b)),
            },
            Op::Slice { axis, start, end } => match inputs[0] {
                DynTensor::F32(t) => DynTensor::F32(t.slice(*axis, *start, *end)),
                DynTensor::I64(t) => DynTensor::I64(t.slice(*axis, *start, *end)),
                DynTensor::U8(t) => DynTensor::U8(t.slice(*axis, *start, *end)),
                DynTensor::Bool(t) => DynTensor::Bool(t.slice(*axis, *start, *end)),
            },
            Op::Sum { axis, keepdim } => match inputs[0] {
                DynTensor::F32(t) => DynTensor::F32(t.sum_axis(*axis, *keepdim)),
                DynTensor::I64(t) => DynTensor::I64(t.sum_axis(*axis, *keepdim)),
                other => panic!("sum on {:?}", other.dtype()),
            },
            Op::Mean { axis, keepdim } => {
                DynTensor::F32(inputs[0].as_f32().mean_axis(*axis, *keepdim))
            }
            Op::ReduceMax { axis, keepdim } => match inputs[0] {
                DynTensor::F32(t) => DynTensor::F32(t.max_axis(*axis, *keepdim)),
                DynTensor::I64(t) => DynTensor::I64(t.max_axis(*axis, *keepdim)),
                other => panic!("max on {:?}", other.dtype()),
            },
            Op::ArgMax { axis, keepdim } => match inputs[0] {
                DynTensor::F32(t) => DynTensor::I64(t.argmax_axis(*axis, *keepdim)),
                DynTensor::I64(t) => DynTensor::I64(t.argmax_axis(*axis, *keepdim)),
                other => panic!("argmax on {:?}", other.dtype()),
            },
            Op::LogSumExp { axis, keepdim } => {
                DynTensor::F32(inputs[0].as_f32().logsumexp_axis(*axis, *keepdim))
            }
            Op::Softmax { axis } => DynTensor::F32(inputs[0].as_f32().softmax_axis(*axis)),
            Op::Relu => DynTensor::F32(inputs[0].as_f32().relu()),
            Op::Sigmoid => DynTensor::F32(inputs[0].as_f32().sigmoid()),
            Op::Tanh => DynTensor::F32(inputs[0].as_f32().tanh_t()),
            Op::Exp => DynTensor::F32(inputs[0].as_f32().exp_t()),
            Op::Ln => DynTensor::F32(inputs[0].as_f32().ln_t()),
            Op::Sqrt => DynTensor::F32(inputs[0].as_f32().sqrt_t()),
            Op::Abs => DynTensor::F32(inputs[0].as_f32().abs_t()),
            Op::Neg => DynTensor::F32(inputs[0].as_f32().neg()),
            Op::IsNan => DynTensor::Bool(inputs[0].as_f32().isnan()),
            Op::Clamp { lo, hi } => DynTensor::F32(inputs[0].as_f32().clamp(*lo, *hi)),
            Op::Cast(dt) => inputs[0].cast(*dt),
            Op::Sqdist => DynTensor::F32(inputs[0].as_f32().sqdist(inputs[1].as_f32())),
            Op::Fused(k) => k.eval(inputs),
        }
    }

    /// True if [`Op::eval_into`] can realize this op for the given input
    /// dtypes and planned output dtype.
    ///
    /// The memory planner consults this at plan time: supported kernels
    /// become arena writes; everything else falls back to the allocating
    /// [`Op::eval`] path (the allocation counter makes such gaps visible).
    /// This list must stay in sync with the `eval_into` match.
    pub fn supports_into(&self, in_dtypes: &[DType], out_dtype: DType) -> bool {
        use DType::{Bool, F32, I64};
        let all_in = |dt: DType| in_dtypes.iter().all(|&d| d == dt);
        match self {
            Op::MatMul | Op::Sqdist => out_dtype == F32 && all_in(F32),
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Minimum | Op::Maximum => {
                (out_dtype == F32 && all_in(F32)) || (out_dtype == I64 && all_in(I64))
            }
            Op::AddScalar(_) | Op::MulScalar(_) => {
                matches!(out_dtype, F32 | I64) && all_in(out_dtype)
            }
            Op::PowScalar(_)
            | Op::Relu
            | Op::Sigmoid
            | Op::Tanh
            | Op::Exp
            | Op::Ln
            | Op::Sqrt
            | Op::Abs
            | Op::Neg
            | Op::Clamp { .. }
            | Op::Softmax { .. }
            | Op::LogSumExp { .. }
            | Op::Mean { .. } => out_dtype == F32 && all_in(F32),
            Op::Lt | Op::Le | Op::Gt | Op::Ge | Op::EqOp | Op::NeOp => {
                out_dtype == Bool && (all_in(F32) || all_in(I64))
            }
            Op::And | Op::Or | Op::Xor | Op::Not => out_dtype == Bool && all_in(Bool),
            Op::IsNan => out_dtype == Bool && all_in(F32),
            Op::Where => {
                in_dtypes.len() == 3
                    && in_dtypes[0] == Bool
                    && in_dtypes[1] == out_dtype
                    && in_dtypes[2] == out_dtype
                    && matches!(out_dtype, F32 | I64)
            }
            Op::Gather { .. } | Op::GatherRows => {
                in_dtypes.len() == 2
                    && in_dtypes[0] == out_dtype
                    && in_dtypes[1] == I64
                    && matches!(out_dtype, F32 | I64)
            }
            Op::IndexSelect { .. } | Op::Concat { .. } => {
                matches!(out_dtype, F32 | I64) && all_in(out_dtype)
            }
            Op::Sum { .. } | Op::ReduceMax { .. } => {
                matches!(out_dtype, F32 | I64) && all_in(out_dtype)
            }
            Op::ArgMax { .. } => out_dtype == I64 && (all_in(F32) || all_in(I64)),
            // Same-dtype casts are identity views, planned as aliases.
            Op::Cast(dt) => {
                *dt == out_dtype
                    && matches!(out_dtype, F32 | I64 | Bool)
                    && in_dtypes.first().is_some_and(|&d| d != out_dtype)
            }
            Op::Fused(k) => out_dtype == F32 && k.out_dtype == F32,
            // Inputs, constants, and metadata ops are planned as values or
            // views, never as arena kernels.
            _ => false,
        }
    }

    /// True for simple f32 unary maps — the ops eligible for the memory
    /// planner's in-place rule (output overwrites a dying input's slot).
    pub fn is_unary_f32_map(&self) -> bool {
        matches!(
            self,
            Op::Relu
                | Op::Sigmoid
                | Op::Tanh
                | Op::Exp
                | Op::Ln
                | Op::Sqrt
                | Op::Abs
                | Op::Neg
                | Op::Clamp { .. }
                | Op::PowScalar(_)
                | Op::AddScalar(_)
                | Op::MulScalar(_)
        )
    }

    /// Applies a unary f32 map directly over `buf` — the planner's
    /// in-place execution path. Element functions are shared verbatim with
    /// [`Op::eval_into`], so results stay bit-identical.
    ///
    /// # Panics
    ///
    /// Panics unless [`Op::is_unary_f32_map`] holds.
    pub fn apply_inplace_f32(&self, buf: &mut [f32]) {
        fn apply(buf: &mut [f32], f: impl Fn(f32) -> f32) {
            for v in buf.iter_mut() {
                *v = f(*v);
            }
        }
        match self {
            Op::Relu => apply(buf, |x| if x < 0.0 { 0.0 } else { x }),
            Op::Sigmoid => apply(buf, |x| 1.0 / (1.0 + (-x).exp())),
            Op::Tanh => apply(buf, f32::tanh),
            Op::Exp => apply(buf, f32::exp),
            Op::Ln => apply(buf, f32::ln),
            Op::Sqrt => apply(buf, f32::sqrt),
            Op::Abs => apply(buf, f32::abs),
            Op::Neg => apply(buf, |x| -x),
            Op::Clamp { lo, hi } => {
                let (lo, hi) = (*lo, *hi);
                apply(buf, move |x| {
                    if x < lo {
                        lo
                    } else if x > hi {
                        hi
                    } else {
                        x
                    }
                })
            }
            Op::PowScalar(e) => {
                let v = *e as f32;
                apply(buf, move |x| x.powf(v))
            }
            Op::AddScalar(s) => {
                let v = *s as f32;
                apply(buf, move |x| x + v)
            }
            Op::MulScalar(s) => {
                let v = *s as f32;
                apply(buf, move |x| x * v)
            }
            other => panic!("apply_inplace_f32 on non-unary op {}", other.label()),
        }
    }

    /// Evaluates the operator into a caller-provided destination slice —
    /// the planned executor's allocation-free twin of [`Op::eval`].
    ///
    /// The destination is a uniquely-owned window of an arena slot sized
    /// to the output's element count; it is fully overwritten. Results are
    /// bit-identical to [`Op::eval`] (both dispatch to the same kernels or
    /// to `_into` variants replaying the same per-element operations).
    ///
    /// # Panics
    ///
    /// Panics when the op/dtype combination is unsupported (the planner
    /// must gate on [`Op::supports_into`]) or on shape mismatches, exactly
    /// like [`Op::eval`].
    pub fn eval_into(&self, inputs: &[&DynTensor], out: DestMut<'_>) {
        use hb_tensor::elementwise::zip_map_into;
        match (self, out) {
            (Op::MatMul, DestMut::F32(o)) => inputs[0].as_f32().matmul_into(inputs[1].as_f32(), o),
            (Op::Add, DestMut::F32(o)) => {
                zip_map_into(inputs[0].as_f32(), inputs[1].as_f32(), o, |a, b| a + b)
            }
            (Op::Add, DestMut::I64(o)) => {
                zip_map_into(inputs[0].as_i64(), inputs[1].as_i64(), o, |a, b| a + b)
            }
            (Op::Sub, DestMut::F32(o)) => {
                zip_map_into(inputs[0].as_f32(), inputs[1].as_f32(), o, |a, b| a - b)
            }
            (Op::Sub, DestMut::I64(o)) => {
                zip_map_into(inputs[0].as_i64(), inputs[1].as_i64(), o, |a, b| a - b)
            }
            (Op::Mul, DestMut::F32(o)) => {
                zip_map_into(inputs[0].as_f32(), inputs[1].as_f32(), o, |a, b| a * b)
            }
            (Op::Mul, DestMut::I64(o)) => {
                zip_map_into(inputs[0].as_i64(), inputs[1].as_i64(), o, |a, b| a * b)
            }
            (Op::Div, DestMut::F32(o)) => {
                zip_map_into(inputs[0].as_f32(), inputs[1].as_f32(), o, |a, b| a / b)
            }
            (Op::Div, DestMut::I64(o)) => {
                zip_map_into(inputs[0].as_i64(), inputs[1].as_i64(), o, |a, b| a / b)
            }
            (Op::Minimum, DestMut::F32(o)) => {
                zip_map_into(inputs[0].as_f32(), inputs[1].as_f32(), o, |a, b| {
                    if b < a {
                        b
                    } else {
                        a
                    }
                })
            }
            (Op::Minimum, DestMut::I64(o)) => {
                zip_map_into(inputs[0].as_i64(), inputs[1].as_i64(), o, |a, b| {
                    if b < a {
                        b
                    } else {
                        a
                    }
                })
            }
            (Op::Maximum, DestMut::F32(o)) => {
                zip_map_into(inputs[0].as_f32(), inputs[1].as_f32(), o, |a, b| {
                    if b > a {
                        b
                    } else {
                        a
                    }
                })
            }
            (Op::Maximum, DestMut::I64(o)) => {
                zip_map_into(inputs[0].as_i64(), inputs[1].as_i64(), o, |a, b| {
                    if b > a {
                        b
                    } else {
                        a
                    }
                })
            }
            (Op::AddScalar(s), DestMut::F32(o)) => {
                let v = *s as f32;
                inputs[0].as_f32().map_into(o, move |x| x + v)
            }
            (Op::AddScalar(s), DestMut::I64(o)) => {
                let v = *s as i64;
                inputs[0].as_i64().map_into(o, move |x| x + v)
            }
            (Op::MulScalar(s), DestMut::F32(o)) => {
                let v = *s as f32;
                inputs[0].as_f32().map_into(o, move |x| x * v)
            }
            (Op::MulScalar(s), DestMut::I64(o)) => {
                let v = *s as i64;
                inputs[0].as_i64().map_into(o, move |x| x * v)
            }
            (Op::PowScalar(e), DestMut::F32(o)) => {
                let v = *e as f32;
                inputs[0].as_f32().map_into(o, move |x| x.powf(v))
            }
            (Op::Lt, DestMut::Bool(o)) => match inputs[0] {
                DynTensor::F32(_) => {
                    zip_map_into(inputs[0].as_f32(), inputs[1].as_f32(), o, |a, b| a < b)
                }
                _ => zip_map_into(inputs[0].as_i64(), inputs[1].as_i64(), o, |a, b| a < b),
            },
            (Op::Le, DestMut::Bool(o)) => match inputs[0] {
                DynTensor::F32(_) => {
                    zip_map_into(inputs[0].as_f32(), inputs[1].as_f32(), o, |a, b| a <= b)
                }
                _ => zip_map_into(inputs[0].as_i64(), inputs[1].as_i64(), o, |a, b| a <= b),
            },
            (Op::Gt, DestMut::Bool(o)) => match inputs[0] {
                DynTensor::F32(_) => {
                    zip_map_into(inputs[0].as_f32(), inputs[1].as_f32(), o, |a, b| a > b)
                }
                _ => zip_map_into(inputs[0].as_i64(), inputs[1].as_i64(), o, |a, b| a > b),
            },
            (Op::Ge, DestMut::Bool(o)) => match inputs[0] {
                DynTensor::F32(_) => {
                    zip_map_into(inputs[0].as_f32(), inputs[1].as_f32(), o, |a, b| a >= b)
                }
                _ => zip_map_into(inputs[0].as_i64(), inputs[1].as_i64(), o, |a, b| a >= b),
            },
            (Op::EqOp, DestMut::Bool(o)) => match inputs[0] {
                DynTensor::F32(_) => {
                    zip_map_into(inputs[0].as_f32(), inputs[1].as_f32(), o, |a, b| a == b)
                }
                _ => zip_map_into(inputs[0].as_i64(), inputs[1].as_i64(), o, |a, b| a == b),
            },
            (Op::NeOp, DestMut::Bool(o)) => match inputs[0] {
                DynTensor::F32(_) => {
                    zip_map_into(inputs[0].as_f32(), inputs[1].as_f32(), o, |a, b| a != b)
                }
                _ => zip_map_into(inputs[0].as_i64(), inputs[1].as_i64(), o, |a, b| a != b),
            },
            (Op::And, DestMut::Bool(o)) => {
                zip_map_into(inputs[0].as_bool(), inputs[1].as_bool(), o, |a, b| a && b)
            }
            (Op::Or, DestMut::Bool(o)) => {
                zip_map_into(inputs[0].as_bool(), inputs[1].as_bool(), o, |a, b| a || b)
            }
            (Op::Xor, DestMut::Bool(o)) => {
                zip_map_into(inputs[0].as_bool(), inputs[1].as_bool(), o, |a, b| a ^ b)
            }
            (Op::Not, DestMut::Bool(o)) => inputs[0].as_bool().map_into(o, |a| !a),
            (Op::IsNan, DestMut::Bool(o)) => inputs[0].as_f32().map_into(o, |x| x.is_nan()),
            (Op::Where, DestMut::F32(o)) => {
                inputs[0]
                    .as_bool()
                    .where_select_into(inputs[1].as_f32(), inputs[2].as_f32(), o)
            }
            (Op::Where, DestMut::I64(o)) => {
                inputs[0]
                    .as_bool()
                    .where_select_into(inputs[1].as_i64(), inputs[2].as_i64(), o)
            }
            (Op::Gather { axis }, DestMut::F32(o)) => {
                inputs[0].as_f32().gather_into(*axis, inputs[1].as_i64(), o)
            }
            (Op::Gather { axis }, DestMut::I64(o)) => {
                inputs[0].as_i64().gather_into(*axis, inputs[1].as_i64(), o)
            }
            (Op::GatherRows, DestMut::F32(o)) => {
                inputs[0].as_f32().gather_rows_into(inputs[1].as_i64(), o)
            }
            (Op::GatherRows, DestMut::I64(o)) => {
                inputs[0].as_i64().gather_rows_into(inputs[1].as_i64(), o)
            }
            (Op::IndexSelect { axis, indices }, DestMut::F32(o)) => {
                inputs[0].as_f32().index_select_into(*axis, indices, o)
            }
            (Op::IndexSelect { axis, indices }, DestMut::I64(o)) => {
                inputs[0].as_i64().index_select_into(*axis, indices, o)
            }
            (Op::Concat { axis }, DestMut::F32(o)) => {
                let ts: Vec<&Tensor<f32>> = inputs.iter().map(|t| t.as_f32()).collect();
                Tensor::concat_into(&ts, *axis, o)
            }
            (Op::Concat { axis }, DestMut::I64(o)) => {
                let ts: Vec<&Tensor<i64>> = inputs.iter().map(|t| t.as_i64()).collect();
                Tensor::concat_into(&ts, *axis, o)
            }
            (Op::Sum { axis, .. }, DestMut::F32(o)) => inputs[0].as_f32().sum_axis_into(*axis, o),
            (Op::Sum { axis, .. }, DestMut::I64(o)) => inputs[0].as_i64().sum_axis_into(*axis, o),
            (Op::Mean { axis, .. }, DestMut::F32(o)) => inputs[0].as_f32().mean_axis_into(*axis, o),
            (Op::ReduceMax { axis, .. }, DestMut::F32(o)) => {
                inputs[0].as_f32().max_axis_into(*axis, o)
            }
            (Op::ReduceMax { axis, .. }, DestMut::I64(o)) => {
                inputs[0].as_i64().max_axis_into(*axis, o)
            }
            (Op::ArgMax { axis, .. }, DestMut::I64(o)) => match inputs[0] {
                DynTensor::F32(t) => t.argmax_axis_into(*axis, o),
                _ => inputs[0].as_i64().argmax_axis_into(*axis, o),
            },
            (Op::LogSumExp { axis, .. }, DestMut::F32(o)) => {
                inputs[0].as_f32().logsumexp_axis_into(*axis, o)
            }
            (Op::Softmax { axis }, DestMut::F32(o)) => {
                inputs[0].as_f32().softmax_axis_into(*axis, o)
            }
            // Conversions mirror `DynTensor::cast` exactly.
            (Op::Cast(_), DestMut::F32(o)) => match inputs[0] {
                DynTensor::I64(t) => t.map_into(o, |v| v as f32),
                DynTensor::U8(t) => t.map_into(o, |v| v as f32),
                DynTensor::Bool(t) => t.map_into(o, |v| if v { 1.0 } else { 0.0 }),
                DynTensor::F32(_) => panic!("identity cast is planned as a view"),
            },
            (Op::Cast(_), DestMut::I64(o)) => match inputs[0] {
                DynTensor::F32(t) => t.map_into(o, |v| v as i64),
                DynTensor::U8(t) => t.map_into(o, |v| v as i64),
                DynTensor::Bool(t) => t.map_into(o, |v| v as i64),
                DynTensor::I64(_) => panic!("identity cast is planned as a view"),
            },
            (Op::Cast(_), DestMut::Bool(o)) => match inputs[0] {
                DynTensor::F32(t) => t.map_into(o, |v| v != 0.0),
                DynTensor::I64(t) => t.map_into(o, |v| v != 0),
                DynTensor::U8(t) => t.map_into(o, |v| v != 0),
                DynTensor::Bool(_) => panic!("identity cast is planned as a view"),
            },
            (Op::Relu, DestMut::F32(o)) => {
                inputs[0]
                    .as_f32()
                    .map_into(o, |x| if x < 0.0 { 0.0 } else { x })
            }
            (Op::Sigmoid, DestMut::F32(o)) => {
                inputs[0].as_f32().map_into(o, |x| 1.0 / (1.0 + (-x).exp()))
            }
            (Op::Tanh, DestMut::F32(o)) => inputs[0].as_f32().map_into(o, f32::tanh),
            (Op::Exp, DestMut::F32(o)) => inputs[0].as_f32().map_into(o, f32::exp),
            (Op::Ln, DestMut::F32(o)) => inputs[0].as_f32().map_into(o, f32::ln),
            (Op::Sqrt, DestMut::F32(o)) => inputs[0].as_f32().map_into(o, f32::sqrt),
            (Op::Abs, DestMut::F32(o)) => inputs[0].as_f32().map_into(o, f32::abs),
            (Op::Neg, DestMut::F32(o)) => inputs[0].as_f32().map_into(o, |x| -x),
            (Op::Clamp { lo, hi }, DestMut::F32(o)) => {
                let (lo, hi) = (*lo, *hi);
                inputs[0].as_f32().map_into(o, move |x| {
                    if x < lo {
                        lo
                    } else if x > hi {
                        hi
                    } else {
                        x
                    }
                })
            }
            (Op::Sqdist, DestMut::F32(o)) => {
                // Composite (matmul + row norms); the into variant reuses
                // the allocating kernel for the intermediates and writes
                // only the final subtraction into the arena.
                inputs[0]
                    .as_f32()
                    .sqdist(inputs[1].as_f32())
                    .map_into(o, |v| v)
            }
            (Op::Fused(k), DestMut::F32(o)) => k.eval_into(inputs, o),
            (op, _) => panic!("eval_into unsupported for {}", op.label()),
        }
    }

    /// Estimates the roofline cost of one execution with the given inputs
    /// and output.
    pub fn cost(&self, inputs: &[&DynTensor], output: &DynTensor) -> OpCost {
        let in_bytes: f64 = inputs.iter().map(|t| t.nbytes() as f64).sum();
        let out_bytes = output.nbytes() as f64;
        let out_n = output.numel() as f64;
        let mut c = match self {
            Op::Input(_) | Op::Const(_) => OpCost {
                metadata_only: true,
                ..OpCost::default()
            },
            Op::Reshape { .. }
            | Op::Unsqueeze(_)
            | Op::Squeeze(_)
            | Op::Transpose(..)
            | Op::Slice { .. } => OpCost {
                metadata_only: true,
                ..OpCost::default()
            },
            Op::MatMul => {
                let a = inputs[0].shape();
                let b = inputs[1].shape();
                let m = a[a.len() - 2] as f64;
                let k = a[a.len() - 1] as f64;
                let n = b[b.len() - 1] as f64;
                let batch = out_n / (m * n).max(1.0);
                OpCost {
                    flops: 2.0 * m * k * n * batch.max(1.0),
                    bytes: in_bytes + out_bytes,
                    ..OpCost::default()
                }
            }
            Op::Sqdist => {
                let n = inputs[0].shape()[0] as f64;
                let m = inputs[1].shape()[0] as f64;
                let d = inputs[0].shape()[1] as f64;
                OpCost {
                    flops: 2.0 * n * m * d + 3.0 * n * m,
                    bytes: in_bytes + out_bytes,
                    ..OpCost::default()
                }
            }
            // Transcendentals cost several FLOPs per element.
            Op::Exp | Op::Ln | Op::Sqrt | Op::Tanh | Op::Sigmoid | Op::PowScalar(_) => OpCost {
                flops: 10.0 * out_n,
                bytes: in_bytes + out_bytes,
                ..OpCost::default()
            },
            Op::Softmax { .. } | Op::LogSumExp { .. } => OpCost {
                flops: 12.0 * inputs[0].numel() as f64,
                bytes: 2.0 * in_bytes + out_bytes,
                ..OpCost::default()
            },
            // Random-access gathers are bandwidth-hostile: charge the
            // output twice to model uncoalesced reads.
            Op::Gather { .. } | Op::GatherRows | Op::IndexSelect { .. } => OpCost {
                flops: out_n,
                bytes: 2.0 * out_bytes + inputs.last().map(|t| t.nbytes() as f64).unwrap_or(0.0),
                ..OpCost::default()
            },
            Op::Fused(k) => OpCost {
                flops: k.program_len() as f64 * out_n,
                bytes: in_bytes + out_bytes,
                ..OpCost::default()
            },
            _ => OpCost {
                flops: out_n,
                bytes: in_bytes + out_bytes,
                ..OpCost::default()
            },
        };
        // Every launched kernel traverses each output element exactly
        // once; metadata ops traverse nothing. `hb-backend::cost`
        // mirrors this definition symbolically, so the two must agree.
        if !c.metadata_only {
            c.traversals = out_n;
        }
        c
    }

    /// Stable key used for common-subexpression elimination; `None` for
    /// ops that must never merge (inputs, constants, fused kernels).
    pub fn cse_key(&self) -> Option<String> {
        match self {
            Op::Input(_) | Op::Const(_) | Op::Fused(_) => None,
            other => Some(format!("{other:?}")),
        }
    }

    /// Short operator label for diagnostics; constants and fused kernels
    /// elide their payloads.
    pub fn label(&self) -> String {
        match self {
            Op::Const(v) => format!("Const({:?}{:?})", v.dtype(), v.shape()),
            Op::Fused(k) => format!("Fused({} inputs)", k.n_inputs),
            other => format!("{other:?}"),
        }
    }

    /// Infers the node's symbolic output shape from its operands',
    /// proving broadcast legality, matmul/gather conformability, reshape
    /// resolution, and compile-time index ranges along the way.
    ///
    /// `ins` and `in_consts` run parallel to the node's operands
    /// (`in_consts[i]` is the operand's value when it is a `Const`
    /// node, enabling static index-range checks); `graph_inputs` is the
    /// graph's declared per-slot input shape. Unknown dims and
    /// [`ShapeFact::Any`] operands absorb every check, so the verifier
    /// only reports *provable* defects.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError::ShapeMismatch`],
    /// [`GraphError::IndexOutOfRange`], or [`GraphError::BadReshape`]
    /// naming `node` and the inferred operand shapes.
    pub fn shape_infer(
        &self,
        node: NodeId,
        ins: &[ShapeFact],
        in_consts: &[Option<&DynTensor>],
        graph_inputs: &[ShapeFact],
    ) -> Result<ShapeFact, GraphError> {
        let err = |detail: String| GraphError::ShapeMismatch {
            node,
            op: self.label(),
            operands: ins.to_vec(),
            detail,
        };
        match self {
            Op::Input(slot) => Ok(graph_inputs.get(*slot).cloned().unwrap_or(ShapeFact::Any)),
            Op::Const(v) => Ok(ShapeFact::fixed(v.shape())),

            // Element-wise binaries broadcast their two operands.
            Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Div
            | Op::Minimum
            | Op::Maximum
            | Op::Lt
            | Op::Le
            | Op::Gt
            | Op::Ge
            | Op::EqOp
            | Op::NeOp
            | Op::And
            | Op::Or
            | Op::Xor => broadcast_facts(&ins[0], &ins[1]).map_err(err),

            Op::Where => {
                let cond_then = broadcast_facts(&ins[0], &ins[1]).map_err(&err)?;
                broadcast_facts(&cond_then, &ins[2]).map_err(err)
            }

            // A fused kernel broadcasts all of its inputs together.
            Op::Fused(_) => {
                let mut acc = match ins.first() {
                    Some(s) => s.clone(),
                    None => return Ok(ShapeFact::Any),
                };
                for s in &ins[1..] {
                    acc = broadcast_facts(&acc, s).map_err(&err)?;
                }
                Ok(acc)
            }

            Op::MatMul => {
                let (Some(da), Some(db)) = (ins[0].dims(), ins[1].dims()) else {
                    return Ok(ShapeFact::Any);
                };
                if da.len() < 2 || db.len() < 2 {
                    return Err(err(format!(
                        "matmul needs rank >= 2 operands, got rank {} and {}",
                        da.len(),
                        db.len()
                    )));
                }
                let (m, k) = (da[da.len() - 2], da[da.len() - 1]);
                let (k2, n) = (db[db.len() - 2], db[db.len() - 1]);
                if k.known_eq(k2) == Some(false) {
                    return Err(err(format!("inner dimensions {k} and {k2} differ")));
                }
                let mut out =
                    broadcast_dims(&da[..da.len() - 2], &db[..db.len() - 2]).map_err(err)?;
                out.push(m);
                out.push(n);
                Ok(ShapeFact::Known(out))
            }

            Op::Sqdist => {
                let (Some(da), Some(db)) = (ins[0].dims(), ins[1].dims()) else {
                    return Ok(ShapeFact::Any);
                };
                if da.len() != 2 || db.len() != 2 {
                    return Err(err(format!(
                        "sqdist needs rank-2 operands, got rank {} and {}",
                        da.len(),
                        db.len()
                    )));
                }
                if da[1].known_eq(db[1]) == Some(false) {
                    return Err(err(format!(
                        "feature dimensions {} and {} differ",
                        da[1], db[1]
                    )));
                }
                Ok(ShapeFact::Known(vec![da[0], db[0]]))
            }

            Op::Gather { axis } => match (ins[0].dims(), ins[1].dims()) {
                (Some(d), Some(ix)) => {
                    if ix.len() != d.len() {
                        return Err(err(format!(
                            "gather index rank {} != data rank {}",
                            ix.len(),
                            d.len()
                        )));
                    }
                    if *axis >= d.len() {
                        return Err(err(format!(
                            "gather axis {axis} out of range for rank {}",
                            d.len()
                        )));
                    }
                    for i in 0..d.len() {
                        if i != *axis && ix[i].known_le(d[i]) == Some(false) {
                            return Err(err(format!(
                                "index dimension {i} ({}) exceeds data dimension ({})",
                                ix[i], d[i]
                            )));
                        }
                    }
                    check_const_indices(node, self, in_consts[1], d[*axis])?;
                    Ok(ShapeFact::Known(ix.to_vec()))
                }
                (Some(d), None) => {
                    if *axis >= d.len() {
                        return Err(err(format!(
                            "gather axis {axis} out of range for rank {}",
                            d.len()
                        )));
                    }
                    Ok(ShapeFact::Any)
                }
                // The output shape is the index shape even when the data
                // shape is unknown.
                (None, Some(ix)) => Ok(ShapeFact::Known(ix.to_vec())),
                (None, None) => Ok(ShapeFact::Any),
            },

            Op::GatherRows => match (ins[0].dims(), ins[1].dims()) {
                (Some(d), Some(ix)) => {
                    if d.len() != 3 {
                        return Err(err(format!(
                            "gather_rows data must be rank 3 [B, N, W], got rank {}",
                            d.len()
                        )));
                    }
                    if ix.len() != 2 {
                        return Err(err(format!(
                            "gather_rows index must be rank 2 [B, n], got rank {}",
                            ix.len()
                        )));
                    }
                    if d[0].known_eq(ix[0]) == Some(false) {
                        return Err(err(format!(
                            "batch dimensions {} and {} differ",
                            d[0], ix[0]
                        )));
                    }
                    check_const_indices(node, self, in_consts[1], d[1])?;
                    let b = unify_eq(d[0], ix[0]).unwrap_or(SymDim::Unknown);
                    Ok(ShapeFact::Known(vec![b, ix[1], d[2]]))
                }
                (Some(d), None) => {
                    if d.len() != 3 {
                        return Err(err(format!(
                            "gather_rows data must be rank 3 [B, N, W], got rank {}",
                            d.len()
                        )));
                    }
                    Ok(ShapeFact::Known(vec![d[0], SymDim::Unknown, d[2]]))
                }
                (None, Some(ix)) => {
                    if ix.len() != 2 {
                        return Err(err(format!(
                            "gather_rows index must be rank 2 [B, n], got rank {}",
                            ix.len()
                        )));
                    }
                    Ok(ShapeFact::Known(vec![ix[0], ix[1], SymDim::Unknown]))
                }
                (None, None) => Ok(ShapeFact::Any),
            },

            Op::IndexSelect { axis, indices } => {
                let Some(d) = ins[0].dims() else {
                    return Ok(ShapeFact::Any);
                };
                if *axis >= d.len() {
                    return Err(err(format!(
                        "index_select axis {axis} out of range for rank {}",
                        d.len()
                    )));
                }
                if let Some(min) = d[*axis].min_value() {
                    for &ix in indices.iter() {
                        if ix >= min {
                            return Err(GraphError::IndexOutOfRange {
                                node,
                                op: self.label(),
                                index: ix as i64,
                                bound: d[*axis],
                            });
                        }
                    }
                }
                let mut out = d.to_vec();
                out[*axis] = SymDim::fixed(indices.len());
                Ok(ShapeFact::Known(out))
            }

            Op::Concat { axis } => {
                let mut all = Vec::with_capacity(ins.len());
                for s in ins {
                    match s.dims() {
                        Some(d) => all.push(d),
                        None => return Ok(ShapeFact::Any),
                    }
                }
                let Some(first) = all.first() else {
                    return Ok(ShapeFact::Any);
                };
                let rank = first.len();
                if *axis >= rank {
                    return Err(err(format!(
                        "concat axis {axis} out of range for rank {rank}"
                    )));
                }
                let mut out = first.to_vec();
                for d in &all[1..] {
                    if d.len() != rank {
                        return Err(err(format!("concat rank mismatch: {} vs {rank}", d.len())));
                    }
                    for i in 0..rank {
                        if i == *axis {
                            continue;
                        }
                        out[i] = unify_eq(out[i], d[i]).map_err(|()| {
                            err(format!("off-axis dimension {i}: {} vs {}", out[i], d[i]))
                        })?;
                    }
                }
                out[*axis] = all[1..]
                    .iter()
                    .fold(first[*axis], |acc, d| add_dims(acc, d[*axis]));
                Ok(ShapeFact::Known(out))
            }

            Op::Reshape { dims } => shape_infer_reshape(node, &ins[0], dims),

            Op::Unsqueeze(axis) => {
                let Some(d) = ins[0].dims() else {
                    return Ok(ShapeFact::Any);
                };
                if *axis > d.len() {
                    return Err(err(format!(
                        "unsqueeze axis {axis} out of range for rank {}",
                        d.len()
                    )));
                }
                let mut out = d.to_vec();
                out.insert(*axis, SymDim::fixed(1));
                Ok(ShapeFact::Known(out))
            }

            Op::Squeeze(axis) => {
                let Some(d) = ins[0].dims() else {
                    return Ok(ShapeFact::Any);
                };
                if *axis >= d.len() {
                    return Err(err(format!(
                        "squeeze axis {axis} out of range for rank {}",
                        d.len()
                    )));
                }
                match d[*axis] {
                    SymDim::Unknown => {}
                    dim if dim.is_one() => {}
                    dim => {
                        return Err(err(format!("squeeze of non-1 dimension {dim}")));
                    }
                }
                let mut out = d.to_vec();
                out.remove(*axis);
                Ok(ShapeFact::Known(out))
            }

            Op::Transpose(a, b) => {
                let Some(d) = ins[0].dims() else {
                    return Ok(ShapeFact::Any);
                };
                if *a >= d.len() || *b >= d.len() {
                    return Err(err(format!(
                        "transpose axes ({a}, {b}) out of range for rank {}",
                        d.len()
                    )));
                }
                let mut out = d.to_vec();
                out.swap(*a, *b);
                Ok(ShapeFact::Known(out))
            }

            Op::Slice { axis, start, end } => {
                let Some(d) = ins[0].dims() else {
                    return Ok(ShapeFact::Any);
                };
                if *axis >= d.len() {
                    return Err(err(format!(
                        "slice axis {axis} out of range for rank {}",
                        d.len()
                    )));
                }
                if start > end {
                    return Err(err(format!("slice start {start} past end {end}")));
                }
                if let Some(min) = d[*axis].min_value() {
                    if *end > min {
                        return Err(err(format!(
                            "slice end {end} exceeds dimension {}",
                            d[*axis]
                        )));
                    }
                }
                let mut out = d.to_vec();
                out[*axis] = SymDim::fixed(end - start);
                Ok(ShapeFact::Known(out))
            }

            Op::Sum { axis, keepdim }
            | Op::Mean { axis, keepdim }
            | Op::ReduceMax { axis, keepdim }
            | Op::ArgMax { axis, keepdim }
            | Op::LogSumExp { axis, keepdim } => {
                let Some(d) = ins[0].dims() else {
                    return Ok(ShapeFact::Any);
                };
                if *axis >= d.len() {
                    return Err(err(format!(
                        "reduction axis {axis} out of range for rank {}",
                        d.len()
                    )));
                }
                let mut out = d.to_vec();
                if *keepdim {
                    out[*axis] = SymDim::fixed(1);
                } else {
                    out.remove(*axis);
                }
                Ok(ShapeFact::Known(out))
            }

            Op::Softmax { axis } => {
                let Some(d) = ins[0].dims() else {
                    return Ok(ShapeFact::Any);
                };
                if *axis >= d.len() {
                    return Err(err(format!(
                        "softmax axis {axis} out of range for rank {}",
                        d.len()
                    )));
                }
                Ok(ins[0].clone())
            }

            // Shape-preserving unaries.
            Op::AddScalar(_)
            | Op::MulScalar(_)
            | Op::PowScalar(_)
            | Op::Not
            | Op::IsNan
            | Op::Relu
            | Op::Sigmoid
            | Op::Tanh
            | Op::Exp
            | Op::Ln
            | Op::Sqrt
            | Op::Abs
            | Op::Neg
            | Op::Clamp { .. }
            | Op::Cast(_) => Ok(ins[0].clone()),
        }
    }
}

/// Symbolic sum of two dims for `Concat`: monomials of equal power add
/// their coefficients; mixed powers have no monomial sum and degrade to
/// [`SymDim::Unknown`].
fn add_dims(a: SymDim, b: SymDim) -> SymDim {
    match (a, b) {
        (SymDim::Sym { coeff: 0, .. }, d) | (d, SymDim::Sym { coeff: 0, .. }) => d,
        (SymDim::Sym { coeff: c1, pow: p1 }, SymDim::Sym { coeff: c2, pow: p2 }) if p1 == p2 => c1
            .checked_add(c2)
            .map_or(SymDim::Unknown, |c| SymDim::Sym { coeff: c, pow: p1 }),
        _ => SymDim::Unknown,
    }
}

/// Checks a compile-time (`Const`) i64 index operand against the gathered
/// dimension: every value must satisfy `0 <= v < bound` for all batch
/// sizes, i.e. `v < bound.min_value()`.
fn check_const_indices(
    node: NodeId,
    op: &Op,
    idx: Option<&DynTensor>,
    bound: SymDim,
) -> Result<(), GraphError> {
    let Some(DynTensor::I64(t)) = idx else {
        return Ok(());
    };
    let Some(min) = bound.min_value() else {
        return Ok(());
    };
    for v in t.to_vec() {
        if v < 0 || v as usize >= min {
            return Err(GraphError::IndexOutOfRange {
                node,
                op: op.label(),
                index: v,
                bound,
            });
        }
    }
    Ok(())
}

/// Symbolic counterpart of [`resolve_reshape`]: resolves `0`/`-1`
/// placeholders over monomial dims and proves element-count
/// conservation for every batch size.
fn shape_infer_reshape(
    node: NodeId,
    input: &ShapeFact,
    dims: &[i64],
) -> Result<ShapeFact, GraphError> {
    let bad = |detail: String| GraphError::BadReshape { node, detail };
    let input_dims = input.dims();
    // Input element count, when symbolically known.
    let total = input_dims.and_then(|d| {
        d.iter()
            .try_fold(SymDim::fixed(1), |acc, &x| match acc.times(x) {
                SymDim::Unknown => None,
                m => Some(m),
            })
    });
    let mut out: Vec<SymDim> = Vec::with_capacity(dims.len());
    // Product of the non-wildcard target dims, when symbolically known.
    let mut known = Some(SymDim::fixed(1));
    let mut wildcard = None;
    for (i, &d) in dims.iter().enumerate() {
        let v = match d {
            -1 => {
                if wildcard.is_some() {
                    return Err(bad("multiple -1 dims".to_string()));
                }
                wildcard = Some(i);
                out.push(SymDim::Unknown);
                continue;
            }
            0 => match input_dims {
                Some(ind) => *ind
                    .get(i)
                    .ok_or_else(|| bad(format!("dim {i} copies a missing input dim")))?,
                None => SymDim::Unknown,
            },
            d if d > 0 => SymDim::fixed(d as usize),
            d => return Err(bad(format!("negative dimension {d}"))),
        };
        known = known.and_then(|k| match k.times(v) {
            SymDim::Unknown => None,
            m => Some(m),
        });
        out.push(v);
    }
    match (wildcard, total, known) {
        (Some(i), Some(total), Some(known)) => {
            out[i] = total.div_exact(known).ok_or_else(|| {
                bad(format!(
                    "cannot infer -1: {total} elements are not divisible by {known}"
                ))
            })?;
        }
        (None, Some(total), Some(known)) if total != known => {
            return Err(bad(format!(
                "element count mismatch: input has {total}, target has {known}"
            )));
        }
        // An unknown factor on either side leaves the wildcard (if any)
        // unresolved and the count check unprovable.
        _ => {}
    }
    Ok(ShapeFact::Known(out))
}

/// Resolves ONNX-style reshape dims (`0` copies, `-1` infers) against the
/// input shape.
pub fn resolve_reshape(input: &[usize], dims: &[i64]) -> Vec<usize> {
    let total: usize = input.iter().product();
    let mut out = Vec::with_capacity(dims.len());
    let mut infer = None;
    let mut known = 1usize;
    for (i, &d) in dims.iter().enumerate() {
        match d {
            -1 => {
                assert!(infer.is_none(), "reshape: multiple -1 dims");
                infer = Some(i);
                out.push(0);
            }
            0 => {
                let v = input
                    .get(i)
                    .copied()
                    .unwrap_or_else(|| panic!("reshape: dim {i} copies a missing input dim"));
                known *= v;
                out.push(v);
            }
            d if d > 0 => {
                known *= d as usize;
                out.push(d as usize);
            }
            _ => panic!("reshape: invalid dim {d}"),
        }
    }
    if let Some(i) = infer {
        assert!(
            known > 0 && total.is_multiple_of(known),
            "reshape: cannot infer dim"
        );
        out[i] = total / known;
    }
    out
}

// JSON artifact impls (replacing the former serde derive). The variant
// list must stay in sync with `Op`; a missing variant is caught by the
// `unreachable!` in the generated `to_json`.
hb_json::json_enum!(Op {
    Input(usize),
    Const(DynTensor),
    MatMul,
    Add,
    Sub,
    Mul,
    Div,
    Minimum,
    Maximum,
    AddScalar(f64),
    MulScalar(f64),
    PowScalar(f64),
    Lt,
    Le,
    Gt,
    Ge,
    EqOp,
    NeOp,
    And,
    Or,
    Xor,
    Not,
    Where,
    Gather { axis },
    GatherRows,
    IndexSelect { axis, indices },
    Concat { axis },
    Reshape { dims },
    Unsqueeze(usize),
    Squeeze(usize),
    Transpose(usize, usize),
    Slice { axis, start, end },
    Sum { axis, keepdim },
    Mean { axis, keepdim },
    ReduceMax { axis, keepdim },
    ArgMax { axis, keepdim },
    LogSumExp { axis, keepdim },
    Softmax { axis },
    Relu,
    Sigmoid,
    Tanh,
    Exp,
    Ln,
    Sqrt,
    Abs,
    Neg,
    IsNan,
    Clamp { lo, hi },
    Cast(DType),
    Sqdist,
    Fused(std::sync::Arc<FusedKernel>),
});

#[cfg(test)]
mod tests {
    use super::*;

    fn f(v: &[f32], s: &[usize]) -> DynTensor {
        DynTensor::F32(Tensor::from_vec(v.to_vec(), s))
    }

    #[test]
    fn eval_add_and_matmul() {
        let a = f(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = f(&[1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(
            Op::Add.eval(&[&a, &b]).as_f32().to_vec(),
            vec![2.0, 2.0, 3.0, 5.0]
        );
        assert_eq!(
            Op::MatMul.eval(&[&a, &b]).as_f32().to_vec(),
            vec![1.0, 2.0, 3.0, 4.0]
        );
    }

    #[test]
    fn eval_i64_arithmetic_for_ptt() {
        let a = DynTensor::I64(Tensor::from_vec(vec![1i64, 2, 3], &[3]));
        let doubled = Op::MulScalar(2.0).eval(&[&a]);
        let bumped = Op::AddScalar(1.0).eval(&[&doubled]);
        assert_eq!(bumped.as_i64().to_vec(), vec![3, 5, 7]);
    }

    #[test]
    fn eval_comparison_and_where() {
        let a = f(&[1.0, 5.0], &[2]);
        let b = f(&[3.0, 3.0], &[2]);
        let m = Op::Lt.eval(&[&a, &b]);
        assert_eq!(m.as_bool().to_vec(), vec![true, false]);
        let x = DynTensor::I64(Tensor::from_vec(vec![10i64, 10], &[2]));
        let y = DynTensor::I64(Tensor::from_vec(vec![20i64, 20], &[2]));
        assert_eq!(
            Op::Where.eval(&[&m, &x, &y]).as_i64().to_vec(),
            vec![10, 20]
        );
    }

    #[test]
    fn resolve_reshape_placeholders() {
        assert_eq!(resolve_reshape(&[6, 4], &[0, 2, 2]), vec![6, 2, 2]);
        assert_eq!(resolve_reshape(&[6, 4], &[-1, 8]), vec![3, 8]);
        assert_eq!(resolve_reshape(&[2, 3], &[6]), vec![6]);
    }

    #[test]
    #[should_panic(expected = "multiple -1")]
    fn resolve_reshape_two_wildcards_panics() {
        resolve_reshape(&[4], &[-1, -1]);
    }

    #[test]
    fn cost_matmul_counts_flops() {
        let a = f(&[0.0; 6], &[2, 3]);
        let b = f(&[0.0; 12], &[3, 4]);
        let out = Op::MatMul.eval(&[&a, &b]);
        let c = Op::MatMul.cost(&[&a, &b], &out);
        assert_eq!(c.flops, 2.0 * 2.0 * 3.0 * 4.0);
        assert!(!c.metadata_only);
    }

    #[test]
    fn cost_reshape_is_metadata() {
        let a = f(&[0.0; 6], &[2, 3]);
        let out = Op::Reshape { dims: vec![6] }.eval(&[&a]);
        assert!(
            Op::Reshape { dims: vec![6] }
                .cost(&[&a], &out)
                .metadata_only
        );
    }

    #[test]
    fn cse_keys_distinguish_params() {
        assert_ne!(
            Op::Sum {
                axis: 0,
                keepdim: false
            }
            .cse_key(),
            Op::Sum {
                axis: 1,
                keepdim: false
            }
            .cse_key()
        );
        assert!(Op::Const(f(&[1.0], &[1])).cse_key().is_none());
    }

    #[test]
    fn eval_reductions() {
        let a = f(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(
            Op::Sum {
                axis: 1,
                keepdim: false
            }
            .eval(&[&a])
            .as_f32()
            .to_vec(),
            vec![3.0, 7.0]
        );
        assert_eq!(
            Op::ArgMax {
                axis: 1,
                keepdim: false
            }
            .eval(&[&a])
            .as_i64()
            .to_vec(),
            vec![1, 1]
        );
        assert_eq!(
            Op::Mean {
                axis: 0,
                keepdim: false
            }
            .eval(&[&a])
            .as_f32()
            .to_vec(),
            vec![2.0, 3.0]
        );
    }

    #[test]
    fn eval_concat_variadic() {
        let a = f(&[1.0], &[1, 1]);
        let b = f(&[2.0], &[1, 1]);
        let c = f(&[3.0], &[1, 1]);
        let out = Op::Concat { axis: 1 }.eval(&[&a, &b, &c]);
        assert_eq!(out.shape(), &[1, 3]);
        assert_eq!(out.as_f32().to_vec(), vec![1.0, 2.0, 3.0]);
    }
}
