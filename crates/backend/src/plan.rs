//! Static memory planner: arena-backed execution plans for compiled
//! graphs.
//!
//! Given a verified graph and one concrete batch size `B`, the planner
//! concretizes every symbolic shape, walks the topological order computing
//! liveness intervals, and assigns each plannable intermediate a *slot* in
//! a reusable arena. Two intermediates whose live ranges do not overlap
//! share a slot, so the steady-state footprint is the maximum concurrent
//! working set rather than the sum of all intermediates — the same idea
//! PyTorch's static runtime and ONNX Runtime's arena planner apply to DNN
//! serving, transplanted here to the paper's tensor-compiled traditional-ML
//! pipelines.
//!
//! Slot assignment is greedy best-fit: a dying buffer's slot returns to a
//! free list, and a new intermediate takes the smallest free slot of its
//! dtype that fits. When nothing fits, the largest free slot of that dtype
//! is grown at plan time (growth happens once, while planning — never
//! during execution). Three kernel families additionally execute *in
//! place*, overwriting the slot of an input that dies at that very node
//! (see [`Inplace`]): simple f32 unary maps, fused elementwise kernels
//! whose dying operand has exactly the output shape, and matrix
//! multiplies whose dying LHS shares the output's batch dims — the last
//! stages row panels through a small scratch slot, which is what lets a
//! GEMM-lowered tree ensemble's ping-pong chain collapse into a single
//! large slot instead of two.
//!
//! Safe-Rust realization: the workspace forbids `unsafe`, so a slot is an
//! independently allocated 1-D [`Tensor`] rather than an offset into one
//! contiguous allocation. Node values are zero-copy views of their slot
//! (`slice` + `reshape`), and refcount-driven view dropping restores
//! `Arc` uniqueness before a slot is written again. The planner only
//! decides *which* slot each node writes; the executor re-checks
//! uniqueness at run time and self-heals with a fresh (counted)
//! allocation if a caller still holds views — so reuse is an
//! optimization, never a soundness obligation.

use hb_tensor::matmul::matmul_in_place_scratch_len;
use hb_tensor::{DType, DynTensor, Tensor};

use crate::graph::{Graph, GraphError};
use crate::op::Op;
use crate::verify::{ShapeFact, SymDim};

/// Why a graph/batch combination could not be planned.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// Shape inference failed (the graph would not verify).
    Graph(GraphError),
    /// An input slot's shape stays symbolic even at a concrete batch, so
    /// actual requests cannot be validated against the plan.
    SymbolicInput {
        /// The offending graph input slot.
        slot: usize,
    },
    /// A batch size of zero degenerates every symbolic dimension; such
    /// requests run on the refcount path.
    ZeroBatch,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Graph(e) => write!(f, "shape inference failed: {e}"),
            PlanError::SymbolicInput { slot } => {
                write!(f, "input {slot} has a symbolic shape at a concrete batch")
            }
            PlanError::ZeroBatch => write!(f, "cannot plan a zero batch"),
        }
    }
}

impl std::error::Error for PlanError {}

/// One arena slot: a 1-D buffer of `len` elements of `dtype`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotSpec {
    /// Element type of the buffer.
    pub dtype: DType,
    /// Element count (the largest interval ever assigned to this slot).
    pub len: usize,
}

impl SlotSpec {
    /// Bytes this slot occupies.
    pub fn nbytes(&self) -> usize {
        self.len * self.dtype.size_of()
    }

    /// Allocates the slot's backing buffer.
    pub(crate) fn allocate(&self) -> DynTensor {
        match self.dtype {
            DType::F32 => DynTensor::F32(Tensor::zeros(&[self.len])),
            DType::I64 => DynTensor::I64(Tensor::zeros(&[self.len])),
            DType::Bool => DynTensor::Bool(Tensor::from_vec(vec![false; self.len], &[self.len])),
            DType::U8 => DynTensor::U8(Tensor::zeros(&[self.len])),
        }
    }
}

/// How a planned kernel reuses a dying input's slot as its own output
/// buffer. Every form is bit-identical to the allocating kernel; the
/// planner only selects one when the operand dies at this very node and
/// nothing else aliases its slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inplace {
    /// Ordinary planned kernel: writes a fresh (best-fit) slot.
    No,
    /// Simple unary f32 map mutating its operand's slot directly.
    Map,
    /// Fused elementwise kernel overwriting the slot of the dying,
    /// output-shaped operand at input position `operand`
    /// ([`crate::fuse::FusedKernel::eval_in_place`]).
    Fused {
        /// Input position whose slot doubles as the output buffer.
        operand: usize,
    },
    /// Matrix multiply overwriting its dying LHS's slot row-panel by
    /// row-panel ([`hb_tensor::matmul::matmul_in_place`]), staging each
    /// panel through the small `scratch` slot.
    MatMulLhs {
        /// Index of the scratch slot (freed again right after this node).
        scratch: usize,
    },
}

/// How the planned executor realizes one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Input clone, constant, metadata view, or allocating fallback — the
    /// node evaluates exactly as on the refcount path.
    Value,
    /// The node's kernel writes into an arena slot via [`Op::eval_into`]
    /// (or reuses a dying input's slot per [`Inplace`]).
    Kernel {
        /// Index into [`MemoryPlan::slots`].
        slot: usize,
        /// Concrete output shape at this plan's batch size.
        shape: Vec<usize>,
        /// In-place form, if the op overwrites a dying input's slot.
        inplace: Inplace,
    },
}

/// A complete execution plan for one `(graph, batch)` pair.
///
/// Plans are deterministic: building twice from the same graph and batch
/// yields equal plans (`PartialEq` compares every step and slot).
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryPlan {
    /// The batch size this plan was concretized at.
    pub batch: usize,
    /// Per-node realization, indexed by node id.
    pub steps: Vec<Step>,
    /// The arena layout.
    pub slots: Vec<SlotSpec>,
    /// Expected concrete shape per graph input slot (`None` for slots no
    /// node reads); the executor validates requests against these before
    /// running the plan.
    pub input_shapes: Vec<Option<Vec<usize>>>,
    /// Total arena footprint in bytes (sum of slot sizes after reuse).
    pub arena_bytes: usize,
    /// What the same intermediates would occupy without reuse — the sum of
    /// every planned kernel output. `arena_bytes / naive_bytes` is the
    /// planner's reuse ratio.
    pub naive_bytes: usize,
    /// Kernels that execute allocation-free into the arena.
    pub planned_kernels: usize,
    /// Compute kernels that fall back to the allocating [`Op::eval`] path
    /// (unsupported op/dtype or a non-concretizable shape).
    pub fallback_kernels: usize,
}

/// Node classification used during planning.
#[derive(Clone, Copy, PartialEq)]
enum Kind {
    /// Input or constant — cloned, never materialized by the plan.
    Value,
    /// Metadata op or identity cast — a zero-copy alias of its input.
    View,
    /// Arena-backed kernel.
    Kernel,
    /// Compute op the arena cannot host; evaluates allocating.
    Fallback,
}

/// Concretizes a symbolic dimension at batch `b`, guarding overflow.
fn concrete_dim(d: SymDim, b: usize) -> Option<usize> {
    match d {
        SymDim::Sym { coeff, pow } => b.checked_pow(pow).and_then(|p| coeff.checked_mul(p)),
        SymDim::Unknown => None,
    }
}

/// Concretizes a shape fact at batch `b`; `None` when any dimension stays
/// unknown.
pub fn concretize(fact: &ShapeFact, b: usize) -> Option<Vec<usize>> {
    fact.dims()?.iter().map(|&d| concrete_dim(d, b)).collect()
}

/// Infers the batch size a request implies by matching actual input shapes
/// against the graph's declared symbolic input shapes. Returns `None` when
/// shapes contradict the declarations or imply inconsistent batches; a
/// fully fixed graph (no symbolic dims) infers batch 1.
pub fn infer_batch(graph: &Graph, inputs: &[DynTensor]) -> Option<usize> {
    let mut batch: Option<usize> = None;
    for (slot, t) in inputs.iter().enumerate() {
        let fact = graph.input_shape(slot);
        let dims = match fact.dims() {
            Some(d) => d,
            None => continue,
        };
        if dims.len() != t.shape().len() {
            return None;
        }
        for (&sym, &actual) in dims.iter().zip(t.shape().iter()) {
            match sym {
                SymDim::Sym { coeff, pow: 0 } if actual != coeff => {
                    return None;
                }
                SymDim::Sym { coeff, pow: 1 } => {
                    if coeff == 0 || actual % coeff != 0 {
                        return None;
                    }
                    let b = actual / coeff;
                    if batch.get_or_insert(b) != &b {
                        return None;
                    }
                }
                // Higher powers and unknowns are validated by the plan's
                // exact input-shape check instead.
                _ => {}
            }
        }
    }
    Some(batch.unwrap_or(1))
}

impl MemoryPlan {
    /// Builds the plan for `graph` at concrete batch size `batch`.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] when shape inference fails, the batch is
    /// zero, or any graph input keeps a symbolic shape at this batch.
    pub fn build(graph: &Graph, batch: usize) -> Result<MemoryPlan, PlanError> {
        if batch == 0 {
            return Err(PlanError::ZeroBatch);
        }
        let facts = graph.infer_shapes().map_err(PlanError::Graph)?;
        let dtypes = graph.infer_dtypes();
        let n = graph.nodes.len();
        let conc: Vec<Option<Vec<usize>>> = facts.iter().map(|f| concretize(f, batch)).collect();

        // Requests are validated against exact input shapes, so every
        // *read* input slot must concretize.
        let mut input_shapes: Vec<Option<Vec<usize>>> = vec![None; graph.input_dtypes.len()];
        for (id, node) in graph.nodes.iter().enumerate() {
            if let Op::Input(slot) = node.op {
                match conc[id].clone() {
                    Some(s) => input_shapes[slot] = Some(s),
                    None => return Err(PlanError::SymbolicInput { slot }),
                }
            }
        }

        // Classify nodes and resolve alias roots: a view's storage is its
        // root's slot, so liveness is tracked per root.
        let mut kind = vec![Kind::Value; n];
        let mut root: Vec<usize> = (0..n).collect();
        for (id, node) in graph.nodes.iter().enumerate() {
            kind[id] = match &node.op {
                Op::Input(_) | Op::Const(_) => Kind::Value,
                Op::Reshape { .. }
                | Op::Unsqueeze(_)
                | Op::Squeeze(_)
                | Op::Transpose(..)
                | Op::Slice { .. } => {
                    root[id] = root[node.inputs[0]];
                    Kind::View
                }
                // An identity cast returns a clone of its input.
                Op::Cast(dt) if *dt == dtypes[node.inputs[0]] => {
                    root[id] = root[node.inputs[0]];
                    Kind::View
                }
                op => {
                    let in_dtypes: Vec<DType> = node.inputs.iter().map(|&i| dtypes[i]).collect();
                    if conc[id].is_some() && op.supports_into(&in_dtypes, dtypes[id]) {
                        Kind::Kernel
                    } else {
                        Kind::Fallback
                    }
                }
            };
        }

        // Aggregate consumer counts per alias root; outputs pin their root
        // for the whole run.
        let mut uses = vec![0u32; n];
        for node in &graph.nodes {
            for &i in &node.inputs {
                uses[root[i]] += 1;
            }
        }
        let mut pinned = vec![false; n];
        for &o in &graph.outputs {
            pinned[root[o]] = true;
        }

        // Simulate execution order, assigning slots greedily.
        let mut slots: Vec<SlotSpec> = Vec::new();
        let mut free: Vec<bool> = Vec::new();
        let mut slot_of = vec![usize::MAX; n];
        let mut remaining = uses.clone();
        let mut steps = Vec::with_capacity(n);
        let mut naive_bytes = 0usize;
        let mut planned_kernels = 0usize;
        let mut fallback_kernels = 0usize;

        /// Best fit: the smallest free slot of this dtype that is large
        /// enough; when nothing fits, the largest free slot of the dtype
        /// is grown (growth happens at plan time only), else a new slot
        /// opens. The returned slot is marked taken.
        fn take_slot(
            slots: &mut Vec<SlotSpec>,
            free: &mut Vec<bool>,
            dt: DType,
            numel: usize,
        ) -> usize {
            let fit = (0..slots.len())
                .filter(|&k| free[k] && slots[k].dtype == dt && slots[k].len >= numel)
                .min_by_key(|&k| slots[k].len);
            let k = match fit {
                Some(k) => k,
                None => {
                    let grow = (0..slots.len())
                        .filter(|&k| free[k] && slots[k].dtype == dt)
                        .max_by_key(|&k| slots[k].len);
                    match grow {
                        Some(k) => {
                            slots[k].len = numel;
                            k
                        }
                        None => {
                            slots.push(SlotSpec {
                                dtype: dt,
                                len: numel,
                            });
                            free.push(false);
                            slots.len() - 1
                        }
                    }
                }
            };
            free[k] = false;
            k
        }

        /// True when input `i` is an f32 slot-backed kernel output whose
        /// slot can be handed to the consuming node: not a graph output,
        /// and this is its very last remaining use (a second use — even
        /// through a view alias — keeps `remaining > 1`).
        fn dies_here(
            i: usize,
            kind: &[Kind],
            pinned: &[bool],
            remaining: &[u32],
            dtypes: &[DType],
        ) -> bool {
            kind[i] == Kind::Kernel && !pinned[i] && remaining[i] == 1 && dtypes[i] == DType::F32
        }

        for (id, node) in graph.nodes.iter().enumerate() {
            // A slot handed from a dying input to this node via the
            // in-place rule must not return to the free list below.
            let mut transferred = usize::MAX;
            let step = match kind[id] {
                Kind::Value | Kind::View => Step::Value,
                Kind::Fallback => {
                    fallback_kernels += 1;
                    Step::Value
                }
                Kind::Kernel => {
                    #[allow(clippy::disallowed_methods)] // Kind::Kernel requires conc
                    let shape = conc[id].clone().expect("kernel shapes are concrete");
                    let numel: usize = shape.iter().product();
                    let dt = dtypes[id];
                    naive_bytes += numel * dt.size_of();
                    planned_kernels += 1;

                    // In-place rules: when an input dies at this very node
                    // (and nothing else aliases its slot), the kernel can
                    // overwrite that slot instead of claiming a new one.
                    // Three bit-identical forms exist — unary f32 maps,
                    // matmul over its dying LHS, and fused elementwise
                    // kernels over a dying output-shaped operand.
                    let chosen: Option<(usize, Inplace)> = match &node.op {
                        op if op.is_unary_f32_map() && dt == DType::F32 => {
                            let i = node.inputs[0];
                            let ok = dies_here(i, &kind, &pinned, &remaining, &dtypes)
                                && slots[slot_of[i]].len == numel;
                            ok.then(|| (slot_of[i], Inplace::Map))
                        }
                        Op::MatMul if dt == DType::F32 => {
                            let lhs = node.inputs[0];
                            let nd = shape.len();
                            // The in-place kernel reuses the LHS buffer row
                            // by row, which requires LHS batch dims to equal
                            // the output's (no LHS broadcast).
                            let ok = dies_here(lhs, &kind, &pinned, &remaining, &dtypes)
                                && nd >= 2
                                && conc[lhs].as_deref().is_some_and(|ls| {
                                    ls.len() == nd && ls[..nd - 2] == shape[..nd - 2]
                                });
                            if ok {
                                #[allow(clippy::disallowed_methods)] // checked just above
                                let ls = conc[lhs].as_deref().expect("eligible LHS is concrete");
                                let slot = slot_of[lhs];
                                // The slot doubles as input and output
                                // buffer, so it must hold the larger.
                                slots[slot].len = slots[slot].len.max(numel);
                                let scratch = take_slot(
                                    &mut slots,
                                    &mut free,
                                    DType::F32,
                                    matmul_in_place_scratch_len(ls[nd - 2], ls[nd - 1]),
                                );
                                // The scratch is only live during this node.
                                free[scratch] = true;
                                Some((slot, Inplace::MatMulLhs { scratch }))
                            } else {
                                None
                            }
                        }
                        Op::Fused(_) if dt == DType::F32 => {
                            // First dying operand with exactly the output
                            // shape (a broadcast operand reads elements
                            // more than once, so it cannot be overwritten).
                            // Every fused dispatch rung — specialized
                            // codegen class, peephole form, register VM,
                            // and stack interpreter — reads the aliased
                            // operand's element before writing it, so the
                            // planner may alias any same-shape operand
                            // regardless of which rung the kernel resolves
                            // to at execution time.
                            node.inputs.iter().enumerate().find_map(|(j, &i)| {
                                let ok = dies_here(i, &kind, &pinned, &remaining, &dtypes)
                                    && conc[i].as_deref() == Some(shape.as_slice());
                                ok.then(|| (slot_of[i], Inplace::Fused { operand: j }))
                            })
                        }
                        _ => None,
                    };

                    let (k, inplace) = match chosen {
                        Some((k, form)) => {
                            transferred = k;
                            (k, form)
                        }
                        None => (take_slot(&mut slots, &mut free, dt, numel), Inplace::No),
                    };
                    slot_of[id] = k;
                    Step::Kernel {
                        slot: k,
                        shape,
                        inplace,
                    }
                }
            };
            steps.push(step);

            // Retire operands whose last consumer this node was.
            for &i in &node.inputs {
                let r = root[i];
                if remaining[r] > 0 {
                    remaining[r] -= 1;
                    if remaining[r] == 0 && !pinned[r] {
                        let k = slot_of[r];
                        if k != usize::MAX && k != transferred {
                            free[k] = true;
                        }
                    }
                }
            }
        }

        let arena_bytes = slots.iter().map(SlotSpec::nbytes).sum();
        let plan = MemoryPlan {
            batch,
            steps,
            slots,
            input_shapes,
            arena_bytes,
            naive_bytes,
            planned_kernels,
            fallback_kernels,
        };
        // Every plan must pass the independent liveness audit before it
        // can execute anything (debug builds only; the auditor re-derives
        // aliasing and last-uses from scratch, so a planner bookkeeping
        // bug cannot excuse itself).
        #[cfg(debug_assertions)]
        if let Err(e) = crate::audit::audit_plan(graph, &plan) {
            panic!("planner emitted an unsafe plan: {e}");
        }
        Ok(plan)
    }

    /// True when the supplied request tensors match the exact shapes this
    /// plan was built for.
    pub fn matches_inputs(&self, inputs: &[DynTensor]) -> bool {
        if inputs.len() != self.input_shapes.len() {
            return false;
        }
        inputs.iter().zip(self.input_shapes.iter()).all(|(t, s)| {
            match s {
                Some(shape) => t.shape() == shape.as_slice(),
                // An unread input slot constrains nothing.
                None => true,
            }
        })
    }

    /// Allocates the arena buffers this plan needs.
    pub(crate) fn allocate_slots(&self) -> Vec<DynTensor> {
        self.slots.iter().map(SlotSpec::allocate).collect()
    }

    /// Reuse ratio: planned arena bytes over the naive sum of all planned
    /// intermediates (1.0 = no reuse, smaller is better). `None` when the
    /// plan holds no kernels.
    pub fn reuse_ratio(&self) -> Option<f64> {
        if self.naive_bytes == 0 {
            None
        } else {
            Some(self.arena_bytes as f64 / self.naive_bytes as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use hb_tensor::DType;

    /// A chain of scalar adds over a batched input: every intermediate has
    /// the same size, so reuse should collapse them to very few slots.
    fn chain_graph(len: usize) -> Graph {
        let mut b = GraphBuilder::new();
        let x = b.input_with_shape(DType::F32, ShapeFact::batched(&[4]));
        let mut cur = x;
        for _ in 0..len {
            cur = b.add_scalar(cur, 1.0);
        }
        b.output(cur);
        b.build()
    }

    #[test]
    fn chain_reuses_slots() {
        let g = chain_graph(8);
        let plan = MemoryPlan::build(&g, 16).unwrap();
        assert_eq!(plan.planned_kernels, 8);
        assert_eq!(plan.fallback_kernels, 0);
        // In-place on dying inputs keeps the whole chain in one or two
        // slots regardless of length.
        assert!(plan.slots.len() <= 2, "slots: {:?}", plan.slots);
        assert!(plan.arena_bytes < plan.naive_bytes);
    }

    #[test]
    fn matmul_reuses_dying_lhs_slot() {
        let mut b = GraphBuilder::new();
        let x = b.input_with_shape(DType::F32, ShapeFact::batched(&[4]));
        let x1 = b.add_scalar(x, 1.0);
        let w = b.constant(hb_tensor::Tensor::<f32>::zeros(&[4, 3]));
        let y = b.matmul(x1, w);
        b.output(y);
        let g = b.build();
        let plan = MemoryPlan::build(&g, 100).unwrap();
        let lhs_slot = match plan.steps[x1] {
            Step::Kernel { slot, .. } => slot,
            _ => panic!("add_scalar not planned"),
        };
        match plan.steps[y] {
            Step::Kernel {
                slot,
                inplace: Inplace::MatMulLhs { scratch },
                ..
            } => {
                assert_eq!(slot, lhs_slot, "matmul must overwrite its dying LHS");
                assert_ne!(scratch, slot);
                // The panel scratch holds one row block of the LHS.
                assert_eq!(plan.slots[scratch].len, matmul_in_place_scratch_len(100, 4));
                // The shared slot covers both the LHS and the output.
                assert_eq!(plan.slots[slot].len, 100 * 4);
            }
            ref other => panic!("matmul not planned in place: {other:?}"),
        }
    }

    #[test]
    fn matmul_keeps_live_lhs_intact() {
        // The LHS is also a graph output, so it must not be overwritten.
        let mut b = GraphBuilder::new();
        let x = b.input_with_shape(DType::F32, ShapeFact::batched(&[4]));
        let x1 = b.add_scalar(x, 1.0);
        let w = b.constant(hb_tensor::Tensor::<f32>::zeros(&[4, 3]));
        let y = b.matmul(x1, w);
        b.output(x1);
        b.output(y);
        let g = b.build();
        let plan = MemoryPlan::build(&g, 100).unwrap();
        assert!(matches!(
            plan.steps[y],
            Step::Kernel {
                inplace: Inplace::No,
                ..
            }
        ));
    }

    #[test]
    fn fused_kernel_reuses_dying_operand_slot() {
        use crate::fuse::{FusedKernel, Instr};
        let mut b = GraphBuilder::new();
        let x = b.input_with_shape(DType::F32, ShapeFact::batched(&[4]));
        let x1 = b.add_scalar(x, 1.0);
        let row = b.constant(hb_tensor::Tensor::<f32>::zeros(&[4]));
        let k = FusedKernel::new(
            2,
            DType::F32,
            vec![Instr::Load(0), Instr::Load(1), Instr::Add],
        );
        let y = b.push(Op::Fused(std::sync::Arc::new(k)), vec![x1, row]);
        b.output(y);
        let g = b.build();
        let plan = MemoryPlan::build(&g, 100).unwrap();
        let lhs_slot = match plan.steps[x1] {
            Step::Kernel { slot, .. } => slot,
            _ => panic!("add_scalar not planned"),
        };
        match plan.steps[y] {
            Step::Kernel {
                slot,
                inplace: Inplace::Fused { operand },
                ..
            } => {
                assert_eq!(operand, 0, "the full-shape operand is input 0");
                assert_eq!(
                    slot, lhs_slot,
                    "fused kernel must overwrite its dying operand"
                );
            }
            ref other => panic!("fused kernel not planned in place: {other:?}"),
        }
        // The whole graph fits in the one reused slot.
        assert_eq!(plan.slots.len(), 1, "slots: {:?}", plan.slots);
    }

    #[test]
    fn plans_are_deterministic() {
        let g = chain_graph(8);
        let a = MemoryPlan::build(&g, 100).unwrap();
        let b = MemoryPlan::build(&g, 100).unwrap();
        assert_eq!(a, b);
        let c = MemoryPlan::build(&g, 200).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn zero_batch_rejected() {
        let g = chain_graph(2);
        assert_eq!(MemoryPlan::build(&g, 0), Err(PlanError::ZeroBatch));
    }

    #[test]
    fn symbolic_input_rejected() {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32); // no declared shape → Any
        let y = b.add_scalar(x, 1.0);
        b.output(y);
        let g = b.build();
        assert!(matches!(
            MemoryPlan::build(&g, 8),
            Err(PlanError::SymbolicInput { slot: 0 })
        ));
    }

    #[test]
    fn infer_batch_from_inputs() {
        let g = chain_graph(2);
        let x = DynTensor::F32(hb_tensor::Tensor::zeros(&[32, 4]));
        assert_eq!(infer_batch(&g, &[x]), Some(32));
        let bad = DynTensor::F32(hb_tensor::Tensor::zeros(&[32, 5]));
        assert_eq!(infer_batch(&g, &[bad]), None);
    }

    #[test]
    fn matches_inputs_checks_shapes() {
        let g = chain_graph(2);
        let plan = MemoryPlan::build(&g, 32).unwrap();
        let ok = DynTensor::F32(hb_tensor::Tensor::zeros(&[32, 4]));
        let wrong = DynTensor::F32(hb_tensor::Tensor::zeros(&[16, 4]));
        assert!(plan.matches_inputs(&[ok]));
        assert!(!plan.matches_inputs(&[wrong]));
    }
}
