//! Content-hash deduplication of compiled-graph constants.
//!
//! A multi-model store (PRETZEL-style white-box sharing) registers many
//! pipelines that share featurizers and parameter blocks: the same
//! scaler means/scales, the same forest thresholds, the same embedding
//! matrix. Each registration compiles its own graphs, so without
//! intervention the N-th variant pays the full parameter footprint
//! again — and again per ladder rung, since the serving layer lowers
//! every pipeline at several backends.
//!
//! [`ConstPool`] is the sharing point: [`intern_graph_consts`] rewrites
//! every sufficiently large [`Op::Const`] payload in a graph to a
//! pool-shared tensor with the same bits. Tensors are reference-counted
//! ([`Tensor`] clones share storage), so two graphs whose constants
//! intern to the same pool entry physically share one buffer. The pool
//! keeps per-entry reference counts; evicting a model releases its
//! hashes and frees entries nothing else holds.
//!
//! Hashing is 64-bit FNV-1a over dtype, shape, and raw element bits.
//! A hash hit is confirmed by full bit-equality before sharing, so a
//! collision can never alias two different parameter blocks — it only
//! forfeits the dedup for the colliding tensor.

use std::collections::HashMap;
use std::sync::Mutex;

use hb_tensor::{DynTensor, Tensor};

use crate::graph::Graph;
use crate::op::Op;

/// Constants smaller than this many bytes are not worth interning: the
/// pool bookkeeping would cost more than the duplicate scalar.
pub const MIN_INTERN_BYTES: usize = 64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental 64-bit FNV-1a hasher.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64::default()
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a little-endian u64.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

fn hash_elems<T, F: Fn(T) -> u64>(h: &mut Fnv64, t: &Tensor<T>, bits: F)
where
    T: Copy + hb_tensor::Element,
{
    for v in t.iter() {
        h.write_u64(bits(v));
    }
}

/// Content hash of one constant tensor: dtype tag, shape, then raw
/// element bits (`f32::to_bits`, so `-0.0` and NaN payloads are
/// distinguished — sharing is bit-exact, never value-approximate).
pub fn tensor_hash(t: &DynTensor) -> u64 {
    let mut h = Fnv64::new();
    h.write(&[match t {
        DynTensor::F32(_) => 0u8,
        DynTensor::I64(_) => 1,
        DynTensor::U8(_) => 2,
        DynTensor::Bool(_) => 3,
    }]);
    h.write_u64(t.shape().len() as u64);
    for &d in t.shape() {
        h.write_u64(d as u64);
    }
    match t {
        DynTensor::F32(t) => hash_elems(&mut h, t, |v| u64::from(v.to_bits())),
        DynTensor::I64(t) => hash_elems(&mut h, t, |v| v as u64),
        DynTensor::U8(t) => hash_elems(&mut h, t, u64::from),
        DynTensor::Bool(t) => hash_elems(&mut h, t, u64::from),
    }
    h.finish()
}

/// Content hash of a whole graph: FNV-1a over its canonical JSON
/// serialization (node ops, wiring, constants, outputs, declared input
/// types/shapes). Two pipelines that compiled to bit-identical graphs
/// hash equal; any structural or parameter difference diverges.
pub fn graph_content_hash(g: &Graph) -> u64 {
    let mut h = Fnv64::new();
    h.write(hb_json::to_string(g).as_bytes());
    h.finish()
}

/// What [`intern_graph_consts`] did to one graph.
#[derive(Debug, Clone, Default)]
pub struct DedupStats {
    /// Constant tensors examined.
    pub tensors: usize,
    /// Constants replaced with an existing pool entry (dedup hits).
    pub shared: usize,
    /// Total constant bytes examined.
    pub bytes: usize,
    /// Bytes the graph now shares with earlier pool residents instead
    /// of owning privately.
    pub shared_bytes: usize,
    /// Bytes newly inserted into the pool by this graph (first copy of
    /// each distinct constant).
    pub fresh_bytes: usize,
    /// Pool hashes this graph holds references to, one per interned
    /// constant (duplicates included — each carries one refcount).
    pub hashes: Vec<u64>,
}

impl DedupStats {
    /// Constant bytes below [`MIN_INTERN_BYTES`] left privately owned.
    pub fn small_bytes(&self) -> usize {
        self.bytes - self.shared_bytes - self.fresh_bytes
    }

    /// Folds another graph's stats into this one (a serving ladder
    /// interns several lowered graphs per model).
    pub fn absorb(&mut self, other: DedupStats) {
        self.tensors += other.tensors;
        self.shared += other.shared;
        self.bytes += other.bytes;
        self.shared_bytes += other.shared_bytes;
        self.fresh_bytes += other.fresh_bytes;
        self.hashes.extend(other.hashes);
    }
}

struct PoolSlot {
    value: DynTensor,
    refs: usize,
}

/// A reference-counted interning pool for constant tensors, shared
/// across every model registered in a store. `Send + Sync`; interning
/// happens at registration time, never on the request path.
#[derive(Default)]
pub struct ConstPool {
    slots: Mutex<HashMap<u64, PoolSlot>>,
}

impl ConstPool {
    /// An empty pool.
    pub fn new() -> ConstPool {
        ConstPool::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, PoolSlot>> {
        // Pool state is plain data, valid on all paths; survive poison.
        self.slots.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Interns `t`, returning the pool-shared tensor plus whether the
    /// pool already held it. The caller now owns one reference to the
    /// returned hash and must eventually [`ConstPool::release`] it.
    ///
    /// Returns `None` (and takes no reference) when a different tensor
    /// already occupies the hash — an FNV collision. The caller keeps
    /// its private copy; correctness is unaffected.
    pub fn intern(&self, t: &DynTensor) -> Option<(u64, DynTensor, bool)> {
        let hash = tensor_hash(t);
        let mut slots = self.lock();
        match slots.get_mut(&hash) {
            Some(slot) => {
                if slot.value != *t {
                    return None; // collision: refuse to alias
                }
                slot.refs += 1;
                Some((hash, slot.value.clone(), true))
            }
            None => {
                slots.insert(
                    hash,
                    PoolSlot {
                        value: t.clone(),
                        refs: 1,
                    },
                );
                Some((hash, t.clone(), false))
            }
        }
    }

    /// Releases one reference per hash (an evicted model returning its
    /// [`DedupStats::hashes`]); entries with no remaining holders are
    /// dropped and their bytes freed.
    pub fn release(&self, hashes: &[u64]) {
        let mut slots = self.lock();
        for h in hashes {
            if let Some(slot) = slots.get_mut(h) {
                slot.refs -= 1;
                if slot.refs == 0 {
                    slots.remove(h);
                }
            }
        }
    }

    /// Distinct constants currently resident.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Bytes of constant data the pool keeps alive (each distinct
    /// constant counted once, regardless of how many models share it).
    pub fn resident_bytes(&self) -> usize {
        self.lock().values().map(|s| s.value.nbytes()).sum()
    }
}

impl std::fmt::Debug for ConstPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConstPool")
            .field("entries", &self.len())
            .field("resident_bytes", &self.resident_bytes())
            .finish()
    }
}

/// Rewrites every [`Op::Const`] payload of at least [`MIN_INTERN_BYTES`]
/// bytes to the pool-shared copy. Replacements are bit-identical (the
/// pool confirms equality before sharing), so execution is unchanged;
/// only ownership moves: duplicated parameter blocks collapse to one
/// storage buffer shared by every graph that interned them.
pub fn intern_graph_consts(g: &mut Graph, pool: &ConstPool) -> DedupStats {
    let mut stats = DedupStats::default();
    for node in &mut g.nodes {
        let Op::Const(v) = &mut node.op else {
            continue;
        };
        let nbytes = v.nbytes();
        stats.tensors += 1;
        stats.bytes += nbytes;
        if nbytes < MIN_INTERN_BYTES {
            continue;
        }
        if let Some((hash, shared, hit)) = pool.intern(v) {
            *v = shared;
            stats.hashes.push(hash);
            if hit {
                stats.shared += 1;
                stats.shared_bytes += nbytes;
            } else {
                stats.fresh_bytes += nbytes;
            }
        }
    }
    stats
}

/// Sums the constant bytes of `g` not already seen through another
/// graph, using storage identity (shared buffers count once). `seen`
/// carries pointer keys across calls, so folding many graphs through
/// one set yields the true resident parameter footprint of the group.
pub fn unique_const_bytes(g: &Graph, seen: &mut std::collections::HashSet<usize>) -> usize {
    let mut total = 0usize;
    for node in &g.nodes {
        let Op::Const(v) = &node.op else {
            continue;
        };
        match storage_key(v) {
            Some(key) => {
                if seen.insert(key) {
                    total += v.nbytes();
                }
            }
            // Non-contiguous constants (never produced by the
            // converters) have no stable slice address; count them
            // conservatively as unshared.
            None => total += v.nbytes(),
        }
    }
    total
}

/// Stable identity of a contiguous tensor's backing buffer.
fn storage_key(t: &DynTensor) -> Option<usize> {
    fn key<T: hb_tensor::Element>(t: &Tensor<T>) -> Option<usize> {
        t.is_contiguous().then(|| t.as_slice().as_ptr() as usize)
    }
    match t {
        DynTensor::F32(t) => key(t),
        DynTensor::I64(t) => key(t),
        DynTensor::U8(t) => key(t),
        DynTensor::Bool(t) => key(t),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use hb_tensor::DType;
    use std::collections::HashSet;

    fn big(v: f32) -> Tensor<f32> {
        Tensor::from_fn(&[8, 8], |i| v + (i[0] * 8 + i[1]) as f32)
    }

    fn graph_with_consts(vals: &[f32]) -> Graph {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let mut cur = x;
        for &v in vals {
            let c = b.constant(big(v));
            cur = b.push(Op::Add, vec![cur, c]);
        }
        b.output(cur);
        b.build()
    }

    #[test]
    fn identical_consts_share_one_pool_entry() {
        let pool = ConstPool::new();
        let mut g1 = graph_with_consts(&[1.0]);
        let mut g2 = graph_with_consts(&[1.0]);
        let s1 = intern_graph_consts(&mut g1, &pool);
        let s2 = intern_graph_consts(&mut g2, &pool);
        assert_eq!(s1.shared, 0);
        assert_eq!(s1.fresh_bytes, 256);
        assert_eq!(s2.shared, 1);
        assert_eq!(s2.shared_bytes, 256);
        assert_eq!(pool.len(), 1);
        // Physical sharing: both graphs' consts resolve to one buffer.
        let mut seen = HashSet::new();
        let total = unique_const_bytes(&g1, &mut seen) + unique_const_bytes(&g2, &mut seen);
        assert_eq!(total, 256);
    }

    #[test]
    fn distinct_consts_do_not_alias() {
        let pool = ConstPool::new();
        let mut g1 = graph_with_consts(&[1.0]);
        let mut g2 = graph_with_consts(&[2.0]);
        intern_graph_consts(&mut g1, &pool);
        let s2 = intern_graph_consts(&mut g2, &pool);
        assert_eq!(s2.shared, 0);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.resident_bytes(), 512);
    }

    #[test]
    fn release_frees_unreferenced_entries() {
        let pool = ConstPool::new();
        let mut g1 = graph_with_consts(&[1.0]);
        let mut g2 = graph_with_consts(&[1.0]);
        let s1 = intern_graph_consts(&mut g1, &pool);
        let s2 = intern_graph_consts(&mut g2, &pool);
        pool.release(&s1.hashes);
        assert_eq!(pool.len(), 1, "second holder keeps the entry alive");
        pool.release(&s2.hashes);
        assert!(pool.is_empty());
        assert_eq!(pool.resident_bytes(), 0);
    }

    #[test]
    fn tiny_consts_are_left_alone() {
        let pool = ConstPool::new();
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let c = b.constant(Tensor::from_vec(vec![1.0f32, 2.0], &[2])); // 8 bytes
        let s = b.push(Op::Add, vec![x, c]);
        b.output(s);
        let mut g = b.build();
        let stats = intern_graph_consts(&mut g, &pool);
        assert_eq!(stats.tensors, 1);
        assert!(stats.hashes.is_empty());
        assert_eq!(stats.small_bytes(), 8);
        assert!(pool.is_empty());
    }

    #[test]
    fn hash_distinguishes_dtype_shape_and_bits() {
        let f = DynTensor::F32(Tensor::from_vec(vec![0.0f32; 4], &[4]));
        let i = DynTensor::I64(Tensor::from_vec(vec![0i64; 4], &[4]));
        let f2 = DynTensor::F32(Tensor::from_vec(vec![0.0f32; 4], &[2, 2]));
        let neg = DynTensor::F32(Tensor::from_vec(vec![-0.0f32, 0.0, 0.0, 0.0], &[4]));
        let h = tensor_hash(&f);
        assert_ne!(h, tensor_hash(&i), "dtype must feed the hash");
        assert_ne!(h, tensor_hash(&f2), "shape must feed the hash");
        assert_ne!(h, tensor_hash(&neg), "-0.0 must hash apart from 0.0");
        assert_eq!(h, tensor_hash(&f.clone()), "hashing is deterministic");
    }

    #[test]
    fn graph_hash_tracks_structure_and_parameters() {
        let a = graph_with_consts(&[1.0]);
        let b = graph_with_consts(&[1.0]);
        let c = graph_with_consts(&[2.0]);
        let d = graph_with_consts(&[1.0, 2.0]);
        assert_eq!(graph_content_hash(&a), graph_content_hash(&b));
        assert_ne!(graph_content_hash(&a), graph_content_hash(&c));
        assert_ne!(graph_content_hash(&a), graph_content_hash(&d));
    }

    #[test]
    fn interning_preserves_execution_bits() {
        let pool = ConstPool::new();
        let mut g = graph_with_consts(&[3.5]);
        let before = crate::Executable::new(
            g.clone(),
            crate::Backend::Eager,
            crate::Device::Cpu { threads: 0 },
        );
        intern_graph_consts(&mut g, &pool);
        // Intern a second identical graph so the const resolves to the
        // shared pool copy, then compare outputs bit-for-bit.
        let mut g2 = graph_with_consts(&[3.5]);
        intern_graph_consts(&mut g2, &pool);
        let after =
            crate::Executable::new(g2, crate::Backend::Eager, crate::Device::Cpu { threads: 0 });
        let x = DynTensor::F32(Tensor::from_fn(&[8, 8], |i| i[1] as f32));
        let a = before
            .run(std::slice::from_ref(&x))
            .unwrap_or_else(|e| panic!("run: {e}"));
        let b = after
            .run(std::slice::from_ref(&x))
            .unwrap_or_else(|e| panic!("run: {e}"));
        assert_eq!(a[0].as_f32().to_vec(), b[0].as_f32().to_vec());
    }
}
