//! Self-describing compiled-model artifacts: the lowered graph bundled
//! with everything the static analyses proved about it.
//!
//! A bare [`Graph`] JSON export answers "what does this model compute";
//! an [`Artifact`] additionally records *what is statically known* about
//! that computation — the verifier's output signature (dtype + symbolic
//! shape per output) and the abstract interpreter's per-output
//! [`ValueFact`]s under the serving admission precondition (finite f32
//! inputs). Downstream consumers (`hb-lint`, serving admission, external
//! tooling) can read the proofs without re-running the analyses, and
//! auditors can recompute them to cross-check a stale or hostile
//! artifact.

use crate::absint::ValueFact;
use crate::cost::{CostCert, COST_BUCKETS};
use crate::graph::{Graph, GraphError};
use crate::op::Op;
use crate::verify::GraphSignature;

/// Per-fused-kernel LIR verification certificate.
///
/// Every executable fused kernel carries a register LIR that was
/// verified (def-before-use, single assignment, types), optimized,
/// re-verified, translation-validated against the stack bytecode, and
/// register-allocated under an independently replayed allocation check
/// — all at construction, so a kernel that exists has passed. The
/// certificate records the *shape* of that proof (program sizes,
/// register pressure, what the optimizer removed, the recognized
/// whole-kernel form) so auditors can cross-check a stale or hostile
/// artifact against a fresh derivation without re-reading the kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LirCert {
    /// Graph node carrying the fused kernel.
    pub node: usize,
    /// Stack-bytecode instruction count (the lowering source).
    pub stack_len: usize,
    /// Optimized LIR instruction count (what the register VM runs).
    pub lir_len: usize,
    /// Physical registers the allocator assigned.
    pub n_regs: usize,
    /// Peak simultaneously-live virtual registers.
    pub max_live: usize,
    /// Instructions the LIR optimizer removed (folded + CSE'd + dead).
    pub eliminated: usize,
    /// Whole-kernel peephole form label (`"vm"` when none matched).
    pub form: String,
    /// Resolved execution-strategy label: the peephole form, the
    /// codegen kernel class, or `"vm"` when the kernel interprets.
    pub class: String,
    /// Inner-loop tile geometry the strategy executes with: `"row"`
    /// for specialized kernels on the row fast path, `"block64"` for
    /// VM-dispatched kernels over gathered blocks.
    pub tile: String,
}

// Hand-written (rather than `json_struct!`) so the stage-2 codegen
// fields (`class`, `tile`) stay optional: artifacts exported before
// the codegen tier existed still parse, defaulting both to empty (the
// lint cross-check then compares the legacy fields only).
impl hb_json::ToJson for LirCert {
    fn to_json(&self) -> hb_json::Json {
        hb_json::Json::Obj(vec![
            ("node".to_string(), hb_json::ToJson::to_json(&self.node)),
            (
                "stack_len".to_string(),
                hb_json::ToJson::to_json(&self.stack_len),
            ),
            (
                "lir_len".to_string(),
                hb_json::ToJson::to_json(&self.lir_len),
            ),
            ("n_regs".to_string(), hb_json::ToJson::to_json(&self.n_regs)),
            (
                "max_live".to_string(),
                hb_json::ToJson::to_json(&self.max_live),
            ),
            (
                "eliminated".to_string(),
                hb_json::ToJson::to_json(&self.eliminated),
            ),
            ("form".to_string(), self.form.to_json()),
            ("class".to_string(), self.class.to_json()),
            ("tile".to_string(), self.tile.to_json()),
        ])
    }
}

impl hb_json::FromJson for LirCert {
    fn from_json(v: &hb_json::Json) -> Result<Self, hb_json::JsonError> {
        let pairs = v.expect_obj("LirCert")?;
        let opt_str = |name: &str| -> Result<String, hb_json::JsonError> {
            match v.get(name) {
                Some(s) => hb_json::FromJson::from_json(s)
                    .map_err(|e| hb_json::JsonError::Schema(format!("LirCert.{name}: {e}"))),
                None => Ok(String::new()),
            }
        };
        Ok(LirCert {
            node: hb_json::field(pairs, "node", "LirCert")?,
            stack_len: hb_json::field(pairs, "stack_len", "LirCert")?,
            lir_len: hb_json::field(pairs, "lir_len", "LirCert")?,
            n_regs: hb_json::field(pairs, "n_regs", "LirCert")?,
            max_live: hb_json::field(pairs, "max_live", "LirCert")?,
            eliminated: hb_json::field(pairs, "eliminated", "LirCert")?,
            form: hb_json::field(pairs, "form", "LirCert")?,
            class: opt_str("class")?,
            tile: opt_str("tile")?,
        })
    }
}

/// A compiled graph plus its statically derived metadata.
#[derive(Clone, Debug)]
pub struct Artifact {
    /// The lowered (usually optimized) graph.
    pub graph: Graph,
    /// Verifier signature: dtype + symbolic shape per output.
    pub signature: GraphSignature,
    /// Abstract-interpretation facts per output, derived under finite
    /// f32 inputs ([`Graph::finite_input_facts`]).
    pub output_facts: Vec<ValueFact>,
    /// What the terminal output means to the model layer
    /// (`"proba"`, `"margin"`, `"value"`, or `"matrix"`; free-form so
    /// the backend stays agnostic of model-layer taxonomy).
    pub output_kind: String,
    /// One LIR verification certificate per fused kernel, in node order.
    pub lir_certs: Vec<LirCert>,
    /// Content hash of the whole graph (hex FNV-1a over its canonical
    /// JSON; see [`crate::dedup::graph_content_hash`]). Two artifacts
    /// with equal hashes compiled to bit-identical graphs — a model
    /// store shares their sub-plans outright. Empty in artifacts
    /// exported before dedup existed.
    pub content_hash: String,
    /// Content hash per interning-eligible constant tensor (at least
    /// [`crate::dedup::MIN_INTERN_BYTES`] bytes), in node order — the
    /// parameter blocks a store's [`crate::dedup::ConstPool`] would
    /// share. `hb-lint` cross-references these across artifacts to flag
    /// duplicated parameters that failed to deduplicate.
    pub const_hashes: Vec<String>,
    /// Static cost certificates, one per batch bucket
    /// ([`crate::cost::COST_BUCKETS`]): exact flop / traversal / byte
    /// counters plus the audited arena footprint. Machine-independent —
    /// the calibrated wall-clock envelope is *never* recorded (see the
    /// honesty rule in [`crate::cost`]). Empty in artifacts exported
    /// before cost certification existed, or when the graph's input
    /// shapes are not statically known.
    pub cost_certs: Vec<CostCert>,
}

// Hand-written (rather than `json_struct!`) so `lir_certs` stays
// optional: artifacts exported before the register LIR existed still
// parse, defaulting to no certificates (hb-lint then derives them
// fresh from the embedded kernels).
impl hb_json::ToJson for Artifact {
    fn to_json(&self) -> hb_json::Json {
        hb_json::Json::Obj(vec![
            ("graph".to_string(), hb_json::ToJson::to_json(&self.graph)),
            ("signature".to_string(), self.signature.to_json()),
            ("output_facts".to_string(), self.output_facts.to_json()),
            ("output_kind".to_string(), self.output_kind.to_json()),
            ("lir_certs".to_string(), self.lir_certs.to_json()),
            ("content_hash".to_string(), self.content_hash.to_json()),
            ("const_hashes".to_string(), self.const_hashes.to_json()),
            ("cost_certs".to_string(), self.cost_certs.to_json()),
        ])
    }
}

impl hb_json::FromJson for Artifact {
    fn from_json(v: &hb_json::Json) -> Result<Self, hb_json::JsonError> {
        let pairs = v.expect_obj("Artifact")?;
        Ok(Artifact {
            graph: hb_json::field(pairs, "graph", "Artifact")?,
            signature: hb_json::field(pairs, "signature", "Artifact")?,
            output_facts: hb_json::field(pairs, "output_facts", "Artifact")?,
            output_kind: hb_json::field(pairs, "output_kind", "Artifact")?,
            lir_certs: match v.get("lir_certs") {
                Some(certs) => hb_json::FromJson::from_json(certs)
                    .map_err(|e| hb_json::JsonError::Schema(format!("Artifact.lir_certs: {e}")))?,
                None => Vec::new(),
            },
            // Dedup hashes are optional for the same reason as
            // lir_certs: pre-dedup artifacts still parse, and auditors
            // recompute both from the graph anyway.
            content_hash: match v.get("content_hash") {
                Some(h) => hb_json::FromJson::from_json(h).map_err(|e| {
                    hb_json::JsonError::Schema(format!("Artifact.content_hash: {e}"))
                })?,
                None => String::new(),
            },
            const_hashes: match v.get("const_hashes") {
                Some(h) => hb_json::FromJson::from_json(h).map_err(|e| {
                    hb_json::JsonError::Schema(format!("Artifact.const_hashes: {e}"))
                })?,
                None => Vec::new(),
            },
            // Cost certificates postdate the formats above; pre-cost
            // artifacts parse with none and lint notes the absence.
            cost_certs: match v.get("cost_certs") {
                Some(c) => hb_json::FromJson::from_json(c)
                    .map_err(|e| hb_json::JsonError::Schema(format!("Artifact.cost_certs: {e}")))?,
                None => Vec::new(),
            },
        })
    }
}

impl Artifact {
    /// Runs the verifier and the abstract interpreter over `graph` and
    /// bundles the results.
    ///
    /// # Errors
    ///
    /// Returns the verifier's [`GraphError`] when `graph` is not
    /// statically sound (an unsound graph has no signature to record).
    pub fn from_graph(graph: &Graph, output_kind: &str) -> Result<Artifact, GraphError> {
        let signature = graph.verify()?;
        let finite = graph.finite_input_facts();
        let output_facts = graph.output_value_facts(&finite)?;
        Ok(Artifact {
            graph: graph.clone(),
            signature,
            output_facts,
            output_kind: output_kind.to_string(),
            lir_certs: Artifact::lir_certs_of(graph),
            content_hash: format!("{:016x}", crate::dedup::graph_content_hash(graph)),
            const_hashes: Artifact::const_hashes_of(graph),
            cost_certs: Artifact::cost_certs_of(graph),
        })
    }

    /// Derives the per-bucket cost certificates of `graph` — used at
    /// export time and by auditors diffing a recording against a fresh
    /// derivation. Best-effort: a graph whose work is not statically
    /// derivable (undeclared input shapes) certifies nothing, which
    /// consumers treat as "missing cert", never as an error.
    pub fn cost_certs_of(graph: &Graph) -> Vec<CostCert> {
        crate::cost::cost_certs(graph, &COST_BUCKETS).unwrap_or_default()
    }

    /// Derives the content hashes of every interning-eligible constant
    /// in `graph`, in node order — used at export time and by auditors
    /// cross-checking a recorded set against a fresh derivation.
    pub fn const_hashes_of(graph: &Graph) -> Vec<String> {
        graph
            .nodes
            .iter()
            .filter_map(|n| match &n.op {
                Op::Const(v) if v.nbytes() >= crate::dedup::MIN_INTERN_BYTES => {
                    Some(format!("{:016x}", crate::dedup::tensor_hash(v)))
                }
                _ => None,
            })
            .collect()
    }

    /// Derives the LIR verification certificates for every fused kernel
    /// in `graph`, in node order — used at export time and by auditors
    /// recomputing the certificates to cross-check a recorded set.
    pub fn lir_certs_of(graph: &Graph) -> Vec<LirCert> {
        let mut certs = Vec::new();
        for (node, n) in graph.nodes.iter().enumerate() {
            if let Op::Fused(k) = &n.op {
                let exec = k.lir_exec();
                let class = k.class_label();
                certs.push(LirCert {
                    node,
                    stack_len: k.program_len(),
                    lir_len: k.lir().instrs.len(),
                    n_regs: exec.n_regs,
                    max_live: exec.max_live,
                    eliminated: k.lir_opt_stats().eliminated(),
                    form: k.lir_form().label().to_string(),
                    class: class.to_string(),
                    tile: if class == "vm" { "block64" } else { "row" }.to_string(),
                });
            }
        }
        certs
    }

    /// Serializes to a self-contained JSON artifact.
    pub fn to_json_string(&self) -> String {
        hb_json::to_string(self)
    }

    /// Parses an artifact *without* verifying the embedded graph or
    /// cross-checking the recorded proofs — audit tools recompute both;
    /// never hand the result to an executor unexamined.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Artifact`] when the JSON does not parse or
    /// does not match the schema.
    pub fn from_json_str(json: &str) -> Result<Artifact, GraphError> {
        Ok(hb_json::from_str::<Artifact>(json)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use hb_tensor::DType;

    #[test]
    fn artifact_round_trips_through_json() {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let s = b.push(crate::op::Op::Sigmoid, vec![x]);
        b.output(s);
        let g = b.build();
        let a = Artifact::from_graph(&g, "proba").unwrap_or_else(|e| panic!("artifact: {e}"));
        assert_eq!(a.output_facts.len(), 1);
        assert!(a.output_facts[0].lo >= 0.0 && a.output_facts[0].hi <= 1.0);
        let json = a.to_json_string();
        let back = Artifact::from_json_str(&json).unwrap_or_else(|e| panic!("reparse: {e}"));
        assert_eq!(back.signature, a.signature);
        assert_eq!(back.output_kind, "proba");
        assert_eq!(back.output_facts[0], a.output_facts[0]);
        assert_eq!(back.graph.len(), a.graph.len());
    }

    #[test]
    fn artifact_records_lir_certs_for_fused_kernels() {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let s = b.add_scalar(x, 1.0);
        let r = b.push(crate::op::Op::Relu, vec![s]);
        let y = b.push(crate::op::Op::Sigmoid, vec![r]);
        b.output(y);
        let (g, _) = crate::optimize::optimize(&b.build());
        let a = Artifact::from_graph(&g, "proba").unwrap_or_else(|e| panic!("artifact: {e}"));
        assert!(
            !a.lir_certs.is_empty(),
            "optimized add+relu+sigmoid chain should carry a fused kernel"
        );
        for c in &a.lir_certs {
            assert!(c.stack_len > 0 && c.lir_len > 0 && c.n_regs > 0);
        }
        // Round trip preserves the certificates bit-for-bit, and a fresh
        // derivation from the reparsed graph agrees with the recording.
        let back =
            Artifact::from_json_str(&a.to_json_string()).unwrap_or_else(|e| panic!("reparse: {e}"));
        assert_eq!(back.lir_certs, a.lir_certs);
        assert_eq!(Artifact::lir_certs_of(&back.graph), a.lir_certs);
    }

    #[test]
    fn lir_cert_without_codegen_fields_parses_with_defaults() {
        // Artifacts exported before the codegen tier recorded neither a
        // kernel class nor a tile geometry; both default to empty.
        let legacy = "{\"node\":3,\"stack_len\":5,\"lir_len\":4,\"n_regs\":2,\
                      \"max_live\":2,\"eliminated\":1,\"form\":\"vm\"}";
        let c: LirCert =
            hb_json::from_str(legacy).unwrap_or_else(|e| panic!("legacy cert parse: {e}"));
        assert_eq!(c.node, 3);
        assert_eq!(c.form, "vm");
        assert!(c.class.is_empty() && c.tile.is_empty());
        // A current cert round-trips both fields.
        let full = LirCert {
            class: "chain2".to_string(),
            tile: "row".to_string(),
            ..c
        };
        let back: LirCert = hb_json::from_str(&hb_json::to_string(&full))
            .unwrap_or_else(|e| panic!("cert reparse: {e}"));
        assert_eq!(back, full);
    }

    #[test]
    fn artifact_records_and_round_trips_dedup_hashes() {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let c = b.constant(hb_tensor::Tensor::<f32>::from_fn(&[8, 8], |i| i[0] as f32));
        let tiny = b.constant(hb_tensor::Tensor::<f32>::from_vec(vec![1.0], &[1]));
        let s = b.push(crate::op::Op::Add, vec![x, c]);
        let s2 = b.push(crate::op::Op::Add, vec![s, tiny]);
        b.output(s2);
        let g = b.build();
        let a = Artifact::from_graph(&g, "matrix").unwrap_or_else(|e| panic!("artifact: {e}"));
        assert_eq!(a.content_hash.len(), 16, "hex-encoded 64-bit hash");
        assert_eq!(
            a.const_hashes.len(),
            1,
            "only interning-eligible constants are hashed"
        );
        let back =
            Artifact::from_json_str(&a.to_json_string()).unwrap_or_else(|e| panic!("reparse: {e}"));
        assert_eq!(back.content_hash, a.content_hash);
        assert_eq!(back.const_hashes, a.const_hashes);
        // A fresh derivation from the reparsed graph agrees.
        assert_eq!(Artifact::const_hashes_of(&back.graph), a.const_hashes);
        assert_eq!(
            format!("{:016x}", crate::dedup::graph_content_hash(&back.graph)),
            a.content_hash
        );
        // Pre-dedup artifacts parse with empty hashes.
        let json = a.to_json_string();
        let stripped = json
            .replacen(&format!(",\"content_hash\":\"{}\"", a.content_hash), "", 1)
            .replacen(
                &format!(",\"const_hashes\":[\"{}\"]", a.const_hashes[0]),
                "",
                1,
            );
        assert_ne!(stripped, json);
        let legacy =
            Artifact::from_json_str(&stripped).unwrap_or_else(|e| panic!("legacy parse: {e}"));
        assert!(legacy.content_hash.is_empty() && legacy.const_hashes.is_empty());
    }

    #[test]
    fn artifact_records_and_round_trips_cost_certs() {
        let mut b = GraphBuilder::new();
        let x = b.input_with_shape(DType::F32, crate::ShapeFact::batched(&[4]));
        let w = b.constant(hb_tensor::Tensor::<f32>::from_fn(&[4, 2], |i| i[1] as f32));
        let m = b.matmul(x, w);
        let y = b.push(crate::op::Op::Sigmoid, vec![m]);
        b.output(y);
        let g = b.build();
        let a = Artifact::from_graph(&g, "proba").unwrap_or_else(|e| panic!("artifact: {e}"));
        assert_eq!(a.cost_certs.len(), crate::cost::COST_BUCKETS.len());
        for (cert, &bucket) in a.cost_certs.iter().zip(crate::cost::COST_BUCKETS.iter()) {
            assert_eq!(cert.batch, bucket);
            assert!(cert.flops > 0.0 && cert.arena_bytes > 0);
        }
        let back =
            Artifact::from_json_str(&a.to_json_string()).unwrap_or_else(|e| panic!("reparse: {e}"));
        assert_eq!(back.cost_certs, a.cost_certs);
        // A fresh derivation from the reparsed graph agrees.
        assert_eq!(Artifact::cost_certs_of(&back.graph), a.cost_certs);
    }

    #[test]
    fn artifact_with_unknown_shapes_certifies_no_cost() {
        // Undeclared input shape: the verifier passes but work is not
        // statically derivable, so the artifact carries no cost certs
        // (consumers treat that as "missing cert", not an error).
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let s = b.push(crate::op::Op::Sigmoid, vec![x]);
        b.output(s);
        let g = b.build();
        let a = Artifact::from_graph(&g, "proba").unwrap_or_else(|e| panic!("artifact: {e}"));
        assert!(a.cost_certs.is_empty());
    }

    #[test]
    fn artifact_without_cost_certs_parses_with_empty_set() {
        // Satellite: artifacts exported before cost certification still
        // parse cleanly with no certificates.
        let mut b = GraphBuilder::new();
        let x = b.input_with_shape(DType::F32, crate::ShapeFact::batched(&[2]));
        let s = b.push(crate::op::Op::Sigmoid, vec![x]);
        b.output(s);
        let g = b.build();
        let a = Artifact::from_graph(&g, "proba").unwrap_or_else(|e| panic!("artifact: {e}"));
        assert!(!a.cost_certs.is_empty());
        let json = a.to_json_string();
        let start = json
            .find(",\"cost_certs\":")
            .unwrap_or_else(|| panic!("cost_certs field missing from JSON"));
        // The field is last in the object: strip through the closing brace.
        let stripped = format!("{}}}", &json[..start]);
        let legacy =
            Artifact::from_json_str(&stripped).unwrap_or_else(|e| panic!("legacy parse: {e}"));
        assert!(legacy.cost_certs.is_empty());
        assert_eq!(legacy.signature, a.signature);
    }

    #[test]
    fn artifact_without_lir_certs_parses_with_empty_set() {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let s = b.push(crate::op::Op::Sigmoid, vec![x]);
        b.output(s);
        let g = b.build();
        let a = Artifact::from_graph(&g, "proba").unwrap_or_else(|e| panic!("artifact: {e}"));
        // Simulate a pre-LIR artifact by dropping the field from the JSON.
        let json = a.to_json_string();
        let stripped = json.replacen(",\"lir_certs\":[]", "", 1);
        assert_ne!(stripped, json, "expected to strip the lir_certs field");
        let back =
            Artifact::from_json_str(&stripped).unwrap_or_else(|e| panic!("stale reparse: {e}"));
        assert!(back.lir_certs.is_empty());
    }
}
