//! Self-describing compiled-model artifacts: the lowered graph bundled
//! with everything the static analyses proved about it.
//!
//! A bare [`Graph`] JSON export answers "what does this model compute";
//! an [`Artifact`] additionally records *what is statically known* about
//! that computation — the verifier's output signature (dtype + symbolic
//! shape per output) and the abstract interpreter's per-output
//! [`ValueFact`]s under the serving admission precondition (finite f32
//! inputs). Downstream consumers (`hb-lint`, serving admission, external
//! tooling) can read the proofs without re-running the analyses, and
//! auditors can recompute them to cross-check a stale or hostile
//! artifact.

use crate::absint::ValueFact;
use crate::graph::{Graph, GraphError};
use crate::verify::GraphSignature;

/// A compiled graph plus its statically derived metadata.
#[derive(Clone, Debug)]
pub struct Artifact {
    /// The lowered (usually optimized) graph.
    pub graph: Graph,
    /// Verifier signature: dtype + symbolic shape per output.
    pub signature: GraphSignature,
    /// Abstract-interpretation facts per output, derived under finite
    /// f32 inputs ([`Graph::finite_input_facts`]).
    pub output_facts: Vec<ValueFact>,
    /// What the terminal output means to the model layer
    /// (`"proba"`, `"margin"`, `"value"`, or `"matrix"`; free-form so
    /// the backend stays agnostic of model-layer taxonomy).
    pub output_kind: String,
}

hb_json::json_struct!(Artifact {
    graph,
    signature,
    output_facts,
    output_kind
});

impl Artifact {
    /// Runs the verifier and the abstract interpreter over `graph` and
    /// bundles the results.
    ///
    /// # Errors
    ///
    /// Returns the verifier's [`GraphError`] when `graph` is not
    /// statically sound (an unsound graph has no signature to record).
    pub fn from_graph(graph: &Graph, output_kind: &str) -> Result<Artifact, GraphError> {
        let signature = graph.verify()?;
        let finite = graph.finite_input_facts();
        let output_facts = graph.output_value_facts(&finite)?;
        Ok(Artifact {
            graph: graph.clone(),
            signature,
            output_facts,
            output_kind: output_kind.to_string(),
        })
    }

    /// Serializes to a self-contained JSON artifact.
    pub fn to_json_string(&self) -> String {
        hb_json::to_string(self)
    }

    /// Parses an artifact *without* verifying the embedded graph or
    /// cross-checking the recorded proofs — audit tools recompute both;
    /// never hand the result to an executor unexamined.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Artifact`] when the JSON does not parse or
    /// does not match the schema.
    pub fn from_json_str(json: &str) -> Result<Artifact, GraphError> {
        Ok(hb_json::from_str::<Artifact>(json)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use hb_tensor::DType;

    #[test]
    fn artifact_round_trips_through_json() {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let s = b.push(crate::op::Op::Sigmoid, vec![x]);
        b.output(s);
        let g = b.build();
        let a = Artifact::from_graph(&g, "proba").unwrap_or_else(|e| panic!("artifact: {e}"));
        assert_eq!(a.output_facts.len(), 1);
        assert!(a.output_facts[0].lo >= 0.0 && a.output_facts[0].hi <= 1.0);
        let json = a.to_json_string();
        let back = Artifact::from_json_str(&json).unwrap_or_else(|e| panic!("reparse: {e}"));
        assert_eq!(back.signature, a.signature);
        assert_eq!(back.output_kind, "proba");
        assert_eq!(back.output_facts[0], a.output_facts[0]);
        assert_eq!(back.graph.len(), a.graph.len());
    }
}
