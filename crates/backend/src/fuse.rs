//! Element-wise kernel fusion for the Compiled backend.
//!
//! The paper attributes TVM's constant-factor advantage over TorchScript to
//! "a set of optimizations (e.g., operator fusion)" (§6.1.1). This module
//! reproduces that optimization: maximal single-consumer subgraphs of
//! element-wise operators are compiled into one [`FusedKernel`] — a small
//! stack-machine bytecode evaluated in a single pass over the broadcast
//! output, replacing one intermediate tensor allocation and one kernel
//! launch per fused node.
//!
//! Only `f32`/`bool` dataflow is fused (booleans are carried as 0.0/1.0
//! inside the kernel); `i64` index arithmetic — e.g. the TreeTraversal
//! pointer updates — stays unfused, mirroring how real tensor compilers
//! struggle with gather-style access patterns.

use rayon::prelude::*;

use hb_tensor::shape::{broadcast_shapes, contiguous_strides, numel};
use hb_tensor::{DType, DynTensor, Tensor};

use crate::graph::{Graph, Node, NodeId};
use crate::lir;
use crate::lir::codegen::KernelClass;
use crate::lir::vm::LirForm;
use crate::op::Op;

/// Which rung of the dispatch ladder a kernel executes on. The
/// production ladder is codegen class → peephole form → register VM;
/// the lower rungs exist so differential and chaos tests can force any
/// strategy and hold all of them to bit-identical outputs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Dispatch {
    /// Specialized kernel class or peephole form when one matched, the
    /// register VM otherwise.
    #[default]
    Auto,
    /// Force the generic register VM (skip forms and codegen classes).
    Vm,
    /// Force the legacy stack interpreter (the reference semantics).
    Stack,
}

impl Dispatch {
    /// Short label for bench/lint reporting.
    pub fn label(self) -> &'static str {
        match self {
            Dispatch::Auto => "auto",
            Dispatch::Vm => "vm",
            Dispatch::Stack => "stack",
        }
    }
}

/// One stack-machine instruction of a fused kernel.
#[derive(Clone, Debug, PartialEq)]
pub enum Instr {
    /// Push external input `k` (as f32).
    Load(usize),
    /// Push an immediate scalar.
    Imm(f32),
    /// Binary arithmetic (pop rhs, pop lhs, push result).
    Add,
    /// See [`Instr::Add`].
    Sub,
    /// See [`Instr::Add`].
    Mul,
    /// See [`Instr::Add`].
    Div,
    /// Pop two, push minimum.
    Min,
    /// Pop two, push maximum.
    Max,
    /// Comparison producing 0.0/1.0.
    Lt,
    /// See [`Instr::Lt`].
    Le,
    /// See [`Instr::Lt`].
    Gt,
    /// See [`Instr::Lt`].
    Ge,
    /// See [`Instr::Lt`].
    Eq,
    /// See [`Instr::Lt`].
    Ne,
    /// Logical AND over 0/1 operands.
    And,
    /// Logical OR over 0/1 operands.
    Or,
    /// Logical XOR over 0/1 operands.
    Xor,
    /// Logical NOT of a 0/1 operand.
    Not,
    /// Pops `b`, `a`, `cond`; pushes `cond != 0 ? a : b`.
    Select,
    /// Unary `max(x, 0)`.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Ln,
    /// Square root.
    Sqrt,
    /// Absolute value.
    Abs,
    /// Negation.
    Neg,
    /// NaN test producing 0.0/1.0.
    IsNan,
    /// Clamp into `[lo, hi]`.
    Clamp(f32, f32),
    /// Power with immediate exponent.
    Pow(f32),
    /// Add immediate.
    AddImm(f32),
    /// Multiply by immediate.
    MulImm(f32),
    /// Normalize to exactly 0.0/1.0 (`Cast(Bool)` inside the kernel).
    Bool01,
}

/// Register width of the vectorized interpreter: per-instruction dispatch
/// amortizes over `BLOCK` elements and the inner loops auto-vectorize,
/// which is what makes fusion a win over separate vectorized passes.
const BLOCK: usize = 64;

/// A fused element-wise kernel: a bytecode program over broadcast
/// inputs, carried alongside its verified register-LIR lowering
/// (`hb-backend::lir`), which is the form that actually executes.
#[derive(Clone, Debug)]
pub struct FusedKernel {
    /// Number of external tensor inputs.
    pub n_inputs: usize,
    /// Dtype of the kernel output.
    pub out_dtype: DType,
    program: Vec<Instr>,
    /// Peak operand-stack depth (precomputed for the stack-dispatch
    /// reference interpreter).
    max_depth: usize,
    /// Optimized LIR lowering; verified + translation-validated against
    /// `program` at construction.
    lir: lir::LirProgram,
    /// Validated register allocation for `lir`.
    exec: lir::opt::LirExec,
    /// Whole-kernel peephole form recognized on the optimized LIR
    /// (replaces the former ad-hoc `FastPath` matcher).
    form: LirForm,
    /// Monomorphized multi-op kernel class compiled from the optimized
    /// LIR when no single-op peephole form applies (codegen stage 2).
    class: KernelClass,
    /// What the LIR optimizer eliminated (for lint/bench reporting).
    opt_stats: lir::opt::LirOptStats,
    /// Which dispatch rung this kernel executes on; [`Dispatch::Auto`]
    /// in production, forced lower rungs for differential baselines.
    dispatch: Dispatch,
}

impl hb_json::ToJson for FusedKernel {
    fn to_json(&self) -> hb_json::Json {
        hb_json::Json::Obj(vec![
            (
                "n_inputs".to_string(),
                hb_json::ToJson::to_json(&self.n_inputs),
            ),
            (
                "out_dtype".to_string(),
                hb_json::ToJson::to_json(&self.out_dtype),
            ),
            (
                "program".to_string(),
                hb_json::ToJson::to_json(&self.program),
            ),
        ])
    }
}

// Deserialization rebuilds the derived fields through the validating
// constructor, so a hostile artifact cannot smuggle in a program that
// underflows its stack or loads out-of-range inputs.
impl hb_json::FromJson for FusedKernel {
    fn from_json(v: &hb_json::Json) -> Result<Self, hb_json::JsonError> {
        let pairs = v.expect_obj("FusedKernel")?;
        let n_inputs = hb_json::field(pairs, "n_inputs", "FusedKernel")?;
        let out_dtype = hb_json::field(pairs, "out_dtype", "FusedKernel")?;
        let program = hb_json::field(pairs, "program", "FusedKernel")?;
        FusedKernel::try_new(n_inputs, out_dtype, program)
            .map_err(|e| hb_json::JsonError::Schema(format!("FusedKernel: {e}")))
    }
}

impl FusedKernel {
    /// The kernel's bytecode program (read-only; programs are validated
    /// at construction and immutable afterwards). Used by the abstract
    /// interpreter to derive value facts for fused nodes.
    pub fn program(&self) -> &[Instr] {
        &self.program
    }

    /// Creates a kernel from a finished program.
    ///
    /// # Panics
    ///
    /// Panics if the program fails [`FusedKernel::try_new`] verification
    /// (an internal invariant for compiler-produced programs).
    pub fn new(n_inputs: usize, out_dtype: DType, program: Vec<Instr>) -> Self {
        match FusedKernel::try_new(n_inputs, out_dtype, program) {
            Ok(k) => k,
            Err(e) => panic!("fuser produced an invalid kernel program: {e}"),
        }
    }

    /// Verifies and creates a kernel from a possibly-untrusted program:
    /// the stack must never underflow, every `Load` must address a real
    /// input slot, and exactly one value must remain at the end. The
    /// program is then lowered to register LIR, which must pass its own
    /// verification gate ([`lir::LirProgram::verify`]) before and after
    /// optimization, be translation-validated against the bytecode over
    /// the abstract value domain, and carry a validated register
    /// allocation — only then is the kernel executable.
    pub fn try_new(n_inputs: usize, out_dtype: DType, program: Vec<Instr>) -> Result<Self, String> {
        // Static verification doubles as depth computation.
        let mut depth = 0usize;
        let mut max_depth = 0usize;
        for ins in &program {
            if let Instr::Load(k) = ins {
                if *k >= n_inputs {
                    return Err(format!(
                        "program loads input {k} but the kernel has {n_inputs} inputs"
                    ));
                }
            }
            let (pops, pushes) = match ins {
                Instr::Load(_) | Instr::Imm(_) => (0, 1),
                Instr::Select => (3, 1),
                Instr::Add
                | Instr::Sub
                | Instr::Mul
                | Instr::Div
                | Instr::Min
                | Instr::Max
                | Instr::Lt
                | Instr::Le
                | Instr::Gt
                | Instr::Ge
                | Instr::Eq
                | Instr::Ne
                | Instr::And
                | Instr::Or
                | Instr::Xor => (2, 1),
                _ => (1, 1),
            };
            if depth < pops {
                return Err("program underflows its stack".to_string());
            }
            depth = depth - pops + pushes;
            max_depth = max_depth.max(depth);
        }
        if depth != 1 {
            return Err(format!(
                "program must leave exactly one value, leaves {depth}"
            ));
        }
        // The LIR gate: lower, verify, optimize, re-verify, translation-
        // validate against the bytecode, allocate registers, validate
        // the allocation.
        let raw = lir::LirProgram::lower(&program, n_inputs, out_dtype)
            .map_err(|e| format!("LIR lowering failed: {e}"))?;
        raw.verify()
            .map_err(|e| format!("LIR verification failed: {e}"))?;
        let (opt, opt_stats) = lir::opt::optimize(&raw);
        opt.verify()
            .map_err(|e| format!("optimized LIR verification failed: {e}"))?;
        crate::absint::validate_fused_lowering(&program, &raw, &opt)
            .map_err(|e| format!("LIR translation validation failed: {e}"))?;
        let exec =
            lir::opt::allocate(&opt).map_err(|e| format!("LIR register allocation failed: {e}"))?;
        lir::opt::verify_alloc(&opt, &exec)
            .map_err(|e| format!("LIR register allocation rejected: {e}"))?;
        let form = lir::vm::detect_form(&opt, &exec);
        // Codegen stage 2: only consulted when no peephole form covers
        // the program, so the two tiers never compete.
        let class = if form.is_none() {
            lir::codegen::detect_class(&opt, &exec)
        } else {
            KernelClass::None
        };
        Ok(FusedKernel {
            n_inputs,
            out_dtype,
            program,
            max_depth,
            lir: opt,
            exec,
            form,
            class,
            opt_stats,
            dispatch: Dispatch::Auto,
        })
    }

    /// The kernel's verified, optimized LIR program.
    pub fn lir(&self) -> &lir::LirProgram {
        &self.lir
    }

    /// The kernel's validated register allocation.
    pub fn lir_exec(&self) -> &lir::opt::LirExec {
        &self.exec
    }

    /// What the LIR optimizer eliminated.
    pub fn lir_opt_stats(&self) -> lir::opt::LirOptStats {
        self.opt_stats
    }

    /// The recognized whole-kernel peephole form.
    pub fn lir_form(&self) -> LirForm {
        self.form
    }

    /// The compiled multi-op kernel class ([`KernelClass::None`] when
    /// a peephole form applies or no class shape covers the program).
    pub fn kernel_class(&self) -> KernelClass {
        self.class
    }

    /// The execution-strategy label the `Auto` rung resolved to: the
    /// peephole form, the codegen class, or `"vm"` — for certs, lint,
    /// and the bench tables.
    pub fn class_label(&self) -> &'static str {
        if !self.form.is_none() {
            self.form.label()
        } else {
            self.class.label()
        }
    }

    /// A clone of this kernel that dispatches through the legacy stack
    /// interpreter instead of the register VM: the reference dispatcher
    /// for differential tests and the bench baseline column.
    pub fn with_stack_dispatch(&self) -> FusedKernel {
        let mut k = self.clone();
        k.dispatch = Dispatch::Stack;
        k
    }

    /// A clone of this kernel pinned to the generic register VM —
    /// the middle rung of the ladder, skipping peephole forms and
    /// codegen classes. Differential tests use it to hold the
    /// specialized kernels to the VM's exact bits.
    pub fn with_vm_dispatch(&self) -> FusedKernel {
        let mut k = self.clone();
        k.dispatch = Dispatch::Vm;
        k
    }

    /// The dispatch rung this kernel is pinned to.
    pub fn dispatch(&self) -> Dispatch {
        self.dispatch
    }

    /// True when this kernel dispatches through the stack interpreter.
    pub fn uses_stack_dispatch(&self) -> bool {
        self.dispatch == Dispatch::Stack
    }

    /// Scratch register-file size covering both dispatchers.
    fn scratch_regs(&self) -> usize {
        self.max_depth.max(self.exec.n_regs).max(1)
    }

    /// Number of instructions (used for cost estimation).
    pub fn program_len(&self) -> usize {
        self.program.len()
    }

    /// Runs the program over one block of gathered input registers,
    /// writing the result into `out` (length `len`).
    fn eval_block(&self, vals: &[Vec<f32>], regs: &mut [Vec<f32>], len: usize, out: &mut [f32]) {
        let mut top = 0usize; // Stack pointer: regs[..top] are live.
        for ins in &self.program {
            match ins {
                Instr::Load(k) => {
                    regs[top][..len].copy_from_slice(&vals[*k][..len]);
                    top += 1;
                }
                Instr::Imm(v) => {
                    regs[top][..len].fill(*v);
                    top += 1;
                }
                Instr::Select => {
                    let (head, tail) = regs.split_at_mut(top - 2);
                    let c = &mut head[top - 3];
                    let (a, b) = tail.split_at_mut(1);
                    for j in 0..len {
                        c[j] = if c[j] != 0.0 { a[0][j] } else { b[0][j] };
                    }
                    top -= 2;
                }
                _ => {
                    let binf: Option<fn(f32, f32) -> f32> = match ins {
                        Instr::Add => Some(|a, b| a + b),
                        Instr::Sub => Some(|a, b| a - b),
                        Instr::Mul => Some(|a, b| a * b),
                        Instr::Div => Some(|a, b| a / b),
                        Instr::Min => Some(f32::min),
                        Instr::Max => Some(f32::max),
                        Instr::Lt => Some(|a, b| f32::from(a < b)),
                        Instr::Le => Some(|a, b| f32::from(a <= b)),
                        Instr::Gt => Some(|a, b| f32::from(a > b)),
                        Instr::Ge => Some(|a, b| f32::from(a >= b)),
                        Instr::Eq => Some(|a, b| f32::from(a == b)),
                        Instr::Ne => Some(|a, b| f32::from(a != b)),
                        Instr::And => Some(|a, b| f32::from(a != 0.0 && b != 0.0)),
                        Instr::Or => Some(|a, b| f32::from(a != 0.0 || b != 0.0)),
                        Instr::Xor => Some(|a, b| f32::from((a != 0.0) ^ (b != 0.0))),
                        _ => None,
                    };
                    if let Some(f) = binf {
                        let (head, tail) = regs.split_at_mut(top - 1);
                        let a = &mut head[top - 2];
                        let b = &tail[0];
                        for j in 0..len {
                            a[j] = f(a[j], b[j]);
                        }
                        top -= 1;
                        continue;
                    }
                    match ins {
                        Instr::Clamp(lo, hi) => {
                            let r = &mut regs[top - 1];
                            for v in r[..len].iter_mut() {
                                *v = v.clamp(*lo, *hi);
                            }
                        }
                        Instr::Pow(e) => {
                            let r = &mut regs[top - 1];
                            for v in r[..len].iter_mut() {
                                *v = v.powf(*e);
                            }
                        }
                        // Routed through the shared scalar table (not
                        // open-coded `+=`/`*=`): the indirect call keeps
                        // the compiler from commuting the operands, which
                        // would flip NaN-payload selection on double-NaN
                        // pairs relative to the register VM.
                        Instr::AddImm(c) => {
                            let f = lir::vm::bin_scalar(lir::BinOp::Add);
                            let r = &mut regs[top - 1];
                            for v in r[..len].iter_mut() {
                                *v = f(*v, *c);
                            }
                        }
                        Instr::MulImm(c) => {
                            let f = lir::vm::bin_scalar(lir::BinOp::Mul);
                            let r = &mut regs[top - 1];
                            for v in r[..len].iter_mut() {
                                *v = f(*v, *c);
                            }
                        }
                        _ => {
                            let unf: fn(f32) -> f32 = match ins {
                                Instr::Not => |a| f32::from(a == 0.0),
                                Instr::Relu => |a| a.max(0.0),
                                Instr::Sigmoid => |a| 1.0 / (1.0 + (-a).exp()),
                                Instr::Tanh => f32::tanh,
                                Instr::Exp => f32::exp,
                                Instr::Ln => f32::ln,
                                Instr::Sqrt => f32::sqrt,
                                Instr::Abs => f32::abs,
                                Instr::Neg => |a| -a,
                                Instr::IsNan => |a| f32::from(a.is_nan()),
                                Instr::Bool01 => |a| f32::from(a != 0.0),
                                other => unreachable!("unhandled instruction {other:?}"),
                            };
                            let r = &mut regs[top - 1];
                            for v in r[..len].iter_mut() {
                                *v = unf(*v);
                            }
                        }
                    }
                }
            }
        }
        out[..len].copy_from_slice(&regs[0][..len]);
    }

    /// Converts every input to a contiguous f32 buffer (bools → 0/1) and
    /// merges the broadcast output shape — shared by [`FusedKernel::eval`]
    /// and [`FusedKernel::eval_into`].
    fn prep(&self, inputs: &[&DynTensor]) -> (Vec<Tensor<f32>>, Vec<usize>) {
        assert_eq!(
            inputs.len(),
            self.n_inputs,
            "fused kernel input count mismatch"
        );
        let bufs: Vec<Tensor<f32>> = inputs
            .iter()
            .map(|t| match t {
                DynTensor::F32(t) => t.to_contiguous(),
                DynTensor::Bool(t) => t.map(f32::from),
                DynTensor::I64(t) => t.map(|v| v as f32),
                DynTensor::U8(t) => t.map(|v| v as f32),
            })
            .collect();
        let mut shape: Vec<usize> = Vec::new();
        for b in &bufs {
            #[allow(clippy::disallowed_methods)] // fusion only groups broadcast-compatible ops
            let merged = broadcast_shapes(&shape, b.shape()).expect("fused kernel broadcast");
            shape = merged;
        }
        (bufs, shape)
    }

    /// Evaluates the kernel over broadcast inputs, producing one tensor in
    /// a single pass (one "kernel launch").
    pub fn eval(&self, inputs: &[&DynTensor]) -> DynTensor {
        let (bufs, shape) = self.prep(inputs);
        let mut out = vec![0.0f32; numel(&shape)];
        self.fill(&bufs, &shape, &mut out);
        match self.out_dtype {
            DType::F32 => DynTensor::F32(Tensor::from_vec(out, &shape)),
            DType::Bool => DynTensor::Bool(Tensor::from_vec(
                out.iter().map(|&v| v != 0.0).collect(),
                &shape,
            )),
            other => panic!("fused kernel cannot produce {other:?}"),
        }
    }

    /// Allocation-free twin of [`FusedKernel::eval`] for f32-rooted fused
    /// clusters: runs the program once and writes the result into `out`.
    /// Contiguous f32 inputs are consumed zero-copy; bool/i64/u8 inputs
    /// still convert through a scratch f32 buffer (the planner's
    /// allocation counter makes such conversions visible).
    ///
    /// # Panics
    ///
    /// Panics if the kernel's output dtype is not f32 (the planner routes
    /// bool-rooted clusters through the allocating fallback) or `out` has
    /// the wrong length.
    pub fn eval_into(&self, inputs: &[&DynTensor], out: &mut [f32]) {
        assert_eq!(
            self.out_dtype,
            DType::F32,
            "fused eval_into requires an f32-rooted kernel"
        );
        let (bufs, shape) = self.prep(inputs);
        assert_eq!(
            out.len(),
            numel(&shape),
            "fused eval_into: destination size mismatch"
        );
        self.fill(&bufs, &shape, out);
    }

    /// Runs the fused program over prepared buffers, writing the f32
    /// result into `out` (fully overwritten); contains both the row-loop
    /// fast path and the blocked stack-interpreter path.
    fn fill(&self, bufs: &[Tensor<f32>], shape: &[usize], out: &mut [f32]) {
        let n = numel(shape);
        let out_strides = contiguous_strides(shape);
        // Per-input broadcast strides against the output shape.
        let strides: Vec<Vec<isize>> = bufs
            .iter()
            .map(|b| {
                hb_tensor::shape::broadcast_strides(
                    b.shape(),
                    &contiguous_strides(b.shape()),
                    shape,
                )
            })
            .collect();
        let slices: Vec<&[f32]> = bufs.iter().map(|b| b.as_slice()).collect();

        // Row-loop fast path for peephole-formed and codegen-classed
        // kernels: the odometer advances once per output row instead of
        // once per element, and inputs are read straight from their
        // slices (no block gather at all).
        if self.dispatch == Dispatch::Auto
            && (!self.form.is_none() || !self.class.is_none())
            && !shape.is_empty()
        {
            #[allow(clippy::disallowed_methods)] // invariant, message documents it
            let inner = *shape.last().expect("fused kernel output has rank >= 1");
            let ok = strides.iter().all(|st| {
                #[allow(clippy::disallowed_methods)] // strides mirror the non-empty shape
                let s = *st.last().expect("fused kernel stride has rank >= 1");
                s == 0 || s == 1
            });
            if ok && inner > 0 {
                let rows = n / inner;
                let outer_shape = &shape[..shape.len() - 1];
                let row_chunk = (rows / (rayon::current_num_threads() * 4).max(1)).max(64);
                out.par_chunks_mut(row_chunk * inner)
                    .enumerate()
                    .for_each(|(ci, ochunk)| {
                        let row0 = ci * row_chunk;
                        // Per-input row base offsets from the outer index.
                        let mut idx = vec![0usize; outer_shape.len()];
                        let mut rem = row0;
                        for d in (0..outer_shape.len()).rev() {
                            idx[d] = rem % outer_shape[d];
                            rem /= outer_shape[d];
                        }
                        let mut bases: Vec<isize> = strides
                            .iter()
                            .map(|st| {
                                idx.iter()
                                    .zip(st.iter())
                                    .map(|(&i, &v)| i as isize * v)
                                    .sum()
                            })
                            .collect();
                        #[allow(clippy::disallowed_methods)] // strides mirror the non-empty shape
                        let inner_strides: Vec<usize> = strides
                            .iter()
                            .map(|st| {
                                *st.last().expect("fused kernel stride has rank >= 1") as usize
                            })
                            .collect();
                        for orow in ochunk.chunks_mut(inner) {
                            match self.form {
                                LirForm::Bin2 { a, b, f } => {
                                    let (sa, sb) = (slices[a], slices[b]);
                                    let (ba, bb) = (bases[a] as usize, bases[b] as usize);
                                    let (ia, ib) = (inner_strides[a], inner_strides[b]);
                                    for (j, o) in orow.iter_mut().enumerate() {
                                        *o = f(sa[ba + j * ia], sb[bb + j * ib]);
                                    }
                                }
                                LirForm::BinImm { a, c, f } => {
                                    let sa = slices[a];
                                    let ba = bases[a] as usize;
                                    let ia = inner_strides[a];
                                    for (j, o) in orow.iter_mut().enumerate() {
                                        *o = f(sa[ba + j * ia], c);
                                    }
                                }
                                LirForm::ImmBin { c, a, f } => {
                                    let sa = slices[a];
                                    let ba = bases[a] as usize;
                                    let ia = inner_strides[a];
                                    for (j, o) in orow.iter_mut().enumerate() {
                                        *o = f(c, sa[ba + j * ia]);
                                    }
                                }
                                LirForm::Un { a, f } => {
                                    let sa = slices[a];
                                    let ba = bases[a] as usize;
                                    let ia = inner_strides[a];
                                    for (j, o) in orow.iter_mut().enumerate() {
                                        *o = f(sa[ba + j * ia]);
                                    }
                                }
                                LirForm::Clamp { a, lo, hi } => {
                                    let sa = slices[a];
                                    let ba = bases[a] as usize;
                                    let ia = inner_strides[a];
                                    for (j, o) in orow.iter_mut().enumerate() {
                                        *o = sa[ba + j * ia].clamp(lo, hi);
                                    }
                                }
                                LirForm::Pow { a, e } => {
                                    let sa = slices[a];
                                    let ba = bases[a] as usize;
                                    let ia = inner_strides[a];
                                    for (j, o) in orow.iter_mut().enumerate() {
                                        *o = sa[ba + j * ia].powf(e);
                                    }
                                }
                                LirForm::Copy { a } => {
                                    let sa = slices[a];
                                    let ba = bases[a] as usize;
                                    let ia = inner_strides[a];
                                    for (j, o) in orow.iter_mut().enumerate() {
                                        *o = sa[ba + j * ia];
                                    }
                                }
                                LirForm::Fill { c } => orow.fill(c),
                                LirForm::None => {
                                    self.class
                                        .run_row(None, &slices, &bases, &inner_strides, orow)
                                }
                            }
                            // Advance the outer odometer one row.
                            for d in (0..outer_shape.len()).rev() {
                                idx[d] += 1;
                                for (base, st) in bases.iter_mut().zip(strides.iter()) {
                                    *base += st[d];
                                }
                                if idx[d] < outer_shape[d] {
                                    break;
                                }
                                for (base, st) in bases.iter_mut().zip(strides.iter()) {
                                    *base -= st[d] * outer_shape[d] as isize;
                                }
                                idx[d] = 0;
                            }
                        }
                    });
                return;
            }
        }

        let chunk = (n / (rayon::current_num_threads() * 4).max(1)).max(4096);
        out.par_chunks_mut(chunk)
            .enumerate()
            .for_each(|(ci, ochunk)| {
                let start = ci * chunk;
                // Unravel the chunk start into a multi-index, then walk an
                // odometer to keep per-input offsets incremental.
                let mut idx = vec![0usize; shape.len()];
                let mut rem = start;
                for d in 0..shape.len() {
                    if out_strides[d] > 0 {
                        idx[d] = rem / out_strides[d] as usize;
                        rem %= out_strides[d] as usize;
                    }
                }
                let mut offs: Vec<isize> = strides
                    .iter()
                    .map(|s| {
                        idx.iter()
                            .zip(s.iter())
                            .map(|(&i, &st)| i as isize * st)
                            .sum()
                    })
                    .collect();
                // Inputs whose layout equals the output's read by bulk copy;
                // only genuinely-broadcast inputs walk the odometer.
                let generic: Vec<usize> = (0..slices.len())
                    .filter(|&k| strides[k] != out_strides)
                    .collect();
                // Vector registers: one block of gathered values per input,
                // plus the physical register file.
                let mut vals: Vec<Vec<f32>> = vec![vec![0.0; BLOCK]; slices.len()];
                let mut regs: Vec<Vec<f32>> = vec![vec![0.0; BLOCK]; self.scratch_regs()];
                let mut done = 0usize;
                while done < ochunk.len() {
                    let len = BLOCK.min(ochunk.len() - done);
                    for (k, s) in slices.iter().enumerate() {
                        if strides[k] == out_strides {
                            let flat = start + done;
                            vals[k][..len].copy_from_slice(&s[flat..flat + len]);
                        }
                    }
                    if generic.is_empty() {
                        // Keep the odometer position coherent for mixed
                        // blocks later in the chunk.
                    } else {
                        // The odometer advances several parallel buffers per
                        // element; an index loop is the clear form here.
                        #[allow(clippy::needless_range_loop)]
                        for j in 0..len {
                            for &k in &generic {
                                vals[k][j] = slices[k][offs[k] as usize];
                            }
                            for d in (0..shape.len()).rev() {
                                idx[d] += 1;
                                for &k in &generic {
                                    offs[k] += strides[k][d];
                                }
                                if idx[d] < shape[d] {
                                    break;
                                }
                                for &k in &generic {
                                    offs[k] -= strides[k][d] * shape[d] as isize;
                                }
                                idx[d] = 0;
                            }
                        }
                    }
                    let outb = &mut ochunk[done..done + len];
                    self.compute_block(&vals, &mut regs, len, outb);
                    done += len;
                }
            });
    }

    /// Evaluates one block of gathered input values into `outb`, using
    /// the recognized peephole form when one applies and the register
    /// VM otherwise (or the legacy stack interpreter under
    /// [`FusedKernel::with_stack_dispatch`]). Shared by
    /// [`FusedKernel::fill`] and [`FusedKernel::fill_in_place`] so both
    /// produce identical bits.
    fn compute_block(
        &self,
        vals: &[Vec<f32>],
        regs: &mut [Vec<f32>],
        len: usize,
        outb: &mut [f32],
    ) {
        match self.dispatch {
            Dispatch::Stack => {
                self.eval_block(vals, regs, len, outb);
                return;
            }
            Dispatch::Vm => {
                lir::vm::run_block(&self.lir, &self.exec, vals, regs, len, outb);
                return;
            }
            Dispatch::Auto => {}
        }
        match self.form {
            LirForm::Bin2 { a, b, f } => {
                for j in 0..len {
                    outb[j] = f(vals[a][j], vals[b][j]);
                }
            }
            LirForm::BinImm { a, c, f } => {
                for j in 0..len {
                    outb[j] = f(vals[a][j], c);
                }
            }
            LirForm::ImmBin { c, a, f } => {
                for j in 0..len {
                    outb[j] = f(c, vals[a][j]);
                }
            }
            LirForm::Un { a, f } => {
                for j in 0..len {
                    outb[j] = f(vals[a][j]);
                }
            }
            LirForm::Clamp { a, lo, hi } => {
                for j in 0..len {
                    outb[j] = vals[a][j].clamp(lo, hi);
                }
            }
            LirForm::Pow { a, e } => {
                for j in 0..len {
                    outb[j] = vals[a][j].powf(e);
                }
            }
            LirForm::Copy { a } => outb[..len].copy_from_slice(&vals[a][..len]),
            LirForm::Fill { c } => outb[..len].fill(c),
            LirForm::None if !self.class.is_none() => self.class.run_block(vals, len, outb),
            LirForm::None => lir::vm::run_block(&self.lir, &self.exec, vals, regs, len, outb),
        }
    }

    /// Applies the recognized peephole form to one output row whose
    /// input `operand` aliases the row itself: `orow` holds the
    /// operand's values on entry and the kernel's result on exit. Each
    /// element is read before it is overwritten, so the transform is
    /// exactly the allocating row loop's, bit for bit. Arms where the
    /// form does not touch `operand` (possible after DCE drops a load)
    /// simply overwrite the row.
    fn in_place_row(
        &self,
        operand: usize,
        slices: &[&[f32]],
        bases: &[isize],
        inner_strides: &[usize],
        orow: &mut [f32],
    ) {
        match self.form {
            LirForm::Bin2 { a, b, f } if a == operand && b == operand => {
                for o in orow.iter_mut() {
                    *o = f(*o, *o);
                }
            }
            LirForm::Bin2 { a, b, f } if a == operand => {
                let (sb, bb, ib) = (slices[b], bases[b] as usize, inner_strides[b]);
                for (j, o) in orow.iter_mut().enumerate() {
                    *o = f(*o, sb[bb + j * ib]);
                }
            }
            LirForm::Bin2 { a, b, f } if b == operand => {
                let (sa, ba, ia) = (slices[a], bases[a] as usize, inner_strides[a]);
                for (j, o) in orow.iter_mut().enumerate() {
                    *o = f(sa[ba + j * ia], *o);
                }
            }
            LirForm::Bin2 { a, b, f } => {
                let (sa, sb) = (slices[a], slices[b]);
                let (ba, bb) = (bases[a] as usize, bases[b] as usize);
                let (ia, ib) = (inner_strides[a], inner_strides[b]);
                for (j, o) in orow.iter_mut().enumerate() {
                    *o = f(sa[ba + j * ia], sb[bb + j * ib]);
                }
            }
            LirForm::BinImm { a, c, f } if a == operand => {
                for o in orow.iter_mut() {
                    *o = f(*o, c);
                }
            }
            LirForm::BinImm { a, c, f } => {
                let (sa, ba, ia) = (slices[a], bases[a] as usize, inner_strides[a]);
                for (j, o) in orow.iter_mut().enumerate() {
                    *o = f(sa[ba + j * ia], c);
                }
            }
            LirForm::ImmBin { c, a, f } if a == operand => {
                for o in orow.iter_mut() {
                    *o = f(c, *o);
                }
            }
            LirForm::ImmBin { c, a, f } => {
                let (sa, ba, ia) = (slices[a], bases[a] as usize, inner_strides[a]);
                for (j, o) in orow.iter_mut().enumerate() {
                    *o = f(c, sa[ba + j * ia]);
                }
            }
            LirForm::Un { a, f } if a == operand => {
                for o in orow.iter_mut() {
                    *o = f(*o);
                }
            }
            LirForm::Un { a, f } => {
                let (sa, ba, ia) = (slices[a], bases[a] as usize, inner_strides[a]);
                for (j, o) in orow.iter_mut().enumerate() {
                    *o = f(sa[ba + j * ia]);
                }
            }
            LirForm::Clamp { a, lo, hi } if a == operand => {
                for o in orow.iter_mut() {
                    *o = o.clamp(lo, hi);
                }
            }
            LirForm::Clamp { a, lo, hi } => {
                let (sa, ba, ia) = (slices[a], bases[a] as usize, inner_strides[a]);
                for (j, o) in orow.iter_mut().enumerate() {
                    *o = sa[ba + j * ia].clamp(lo, hi);
                }
            }
            LirForm::Pow { a, e } if a == operand => {
                for o in orow.iter_mut() {
                    *o = o.powf(e);
                }
            }
            LirForm::Pow { a, e } => {
                let (sa, ba, ia) = (slices[a], bases[a] as usize, inner_strides[a]);
                for (j, o) in orow.iter_mut().enumerate() {
                    *o = sa[ba + j * ia].powf(e);
                }
            }
            LirForm::Copy { a } if a == operand => {} // row already holds the operand
            LirForm::Copy { a } => {
                let (sa, ba, ia) = (slices[a], bases[a] as usize, inner_strides[a]);
                for (j, o) in orow.iter_mut().enumerate() {
                    *o = sa[ba + j * ia];
                }
            }
            LirForm::Fill { c } => orow.fill(c),
            LirForm::None => self
                .class
                .run_row(Some(operand), slices, bases, inner_strides, orow),
        }
    }

    /// Variant of [`FusedKernel::eval_into`] in which input `operand`
    /// *aliases the destination*: on entry `buf` holds that operand's
    /// values (contiguous f32, exactly the output shape), and on exit it
    /// holds the kernel's result. The remaining inputs arrive in
    /// `inputs`, with `None` at position `operand`.
    ///
    /// This is safe — and bit-identical to the allocating path — because
    /// a fused elementwise kernel's output element `i` reads only flat
    /// element `i` of a full-shape operand, and each block copies the
    /// operand's values out of `buf` into a register before overwriting
    /// that block. Parallel chunks never read outside their own region.
    ///
    /// # Panics
    ///
    /// Panics if the kernel is not f32-rooted, the input count is wrong,
    /// `inputs[operand]` is not `None`, `buf` does not match the output
    /// size, or a named input fails to broadcast into `shape`.
    pub fn eval_in_place(
        &self,
        operand: usize,
        inputs: &[Option<&DynTensor>],
        shape: &[usize],
        buf: &mut [f32],
    ) {
        assert_eq!(
            self.out_dtype,
            DType::F32,
            "fused eval_in_place requires an f32-rooted kernel"
        );
        assert_eq!(
            inputs.len(),
            self.n_inputs,
            "fused kernel input count mismatch"
        );
        assert!(
            operand < self.n_inputs && inputs[operand].is_none(),
            "aliased operand must be passed as None"
        );
        assert_eq!(
            buf.len(),
            numel(shape),
            "fused eval_in_place: buffer size mismatch"
        );
        let bufs: Vec<Option<Tensor<f32>>> = inputs
            .iter()
            .map(|t| {
                t.map(|t| match t {
                    DynTensor::F32(t) => t.to_contiguous(),
                    DynTensor::Bool(t) => t.map(f32::from),
                    DynTensor::I64(t) => t.map(|v| v as f32),
                    DynTensor::U8(t) => t.map(|v| v as f32),
                })
            })
            .collect();
        for b in bufs.iter().flatten() {
            #[allow(clippy::disallowed_methods)] // fusion only groups broadcast-compatible ops
            let merged = broadcast_shapes(shape, b.shape()).expect("fused kernel broadcast");
            assert_eq!(
                merged, shape,
                "fused eval_in_place: input would broadcast beyond the aliased operand's shape"
            );
        }
        self.fill_in_place(operand, &bufs, shape, buf);
    }

    /// Blocked in-place twin of [`FusedKernel::fill`]: input `operand`
    /// is read from (and the result written to) `out`. Peephole-formed
    /// kernels take a row-loop fast path that reads the aliased operand
    /// element-by-element from the output row *before* overwriting it
    /// (each output element depends only on the same flat element of a
    /// full-shape operand); everything else runs the blocked register
    /// VM. Both paths apply the same scalar functions per element, so
    /// results stay bitwise identical to the allocating path.
    fn fill_in_place(
        &self,
        operand: usize,
        bufs: &[Option<Tensor<f32>>],
        shape: &[usize],
        out: &mut [f32],
    ) {
        let n = numel(shape);
        let out_strides = contiguous_strides(shape);
        // The aliased operand has the output's exact contiguous layout;
        // named inputs broadcast against the output shape as usual.
        let strides: Vec<Vec<isize>> = bufs
            .iter()
            .map(|b| match b {
                Some(b) => hb_tensor::shape::broadcast_strides(
                    b.shape(),
                    &contiguous_strides(b.shape()),
                    shape,
                ),
                None => out_strides.clone(),
            })
            .collect();
        let slices: Vec<&[f32]> = bufs
            .iter()
            .map(|b| b.as_ref().map_or(&[][..], |b| b.as_slice()))
            .collect();

        // Row-loop fast path, mirroring `fill`'s: chunk by whole rows
        // so the aliased operand reads stay inside each chunk's region.
        if self.dispatch == Dispatch::Auto
            && (!self.form.is_none() || !self.class.is_none())
            && !shape.is_empty()
        {
            #[allow(clippy::disallowed_methods)] // invariant, message documents it
            let inner = *shape.last().expect("fused kernel output has rank >= 1");
            let ok = strides.iter().all(|st| {
                #[allow(clippy::disallowed_methods)] // strides mirror the non-empty shape
                let s = *st.last().expect("fused kernel stride has rank >= 1");
                s == 0 || s == 1
            });
            if ok && inner > 0 {
                let rows = n / inner;
                let outer_shape = &shape[..shape.len() - 1];
                let row_chunk = (rows / (rayon::current_num_threads() * 4).max(1)).max(64);
                out.par_chunks_mut(row_chunk * inner)
                    .enumerate()
                    .for_each(|(ci, ochunk)| {
                        let row0 = ci * row_chunk;
                        let mut idx = vec![0usize; outer_shape.len()];
                        let mut rem = row0;
                        for d in (0..outer_shape.len()).rev() {
                            idx[d] = rem % outer_shape[d];
                            rem /= outer_shape[d];
                        }
                        let mut bases: Vec<isize> = strides
                            .iter()
                            .map(|st| {
                                idx.iter()
                                    .zip(st.iter())
                                    .map(|(&i, &v)| i as isize * v)
                                    .sum()
                            })
                            .collect();
                        #[allow(clippy::disallowed_methods)] // strides mirror the non-empty shape
                        let inner_strides: Vec<usize> = strides
                            .iter()
                            .map(|st| {
                                *st.last().expect("fused kernel stride has rank >= 1") as usize
                            })
                            .collect();
                        for orow in ochunk.chunks_mut(inner) {
                            self.in_place_row(operand, &slices, &bases, &inner_strides, orow);
                            // Advance the outer odometer one row.
                            for d in (0..outer_shape.len()).rev() {
                                idx[d] += 1;
                                for (base, st) in bases.iter_mut().zip(strides.iter()) {
                                    *base += st[d];
                                }
                                if idx[d] < outer_shape[d] {
                                    break;
                                }
                                for (base, st) in bases.iter_mut().zip(strides.iter()) {
                                    *base -= st[d] * outer_shape[d] as isize;
                                }
                                idx[d] = 0;
                            }
                        }
                    });
                return;
            }
        }

        let chunk = (n / (rayon::current_num_threads() * 4).max(1)).max(4096);
        out.par_chunks_mut(chunk)
            .enumerate()
            .for_each(|(ci, ochunk)| {
                let start = ci * chunk;
                let mut idx = vec![0usize; shape.len()];
                let mut rem = start;
                for d in 0..shape.len() {
                    if out_strides[d] > 0 {
                        idx[d] = rem / out_strides[d] as usize;
                        rem %= out_strides[d] as usize;
                    }
                }
                let mut offs: Vec<isize> = strides
                    .iter()
                    .map(|s| {
                        idx.iter()
                            .zip(s.iter())
                            .map(|(&i, &st)| i as isize * st)
                            .sum()
                    })
                    .collect();
                // The operand's strides equal the output's, so it is never
                // walked by the odometer — it is bulk-copied per block from
                // this chunk's own region before that region is overwritten.
                let generic: Vec<usize> = (0..slices.len())
                    .filter(|&k| k != operand && strides[k] != out_strides)
                    .collect();
                let mut vals: Vec<Vec<f32>> = vec![vec![0.0; BLOCK]; slices.len()];
                let mut regs: Vec<Vec<f32>> = vec![vec![0.0; BLOCK]; self.scratch_regs()];
                let mut done = 0usize;
                while done < ochunk.len() {
                    let len = BLOCK.min(ochunk.len() - done);
                    vals[operand][..len].copy_from_slice(&ochunk[done..done + len]);
                    for (k, s) in slices.iter().enumerate() {
                        if k != operand && strides[k] == out_strides {
                            let flat = start + done;
                            vals[k][..len].copy_from_slice(&s[flat..flat + len]);
                        }
                    }
                    if !generic.is_empty() {
                        // The odometer advances several parallel buffers per
                        // element; an index loop is the clear form here.
                        #[allow(clippy::needless_range_loop)]
                        for j in 0..len {
                            for &k in &generic {
                                vals[k][j] = slices[k][offs[k] as usize];
                            }
                            for d in (0..shape.len()).rev() {
                                idx[d] += 1;
                                for &k in &generic {
                                    offs[k] += strides[k][d];
                                }
                                if idx[d] < shape[d] {
                                    break;
                                }
                                for &k in &generic {
                                    offs[k] -= strides[k][d] * shape[d] as isize;
                                }
                                idx[d] = 0;
                            }
                        }
                    }
                    let outb = &mut ochunk[done..done + len];
                    self.compute_block(&vals, &mut regs, len, outb);
                    done += len;
                }
            });
    }
}

/// Returns the instruction implementing `op` within a fused kernel, or
/// `None` if the op is not fusible.
fn fusible_instr(op: &Op) -> Option<Instr> {
    Some(match op {
        Op::Add => Instr::Add,
        Op::Sub => Instr::Sub,
        Op::Mul => Instr::Mul,
        Op::Div => Instr::Div,
        Op::Minimum => Instr::Min,
        Op::Maximum => Instr::Max,
        Op::AddScalar(v) => Instr::AddImm(*v as f32),
        Op::MulScalar(v) => Instr::MulImm(*v as f32),
        Op::PowScalar(v) => Instr::Pow(*v as f32),
        Op::Lt => Instr::Lt,
        Op::Le => Instr::Le,
        Op::Gt => Instr::Gt,
        Op::Ge => Instr::Ge,
        Op::EqOp => Instr::Eq,
        Op::NeOp => Instr::Ne,
        Op::And => Instr::And,
        Op::Or => Instr::Or,
        Op::Xor => Instr::Xor,
        Op::Not => Instr::Not,
        Op::Where => Instr::Select,
        Op::Relu => Instr::Relu,
        Op::Sigmoid => Instr::Sigmoid,
        Op::Tanh => Instr::Tanh,
        Op::Exp => Instr::Exp,
        Op::Ln => Instr::Ln,
        Op::Sqrt => Instr::Sqrt,
        Op::Abs => Instr::Abs,
        Op::Neg => Instr::Neg,
        Op::IsNan => Instr::IsNan,
        Op::Clamp { lo, hi } => Instr::Clamp(*lo, *hi),
        // f32→bool normalizes; bool→f32 is the identity on the 0/1
        // representation and handled as a skip below.
        Op::Cast(DType::Bool) => Instr::Bool01,
        _ => return None,
    })
}

/// True if `node`'s value can live inside a fused kernel: its op has an
/// instruction and all dataflow is f32/bool.
fn is_fusible(node: &Node, dtypes: &[DType], node_id: NodeId) -> bool {
    let ok_dtype = |dt: DType| matches!(dt, DType::F32 | DType::Bool);
    if !ok_dtype(dtypes[node_id]) {
        return false;
    }
    if !node.inputs.iter().all(|&i| ok_dtype(dtypes[i])) {
        return false;
    }
    matches!(node.op, Op::Cast(DType::F32)) || fusible_instr(&node.op).is_some()
}

/// Fuses maximal single-consumer element-wise chains; returns the
/// rewritten graph and the number of kernels created.
///
/// A node is absorbed into its consumer's cluster when it is fusible, has
/// exactly one consumer, and that consumer is fusible. Cluster roots are
/// replaced by [`Op::Fused`] nodes; interior nodes become dead and are
/// removed by the dead-code pass that follows in the Compiled pipeline.
pub fn fuse_elementwise(graph: &Graph) -> (Graph, usize) {
    let dtypes = graph.infer_dtypes();
    let n = graph.nodes.len();

    let mut consumers: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (id, node) in graph.nodes.iter().enumerate() {
        for &i in &node.inputs {
            consumers[i].push(id);
        }
    }
    let mut is_output = vec![false; n];
    for &o in &graph.outputs {
        is_output[o] = true;
    }

    // cluster[i] = root node whose fused kernel will compute node i.
    let mut cluster: Vec<NodeId> = (0..n).collect();
    for id in (0..n).rev() {
        let node = &graph.nodes[id];
        if !is_fusible(node, &dtypes, id) || is_output[id] {
            continue;
        }
        if consumers[id].len() == 1 {
            let c = consumers[id][0];
            if is_fusible(&graph.nodes[c], &dtypes, c) {
                cluster[id] = cluster[c];
            }
        }
    }

    // Count members per root; only rewrite clusters with >= 2 members.
    let mut members: Vec<usize> = vec![0; n];
    for id in 0..n {
        members[cluster[id]] += 1;
    }

    let mut new_graph = graph.clone();
    let mut kernels = 0usize;
    for root in 0..n {
        if members[root] < 2 || cluster[root] != root {
            continue;
        }
        if !is_fusible(&graph.nodes[root], &dtypes, root) {
            continue;
        }
        // Post-order emit from the root, staying inside the cluster.
        let mut program = Vec::new();
        let mut ext_inputs: Vec<NodeId> = Vec::new();
        emit(graph, &cluster, root, root, &mut program, &mut ext_inputs);
        kernels += 1;
        let kernel = FusedKernel::new(ext_inputs.len(), dtypes[root], program);
        new_graph.nodes[root] = Node {
            op: Op::Fused(std::sync::Arc::new(kernel)),
            inputs: ext_inputs,
        };
    }
    (new_graph, kernels)
}

/// Recursively emits bytecode for `id` within cluster `root`.
fn emit(
    graph: &Graph,
    cluster: &[NodeId],
    root: NodeId,
    id: NodeId,
    program: &mut Vec<Instr>,
    ext_inputs: &mut Vec<NodeId>,
) {
    let node = &graph.nodes[id];
    // Scalar f32/bool constants become immediates wherever they appear.
    if let Op::Const(v) = &node.op {
        if v.numel() == 1 {
            let imm = match v {
                DynTensor::F32(t) => Some(t.to_vec()[0]),
                DynTensor::Bool(t) => Some(f32::from(t.to_vec()[0])),
                _ => None,
            };
            if let Some(imm) = imm {
                program.push(Instr::Imm(imm));
                return;
            }
        }
    }
    let interior = id == root || (cluster[id] == root && fusible_or_skip(&node.op));
    if !interior {
        // External value: load it (dedup repeated loads of the same node).
        let slot = match ext_inputs.iter().position(|&e| e == id) {
            Some(s) => s,
            None => {
                ext_inputs.push(id);
                ext_inputs.len() - 1
            }
        };
        program.push(Instr::Load(slot));
        return;
    }
    for &inp in &node.inputs {
        emit(graph, cluster, root, inp, program, ext_inputs);
    }
    match &node.op {
        // bool→f32 cast is the identity on the 0/1 kernel representation.
        Op::Cast(DType::F32) => {}
        op => program
            .push(fusible_instr(op).unwrap_or_else(|| panic!("unfusible op in cluster: {op:?}"))),
    }
}

/// Ops that may appear inside a cluster: fusible ops plus the identity
/// bool→f32 cast.
fn fusible_or_skip(op: &Op) -> bool {
    matches!(op, Op::Cast(DType::F32)) || fusible_instr(op).is_some()
}

// JSON artifact impls for the kernel bytecode (replacing the former
// serde derive).
hb_json::json_enum!(Instr {
    Load(usize),
    Imm(f32),
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
    Xor,
    Not,
    Select,
    Relu,
    Sigmoid,
    Tanh,
    Exp,
    Ln,
    Sqrt,
    Abs,
    Neg,
    IsNan,
    Clamp(f32, f32),
    Pow(f32),
    AddImm(f32),
    MulImm(f32),
    Bool01,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn kernel_evaluates_program() {
        // (a + b) * 2
        let k = FusedKernel::new(
            2,
            DType::F32,
            vec![
                Instr::Load(0),
                Instr::Load(1),
                Instr::Add,
                Instr::MulImm(2.0),
            ],
        );
        let a = DynTensor::F32(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let b = DynTensor::F32(Tensor::from_vec(vec![10.0, 20.0], &[2]));
        assert_eq!(k.eval(&[&a, &b]).as_f32().to_vec(), vec![22.0, 44.0]);
    }

    #[test]
    fn kernel_broadcasts_inputs() {
        let k = FusedKernel::new(
            2,
            DType::F32,
            vec![Instr::Load(0), Instr::Load(1), Instr::Add],
        );
        let a = DynTensor::F32(Tensor::from_vec(vec![1.0, 2.0], &[2, 1]));
        let b = DynTensor::F32(Tensor::from_vec(vec![10.0, 20.0, 30.0], &[1, 3]));
        let out = k.eval(&[&a, &b]);
        assert_eq!(out.shape(), &[2, 3]);
        assert_eq!(
            out.as_f32().to_vec(),
            vec![11.0, 21.0, 31.0, 12.0, 22.0, 32.0]
        );
    }

    #[test]
    fn eval_in_place_matches_eval() {
        // where(a < b, a * 2, b): operand 0 aliases the output buffer,
        // operand 1 broadcasts a row across the batch.
        let k = FusedKernel::new(
            2,
            DType::F32,
            vec![
                Instr::Load(0),
                Instr::Load(1),
                Instr::Lt,
                Instr::Load(0),
                Instr::MulImm(2.0),
                Instr::Load(1),
                Instr::Select,
            ],
        );
        let shape = [97usize, 5];
        let a = Tensor::from_fn(&shape, |i| ((i[0] * 7 + i[1] * 3) % 11) as f32 - 5.0);
        let b = Tensor::from_fn(&[1, 5], |i| i[1] as f32 - 2.0);
        let (da, db) = (DynTensor::F32(a.clone()), DynTensor::F32(b));
        let want = k.eval(&[&da, &db]).as_f32().to_vec();
        let mut buf = a.to_vec();
        k.eval_in_place(0, &[None, Some(&db)], &shape, &mut buf);
        assert_eq!(buf, want);
    }

    #[test]
    fn kernel_select_and_compare() {
        // where(a < b, a, b) == min
        let k = FusedKernel::new(
            2,
            DType::F32,
            vec![
                Instr::Load(0),
                Instr::Load(1),
                Instr::Lt,
                Instr::Load(0),
                Instr::Load(1),
                Instr::Select,
            ],
        );
        let a = DynTensor::F32(Tensor::from_vec(vec![1.0, 9.0], &[2]));
        let b = DynTensor::F32(Tensor::from_vec(vec![5.0, 5.0], &[2]));
        assert_eq!(k.eval(&[&a, &b]).as_f32().to_vec(), vec![1.0, 5.0]);
    }

    #[test]
    fn fuse_pass_collapses_chain() {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let c = b.constant(Tensor::scalar(3.0f32));
        let s = b.add(x, c);
        let r = b.push(Op::Relu, vec![s]);
        let t = b.mul_scalar(r, 2.0);
        b.output(t);
        let g = b.build();
        let (fused, kernels) = fuse_elementwise(&g);
        assert_eq!(kernels, 1);
        // The root node now holds a fused kernel with one external input.
        let root = &fused.nodes[t];
        match &root.op {
            Op::Fused(k) => {
                assert_eq!(k.n_inputs, 1);
                assert!(k.program_len() >= 3);
            }
            other => panic!("expected fused root, got {other:?}"),
        }
    }

    #[test]
    fn fused_graph_matches_unfused_output() {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let th = b.constant(Tensor::from_vec(vec![0.5f32, 1.5], &[2]));
        let m = b.lt(x, th);
        let f = b.cast(m, DType::F32);
        let y = b.mul_scalar(f, 10.0);
        b.output(y);
        let g = b.build();
        let (fused, kernels) = fuse_elementwise(&g);
        assert_eq!(kernels, 1);
        let input = DynTensor::F32(Tensor::from_vec(vec![1.0, 1.0], &[1, 2]));
        let want = run_naive(&g, &[input.clone()]);
        let got = run_naive(&fused, &[input]);
        assert_eq!(want[0], got[0]);
    }

    #[test]
    fn multi_consumer_nodes_stay_unfused() {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let s = b.add_scalar(x, 1.0);
        // `s` has two consumers: both become separate kernels/loads.
        let y1 = b.mul_scalar(s, 2.0);
        let y2 = b.mul_scalar(s, 3.0);
        b.output(y1);
        b.output(y2);
        let g = b.build();
        let (fused, _) = fuse_elementwise(&g);
        let input = DynTensor::F32(Tensor::from_vec(vec![1.0], &[1]));
        let got = run_naive(&fused, &[input]);
        assert_eq!(got[0].as_f32().to_vec(), vec![4.0]);
        assert_eq!(got[1].as_f32().to_vec(), vec![6.0]);
    }

    /// Minimal reference interpreter for tests.
    fn run_naive(g: &Graph, inputs: &[DynTensor]) -> Vec<DynTensor> {
        let mut vals: Vec<Option<DynTensor>> = vec![None; g.nodes.len()];
        for (id, node) in g.nodes.iter().enumerate() {
            let v = match &node.op {
                Op::Input(slot) => inputs[*slot].clone(),
                op => {
                    let ins: Vec<&DynTensor> = node
                        .inputs
                        .iter()
                        .map(|&i| vals[i].as_ref().unwrap())
                        .collect();
                    op.eval(&ins)
                }
            };
            vals[id] = Some(v);
        }
        g.outputs
            .iter()
            .map(|&o| vals[o].clone().unwrap())
            .collect()
    }
}
