//! The tensor DAG: nodes, builder API, and static dtype inference.

use hb_tensor::{DType, DynTensor};

use crate::op::Op;

/// Identifier of a node within a [`Graph`] (its position in `nodes`).
pub type NodeId = usize;

/// One operator application in the DAG.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Node {
    /// The operator.
    pub op: Op,
    /// Producing nodes of each operand, in operator order.
    pub inputs: Vec<NodeId>,
}

/// A tensor computation DAG in topological order (every node's inputs
/// precede it).
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct Graph {
    /// Nodes in topological order.
    pub nodes: Vec<Node>,
    /// Nodes whose values the graph returns, in output order.
    pub outputs: Vec<NodeId>,
    /// Dtype of each graph input slot.
    pub input_dtypes: Vec<DType>,
}

impl Graph {
    /// Number of operator nodes (excluding nothing; inputs and constants
    /// count as nodes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of kernel launches a naive per-node execution performs
    /// (metadata-only ops excluded). Used by conversion-time accounting
    /// and the simulated-device launch overhead model.
    pub fn kernel_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| {
                !matches!(
                    n.op,
                    Op::Input(_)
                        | Op::Const(_)
                        | Op::Reshape { .. }
                        | Op::Unsqueeze(_)
                        | Op::Squeeze(_)
                        | Op::Transpose(..)
                        | Op::Slice { .. }
                )
            })
            .count()
    }

    /// Checks structural invariants: topological input order, arity, and
    /// output validity.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violation found.
    pub fn validate(&self) {
        for (id, node) in self.nodes.iter().enumerate() {
            for &inp in &node.inputs {
                assert!(inp < id, "node {id} reads from later node {inp}");
            }
            if let Some(arity) = node.op.arity() {
                assert_eq!(
                    node.inputs.len(),
                    arity,
                    "node {id} ({:?}) expects {arity} inputs, has {}",
                    node.op,
                    node.inputs.len()
                );
            }
            if let Op::Input(slot) = node.op {
                assert!(slot < self.input_dtypes.len(), "input slot {slot} unregistered");
            }
        }
        for &o in &self.outputs {
            assert!(o < self.nodes.len(), "output {o} out of range");
        }
    }

    /// Infers the static output dtype of every node.
    pub fn infer_dtypes(&self) -> Vec<DType> {
        let mut out: Vec<DType> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let dt = match &node.op {
                Op::Input(slot) => self.input_dtypes[*slot],
                Op::Const(v) => v.dtype(),
                Op::MatMul
                | Op::Mean { .. }
                | Op::LogSumExp { .. }
                | Op::Softmax { .. }
                | Op::Relu
                | Op::Sigmoid
                | Op::Tanh
                | Op::Exp
                | Op::Ln
                | Op::Sqrt
                | Op::Abs
                | Op::Neg
                | Op::Clamp { .. }
                | Op::PowScalar(_)
                | Op::Sqdist => DType::F32,
                Op::Lt
                | Op::Le
                | Op::Gt
                | Op::Ge
                | Op::EqOp
                | Op::NeOp
                | Op::And
                | Op::Or
                | Op::Xor
                | Op::Not
                | Op::IsNan => DType::Bool,
                Op::ArgMax { .. } => DType::I64,
                Op::Cast(dt) => *dt,
                Op::Where => out[node.inputs[1]],
                Op::Fused(k) => k.out_dtype,
                // Remaining ops preserve their first input's dtype.
                _ => out[node.inputs[0]],
            };
            out.push(dt);
        }
        out
    }

    /// Serializes the graph to a self-contained JSON artifact — the
    /// reproduction's analog of Hummingbird exporting compiled models in
    /// portable formats (TorchScript/ONNX/TVM in the paper §3.2).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("graphs are always serializable")
    }

    /// Parses a graph exported by [`Graph::to_json`], validating it.
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error for malformed artifacts.
    pub fn from_json(json: &str) -> Result<Graph, serde_json::Error> {
        let g: Graph = serde_json::from_str(json)?;
        g.validate();
        Ok(g)
    }

    /// Total bytes of constant (model-parameter) tensors embedded in the
    /// graph — the compiled model's parameter footprint.
    pub fn const_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match &n.op {
                Op::Const(v) => v.nbytes(),
                _ => 0,
            })
            .sum()
    }
}

/// Incremental [`Graph`] constructor used by the operator converters.
///
/// Every method appends one node and returns its id, so the resulting node
/// list is topologically ordered by construction.
#[derive(Default)]
pub struct GraphBuilder {
    graph: Graph,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a graph input of the given dtype and returns its node.
    pub fn input(&mut self, dtype: DType) -> NodeId {
        let slot = self.graph.input_dtypes.len();
        self.graph.input_dtypes.push(dtype);
        self.push(Op::Input(slot), vec![])
    }

    /// Embeds a constant tensor.
    pub fn constant(&mut self, v: impl Into<DynTensor>) -> NodeId {
        self.push(Op::Const(v.into()), vec![])
    }

    /// Appends an arbitrary node.
    pub fn push(&mut self, op: Op, inputs: Vec<NodeId>) -> NodeId {
        for &i in &inputs {
            assert!(i < self.graph.nodes.len(), "input {i} does not exist yet");
        }
        self.graph.nodes.push(Node { op, inputs });
        self.graph.nodes.len() - 1
    }

    /// Marks `id` as a graph output.
    pub fn output(&mut self, id: NodeId) {
        self.graph.outputs.push(id);
    }

    /// Finishes construction, validating the graph.
    pub fn build(self) -> Graph {
        self.graph.validate();
        self.graph
    }

    /// Batched matrix multiplication.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::MatMul, vec![a, b])
    }

    /// Element-wise sum.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Add, vec![a, b])
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Sub, vec![a, b])
    }

    /// Element-wise product.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Mul, vec![a, b])
    }

    /// Element-wise quotient.
    pub fn div(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Div, vec![a, b])
    }

    /// Scalar addition.
    pub fn add_scalar(&mut self, a: NodeId, s: f64) -> NodeId {
        self.push(Op::AddScalar(s), vec![a])
    }

    /// Scalar multiplication.
    pub fn mul_scalar(&mut self, a: NodeId, s: f64) -> NodeId {
        self.push(Op::MulScalar(s), vec![a])
    }

    /// `a < b` mask.
    pub fn lt(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Lt, vec![a, b])
    }

    /// `a <= b` mask.
    pub fn le(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Le, vec![a, b])
    }

    /// `a >= b` mask.
    pub fn ge(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Ge, vec![a, b])
    }

    /// `a == b` mask.
    pub fn eq(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::EqOp, vec![a, b])
    }

    /// `where(cond, a, b)`.
    pub fn where_(&mut self, cond: NodeId, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Where, vec![cond, a, b])
    }

    /// `torch.gather` along `axis`.
    pub fn gather(&mut self, axis: usize, data: NodeId, index: NodeId) -> NodeId {
        self.push(Op::Gather { axis }, vec![data, index])
    }

    /// Compile-time column/row selection.
    pub fn index_select(&mut self, axis: usize, data: NodeId, indices: Vec<usize>) -> NodeId {
        self.push(Op::IndexSelect { axis, indices: indices.into() }, vec![data])
    }

    /// Concatenation along `axis`.
    pub fn concat(&mut self, axis: usize, inputs: Vec<NodeId>) -> NodeId {
        self.push(Op::Concat { axis }, inputs)
    }

    /// Reshape with `0`/`-1` placeholders.
    pub fn reshape(&mut self, a: NodeId, dims: Vec<i64>) -> NodeId {
        self.push(Op::Reshape { dims }, vec![a])
    }

    /// Inserts a size-1 axis.
    pub fn unsqueeze(&mut self, a: NodeId, axis: usize) -> NodeId {
        self.push(Op::Unsqueeze(axis), vec![a])
    }

    /// Removes a size-1 axis.
    pub fn squeeze(&mut self, a: NodeId, axis: usize) -> NodeId {
        self.push(Op::Squeeze(axis), vec![a])
    }

    /// Swaps two axes.
    pub fn transpose(&mut self, a: NodeId, d0: usize, d1: usize) -> NodeId {
        self.push(Op::Transpose(d0, d1), vec![a])
    }

    /// Sum along `axis`.
    pub fn sum(&mut self, a: NodeId, axis: usize, keepdim: bool) -> NodeId {
        self.push(Op::Sum { axis, keepdim }, vec![a])
    }

    /// Mean along `axis`.
    pub fn mean(&mut self, a: NodeId, axis: usize, keepdim: bool) -> NodeId {
        self.push(Op::Mean { axis, keepdim }, vec![a])
    }

    /// ArgMax along `axis`.
    pub fn argmax(&mut self, a: NodeId, axis: usize, keepdim: bool) -> NodeId {
        self.push(Op::ArgMax { axis, keepdim }, vec![a])
    }

    /// Softmax along `axis`.
    pub fn softmax(&mut self, a: NodeId, axis: usize) -> NodeId {
        self.push(Op::Softmax { axis }, vec![a])
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        self.push(Op::Sigmoid, vec![a])
    }

    /// Dtype conversion.
    pub fn cast(&mut self, a: NodeId, to: DType) -> NodeId {
        self.push(Op::Cast(to), vec![a])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_tensor::Tensor;

    #[test]
    fn builder_produces_topological_graph() {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let w = b.constant(Tensor::from_vec(vec![1.0f32, 2.0], &[1, 2]));
        let y = b.matmul(x, w);
        b.output(y);
        let g = b.build();
        assert_eq!(g.len(), 3);
        assert_eq!(g.outputs, vec![2]);
        assert_eq!(g.input_dtypes, vec![DType::F32]);
    }

    #[test]
    fn dtype_inference_tracks_masks_and_indices() {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let c = b.constant(Tensor::from_vec(vec![0.5f32], &[1]));
        let m = b.lt(x, c);
        let f = b.cast(m, DType::F32);
        let am = b.argmax(f, 0, false);
        b.output(am);
        let g = b.build();
        let dt = g.infer_dtypes();
        assert_eq!(dt[m], DType::Bool);
        assert_eq!(dt[f], DType::F32);
        assert_eq!(dt[am], DType::I64);
    }

    #[test]
    fn kernel_count_excludes_metadata() {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let r = b.reshape(x, vec![-1, 1]);
        let s = b.add_scalar(r, 1.0);
        b.output(s);
        let g = b.build();
        assert_eq!(g.kernel_count(), 1);
    }

    #[test]
    fn const_bytes_counts_parameters() {
        let mut b = GraphBuilder::new();
        let c = b.constant(Tensor::<f32>::zeros(&[10]));
        b.output(c);
        assert_eq!(b.build().const_bytes(), 40);
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_reference_panics() {
        let mut b = GraphBuilder::new();
        let _ = b.push(Op::Relu, vec![5]);
    }

    #[test]
    fn where_dtype_follows_branches() {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let c = b.constant(Tensor::from_vec(vec![0.0f32], &[1]));
        let m = b.lt(x, c);
        let i1 = b.constant(Tensor::from_vec(vec![1i64], &[1]));
        let i2 = b.constant(Tensor::from_vec(vec![2i64], &[1]));
        let w = b.where_(m, i1, i2);
        b.output(w);
        let g = b.build();
        assert_eq!(g.infer_dtypes()[w], DType::I64);
    }
}
