//! The tensor DAG: nodes, builder API, and static dtype inference.

use hb_tensor::{DType, DynTensor};

use crate::op::Op;
use crate::verify::{ShapeFact, SymDim};

/// Identifier of a node within a [`Graph`] (its position in `nodes`).
pub type NodeId = usize;

/// One operator application in the DAG.
#[derive(Clone, Debug)]
pub struct Node {
    /// The operator.
    pub op: Op,
    /// Producing nodes of each operand, in operator order.
    pub inputs: Vec<NodeId>,
}

hb_json::json_struct!(Node { op, inputs });

/// A tensor computation DAG in topological order (every node's inputs
/// precede it).
#[derive(Clone, Debug, Default)]
pub struct Graph {
    /// Nodes in topological order.
    pub nodes: Vec<Node>,
    /// Nodes whose values the graph returns, in output order.
    pub outputs: Vec<NodeId>,
    /// Dtype of each graph input slot.
    pub input_dtypes: Vec<DType>,
    /// Declared symbolic shape of each graph input slot, parallel to
    /// `input_dtypes`; [`ShapeFact::Any`] for undeclared slots. The
    /// static verifier seeds shape propagation from these.
    pub input_shapes: Vec<ShapeFact>,
}

// Hand-written (rather than `json_struct!`) so `input_shapes` stays
// optional in the artifact: graphs exported before shape declarations
// existed still parse, defaulting every slot to `ShapeFact::Any`.
impl hb_json::ToJson for Graph {
    fn to_json(&self) -> hb_json::Json {
        hb_json::Json::Obj(vec![
            ("nodes".to_string(), self.nodes.to_json()),
            ("outputs".to_string(), self.outputs.to_json()),
            ("input_dtypes".to_string(), self.input_dtypes.to_json()),
            ("input_shapes".to_string(), self.input_shapes.to_json()),
        ])
    }
}

impl hb_json::FromJson for Graph {
    fn from_json(v: &hb_json::Json) -> Result<Self, hb_json::JsonError> {
        let pairs = v.expect_obj("Graph")?;
        let nodes: Vec<Node> = hb_json::field(pairs, "nodes", "Graph")?;
        let outputs: Vec<NodeId> = hb_json::field(pairs, "outputs", "Graph")?;
        let input_dtypes: Vec<DType> = hb_json::field(pairs, "input_dtypes", "Graph")?;
        let input_shapes = match v.get("input_shapes") {
            Some(shapes) => {
                let shapes: Vec<ShapeFact> = hb_json::FromJson::from_json(shapes)
                    .map_err(|e| hb_json::JsonError::Schema(format!("Graph.input_shapes: {e}")))?;
                if shapes.len() != input_dtypes.len() {
                    return Err(hb_json::JsonError::Schema(format!(
                        "Graph.input_shapes has {} entries for {} input slots",
                        shapes.len(),
                        input_dtypes.len()
                    )));
                }
                shapes
            }
            None => vec![ShapeFact::Any; input_dtypes.len()],
        };
        Ok(Graph {
            nodes,
            outputs,
            input_dtypes,
            input_shapes,
        })
    }
}

/// Structural defect found while validating a graph, typically one
/// deserialized from an untrusted artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The artifact was not valid JSON or did not match the schema.
    Artifact(String),
    /// A node reads from a node at an equal or later position — a
    /// forward reference, cycle, or out-of-range id (topological order
    /// excludes all three).
    ForwardReference {
        /// Offending node.
        node: NodeId,
        /// The input id it referenced.
        input: NodeId,
    },
    /// A node has the wrong number of inputs for its operator.
    Arity {
        /// Offending node.
        node: NodeId,
        /// Inputs the operator requires.
        expected: usize,
        /// Inputs the node actually lists.
        got: usize,
    },
    /// An `Input` node references a slot with no registered dtype.
    UnregisteredInput {
        /// Offending node.
        node: NodeId,
        /// The unregistered slot.
        slot: usize,
        /// Number of registered input slots.
        registered: usize,
    },
    /// A graph output references a nonexistent node.
    OutputOutOfRange {
        /// The offending output id.
        output: NodeId,
        /// Number of nodes in the graph.
        len: usize,
    },
    /// Operand dtypes are inconsistent with what the operator executes on.
    DTypeMismatch {
        /// Offending node.
        node: NodeId,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A `Reshape` target is malformed (multiple `-1`s, negative dims,
    /// an element-count product that overflows, or a target that the
    /// verifier proves cannot match the input's element count).
    BadReshape {
        /// Offending node.
        node: NodeId,
        /// Human-readable description of the defect.
        detail: String,
    },
    /// The static verifier proved the node's operand shapes incompatible
    /// with its operator for some batch size (bad broadcast,
    /// non-conformable matmul/gather, illegal axis, …).
    ShapeMismatch {
        /// Offending node.
        node: NodeId,
        /// Operator label (payloads elided).
        op: String,
        /// Inferred operand shapes, in operator order.
        operands: Vec<ShapeFact>,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A compile-time index (a `Const` gather operand or `IndexSelect`
    /// position) falls outside the indexed dimension.
    IndexOutOfRange {
        /// Offending node.
        node: NodeId,
        /// Operator label.
        op: String,
        /// The offending index value.
        index: i64,
        /// The dimension it must stay below.
        bound: SymDim,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::Artifact(e) => write!(f, "malformed graph artifact: {e}"),
            GraphError::ForwardReference { node, input } => {
                write!(f, "node {node} reads from later node {input}")
            }
            GraphError::Arity {
                node,
                expected,
                got,
            } => {
                write!(f, "node {node} expects {expected} inputs, has {got}")
            }
            GraphError::UnregisteredInput {
                node,
                slot,
                registered,
            } => write!(
                f,
                "node {node}: input slot {slot} unregistered ({registered} slots declared)"
            ),
            GraphError::OutputOutOfRange { output, len } => {
                write!(f, "output {output} out of range (graph has {len} nodes)")
            }
            GraphError::DTypeMismatch { node, detail } => {
                write!(f, "node {node}: dtype mismatch: {detail}")
            }
            GraphError::BadReshape { node, detail } => {
                write!(f, "node {node}: bad reshape: {detail}")
            }
            GraphError::ShapeMismatch {
                node,
                op,
                operands,
                detail,
            } => {
                write!(f, "node {node} ({op}): shape mismatch: {detail} (operands:")?;
                for s in operands {
                    write!(f, " {s}")?;
                }
                write!(f, ")")
            }
            GraphError::IndexOutOfRange {
                node,
                op,
                index,
                bound,
            } => {
                write!(
                    f,
                    "node {node} ({op}): constant index {index} out of range for dimension {bound}"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl From<hb_json::JsonError> for GraphError {
    fn from(e: hb_json::JsonError) -> Self {
        GraphError::Artifact(e.to_string())
    }
}

impl Graph {
    /// Number of operator nodes (excluding nothing; inputs and constants
    /// count as nodes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of kernel launches a naive per-node execution performs
    /// (metadata-only ops excluded). Used by conversion-time accounting
    /// and the simulated-device launch overhead model.
    pub fn kernel_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| {
                !matches!(
                    n.op,
                    Op::Input(_)
                        | Op::Const(_)
                        | Op::Reshape { .. }
                        | Op::Unsqueeze(_)
                        | Op::Squeeze(_)
                        | Op::Transpose(..)
                        | Op::Slice { .. }
                )
            })
            .count()
    }

    /// Checks structural invariants: topological input order, arity, and
    /// output validity.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violation found. Compiler
    /// output is validated through this path — a violation is an internal
    /// invariant failure, not an input error. Untrusted artifacts go
    /// through [`Graph::try_validate`] instead.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// Checks structural invariants, returning the first violation as a
    /// typed error instead of panicking. Topological order (`input < id`)
    /// simultaneously excludes forward references, cycles, and
    /// out-of-range node ids.
    pub fn try_validate(&self) -> Result<(), GraphError> {
        for (id, node) in self.nodes.iter().enumerate() {
            for &inp in &node.inputs {
                if inp >= id {
                    return Err(GraphError::ForwardReference {
                        node: id,
                        input: inp,
                    });
                }
            }
            if let Some(arity) = node.op.arity() {
                if node.inputs.len() != arity {
                    return Err(GraphError::Arity {
                        node: id,
                        expected: arity,
                        got: node.inputs.len(),
                    });
                }
            } else if node.inputs.is_empty() {
                // Variadic ops (Concat) still need at least one operand;
                // evaluation reads the first input's dtype.
                return Err(GraphError::Arity {
                    node: id,
                    expected: 1,
                    got: 0,
                });
            }
            if let Op::Input(slot) = node.op {
                if slot >= self.input_dtypes.len() {
                    return Err(GraphError::UnregisteredInput {
                        node: id,
                        slot,
                        registered: self.input_dtypes.len(),
                    });
                }
            }
            if let Op::Reshape { dims } = &node.op {
                check_reshape_dims(id, dims)?;
            }
        }
        for &o in &self.outputs {
            if o >= self.nodes.len() {
                return Err(GraphError::OutputOutOfRange {
                    output: o,
                    len: self.nodes.len(),
                });
            }
        }
        Ok(())
    }

    /// Checks that every node's operand dtypes are ones its operator can
    /// execute on, so a hostile artifact cannot steer evaluation into a
    /// dtype panic. Requires [`Graph::try_validate`] to have passed.
    pub fn check_dtypes(&self) -> Result<Vec<DType>, GraphError> {
        let mismatch = |node: usize, detail: String| GraphError::DTypeMismatch { node, detail };
        let mut out: Vec<DType> = Vec::with_capacity(self.nodes.len());
        for (id, node) in self.nodes.iter().enumerate() {
            let ins: Vec<DType> = node.inputs.iter().map(|&i| out[i]).collect();
            let numeric = |dt: DType| matches!(dt, DType::F32 | DType::I64);
            let dt = match &node.op {
                Op::Input(slot) => self.input_dtypes[*slot],
                Op::Const(v) => v.dtype(),
                Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Minimum | Op::Maximum => {
                    if ins[0] != ins[1] || !numeric(ins[0]) {
                        return Err(mismatch(
                            id,
                            format!("binary arithmetic on {:?} and {:?}", ins[0], ins[1]),
                        ));
                    }
                    ins[0]
                }
                Op::Lt | Op::Le | Op::Gt | Op::Ge | Op::EqOp | Op::NeOp => {
                    if ins[0] != ins[1] || !numeric(ins[0]) {
                        return Err(mismatch(
                            id,
                            format!("comparison on {:?} and {:?}", ins[0], ins[1]),
                        ));
                    }
                    DType::Bool
                }
                Op::And | Op::Or | Op::Xor => {
                    if ins[0] != DType::Bool || ins[1] != DType::Bool {
                        return Err(mismatch(
                            id,
                            format!("logical op on {:?} and {:?}", ins[0], ins[1]),
                        ));
                    }
                    DType::Bool
                }
                Op::Not => {
                    if ins[0] != DType::Bool {
                        return Err(mismatch(id, format!("not on {:?}", ins[0])));
                    }
                    DType::Bool
                }
                Op::IsNan => {
                    if ins[0] != DType::F32 {
                        return Err(mismatch(id, format!("isnan on {:?}", ins[0])));
                    }
                    DType::Bool
                }
                Op::Where => {
                    if ins[0] != DType::Bool {
                        return Err(mismatch(id, format!("where condition is {:?}", ins[0])));
                    }
                    if ins[1] != ins[2] || !numeric(ins[1]) {
                        return Err(mismatch(
                            id,
                            format!("where branches are {:?} and {:?}", ins[1], ins[2]),
                        ));
                    }
                    ins[1]
                }
                Op::MatMul | Op::Sqdist => {
                    if ins[0] != DType::F32 || ins[1] != DType::F32 {
                        return Err(mismatch(
                            id,
                            format!("f32 binary op on {:?} and {:?}", ins[0], ins[1]),
                        ));
                    }
                    DType::F32
                }
                Op::PowScalar(_)
                | Op::Mean { .. }
                | Op::LogSumExp { .. }
                | Op::Softmax { .. }
                | Op::Relu
                | Op::Sigmoid
                | Op::Tanh
                | Op::Exp
                | Op::Ln
                | Op::Sqrt
                | Op::Abs
                | Op::Neg
                | Op::Clamp { .. } => {
                    if ins[0] != DType::F32 {
                        return Err(mismatch(id, format!("f32 unary op on {:?}", ins[0])));
                    }
                    DType::F32
                }
                Op::AddScalar(_) | Op::MulScalar(_) => {
                    if !numeric(ins[0]) {
                        return Err(mismatch(id, format!("scalar op on {:?}", ins[0])));
                    }
                    ins[0]
                }
                Op::Sum { .. } | Op::ReduceMax { .. } => {
                    if !numeric(ins[0]) {
                        return Err(mismatch(id, format!("reduction on {:?}", ins[0])));
                    }
                    ins[0]
                }
                Op::ArgMax { .. } => {
                    if !numeric(ins[0]) {
                        return Err(mismatch(id, format!("argmax on {:?}", ins[0])));
                    }
                    DType::I64
                }
                Op::Gather { .. } | Op::GatherRows => {
                    if !numeric(ins[0]) || ins[1] != DType::I64 {
                        return Err(mismatch(
                            id,
                            format!("gather of {:?} with {:?} indices", ins[0], ins[1]),
                        ));
                    }
                    ins[0]
                }
                Op::IndexSelect { .. } => {
                    if !numeric(ins[0]) {
                        return Err(mismatch(id, format!("index_select on {:?}", ins[0])));
                    }
                    ins[0]
                }
                Op::Concat { .. } => {
                    if !numeric(ins[0]) || ins.iter().any(|&d| d != ins[0]) {
                        return Err(mismatch(id, format!("concat over {ins:?}")));
                    }
                    ins[0]
                }
                Op::Fused(k) => {
                    if ins.iter().any(|&d| d != DType::F32) {
                        return Err(mismatch(id, format!("fused kernel over {ins:?}")));
                    }
                    k.out_dtype
                }
                Op::Cast(dt) => *dt,
                Op::Reshape { .. }
                | Op::Unsqueeze(_)
                | Op::Squeeze(_)
                | Op::Transpose(..)
                | Op::Slice { .. } => ins[0],
            };
            out.push(dt);
        }
        Ok(out)
    }

    /// Infers the static output dtype of every node.
    pub fn infer_dtypes(&self) -> Vec<DType> {
        let mut out: Vec<DType> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let dt = match &node.op {
                Op::Input(slot) => self.input_dtypes[*slot],
                Op::Const(v) => v.dtype(),
                Op::MatMul
                | Op::Mean { .. }
                | Op::LogSumExp { .. }
                | Op::Softmax { .. }
                | Op::Relu
                | Op::Sigmoid
                | Op::Tanh
                | Op::Exp
                | Op::Ln
                | Op::Sqrt
                | Op::Abs
                | Op::Neg
                | Op::Clamp { .. }
                | Op::PowScalar(_)
                | Op::Sqdist => DType::F32,
                Op::Lt
                | Op::Le
                | Op::Gt
                | Op::Ge
                | Op::EqOp
                | Op::NeOp
                | Op::And
                | Op::Or
                | Op::Xor
                | Op::Not
                | Op::IsNan => DType::Bool,
                Op::ArgMax { .. } => DType::I64,
                Op::Cast(dt) => *dt,
                Op::Where => out[node.inputs[1]],
                Op::Fused(k) => k.out_dtype,
                // Remaining ops preserve their first input's dtype.
                _ => out[node.inputs[0]],
            };
            out.push(dt);
        }
        out
    }

    /// Serializes the graph to a self-contained JSON artifact — the
    /// reproduction's analog of Hummingbird exporting compiled models in
    /// portable formats (TorchScript/ONNX/TVM in the paper §3.2).
    pub fn to_json(&self) -> String {
        hb_json::to_string(self)
    }

    /// Parses a graph exported by [`Graph::to_json`], treating it as
    /// untrusted: the full static verifier runs — structural invariants
    /// (topological order — which excludes cycles and out-of-range ids —
    /// arity, input slots, output range, reshape sanity), static dtype
    /// consistency, and symbolic shape propagation ([`Graph::verify`]) —
    /// so a malformed or hostile artifact yields a typed [`GraphError`]
    /// and can never panic downstream evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] describing the first defect found.
    pub fn from_json(json: &str) -> Result<Graph, GraphError> {
        let g: Graph = hb_json::from_str(json)?;
        g.verify()?;
        Ok(g)
    }

    /// Parses a graph artifact *without* verifying it — for audit tools
    /// (`hb-lint`) that want to load a defective graph and report its
    /// defects themselves. Never hand the result to an executor.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Artifact`] when the JSON does not parse or
    /// does not match the schema.
    pub fn from_json_unchecked(json: &str) -> Result<Graph, GraphError> {
        Ok(hb_json::from_str::<Graph>(json)?)
    }

    /// The declared shape of input slot `slot` ([`ShapeFact::Any`] when
    /// undeclared).
    pub fn input_shape(&self, slot: usize) -> ShapeFact {
        self.input_shapes
            .get(slot)
            .cloned()
            .unwrap_or(ShapeFact::Any)
    }

    /// Total bytes of constant (model-parameter) tensors embedded in the
    /// graph — the compiled model's parameter footprint.
    pub fn const_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match &n.op {
                Op::Const(v) => v.nbytes(),
                _ => 0,
            })
            .sum()
    }
}

/// Rejects malformed reshape targets before they can reach the
/// evaluator's shape resolution: more than one `-1`, dims below `-1`, or
/// an explicit-dim product that overflows (an "absurd shape product" in a
/// hostile artifact).
fn check_reshape_dims(node: NodeId, dims: &[i64]) -> Result<(), GraphError> {
    let bad = |detail: String| GraphError::BadReshape { node, detail };
    let mut wildcards = 0usize;
    let mut product: usize = 1;
    for &d in dims {
        match d {
            -1 => wildcards += 1,
            d if d < -1 => return Err(bad(format!("negative dimension {d}"))),
            d => {
                product = product
                    .checked_mul(d as usize)
                    .ok_or_else(|| bad("shape product overflows".to_string()))?;
            }
        }
    }
    if wildcards > 1 {
        return Err(bad(format!("{wildcards} wildcard (-1) dimensions")));
    }
    Ok(())
}

/// Incremental [`Graph`] constructor used by the operator converters.
///
/// Every method appends one node and returns its id, so the resulting node
/// list is topologically ordered by construction.
#[derive(Default)]
pub struct GraphBuilder {
    graph: Graph,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a graph input of the given dtype (and unknown shape)
    /// and returns its node.
    pub fn input(&mut self, dtype: DType) -> NodeId {
        self.input_with_shape(dtype, ShapeFact::Any)
    }

    /// Registers a graph input with a declared symbolic shape; the
    /// static verifier propagates it through the graph.
    pub fn input_with_shape(&mut self, dtype: DType, shape: ShapeFact) -> NodeId {
        let slot = self.graph.input_dtypes.len();
        self.graph.input_dtypes.push(dtype);
        self.graph.input_shapes.push(shape);
        self.push(Op::Input(slot), vec![])
    }

    /// Declares (or replaces) the symbolic shape of an already-registered
    /// input node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an `Input` node of this builder.
    pub fn set_input_shape(&mut self, id: NodeId, shape: ShapeFact) {
        let Some(Op::Input(slot)) = self.graph.nodes.get(id).map(|n| &n.op) else {
            panic!("node {id} is not a graph input");
        };
        self.graph.input_shapes[*slot] = shape;
    }

    /// Embeds a constant tensor.
    pub fn constant(&mut self, v: impl Into<DynTensor>) -> NodeId {
        self.push(Op::Const(v.into()), vec![])
    }

    /// Appends an arbitrary node.
    pub fn push(&mut self, op: Op, inputs: Vec<NodeId>) -> NodeId {
        for &i in &inputs {
            assert!(i < self.graph.nodes.len(), "input {i} does not exist yet");
        }
        self.graph.nodes.push(Node { op, inputs });
        self.graph.nodes.len() - 1
    }

    /// Marks `id` as a graph output.
    pub fn output(&mut self, id: NodeId) {
        self.graph.outputs.push(id);
    }

    /// Finishes construction, validating the graph.
    pub fn build(self) -> Graph {
        self.graph.validate();
        self.graph
    }

    /// Batched matrix multiplication.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::MatMul, vec![a, b])
    }

    /// Element-wise sum.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Add, vec![a, b])
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Sub, vec![a, b])
    }

    /// Element-wise product.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Mul, vec![a, b])
    }

    /// Element-wise quotient.
    pub fn div(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Div, vec![a, b])
    }

    /// Scalar addition.
    pub fn add_scalar(&mut self, a: NodeId, s: f64) -> NodeId {
        self.push(Op::AddScalar(s), vec![a])
    }

    /// Scalar multiplication.
    pub fn mul_scalar(&mut self, a: NodeId, s: f64) -> NodeId {
        self.push(Op::MulScalar(s), vec![a])
    }

    /// `a < b` mask.
    pub fn lt(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Lt, vec![a, b])
    }

    /// `a <= b` mask.
    pub fn le(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Le, vec![a, b])
    }

    /// `a >= b` mask.
    pub fn ge(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Ge, vec![a, b])
    }

    /// `a == b` mask.
    pub fn eq(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::EqOp, vec![a, b])
    }

    /// `where(cond, a, b)`.
    pub fn where_(&mut self, cond: NodeId, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Where, vec![cond, a, b])
    }

    /// `torch.gather` along `axis`.
    pub fn gather(&mut self, axis: usize, data: NodeId, index: NodeId) -> NodeId {
        self.push(Op::Gather { axis }, vec![data, index])
    }

    /// Compile-time column/row selection.
    pub fn index_select(&mut self, axis: usize, data: NodeId, indices: Vec<usize>) -> NodeId {
        self.push(
            Op::IndexSelect {
                axis,
                indices: indices.into(),
            },
            vec![data],
        )
    }

    /// Concatenation along `axis`.
    pub fn concat(&mut self, axis: usize, inputs: Vec<NodeId>) -> NodeId {
        self.push(Op::Concat { axis }, inputs)
    }

    /// Reshape with `0`/`-1` placeholders.
    pub fn reshape(&mut self, a: NodeId, dims: Vec<i64>) -> NodeId {
        self.push(Op::Reshape { dims }, vec![a])
    }

    /// Inserts a size-1 axis.
    pub fn unsqueeze(&mut self, a: NodeId, axis: usize) -> NodeId {
        self.push(Op::Unsqueeze(axis), vec![a])
    }

    /// Removes a size-1 axis.
    pub fn squeeze(&mut self, a: NodeId, axis: usize) -> NodeId {
        self.push(Op::Squeeze(axis), vec![a])
    }

    /// Swaps two axes.
    pub fn transpose(&mut self, a: NodeId, d0: usize, d1: usize) -> NodeId {
        self.push(Op::Transpose(d0, d1), vec![a])
    }

    /// Sum along `axis`.
    pub fn sum(&mut self, a: NodeId, axis: usize, keepdim: bool) -> NodeId {
        self.push(Op::Sum { axis, keepdim }, vec![a])
    }

    /// Mean along `axis`.
    pub fn mean(&mut self, a: NodeId, axis: usize, keepdim: bool) -> NodeId {
        self.push(Op::Mean { axis, keepdim }, vec![a])
    }

    /// ArgMax along `axis`.
    pub fn argmax(&mut self, a: NodeId, axis: usize, keepdim: bool) -> NodeId {
        self.push(Op::ArgMax { axis, keepdim }, vec![a])
    }

    /// Softmax along `axis`.
    pub fn softmax(&mut self, a: NodeId, axis: usize) -> NodeId {
        self.push(Op::Softmax { axis }, vec![a])
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        self.push(Op::Sigmoid, vec![a])
    }

    /// Dtype conversion.
    pub fn cast(&mut self, a: NodeId, to: DType) -> NodeId {
        self.push(Op::Cast(to), vec![a])
    }

    /// Clamp into `[lo, hi]`.
    pub fn clamp(&mut self, a: NodeId, lo: f32, hi: f32) -> NodeId {
        self.push(Op::Clamp { lo, hi }, vec![a])
    }

    /// NaN test → bool mask.
    pub fn is_nan(&mut self, a: NodeId) -> NodeId {
        self.push(Op::IsNan, vec![a])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_tensor::Tensor;

    #[test]
    fn builder_produces_topological_graph() {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let w = b.constant(Tensor::from_vec(vec![1.0f32, 2.0], &[1, 2]));
        let y = b.matmul(x, w);
        b.output(y);
        let g = b.build();
        assert_eq!(g.len(), 3);
        assert_eq!(g.outputs, vec![2]);
        assert_eq!(g.input_dtypes, vec![DType::F32]);
    }

    #[test]
    fn dtype_inference_tracks_masks_and_indices() {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let c = b.constant(Tensor::from_vec(vec![0.5f32], &[1]));
        let m = b.lt(x, c);
        let f = b.cast(m, DType::F32);
        let am = b.argmax(f, 0, false);
        b.output(am);
        let g = b.build();
        let dt = g.infer_dtypes();
        assert_eq!(dt[m], DType::Bool);
        assert_eq!(dt[f], DType::F32);
        assert_eq!(dt[am], DType::I64);
    }

    #[test]
    fn kernel_count_excludes_metadata() {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let r = b.reshape(x, vec![-1, 1]);
        let s = b.add_scalar(r, 1.0);
        b.output(s);
        let g = b.build();
        assert_eq!(g.kernel_count(), 1);
    }

    #[test]
    fn const_bytes_counts_parameters() {
        let mut b = GraphBuilder::new();
        let c = b.constant(Tensor::<f32>::zeros(&[10]));
        b.output(c);
        assert_eq!(b.build().const_bytes(), 40);
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_reference_panics() {
        let mut b = GraphBuilder::new();
        let _ = b.push(Op::Relu, vec![5]);
    }

    #[test]
    fn json_roundtrip_preserves_graph() {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let w = b.constant(Tensor::from_vec(vec![1.0f32, 2.0], &[2, 1]));
        let y = b.matmul(x, w);
        let s = b.sigmoid(y);
        b.output(s);
        let g = b.build();
        let back = Graph::from_json(&g.to_json()).unwrap();
        assert_eq!(back.len(), g.len());
        assert_eq!(back.outputs, g.outputs);
        assert_eq!(back.infer_dtypes(), g.infer_dtypes());
    }

    #[test]
    fn from_json_rejects_forward_reference() {
        // Node 0 reads node 1: a cycle/forward reference in artifact form.
        let json = r#"{"nodes":[{"op":"Relu","inputs":[1]},{"op":"Relu","inputs":[0]}],"outputs":[0],"input_dtypes":["F32"]}"#;
        let err = Graph::from_json(json).unwrap_err();
        assert!(
            matches!(err, GraphError::ForwardReference { node: 0, input: 1 }),
            "{err}"
        );
    }

    #[test]
    fn from_json_rejects_out_of_range_output() {
        let json =
            r#"{"nodes":[{"op":{"Input":0},"inputs":[]}],"outputs":[7],"input_dtypes":["F32"]}"#;
        let err = Graph::from_json(json).unwrap_err();
        assert!(
            matches!(err, GraphError::OutputOutOfRange { output: 7, len: 1 }),
            "{err}"
        );
    }

    #[test]
    fn from_json_rejects_dtype_mismatch() {
        // Sigmoid over a Bool mask — eval would panic; validation refuses.
        let json = r#"{"nodes":[{"op":{"Input":0},"inputs":[]},{"op":"Sigmoid","inputs":[0]}],"outputs":[1],"input_dtypes":["Bool"]}"#;
        let err = Graph::from_json(json).unwrap_err();
        assert!(
            matches!(err, GraphError::DTypeMismatch { node: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn from_json_rejects_absurd_reshape() {
        let json = format!(
            r#"{{"nodes":[{{"op":{{"Input":0}},"inputs":[]}},{{"op":{{"Reshape":{{"dims":[{big},{big}]}}}},"inputs":[0]}}],"outputs":[1],"input_dtypes":["F32"]}}"#,
            big = i64::MAX
        );
        let err = Graph::from_json(&json).unwrap_err();
        assert!(
            matches!(err, GraphError::BadReshape { node: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn from_json_rejects_unknown_op_and_syntax_errors() {
        for bad in [
            "{",
            r#"{"nodes":[{"op":"Teleport","inputs":[]}],"outputs":[0],"input_dtypes":[]}"#,
            r#"{"nodes":7,"outputs":[],"input_dtypes":[]}"#,
        ] {
            let err = Graph::from_json(bad).unwrap_err();
            assert!(matches!(err, GraphError::Artifact(_)), "{bad}: {err}");
        }
    }

    #[test]
    fn from_json_rejects_empty_concat() {
        let json = r#"{"nodes":[{"op":{"Concat":{"axis":0}},"inputs":[]}],"outputs":[0],"input_dtypes":[]}"#;
        let err = Graph::from_json(json).unwrap_err();
        assert!(matches!(err, GraphError::Arity { node: 0, .. }), "{err}");
    }

    #[test]
    fn where_dtype_follows_branches() {
        let mut b = GraphBuilder::new();
        let x = b.input(DType::F32);
        let c = b.constant(Tensor::from_vec(vec![0.0f32], &[1]));
        let m = b.lt(x, c);
        let i1 = b.constant(Tensor::from_vec(vec![1i64], &[1]));
        let i2 = b.constant(Tensor::from_vec(vec![2i64], &[1]));
        let w = b.where_(m, i1, i2);
        b.output(w);
        let g = b.build();
        assert_eq!(g.infer_dtypes()[w], DType::I64);
    }
}
