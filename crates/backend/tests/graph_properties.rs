//! Property-based tests of the graph runtime: random element-wise graphs
//! must produce identical outputs across the Eager, Script, and Compiled
//! backends (the optimization pipeline may rewrite structure, never
//! semantics), and the simulated-device model must behave monotonically.

use proptest::prelude::*;

use hb_backend::device::{K80, P100, V100};
use hb_backend::{Backend, Device, Executable, GraphBuilder, Op};
use hb_tensor::{DType, DynTensor, Tensor};

/// One random element-wise op layered onto the graph.
#[derive(Debug, Clone)]
enum Step {
    AddConst(f32),
    MulConst(f32),
    Relu,
    Sigmoid,
    Abs,
    AddPrev,
    LtThenSelect(f32),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (-2.0f32..2.0).prop_map(Step::AddConst),
        (-2.0f32..2.0).prop_map(Step::MulConst),
        Just(Step::Relu),
        Just(Step::Sigmoid),
        Just(Step::Abs),
        Just(Step::AddPrev),
        (-1.0f32..1.0).prop_map(Step::LtThenSelect),
    ]
}

/// Builds a random chain graph; `AddPrev` creates fan-out (multi-consumer
/// nodes) and `LtThenSelect` creates bool dataflow + `where`.
fn build(steps: &[Step]) -> hb_backend::Graph {
    let mut b = GraphBuilder::new();
    let x = b.input(DType::F32);
    let mut prev = x;
    let mut cur = x;
    for s in steps {
        let next = match s {
            Step::AddConst(c) => b.add_scalar(cur, *c as f64),
            Step::MulConst(c) => b.mul_scalar(cur, *c as f64),
            Step::Relu => b.push(Op::Relu, vec![cur]),
            Step::Sigmoid => b.push(Op::Sigmoid, vec![cur]),
            Step::Abs => b.push(Op::Abs, vec![cur]),
            Step::AddPrev => b.add(cur, prev),
            Step::LtThenSelect(t) => {
                let thr = b.constant(Tensor::scalar(*t));
                let m = b.lt(cur, thr);
                b.where_(m, prev, cur)
            }
        };
        prev = cur;
        cur = next;
    }
    b.output(cur);
    b.build()
}

fn input_of(n: usize, seed: u64) -> DynTensor {
    let mut state = seed | 1;
    DynTensor::F32(Tensor::from_fn(&[n, 3], |_| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn backends_agree_on_random_graphs(
        steps in prop::collection::vec(step_strategy(), 1..12),
        n in 1usize..40,
        seed in any::<u64>(),
    ) {
        let x = input_of(n, seed);
        let mut outputs = Vec::new();
        for backend in Backend::ALL {
            let exe = Executable::new(build(&steps), backend, Device::cpu());
            let out = exe.run(std::slice::from_ref(&x)).unwrap();
            outputs.push(out[0].as_f32().to_vec());
        }
        for w in outputs.windows(2) {
            for (a, b) in w[0].iter().zip(w[1].iter()) {
                prop_assert!(
                    (a - b).abs() <= 1e-5 * (1.0 + a.abs()),
                    "backend outputs diverge: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn optimization_never_increases_kernels(
        steps in prop::collection::vec(step_strategy(), 1..12),
    ) {
        let g = build(&steps);
        let eager = Executable::new(g.clone(), Backend::Eager, Device::cpu());
        let compiled = Executable::new(g, Backend::Compiled, Device::cpu());
        prop_assert!(compiled.graph().kernel_count() <= eager.graph().kernel_count());
    }

    #[test]
    fn simulated_devices_order_by_generation(
        steps in prop::collection::vec(step_strategy(), 1..8),
        seed in any::<u64>(),
    ) {
        let x = input_of(4096, seed);
        let mut times = Vec::new();
        for dev in [K80, P100, V100] {
            let exe = Executable::new(build(&steps), Backend::Script, Device::Sim(dev));
            let (_, stats) = exe.run_with_stats(std::slice::from_ref(&x)).unwrap();
            times.push(stats.simulated.unwrap());
        }
        prop_assert!(times[0] >= times[1], "K80 faster than P100");
        prop_assert!(times[1] >= times[2], "P100 faster than V100");
    }

    #[test]
    fn simulated_latency_monotone_in_batch(
        steps in prop::collection::vec(step_strategy(), 1..8),
        seed in any::<u64>(),
    ) {
        let small = input_of(64, seed);
        let big = input_of(64 * 64, seed);
        let exe = Executable::new(build(&steps), Backend::Compiled, Device::Sim(P100));
        let (_, s1) = exe.run_with_stats(std::slice::from_ref(&small)).unwrap();
        let (_, s2) = exe.run_with_stats(std::slice::from_ref(&big)).unwrap();
        prop_assert!(s2.simulated.unwrap() >= s1.simulated.unwrap());
    }

    #[test]
    fn device_results_identical_to_cpu(
        steps in prop::collection::vec(step_strategy(), 1..10),
        seed in any::<u64>(),
    ) {
        let x = input_of(32, seed);
        let cpu = Executable::new(build(&steps), Backend::Compiled, Device::cpu());
        let gpu = Executable::new(build(&steps), Backend::Compiled, Device::Sim(V100));
        let a = cpu.run(std::slice::from_ref(&x)).unwrap();
        let b = gpu.run(std::slice::from_ref(&x)).unwrap();
        prop_assert_eq!(a[0].as_f32().to_vec(), b[0].as_f32().to_vec());
    }
}
