//! Property tests for the content-hashed constant pool that backs the
//! multi-model store's parameter dedup.
//!
//! Two invariants under random schedules: sequential interleavings of
//! intern/release must keep the pool's refcounts exactly in line with a
//! reference model (no leak, no premature eviction, bit-exact shared
//! copies), and concurrent register/unregister of *identical* models —
//! the replica-fleet case — must neither tear a refcount nor leak an
//! entry once every holder has released.

use proptest::prelude::*;

use hb_backend::dedup::{ConstPool, MIN_INTERN_BYTES};
use hb_tensor::{DynTensor, Tensor};

/// A constant tensor big enough to clear the interning floor, with
/// contents keyed off `tag` so distinct tags are distinct tensors.
fn constant(tag: u64, extra: f32) -> DynTensor {
    let n = (MIN_INTERN_BYTES / 4).max(16) + (tag as usize % 3);
    DynTensor::F32(Tensor::from_fn(&[n], |i| {
        (i[0] as f32) * 0.5 + (tag as f32) * 101.25 + extra
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Sequential schedules: the pool must agree with a bookkeeping
    // reference model at every step. `ops` drives a random interleaving
    // of intern (by tag) and release (of a random previously-taken
    // reference).
    #[test]
    fn refcounts_track_a_reference_model(
        ops in proptest::collection::vec((0u64..6, any::<bool>()), 1..120),
    ) {
        let pool = ConstPool::new();
        // (hash, tag) references we currently hold, plus per-tag live
        // reference counts for the model.
        let mut held: Vec<(u64, u64)> = Vec::new();
        let mut live: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();

        for (tag, release) in ops {
            if release && !held.is_empty() {
                let (hash, t) = held.swap_remove(tag as usize % held.len());
                pool.release(&[hash]);
                let n = live.get_mut(&t).expect("released a tag never interned");
                *n -= 1;
                if *n == 0 {
                    live.remove(&t);
                }
            } else {
                let c = constant(tag, 0.0);
                let (hash, shared, was_hit) =
                    pool.intern(&c).expect("no FNV collision among 6 tensors");
                // Bit-exact confirm path: the pool-shared copy must be
                // indistinguishable from the private one.
                prop_assert_eq!(&shared, &c);
                prop_assert_eq!(was_hit, live.contains_key(&tag));
                held.push((hash, tag));
                *live.entry(tag).or_insert(0) += 1;
            }
            prop_assert_eq!(pool.len(), live.len());
        }

        // Returning every outstanding reference must drain the pool.
        let hashes: Vec<u64> = held.iter().map(|(h, _)| *h).collect();
        pool.release(&hashes);
        prop_assert!(pool.is_empty());
        prop_assert_eq!(pool.resident_bytes(), 0);
    }

    // Concurrent replica churn: several threads register and unregister
    // the *same* model's constants in a loop. Shared copies must stay
    // bit-exact under contention, the pool never holds more than the
    // distinct-constant count, and once a still-registered anchor
    // releases last, nothing leaks.
    #[test]
    fn concurrent_identical_models_never_leak_or_tear(
        threads in 2usize..5,
        iters in 1usize..12,
        n_consts in 1usize..5,
        salt in -1.0f32..1.0,
    ) {
        let pool = ConstPool::new();
        let consts: Vec<DynTensor> =
            (0..n_consts as u64).map(|t| constant(t, salt)).collect();

        // An anchor registration outlives the churn, so concurrent
        // releases below exercise the refs > 0 path, not entry removal
        // racing re-insertion only.
        let anchor: Vec<u64> = consts
            .iter()
            .map(|c| pool.intern(c).expect("anchor interns").0)
            .collect();

        std::thread::scope(|scope| {
            for worker in 0..threads {
                let pool = &pool;
                let consts = &consts;
                scope.spawn(move || {
                    for i in 0..iters {
                        let mut hashes = Vec::with_capacity(consts.len());
                        // Vary the intern order per worker/iteration so
                        // schedules actually interleave differently.
                        for k in 0..consts.len() {
                            let c = &consts[(k + worker + i) % consts.len()];
                            let (h, shared, was_hit) =
                                pool.intern(c).expect("identical replicas never collide");
                            assert_eq!(&shared, c, "shared copy tore under contention");
                            assert!(was_hit, "anchor holds every constant already");
                            hashes.push(h);
                        }
                        assert!(pool.len() <= consts.len(), "pool grew past distinct count");
                        pool.release(&hashes);
                    }
                });
            }
        });

        // Churn done: exactly the anchor's references remain.
        prop_assert_eq!(pool.len(), consts.len());
        let again = pool.intern(&consts[0]).expect("anchor entry still resident");
        prop_assert!(again.2, "constant evicted while the anchor still held it");
        pool.release(&[again.0]);

        pool.release(&anchor);
        prop_assert!(pool.is_empty());
        prop_assert_eq!(pool.resident_bytes(), 0);
    }
}
