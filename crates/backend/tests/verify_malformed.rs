//! Seeded malformed-graph corpus for the static verifier.
//!
//! Every graph here is *structurally* valid — it passes the topological
//! and arity checks in `Graph::try_validate` — but carries a shape or
//! index defect that would only surface at run time (often only for
//! certain batch sizes). The verifier must reject each one statically,
//! naming the offending node.

use std::sync::Arc;

use hb_backend::fuse::{FusedKernel, Instr};
use hb_backend::{Graph, GraphBuilder, GraphError, Op, ShapeFact, SymDim};
use hb_tensor::{DType, Tensor};

/// Asserts that `graph` fails verification at `node` with a
/// shape-mismatch-class error.
fn assert_shape_error(graph: &Graph, node: usize, what: &str) {
    match graph.verify() {
        Err(GraphError::ShapeMismatch { node: n, .. })
        | Err(GraphError::BadReshape { node: n, .. }) => {
            assert_eq!(n, node, "{what}: error at wrong node");
        }
        Err(e) => panic!("{what}: wrong error class: {e}"),
        Ok(sig) => panic!("{what}: verifier accepted the graph (signature {sig})"),
    }
}

/// Asserts that `graph` fails verification at `node` with an
/// index-out-of-range error.
fn assert_index_error(graph: &Graph, node: usize, what: &str) {
    match graph.verify() {
        Err(GraphError::IndexOutOfRange { node: n, .. }) => {
            assert_eq!(n, node, "{what}: error at wrong node");
        }
        Err(e) => panic!("{what}: wrong error class: {e}"),
        Ok(sig) => panic!("{what}: verifier accepted the graph (signature {sig})"),
    }
}

#[test]
fn rejects_concrete_broadcast_mismatch() {
    let mut b = GraphBuilder::new();
    let x = b.input_with_shape(DType::F32, ShapeFact::fixed(&[2, 3]));
    let y = b.input_with_shape(DType::F32, ShapeFact::fixed(&[2, 4]));
    let s = b.add(x, y);
    b.output(s);
    assert_shape_error(&b.build(), s, "[2,3] + [2,4]");
}

#[test]
fn rejects_symbolic_broadcast_mismatch() {
    let mut b = GraphBuilder::new();
    let x = b.input_with_shape(DType::F32, ShapeFact::batched(&[3]));
    let c = b.constant(Tensor::from_vec(vec![0.0f32; 4], &[4]));
    let s = b.add(x, c);
    b.output(s);
    assert_shape_error(&b.build(), s, "[B,3] + [4]");
}

#[test]
fn rejects_batch_dim_vs_fixed_dim() {
    // [B,3] + [7,3] agrees only at B = 7; the graph must serve every
    // batch size, so this is an error.
    let mut b = GraphBuilder::new();
    let x = b.input_with_shape(DType::F32, ShapeFact::batched(&[3]));
    let c = b.constant(Tensor::from_vec(vec![0.0f32; 21], &[7, 3]));
    let s = b.add(x, c);
    b.output(s);
    assert_shape_error(&b.build(), s, "[B,3] + [7,3]");
}

#[test]
fn rejects_matmul_inner_mismatch() {
    let mut b = GraphBuilder::new();
    let x = b.input_with_shape(DType::F32, ShapeFact::batched(&[4]));
    let w = b.constant(Tensor::from_vec(vec![0.0f32; 15], &[5, 3]));
    let m = b.matmul(x, w);
    b.output(m);
    assert_shape_error(&b.build(), m, "[B,4] x [5,3]");
}

#[test]
fn rejects_matmul_on_vector() {
    let mut b = GraphBuilder::new();
    let x = b.input_with_shape(DType::F32, ShapeFact::Known(vec![SymDim::batch()]));
    let w = b.constant(Tensor::from_vec(vec![0.0f32; 12], &[4, 3]));
    let m = b.matmul(x, w);
    b.output(m);
    assert_shape_error(&b.build(), m, "rank-1 matmul operand");
}

#[test]
fn rejects_gather_const_index_out_of_range() {
    let mut b = GraphBuilder::new();
    let x = b.input_with_shape(DType::F32, ShapeFact::batched(&[4]));
    let idx = b.constant(Tensor::from_vec(vec![5i64], &[1, 1]));
    let g = b.gather(1, x, idx);
    b.output(g);
    assert_index_error(&b.build(), g, "gather index 5 into width 4");
}

#[test]
fn rejects_gather_negative_const_index() {
    let mut b = GraphBuilder::new();
    let x = b.input_with_shape(DType::F32, ShapeFact::batched(&[4]));
    let idx = b.constant(Tensor::from_vec(vec![-1i64], &[1, 1]));
    let g = b.gather(1, x, idx);
    b.output(g);
    assert_index_error(&b.build(), g, "negative gather index");
}

#[test]
fn rejects_index_select_out_of_range() {
    let mut b = GraphBuilder::new();
    let x = b.input_with_shape(DType::F32, ShapeFact::batched(&[4]));
    let s = b.index_select(1, x, vec![0, 9]);
    b.output(s);
    assert_index_error(&b.build(), s, "index_select position 9 of width 4");
}

#[test]
fn rejects_gather_rows_batch_mismatch() {
    // data [B, 5, 3] but index [3, 2]: the batch dims can only agree at
    // B = 3.
    let mut b = GraphBuilder::new();
    let data = b.input_with_shape(DType::F32, ShapeFact::batched(&[5, 3]));
    let idx = b.input_with_shape(DType::I64, ShapeFact::fixed(&[3, 2]));
    let g = b.push(Op::GatherRows, vec![data, idx]);
    b.output(g);
    assert_shape_error(&b.build(), g, "gather_rows batch mismatch");
}

#[test]
fn rejects_reshape_element_count_mismatch() {
    let mut b = GraphBuilder::new();
    let c = b.constant(Tensor::from_vec(vec![0.0f32; 6], &[2, 3]));
    let r = b.reshape(c, vec![7]);
    b.output(r);
    assert_shape_error(&b.build(), r, "6 elements reshaped to [7]");
}

#[test]
fn rejects_symbolic_reshape_non_divisible() {
    // [B, 6] has 6B elements; [4, -1] needs 6B / 4 which is not an
    // integral monomial in B.
    let mut b = GraphBuilder::new();
    let x = b.input_with_shape(DType::F32, ShapeFact::batched(&[6]));
    let r = b.reshape(x, vec![4, -1]);
    b.output(r);
    assert_shape_error(&b.build(), r, "[B,6] reshaped to [4,-1]");
}

#[test]
fn rejects_squeeze_of_non_unit_axis() {
    let mut b = GraphBuilder::new();
    let x = b.input_with_shape(DType::F32, ShapeFact::batched(&[3]));
    let s = b.squeeze(x, 1);
    b.output(s);
    assert_shape_error(&b.build(), s, "squeeze of size-3 axis");
}

#[test]
fn rejects_transpose_axis_out_of_rank() {
    let mut b = GraphBuilder::new();
    let x = b.input_with_shape(DType::F32, ShapeFact::batched(&[3]));
    let t = b.transpose(x, 0, 2);
    b.output(t);
    assert_shape_error(&b.build(), t, "transpose axis 2 of a rank-2 tensor");
}

#[test]
fn rejects_concat_off_axis_mismatch() {
    let mut b = GraphBuilder::new();
    let x = b.input_with_shape(DType::F32, ShapeFact::batched(&[3]));
    let y = b.input_with_shape(DType::F32, ShapeFact::batched(&[4]));
    let c = b.concat(0, vec![x, y]);
    b.output(c);
    assert_shape_error(&b.build(), c, "concat on axis 0 with widths 3 vs 4");
}

#[test]
fn rejects_slice_past_end_of_axis() {
    let mut b = GraphBuilder::new();
    let x = b.input_with_shape(DType::F32, ShapeFact::batched(&[4]));
    let s = b.push(
        Op::Slice {
            axis: 1,
            start: 2,
            end: 9,
        },
        vec![x],
    );
    b.output(s);
    assert_shape_error(&b.build(), s, "slice 2..9 of width 4");
}

#[test]
fn rejects_sqdist_feature_mismatch() {
    let mut b = GraphBuilder::new();
    let x = b.input_with_shape(DType::F32, ShapeFact::batched(&[4]));
    let c = b.constant(Tensor::from_vec(vec![0.0f32; 10], &[2, 5]));
    let d = b.push(Op::Sqdist, vec![x, c]);
    b.output(d);
    assert_shape_error(&b.build(), d, "sqdist features 4 vs 5");
}

#[test]
fn rejects_fused_kernel_width_mismatch() {
    let kernel = FusedKernel::try_new(
        2,
        DType::F32,
        vec![Instr::Load(0), Instr::Load(1), Instr::Add],
    )
    .unwrap();
    let mut b = GraphBuilder::new();
    let x = b.input_with_shape(DType::F32, ShapeFact::batched(&[2]));
    let y = b.input_with_shape(DType::F32, ShapeFact::batched(&[3]));
    let f = b.push(Op::Fused(Arc::new(kernel)), vec![x, y]);
    b.output(f);
    assert_shape_error(&b.build(), f, "fused kernel over [B,2] and [B,3]");
}

#[test]
fn diagnostics_carry_node_and_operand_shapes() {
    let mut b = GraphBuilder::new();
    let x = b.input_with_shape(DType::F32, ShapeFact::batched(&[3]));
    let c = b.constant(Tensor::from_vec(vec![0.0f32; 4], &[4]));
    let s = b.add(x, c);
    b.output(s);
    let err = b.build().verify().unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains(&format!("node {s}")), "missing node id: {msg}");
    assert!(msg.contains("[B, 3]"), "missing operand shape: {msg}");
    assert!(msg.contains("[4]"), "missing operand shape: {msg}");
}
