//! Pipeline artifacts: save/load fitted pipelines as single JSON files.
//!
//! "Packaging a trained pipeline into a single artifact is common
//! practice" (paper §2.1) — this module makes the fitted [`Pipeline`]
//! that artifact: one self-contained file holding every operator's
//! parameters, loadable in a fresh process and compilable by `hb-core`
//! without retraining.

use std::io::{Read, Write};
use std::path::Path;

use crate::Pipeline;

/// Artifact I/O failures.
#[derive(Debug)]
pub enum ArtifactError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed artifact contents.
    Format(hb_json::JsonError),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact I/O error: {e}"),
            ArtifactError::Format(e) => write!(f, "artifact format error: {e}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

impl From<hb_json::JsonError> for ArtifactError {
    fn from(e: hb_json::JsonError) -> Self {
        ArtifactError::Format(e)
    }
}

/// Serializes a fitted pipeline into a JSON string.
pub fn to_json(pipeline: &Pipeline) -> Result<String, ArtifactError> {
    Ok(hb_json::to_string(pipeline))
}

/// Parses a fitted pipeline from its JSON form.
pub fn from_json(json: &str) -> Result<Pipeline, ArtifactError> {
    Ok(hb_json::from_str(json)?)
}

/// Writes the pipeline artifact to `path`.
pub fn save(pipeline: &Pipeline, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_json(pipeline)?.as_bytes())?;
    Ok(())
}

/// Loads a pipeline artifact from `path`.
pub fn load(path: impl AsRef<Path>) -> Result<Pipeline, ArtifactError> {
    let mut s = String::new();
    std::fs::File::open(path)?.read_to_string(&mut s)?;
    from_json(&s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fit_pipeline, OpSpec, Targets};
    use hb_ml::forest::ForestConfig;
    use hb_ml::linear::LinearConfig;
    use hb_tensor::Tensor;

    fn sample_pipeline() -> (Pipeline, Tensor<f32>) {
        let x = Tensor::from_fn(&[60, 4], |i| ((i[0] * 5 + i[1] * 3) % 9) as f32 * 0.4);
        let y = Targets::Classes((0..60).map(|i| (i % 2) as i64).collect());
        let pipe = fit_pipeline(
            &[
                OpSpec::StandardScaler,
                OpSpec::SelectKBest { k: 3 },
                OpSpec::LogisticRegression(LinearConfig {
                    epochs: 20,
                    ..Default::default()
                }),
            ],
            &x,
            &y,
        );
        (pipe, x)
    }

    #[test]
    fn json_roundtrip_preserves_predictions() {
        let (pipe, x) = sample_pipeline();
        let json = to_json(&pipe).unwrap();
        let restored = from_json(&json).unwrap();
        assert_eq!(restored.len(), pipe.len());
        assert_eq!(restored.input_width, pipe.input_width);
        assert_eq!(
            restored.predict_proba(&x).to_vec(),
            pipe.predict_proba(&x).to_vec()
        );
    }

    #[test]
    fn forest_artifact_roundtrips() {
        let x = Tensor::from_fn(&[80, 3], |i| ((i[0] * 7 + i[1]) % 11) as f32);
        let y = Targets::Classes((0..80).map(|i| (i % 2) as i64).collect());
        let pipe = fit_pipeline(
            &[OpSpec::RandomForestClassifier(ForestConfig {
                n_trees: 4,
                max_depth: 3,
                ..Default::default()
            })],
            &x,
            &y,
        );
        let restored = from_json(&to_json(&pipe).unwrap()).unwrap();
        assert_eq!(
            restored.predict_proba(&x).to_vec(),
            pipe.predict_proba(&x).to_vec()
        );
    }

    #[test]
    fn save_and_load_file() {
        let (pipe, x) = sample_pipeline();
        let dir = std::env::temp_dir().join("hb_pipeline_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save(&pipe, &path).unwrap();
        let restored = load(&path).unwrap();
        assert_eq!(
            restored.predict_proba(&x).to_vec(),
            pipe.predict_proba(&x).to_vec()
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn malformed_artifact_is_an_error() {
        assert!(matches!(
            from_json("not json"),
            Err(ArtifactError::Format(_))
        ));
        assert!(matches!(
            load("/nonexistent/path/model.json"),
            Err(ArtifactError::Io(_))
        ));
    }
}
