//! Predictive pipelines: chains of fitted traditional-ML operators.
//!
//! A pipeline mirrors the paper's §2.1 definition — a DAG of featurizers
//! followed by a model — restricted to the linear chains that real
//! scikit-learn pipelines overwhelmingly are (the paper's OpenML-CC18
//! suite averages 3.3 operators per pipeline).
//!
//! Each fitted operator is a [`FittedOp`] variant; the variant *is* the
//! paper's "operator signature", which the Hummingbird parser uses to
//! dispatch extractor and conversion functions. [`Pipeline::predict`]
//! provides the imperative reference scoring path (the scikit-learn
//! baseline for end-to-end experiments).

// Pure-safe-Rust policy: every crate in this workspace is 100% safe
// Rust; see DESIGN.md ("Unsafe-code policy").
#![forbid(unsafe_code)]

pub mod io;

use hb_tensor::Tensor;

use hb_ml::decomp::{KernelPca, Pca, TruncatedSvd};
use hb_ml::ensemble::TreeEnsemble;
use hb_ml::featurize::{
    BinEncode, Binarizer, ImputeStrategy, KBinsDiscretizer, MaxAbsScaler, MinMaxScaler,
    MissingIndicator, Norm, Normalizer, OneHotEncoder, PolynomialFeatures, RobustScaler,
    SimpleImputer, StandardScaler,
};
use hb_ml::forest::{ForestConfig, RandomForestClassifier, RandomForestRegressor};
use hb_ml::gbdt::{GbdtConfig, GradientBoostingClassifier, GradientBoostingRegressor};
use hb_ml::linear::{LinearConfig, LinearModel, LinearSvc, LogisticRegression, SgdClassifier};
use hb_ml::mlp::{MlpClassifier, MlpConfig, MlpModel};
use hb_ml::naive_bayes::{BernoulliNb, GaussianNb, MultinomialNb};
use hb_ml::select::FeatureSelector;
use hb_ml::svm::{NuSvc, Svc, SvcConfig, SvcModel};

/// A fitted pipeline operator; the enum variant is the operator
/// signature.
#[derive(Debug, Clone)]
pub enum FittedOp {
    /// Standardizing scaler.
    StandardScaler(StandardScaler),
    /// Min-max scaler.
    MinMaxScaler(MinMaxScaler),
    /// Max-abs scaler.
    MaxAbsScaler(MaxAbsScaler),
    /// Median/IQR scaler.
    RobustScaler(RobustScaler),
    /// Thresholding binarizer.
    Binarizer(Binarizer),
    /// Row normalizer.
    Normalizer(Normalizer),
    /// NaN imputer.
    SimpleImputer(SimpleImputer),
    /// NaN indicator features.
    MissingIndicator(MissingIndicator),
    /// Quantile discretizer.
    KBinsDiscretizer(KBinsDiscretizer),
    /// Degree-2 polynomial expansion.
    PolynomialFeatures(PolynomialFeatures),
    /// One-hot over numeric categories.
    OneHotEncoder(OneHotEncoder),
    /// SelectKBest / SelectPercentile / VarianceThreshold.
    FeatureSelector(FeatureSelector),
    /// Principal component analysis.
    Pca(Pca),
    /// Truncated SVD.
    TruncatedSvd(TruncatedSvd),
    /// RBF kernel PCA.
    KernelPca(KernelPca),
    /// Logistic regression / SGD / LinearSVC (weights + link).
    Linear(LinearModel),
    /// Kernel SVM.
    Svc(SvcModel),
    /// Gaussian naive Bayes.
    GaussianNb(GaussianNb),
    /// Bernoulli naive Bayes.
    BernoulliNb(BernoulliNb),
    /// Multinomial naive Bayes.
    MultinomialNb(MultinomialNb),
    /// Multilayer perceptron.
    Mlp(MlpModel),
    /// Decision tree / random forest / gradient boosting.
    TreeEnsemble(TreeEnsemble),
}

impl FittedOp {
    /// The operator signature string (used in logs and registry keys).
    pub fn signature(&self) -> &'static str {
        match self {
            FittedOp::StandardScaler(_) => "StandardScaler",
            FittedOp::MinMaxScaler(_) => "MinMaxScaler",
            FittedOp::MaxAbsScaler(_) => "MaxAbsScaler",
            FittedOp::RobustScaler(_) => "RobustScaler",
            FittedOp::Binarizer(_) => "Binarizer",
            FittedOp::Normalizer(_) => "Normalizer",
            FittedOp::SimpleImputer(_) => "SimpleImputer",
            FittedOp::MissingIndicator(_) => "MissingIndicator",
            FittedOp::KBinsDiscretizer(_) => "KBinsDiscretizer",
            FittedOp::PolynomialFeatures(_) => "PolynomialFeatures",
            FittedOp::OneHotEncoder(_) => "OneHotEncoder",
            FittedOp::FeatureSelector(_) => "FeatureSelector",
            FittedOp::Pca(_) => "PCA",
            FittedOp::TruncatedSvd(_) => "TruncatedSVD",
            FittedOp::KernelPca(_) => "KernelPCA",
            FittedOp::Linear(_) => "LinearModel",
            FittedOp::Svc(_) => "SVC",
            FittedOp::GaussianNb(_) => "GaussianNB",
            FittedOp::BernoulliNb(_) => "BernoulliNB",
            FittedOp::MultinomialNb(_) => "MultinomialNB",
            FittedOp::Mlp(_) => "MLPClassifier",
            FittedOp::TreeEnsemble(_) => "TreeEnsemble",
        }
    }

    /// True for terminal predictors (as opposed to featurizers).
    pub fn is_model(&self) -> bool {
        matches!(
            self,
            FittedOp::Linear(_)
                | FittedOp::Svc(_)
                | FittedOp::GaussianNb(_)
                | FittedOp::BernoulliNb(_)
                | FittedOp::MultinomialNb(_)
                | FittedOp::Mlp(_)
                | FittedOp::TreeEnsemble(_)
        )
    }

    /// Imperative scoring: featurizers transform, models emit
    /// probabilities/values.
    pub fn apply(&self, x: &Tensor<f32>) -> Tensor<f32> {
        match self {
            FittedOp::StandardScaler(o) => o.transform(x),
            FittedOp::MinMaxScaler(o) => o.transform(x),
            FittedOp::MaxAbsScaler(o) => o.transform(x),
            FittedOp::RobustScaler(o) => o.transform(x),
            FittedOp::Binarizer(o) => o.transform(x),
            FittedOp::Normalizer(o) => o.transform(x),
            FittedOp::SimpleImputer(o) => o.transform(x),
            FittedOp::MissingIndicator(o) => o.transform(x),
            FittedOp::KBinsDiscretizer(o) => o.transform(x),
            FittedOp::PolynomialFeatures(o) => o.transform(x),
            FittedOp::OneHotEncoder(o) => o.transform(x),
            FittedOp::FeatureSelector(o) => o.transform(x),
            FittedOp::Pca(o) => o.transform(x),
            FittedOp::TruncatedSvd(o) => o.transform(x),
            FittedOp::KernelPca(o) => o.transform(x),
            FittedOp::Linear(o) => o.predict_proba(x),
            FittedOp::Svc(o) => o.decision(x).reshape(&[x.shape()[0], 1]),
            FittedOp::GaussianNb(o) => o.predict_proba(x),
            FittedOp::BernoulliNb(o) => o.predict_proba(x),
            FittedOp::MultinomialNb(o) => o.predict_proba(x),
            FittedOp::Mlp(o) => o.predict_proba(x),
            FittedOp::TreeEnsemble(o) => o.predict_proba(x),
        }
    }
}

/// A fitted predictive pipeline: zero or more featurizers, optionally
/// terminated by a model.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    /// Operators in execution order.
    pub ops: Vec<FittedOp>,
    /// Input feature width recorded at fit time (used by compilers when
    /// the first operator's parameters do not imply it).
    pub input_width: Option<usize>,
}

impl Pipeline {
    /// Wraps a single fitted operator.
    pub fn from_op(op: impl Into<FittedOp>) -> Pipeline {
        Pipeline {
            ops: vec![op.into()],
            input_width: None,
        }
    }

    /// Appends a fitted operator.
    pub fn push(&mut self, op: impl Into<FittedOp>) {
        self.ops.push(op.into());
    }

    /// Scores the pipeline imperatively (the scikit-learn baseline path):
    /// probabilities `[n, C]` for classifiers, values for regressors, the
    /// transformed matrix for featurizer-only pipelines.
    pub fn predict_proba(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let mut cur = x.clone();
        for op in &self.ops {
            cur = op.apply(&cur);
        }
        cur
    }

    /// Hard predictions: argmax for multi-output model pipelines, raw
    /// output otherwise.
    pub fn predict(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let out = self.predict_proba(x);
        if out.ndim() == 2 && out.shape()[1] > 1 && self.ends_with_model() {
            out.argmax_axis(1, false).map(|v| v as f32)
        } else {
            out
        }
    }

    /// True if the last operator is a model.
    pub fn ends_with_model(&self) -> bool {
        self.ops.last().is_some_and(|o| o.is_model())
    }

    /// Operator count.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the pipeline has no operators.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

macro_rules! impl_from {
    ($($ty:ty => $variant:ident),* $(,)?) => {
        $(impl From<$ty> for FittedOp {
            fn from(v: $ty) -> FittedOp {
                FittedOp::$variant(v)
            }
        })*
    };
}

impl_from!(
    StandardScaler => StandardScaler,
    MinMaxScaler => MinMaxScaler,
    MaxAbsScaler => MaxAbsScaler,
    RobustScaler => RobustScaler,
    Binarizer => Binarizer,
    Normalizer => Normalizer,
    SimpleImputer => SimpleImputer,
    MissingIndicator => MissingIndicator,
    KBinsDiscretizer => KBinsDiscretizer,
    PolynomialFeatures => PolynomialFeatures,
    OneHotEncoder => OneHotEncoder,
    FeatureSelector => FeatureSelector,
    Pca => Pca,
    TruncatedSvd => TruncatedSvd,
    KernelPca => KernelPca,
    LinearModel => Linear,
    SvcModel => Svc,
    GaussianNb => GaussianNb,
    BernoulliNb => BernoulliNb,
    MultinomialNb => MultinomialNb,
    MlpModel => Mlp,
    TreeEnsemble => TreeEnsemble,
);

impl From<RandomForestClassifier> for FittedOp {
    fn from(v: RandomForestClassifier) -> FittedOp {
        FittedOp::TreeEnsemble(v.ensemble)
    }
}
impl From<RandomForestRegressor> for FittedOp {
    fn from(v: RandomForestRegressor) -> FittedOp {
        FittedOp::TreeEnsemble(v.ensemble)
    }
}
impl From<GradientBoostingClassifier> for FittedOp {
    fn from(v: GradientBoostingClassifier) -> FittedOp {
        FittedOp::TreeEnsemble(v.ensemble)
    }
}
impl From<GradientBoostingRegressor> for FittedOp {
    fn from(v: GradientBoostingRegressor) -> FittedOp {
        FittedOp::TreeEnsemble(v.ensemble)
    }
}

/// Training targets for pipeline fitting.
#[derive(Debug, Clone)]
pub enum Targets {
    /// Integer class labels.
    Classes(Vec<i64>),
    /// Real-valued regression targets.
    Values(Vec<f32>),
}

impl Targets {
    /// Class labels.
    ///
    /// # Panics
    ///
    /// Panics for regression targets.
    pub fn classes(&self) -> &[i64] {
        match self {
            Targets::Classes(c) => c,
            Targets::Values(_) => panic!("expected class labels, got regression targets"),
        }
    }

    /// Regression values.
    ///
    /// # Panics
    ///
    /// Panics for class targets.
    pub fn values(&self) -> &[f32] {
        match self {
            Targets::Values(v) => v,
            Targets::Classes(_) => panic!("expected regression targets, got class labels"),
        }
    }
}

/// Unfitted operator specification; `fit` produces the [`FittedOp`].
///
/// This plays the role of the scikit-learn estimator before `fit()` and
/// lets random pipelines (the OpenML-CC18-like suite) be described
/// declaratively.
#[derive(Debug, Clone)]
pub enum OpSpec {
    /// Standardizing scaler.
    StandardScaler,
    /// Min-max scaler.
    MinMaxScaler,
    /// Max-abs scaler.
    MaxAbsScaler,
    /// Median/IQR scaler.
    RobustScaler,
    /// Thresholding binarizer.
    Binarizer {
        /// Threshold.
        threshold: f32,
    },
    /// Row normalizer.
    Normalizer {
        /// Norm kind.
        norm: Norm,
    },
    /// NaN imputer.
    SimpleImputer {
        /// Fill strategy.
        strategy: ImputeStrategy,
    },
    /// NaN indicator.
    MissingIndicator,
    /// Quantile discretizer.
    KBinsDiscretizer {
        /// Number of bins.
        n_bins: usize,
        /// Output encoding.
        encode: BinEncode,
    },
    /// Degree-2 polynomial expansion.
    PolynomialFeatures {
        /// Include the bias column.
        include_bias: bool,
        /// Keep only cross terms.
        interaction_only: bool,
    },
    /// One-hot over numeric categories.
    OneHotEncoder,
    /// Top-k ANOVA selector.
    SelectKBest {
        /// Columns kept.
        k: usize,
    },
    /// Top-percentile ANOVA selector.
    SelectPercentile {
        /// Percentile kept (1–100).
        percentile: usize,
    },
    /// Variance filter.
    VarianceThreshold {
        /// Minimum variance.
        threshold: f64,
    },
    /// PCA projection.
    Pca {
        /// Components kept.
        k: usize,
    },
    /// Truncated SVD projection.
    TruncatedSvd {
        /// Components kept.
        k: usize,
    },
    /// RBF kernel PCA (fit on at most `fit_rows` sub-sampled rows).
    KernelPca {
        /// Components kept.
        k: usize,
        /// RBF bandwidth (`<= 0` = `1/d`).
        gamma: f32,
        /// Sub-sample cap for the O(m²) fit.
        fit_rows: usize,
    },
    /// Logistic regression.
    LogisticRegression(LinearConfig),
    /// SGD-trained logistic classifier.
    SgdClassifier(LinearConfig),
    /// Linear SVM.
    LinearSvc(LinearConfig),
    /// Kernel SVM.
    Svc(SvcConfig),
    /// ν-SVM.
    NuSvc {
        /// ν parameter.
        nu: f32,
        /// Base settings.
        config: SvcConfig,
    },
    /// Gaussian naive Bayes.
    GaussianNb,
    /// Bernoulli naive Bayes.
    BernoulliNb {
        /// Laplace smoothing.
        alpha: f32,
        /// Binarization threshold.
        binarize: f32,
    },
    /// Multinomial naive Bayes.
    MultinomialNb {
        /// Laplace smoothing.
        alpha: f32,
    },
    /// Multilayer perceptron.
    Mlp(MlpConfig),
    /// Single decision tree classifier (forest of one, no bootstrap).
    DecisionTreeClassifier {
        /// Maximum depth.
        max_depth: usize,
    },
    /// Random forest classifier.
    RandomForestClassifier(ForestConfig),
    /// Random forest regressor.
    RandomForestRegressor(ForestConfig),
    /// Gradient-boosting classifier.
    GbdtClassifier(GbdtConfig),
    /// Gradient-boosting regressor.
    GbdtRegressor(GbdtConfig),
}

impl OpSpec {
    /// Fits the operator on the (already featurized) matrix and targets.
    pub fn fit(&self, x: &Tensor<f32>, y: &Targets) -> FittedOp {
        match self {
            OpSpec::StandardScaler => StandardScaler::fit(x).into(),
            OpSpec::MinMaxScaler => MinMaxScaler::fit(x).into(),
            OpSpec::MaxAbsScaler => MaxAbsScaler::fit(x).into(),
            OpSpec::RobustScaler => RobustScaler::fit(x).into(),
            OpSpec::Binarizer { threshold } => Binarizer {
                threshold: *threshold,
            }
            .into(),
            OpSpec::Normalizer { norm } => Normalizer { norm: *norm }.into(),
            OpSpec::SimpleImputer { strategy } => SimpleImputer::fit(x, *strategy).into(),
            OpSpec::MissingIndicator => MissingIndicator.into(),
            OpSpec::KBinsDiscretizer { n_bins, encode } => {
                KBinsDiscretizer::fit(x, *n_bins, *encode).into()
            }
            OpSpec::PolynomialFeatures {
                include_bias,
                interaction_only,
            } => PolynomialFeatures {
                include_bias: *include_bias,
                interaction_only: *interaction_only,
            }
            .into(),
            OpSpec::OneHotEncoder => OneHotEncoder::fit(x).into(),
            OpSpec::SelectKBest { k } => FeatureSelector::k_best(x, y.classes(), *k).into(),
            OpSpec::SelectPercentile { percentile } => {
                FeatureSelector::percentile(x, y.classes(), *percentile).into()
            }
            OpSpec::VarianceThreshold { threshold } => {
                FeatureSelector::variance_threshold(x, *threshold).into()
            }
            OpSpec::Pca { k } => Pca::fit(x, *k).into(),
            OpSpec::TruncatedSvd { k } => TruncatedSvd::fit(x, *k).into(),
            OpSpec::KernelPca { k, gamma, fit_rows } => {
                let m = x.shape()[0].min(*fit_rows).max(2);
                KernelPca::fit(&x.slice(0, 0, m).to_contiguous(), *k, *gamma).into()
            }
            OpSpec::LogisticRegression(cfg) => LogisticRegression::new(cfg.clone())
                .fit(x, y.classes())
                .into(),
            OpSpec::SgdClassifier(cfg) => {
                SgdClassifier::new(cfg.clone()).fit(x, y.classes()).into()
            }
            OpSpec::LinearSvc(cfg) => LinearSvc::new(cfg.clone()).fit(x, y.classes()).into(),
            OpSpec::Svc(cfg) => Svc::new(cfg.clone()).fit(x, y.classes()).into(),
            OpSpec::NuSvc { nu, config } => NuSvc {
                nu: *nu,
                config: config.clone(),
            }
            .fit(x, y.classes())
            .into(),
            OpSpec::GaussianNb => GaussianNb::fit(x, y.classes()).into(),
            OpSpec::BernoulliNb { alpha, binarize } => {
                BernoulliNb::fit(x, y.classes(), *alpha, *binarize).into()
            }
            OpSpec::MultinomialNb { alpha } => MultinomialNb::fit(x, y.classes(), *alpha).into(),
            OpSpec::Mlp(cfg) => MlpClassifier::new(cfg.clone()).fit(x, y.classes()).into(),
            OpSpec::DecisionTreeClassifier { max_depth } => {
                RandomForestClassifier::new(ForestConfig {
                    n_trees: 1,
                    max_depth: *max_depth,
                    bootstrap: false,
                    max_features: usize::MAX,
                    ..ForestConfig::default()
                })
                .fit(x, y.classes())
                .into()
            }
            OpSpec::RandomForestClassifier(cfg) => RandomForestClassifier::new(cfg.clone())
                .fit(x, y.classes())
                .into(),
            OpSpec::RandomForestRegressor(cfg) => RandomForestRegressor::new(cfg.clone())
                .fit(x, y.values())
                .into(),
            OpSpec::GbdtClassifier(cfg) => GradientBoostingClassifier::new(cfg.clone())
                .fit(x, y.classes())
                .into(),
            OpSpec::GbdtRegressor(cfg) => GradientBoostingRegressor::new(cfg.clone())
                .fit(x, y.values())
                .into(),
        }
    }
}

/// Fits a chain of [`OpSpec`]s, threading the transformed matrix through
/// successive featurizers (scikit-learn `Pipeline.fit` semantics).
pub fn fit_pipeline(specs: &[OpSpec], x: &Tensor<f32>, y: &Targets) -> Pipeline {
    let mut cur = x.clone();
    let mut pipe = Pipeline {
        input_width: Some(x.shape()[1]),
        ..Pipeline::default()
    };
    for spec in specs {
        let op = spec.fit(&cur, y);
        if !op.is_model() {
            cur = op.apply(&cur);
        }
        pipe.push(op);
    }
    pipe
}

// JSON artifact impls (replacing the former serde derives).
hb_json::json_enum!(FittedOp {
    StandardScaler(StandardScaler),
    MinMaxScaler(MinMaxScaler),
    MaxAbsScaler(MaxAbsScaler),
    RobustScaler(RobustScaler),
    Binarizer(Binarizer),
    Normalizer(Normalizer),
    SimpleImputer(SimpleImputer),
    MissingIndicator(MissingIndicator),
    KBinsDiscretizer(KBinsDiscretizer),
    PolynomialFeatures(PolynomialFeatures),
    OneHotEncoder(OneHotEncoder),
    FeatureSelector(FeatureSelector),
    Pca(Pca),
    TruncatedSvd(TruncatedSvd),
    KernelPca(KernelPca),
    Linear(LinearModel),
    Svc(SvcModel),
    GaussianNb(GaussianNb),
    BernoulliNb(BernoulliNb),
    MultinomialNb(MultinomialNb),
    Mlp(MlpModel),
    TreeEnsemble(TreeEnsemble),
});
hb_json::json_struct!(Pipeline { ops, input_width });

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> (Tensor<f32>, Targets) {
        let n = 120;
        let x = Tensor::from_fn(&[n, 4], |i| {
            let c = (i[0] % 2) as f32;
            c * 3.0 + ((i[0] * 11 + i[1] * 5) % 7) as f32 * 0.1
        });
        let y: Vec<i64> = (0..n).map(|i| (i % 2) as i64).collect();
        (x, Targets::Classes(y))
    }

    #[test]
    fn fit_pipeline_threads_transforms() {
        let (x, y) = data();
        let pipe = fit_pipeline(
            &[
                OpSpec::StandardScaler,
                OpSpec::SelectKBest { k: 2 },
                OpSpec::LogisticRegression(LinearConfig::default()),
            ],
            &x,
            &y,
        );
        assert_eq!(pipe.len(), 3);
        assert!(pipe.ends_with_model());
        let pred = pipe.predict(&x);
        let acc = hb_ml::metrics::accuracy(&pred, y.classes());
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn featurizer_only_pipeline_outputs_matrix() {
        let (x, y) = data();
        let pipe = fit_pipeline(
            &[OpSpec::MinMaxScaler, OpSpec::SelectKBest { k: 3 }],
            &x,
            &y,
        );
        assert!(!pipe.ends_with_model());
        let out = pipe.predict_proba(&x);
        assert_eq!(out.shape(), &[120, 3]);
    }

    #[test]
    fn signatures_are_stable() {
        let (x, y) = data();
        let pipe = fit_pipeline(&[OpSpec::StandardScaler, OpSpec::GaussianNb], &x, &y);
        let sigs: Vec<&str> = pipe.ops.iter().map(|o| o.signature()).collect();
        assert_eq!(sigs, vec!["StandardScaler", "GaussianNB"]);
    }

    #[test]
    fn forest_pipeline_predicts_classes() {
        let (x, y) = data();
        let pipe = fit_pipeline(
            &[OpSpec::RandomForestClassifier(ForestConfig {
                n_trees: 5,
                max_depth: 3,
                ..ForestConfig::default()
            })],
            &x,
            &y,
        );
        let pred = pipe.predict(&x);
        assert!(hb_ml::metrics::accuracy(&pred, y.classes()) > 0.95);
    }

    #[test]
    fn decision_tree_spec_is_single_tree() {
        let (x, y) = data();
        let op = OpSpec::DecisionTreeClassifier { max_depth: 3 }.fit(&x, &y);
        match &op {
            FittedOp::TreeEnsemble(e) => assert_eq!(e.trees.len(), 1),
            other => panic!("unexpected op {}", other.signature()),
        }
    }

    #[test]
    #[should_panic(expected = "expected class labels")]
    fn wrong_target_kind_panics() {
        let (x, _) = data();
        let y = Targets::Values(vec![0.0; 120]);
        let _ = OpSpec::GaussianNb.fit(&x, &y);
    }

    #[test]
    fn imputer_pipeline_handles_nans_end_to_end() {
        let n = 60;
        let x = Tensor::from_fn(&[n, 2], |i| {
            if i[0] % 7 == 0 && i[1] == 0 {
                f32::NAN
            } else {
                (i[0] % 2) as f32 * 2.0 + i[1] as f32 * 0.1
            }
        });
        let y = Targets::Classes((0..n).map(|i| (i % 2) as i64).collect());
        let pipe = fit_pipeline(
            &[
                OpSpec::SimpleImputer {
                    strategy: ImputeStrategy::Mean,
                },
                OpSpec::LogisticRegression(LinearConfig::default()),
            ],
            &x,
            &y,
        );
        let proba = pipe.predict_proba(&x);
        assert!(
            proba.iter().all(|v| !v.is_nan()),
            "NaNs leaked through imputer"
        );
    }
}
