//! Defensive recursive-descent JSON parser.
//!
//! Artifacts arrive from disk or over the wire, so the parser enforces
//! hard limits (nesting depth, total node count) and reports every
//! malformation as a typed [`JsonError`] with a byte offset — hostile
//! input can never panic or exhaust the stack.

use crate::{Json, JsonError};

/// Defensive parser limits.
#[derive(Clone, Copy, Debug)]
pub struct ParseLimits {
    /// Maximum nesting depth of arrays/objects.
    pub max_depth: usize,
    /// Maximum total number of values in the document.
    pub max_nodes: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits {
            max_depth: 128,
            max_nodes: 50_000_000,
        }
    }
}

/// Parses a complete JSON document with default limits.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    parse_with_limits(input, ParseLimits::default())
}

/// Parses a complete JSON document with explicit limits.
pub fn parse_with_limits(input: &str, limits: ParseLimits) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        nodes: 0,
        limits,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Parses and decodes in one step.
pub fn from_str<T: crate::FromJson>(input: &str) -> Result<T, JsonError> {
    T::from_json(&parse(input)?)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    nodes: usize,
    limits: ParseLimits,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError::Parse {
            offset: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{}`, found {}",
                b as char,
                self.describe_here()
            )))
        }
    }

    fn describe_here(&self) -> String {
        match self.peek() {
            Some(b) if b.is_ascii_graphic() => format!("`{}`", b as char),
            Some(b) => format!("byte {b:#04x}"),
            None => "end of input".to_string(),
        }
    }

    fn count_node(&mut self) -> Result<(), JsonError> {
        self.nodes += 1;
        if self.nodes > self.limits.max_nodes {
            return Err(JsonError::Limit(format!(
                "document exceeds {} values",
                self.limits.max_nodes
            )));
        }
        Ok(())
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > self.limits.max_depth {
            return Err(JsonError::Limit(format!(
                "nesting deeper than {} levels",
                self.limits.max_depth
            )));
        }
        self.count_node()?;
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err(format!("expected a value, found {}", self.describe_here()))),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("invalid literal (expected `{lit}`)")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => {
                    return Err(self.err(format!(
                        "expected `,` or `}}` in object, found {}",
                        self.describe_here()
                    )))
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => {
                    return Err(self.err(format!(
                        "expected `,` or `]` in array, found {}",
                        self.describe_here()
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(cp)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid; find the char at this offset).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        // Fraction.
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit expected after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // Exponent.
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit expected in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_document() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": [true, false, "x\n\u0041"]}}"#)
                .unwrap();
        assert_eq!(v.get("a").unwrap().expect_arr("a").unwrap().len(), 3);
        assert_eq!(
            v.get("b")
                .unwrap()
                .get("d")
                .unwrap()
                .expect_arr("d")
                .unwrap()[2],
            Json::Str("x\nA".to_string())
        );
    }

    #[test]
    fn depth_bomb_is_rejected_not_stack_overflow() {
        let bomb = "[".repeat(100_000) + &"]".repeat(100_000);
        let err = parse(&bomb).unwrap_err();
        assert!(matches!(err, JsonError::Limit(_)), "{err}");
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\": }",
            "{\"a\" 1}",
            "tru",
            "01",
            "1.",
            "1e",
            "\"abc",
            "\"\\q\"",
            "\"\\uD800\"",
            "[1] extra",
            "nan",
        ] {
            let r = parse(bad);
            assert!(r.is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn node_limit_enforced() {
        let many = format!("[{}]", vec!["0"; 100].join(","));
        let err = parse_with_limits(
            &many,
            ParseLimits {
                max_depth: 10,
                max_nodes: 50,
            },
        )
        .unwrap_err();
        assert!(matches!(err, JsonError::Limit(_)), "{err}");
    }

    #[test]
    fn surrogate_pair_decodes() {
        let v = parse("\"\\uD83D\\uDE00\"").unwrap();
        assert_eq!(v, Json::Str("😀".to_string()));
    }
}
