//! Dependency-free JSON for model artifacts.
//!
//! Serving loads untrusted artifacts (pipelines, exported graphs), so the
//! parser here is written defensively: recursion depth is capped, numbers
//! are validated, escapes are checked, and every decoding step returns a
//! typed [`JsonError`] — nothing panics on hostile input.
//!
//! The serialized format matches what `serde_json` produced for the same
//! types before this crate replaced it:
//!
//! * structs → objects keyed by field name;
//! * unit enum variants → `"Name"`;
//! * newtype variants → `{"Name": value}`;
//! * tuple variants → `{"Name": [a, b]}`;
//! * struct variants → `{"Name": {field: value}}`.
//!
//! Non-finite floats (which JSON cannot represent as numbers) round-trip
//! as the strings `"NaN"`, `"inf"`, and `"-inf"`.
//!
//! The [`json_struct!`] and [`json_enum!`] macros generate the
//! [`ToJson`]/[`FromJson`] impl pairs that `#[derive(Serialize,
//! Deserialize)]` used to provide.

// Pure-safe-Rust policy: every crate in this workspace is 100% safe
// Rust; see DESIGN.md ("Unsafe-code policy").
#![forbid(unsafe_code)]

mod parse;
mod write;

pub use parse::{from_str, parse, ParseLimits};
pub use write::{to_string, to_string_pretty};

use std::fmt;
use std::sync::Arc;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Error raised while parsing or decoding JSON.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonError {
    /// Malformed JSON text.
    Parse {
        /// Byte offset of the error.
        offset: usize,
        /// What went wrong.
        msg: String,
    },
    /// Structurally valid JSON that does not match the expected schema.
    Schema(String),
    /// A defensive limit was exceeded (nesting depth, element count).
    Limit(String),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Parse { offset, msg } => {
                write!(f, "JSON parse error at byte {offset}: {msg}")
            }
            JsonError::Schema(msg) => write!(f, "JSON schema error: {msg}"),
            JsonError::Limit(msg) => write!(f, "JSON limit exceeded: {msg}"),
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short description of the value's type for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Borrows the object pairs or reports what was found instead.
    pub fn expect_obj(&self, what: &str) -> Result<&[(String, Json)], JsonError> {
        match self {
            Json::Obj(pairs) => Ok(pairs),
            other => Err(JsonError::Schema(format!(
                "expected object for {what}, found {}",
                other.kind()
            ))),
        }
    }

    /// Borrows the array elements or reports what was found instead.
    pub fn expect_arr(&self, what: &str) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(JsonError::Schema(format!(
                "expected array for {what}, found {}",
                other.kind()
            ))),
        }
    }

    /// If the value is a single-key object `{variant: payload}` with the
    /// given key, returns the payload (enum variant dispatch).
    pub fn variant_payload(&self, name: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) if pairs.len() == 1 && pairs[0].0 == name => Some(&pairs[0].1),
            _ => None,
        }
    }
}

/// Serialization into the [`Json`] value model.
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Json;
}

/// Fallible decoding from the [`Json`] value model.
pub trait FromJson: Sized {
    /// Decodes a value, reporting schema mismatches as [`JsonError`].
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Decodes a named struct field (missing key → typed error).
pub fn field<T: FromJson>(pairs: &[(String, Json)], name: &str, ty: &str) -> Result<T, JsonError> {
    let v = pairs
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| JsonError::Schema(format!("{ty}: missing field `{name}`")))?;
    T::from_json(v).map_err(|e| JsonError::Schema(format!("{ty}.{name}: {e}")))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::Schema(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            other => Err(JsonError::Schema(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

macro_rules! int_json {
    ($($t:ty),+) => {
        $(
            impl ToJson for $t {
                fn to_json(&self) -> Json {
                    Json::Num(*self as f64)
                }
            }
            impl FromJson for $t {
                fn from_json(v: &Json) -> Result<Self, JsonError> {
                    let n = match v {
                        Json::Num(n) => *n,
                        other => {
                            return Err(JsonError::Schema(format!(
                                "expected integer, found {}",
                                other.kind()
                            )))
                        }
                    };
                    if n.fract() != 0.0 || !n.is_finite() {
                        return Err(JsonError::Schema(format!(
                            "expected integer, found non-integral number {n}"
                        )));
                    }
                    if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                        return Err(JsonError::Schema(format!(
                            "integer {n} out of range for {}",
                            stringify!($t)
                        )));
                    }
                    Ok(n as $t)
                }
            }
        )+
    };
}
int_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_json {
    ($($t:ty),+) => {
        $(
            impl ToJson for $t {
                fn to_json(&self) -> Json {
                    let v = *self as f64;
                    if v.is_finite() {
                        Json::Num(v)
                    } else if v.is_nan() {
                        Json::Str("NaN".to_string())
                    } else if v > 0.0 {
                        Json::Str("inf".to_string())
                    } else {
                        Json::Str("-inf".to_string())
                    }
                }
            }
            impl FromJson for $t {
                fn from_json(v: &Json) -> Result<Self, JsonError> {
                    match v {
                        Json::Num(n) => Ok(*n as $t),
                        Json::Str(s) => match s.as_str() {
                            "NaN" => Ok(<$t>::NAN),
                            "inf" => Ok(<$t>::INFINITY),
                            "-inf" => Ok(<$t>::NEG_INFINITY),
                            _ => Err(JsonError::Schema(format!(
                                "expected number, found string {s:?}"
                            ))),
                        },
                        other => Err(JsonError::Schema(format!(
                            "expected number, found {}",
                            other.kind()
                        ))),
                    }
                }
            }
        )+
    };
}
float_json!(f32, f64);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.expect_arr("Vec")?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(x) => x.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<T: ToJson> ToJson for Arc<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: FromJson> FromJson for Arc<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Arc::new(T::from_json(v)?))
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Derive-style macros
// ---------------------------------------------------------------------------

/// Implements [`ToJson`]/[`FromJson`] for a plain struct by listing its
/// fields: `json_struct!(Point { x, y });`.
#[macro_export]
macro_rules! json_struct {
    ($ty:ident { $($f:ident),* $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $( (stringify!($f).to_string(), $crate::ToJson::to_json(&self.$f)), )*
                ])
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> Result<Self, $crate::JsonError> {
                let pairs = v.expect_obj(stringify!($ty))?;
                #[allow(clippy::redundant_field_names)]
                Ok($ty {
                    $( $f: $crate::field(pairs, stringify!($f), stringify!($ty))?, )*
                })
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for an enum using serde's
/// externally-tagged representation. Unit, newtype, two-field tuple, and
/// struct variants are supported:
///
/// ```ignore
/// json_enum!(Op {
///     MatMul,
///     Input(usize),
///     Transpose(usize, usize),
///     Gather { axis },
/// });
/// ```
#[macro_export]
macro_rules! json_enum {
    ($ty:ident { $( $v:ident $( ( $($fty:ty),+ ) )? $( { $($f:ident),+ } )? ),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $( $crate::json_variant!(@ser self, $ty, $v $( ( $($fty),+ ) )? $( { $($f),+ } )? ); )+
                unreachable!("json_enum!: variant list must cover all variants of {}", stringify!($ty))
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> Result<Self, $crate::JsonError> {
                $( $crate::json_variant!(@de v, $ty, $v $( ( $($fty),+ ) )? $( { $($f),+ } )? ); )+
                Err($crate::JsonError::Schema(format!(
                    "unknown {} variant: {}",
                    stringify!($ty),
                    match v {
                        $crate::Json::Str(s) => s.clone(),
                        $crate::Json::Obj(pairs) if pairs.len() == 1 => pairs[0].0.clone(),
                        other => other.kind().to_string(),
                    }
                )))
            }
        }
    };
}

/// Internal helper for [`json_enum!`]: one variant's ser/de arm.
#[doc(hidden)]
#[macro_export]
macro_rules! json_variant {
    // Unit variant: "Name"
    (@ser $self:ident, $ty:ident, $v:ident) => {
        if let $ty::$v = $self {
            return $crate::Json::Str(stringify!($v).to_string());
        }
    };
    (@de $val:ident, $ty:ident, $v:ident) => {
        if let $crate::Json::Str(s) = $val {
            if s == stringify!($v) {
                return Ok($ty::$v);
            }
        }
    };
    // Newtype variant: {"Name": payload}
    (@ser $self:ident, $ty:ident, $v:ident ( $fty:ty )) => {
        if let $ty::$v(a) = $self {
            return $crate::Json::Obj(vec![(
                stringify!($v).to_string(),
                $crate::ToJson::to_json(a),
            )]);
        }
    };
    (@de $val:ident, $ty:ident, $v:ident ( $fty:ty )) => {
        if let Some(payload) = $val.variant_payload(stringify!($v)) {
            return Ok($ty::$v(<$fty as $crate::FromJson>::from_json(payload).map_err(
                |e| $crate::JsonError::Schema(format!("{}::{}: {e}", stringify!($ty), stringify!($v))),
            )?));
        }
    };
    // Two-field tuple variant: {"Name": [a, b]}
    (@ser $self:ident, $ty:ident, $v:ident ( $fty0:ty, $fty1:ty )) => {
        if let $ty::$v(a, b) = $self {
            return $crate::Json::Obj(vec![(
                stringify!($v).to_string(),
                $crate::Json::Arr(vec![$crate::ToJson::to_json(a), $crate::ToJson::to_json(b)]),
            )]);
        }
    };
    (@de $val:ident, $ty:ident, $v:ident ( $fty0:ty, $fty1:ty )) => {
        if let Some(payload) = $val.variant_payload(stringify!($v)) {
            let items = payload.expect_arr(stringify!($v))?;
            if items.len() != 2 {
                return Err($crate::JsonError::Schema(format!(
                    "{}::{} expects 2 elements, found {}",
                    stringify!($ty),
                    stringify!($v),
                    items.len()
                )));
            }
            return Ok($ty::$v(
                <$fty0 as $crate::FromJson>::from_json(&items[0])?,
                <$fty1 as $crate::FromJson>::from_json(&items[1])?,
            ));
        }
    };
    // Struct variant: {"Name": {field: value}}
    (@ser $self:ident, $ty:ident, $v:ident { $($f:ident),+ }) => {
        if let $ty::$v { $($f),+ } = $self {
            return $crate::Json::Obj(vec![(
                stringify!($v).to_string(),
                $crate::Json::Obj(vec![
                    $( (stringify!($f).to_string(), $crate::ToJson::to_json($f)), )+
                ]),
            )]);
        }
    };
    (@de $val:ident, $ty:ident, $v:ident { $($f:ident),+ }) => {
        if let Some(payload) = $val.variant_payload(stringify!($v)) {
            let pairs = payload.expect_obj(stringify!($v))?;
            return Ok($ty::$v {
                $( $f: $crate::field(pairs, stringify!($f), stringify!($v))?, )+
            });
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Point {
        x: f32,
        y: Vec<i64>,
    }
    json_struct!(Point { x, y });

    #[derive(Debug, PartialEq)]
    enum Shape {
        Empty,
        Circle(f32),
        Rect(f32, f32),
        Poly { sides: usize, regular: bool },
    }
    json_enum!(Shape {
        Empty,
        Circle(f32),
        Rect(f32, f32),
        Poly { sides, regular },
    });

    fn roundtrip<T: ToJson + FromJson + PartialEq + std::fmt::Debug>(v: T) {
        let s = to_string(&v);
        let back: T = from_str(&s).unwrap();
        assert_eq!(back, v, "roundtrip through {s}");
    }

    #[test]
    fn struct_roundtrip() {
        roundtrip(Point {
            x: 1.5,
            y: vec![-3, 9],
        });
    }

    #[test]
    fn enum_roundtrips() {
        roundtrip(Shape::Empty);
        roundtrip(Shape::Circle(2.5));
        roundtrip(Shape::Rect(1.0, 4.0));
        roundtrip(Shape::Poly {
            sides: 6,
            regular: true,
        });
    }

    #[test]
    fn externally_tagged_format() {
        assert_eq!(to_string(&Shape::Empty), "\"Empty\"");
        assert_eq!(to_string(&Shape::Circle(2.5)), "{\"Circle\":2.5}");
        assert_eq!(to_string(&Shape::Rect(1.0, 2.0)), "{\"Rect\":[1,2]}");
    }

    #[test]
    fn unknown_variant_is_typed_error() {
        let err = from_str::<Shape>("\"Blob\"").unwrap_err();
        assert!(matches!(err, JsonError::Schema(_)), "{err}");
        assert!(err.to_string().contains("unknown Shape variant"));
    }

    #[test]
    fn missing_field_is_typed_error() {
        let err = from_str::<Point>("{\"x\": 1.0}").unwrap_err();
        assert!(err.to_string().contains("missing field `y`"), "{err}");
    }

    #[test]
    fn non_finite_floats_roundtrip() {
        let v = vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 1.0];
        let s = to_string(&v);
        let back: Vec<f32> = from_str(&s).unwrap();
        assert!(back[0].is_nan());
        assert_eq!(back[1], f32::INFINITY);
        assert_eq!(back[2], f32::NEG_INFINITY);
        assert_eq!(back[3], 1.0);
    }

    #[test]
    fn integer_bounds_checked() {
        assert!(from_str::<u8>("256").is_err());
        assert!(from_str::<u8>("-1").is_err());
        assert!(from_str::<usize>("1.5").is_err());
        assert_eq!(from_str::<u8>("255").unwrap(), 255);
    }
}
