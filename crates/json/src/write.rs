//! JSON serialization (compact and pretty).

use crate::{Json, ToJson};

/// Serializes a value compactly.
pub fn to_string<T: ToJson + ?Sized>(v: &T) -> String {
    let mut out = String::new();
    write_value(&v.to_json(), &mut out, None, 0);
    out
}

/// Serializes a value with two-space indentation.
pub fn to_string_pretty<T: ToJson + ?Sized>(v: &T) -> String {
    let mut out = String::new();
    write_value(&v.to_json(), &mut out, Some(2), 0);
    out
}

fn write_value(v: &Json, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => write_number(*n, out),
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            if !pairs.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

/// Numbers print like serde_json: integral floats keep a trailing `.0`
/// so the value re-parses as the same token kind.
fn write_number(n: f64, out: &mut String) {
    debug_assert!(n.is_finite(), "non-finite numbers serialize as strings");
    if n == n.trunc() && n.abs() < 1e15 {
        // Integral: print without exponent. Distinguish the integer case
        // (from usize/i64 fields) from float fields at the type level is
        // impossible here, so integral values print as integers — both
        // i64 and f32 FromJson accept that form.
        out.push_str(&format!("{}", n as i64));
    } else {
        let s = format!("{n}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn compact_output_reparses() {
        let v = Json::Obj(vec![
            (
                "a".to_string(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)]),
            ),
            ("b".to_string(), Json::Str("x\"y\n".to_string())),
            ("c".to_string(), Json::Null),
        ]);
        let s = to_string(&v);
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn pretty_output_reparses() {
        let v = Json::Obj(vec![(
            "nested".to_string(),
            Json::Obj(vec![("k".to_string(), Json::Bool(true))]),
        )]);
        let s = to_string_pretty(&v);
        assert!(s.contains('\n'));
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn large_and_small_numbers_roundtrip() {
        for n in [0.0, -0.0, 1e-30, 3.25e20, -17.0, f64::MAX, 0.1] {
            let s = to_string(&Json::Num(n));
            let back = parse(&s).unwrap();
            match back {
                Json::Num(m) => assert_eq!(m, n, "via {s}"),
                other => panic!("expected number, got {other:?}"),
            }
        }
    }
}
