//! A RAPIDS-FIL-like forest-inference baseline (paper §6.1.1 GPU
//! comparisons).
//!
//! FIL is a custom CUDA implementation of the PerfectTreeTraversal idea:
//! the whole ensemble evaluates in a handful of fused kernels with
//! tree-dimension parallelism. Here the results are computed on the host
//! (flat-array iterative traversal parallelized over records) and the
//! device latency is modeled with the same roofline used for compiled
//! graphs, with constants calibrated in DESIGN.md to reproduce FIL's
//! *relative* position: slower than the compiled backends at small
//! batches (fixed setup overhead), ~comparable at 10K, and ahead at very
//! large batches (fewer launches, better locality).

use std::time::{Duration, Instant};

use rayon::prelude::*;

use hb_backend::device::DeviceSpec;
use hb_backend::RunStats;
use hb_ml::ensemble::{Aggregation, TreeEnsemble};
use hb_tensor::Tensor;

/// Fixed per-call setup cost (memory pool, kernel planning) of the
/// FIL-like engine, in seconds.
const FIL_SETUP_S: f64 = 1.2e-3;

/// Modeled bytes touched per node visit (uncoalesced 32-byte transactions
/// on a 16-byte node record, with partial caching).
const BYTES_PER_NODE_VISIT: f64 = 48.0;

/// Kernels the engine launches per batch (tree blocks + reduction).
const FIL_KERNELS: f64 = 12.0;

/// Records per row block of the batched traversal kernel (the rayon
/// work unit; also bounds the per-block accumulator scratch).
const ROW_BLOCK: usize = 64;

/// Trees per block: a block's flattened node arrays (`left`/`right`/
/// `feature`/`threshold` slices) are contiguous, and one block's nodes
/// stay cache-resident while it streams over a row block.
const TREE_BLOCK: usize = 8;

/// A forest prepared for FIL-like inference.
pub struct FilForest {
    tree_offset: Vec<usize>,
    left: Vec<i32>,
    right: Vec<i32>,
    feature: Vec<u32>,
    threshold: Vec<f32>,
    values: Vec<f32>,
    value_width: usize,
    agg: Aggregation,
    n_outputs: usize,
    avg_depth: f64,
}

impl FilForest {
    /// Flattens a fitted ensemble into the FIL node layout.
    pub fn new(ensemble: &TreeEnsemble) -> FilForest {
        let mut tree_offset = Vec::with_capacity(ensemble.trees.len());
        let (mut left, mut right, mut feature, mut threshold, mut values) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
        let value_width = ensemble.trees.first().map_or(1, |t| t.value_width);
        for t in &ensemble.trees {
            tree_offset.push(left.len());
            left.extend_from_slice(&t.left);
            right.extend_from_slice(&t.right);
            feature.extend_from_slice(&t.feature);
            threshold.extend_from_slice(&t.threshold);
            values.extend_from_slice(&t.values);
        }
        let avg_depth = ensemble.trees.iter().map(|t| t.depth() as f64).sum::<f64>()
            / ensemble.trees.len().max(1) as f64;
        FilForest {
            tree_offset,
            left,
            right,
            feature,
            threshold,
            values,
            value_width,
            agg: ensemble.agg.clone(),
            n_outputs: ensemble.n_outputs(),
            avg_depth,
        }
    }

    /// Scores a batch with the batch-of-trees row-block kernel;
    /// `[n, outputs]`.
    ///
    /// The batch is partitioned into row blocks of [`ROW_BLOCK`]
    /// records (the rayon work unit), and inside a block the loop nest
    /// is inverted FIL-style: trees are walked in blocks of
    /// [`TREE_BLOCK`] whose node arrays are contiguous by construction
    /// (trees are flattened back-to-back), and each tree block streams
    /// over the block's rows while its nodes stay cache-resident —
    /// instead of every row re-fetching the whole forest.
    ///
    /// Determinism: each row's accumulator chain still visits trees in
    /// ascending index order, and row blocks are data-independent, so
    /// outputs are bit-identical to the row-at-a-time traversal at any
    /// thread count.
    pub fn predict_batch(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let (n, d) = (x.shape()[0], x.shape()[1]);
        let xs = x.to_contiguous();
        let xv = xs.as_slice();
        let k = self.n_outputs;
        let acc_len = self.agg.acc_len(self.value_width);
        let n_trees = self.tree_offset.len();
        let mut out = vec![0.0f32; n * k];
        out.par_chunks_mut(k * ROW_BLOCK)
            .enumerate()
            .for_each(|(bi, ochunk)| {
                let r0 = bi * ROW_BLOCK;
                let rows = ochunk.len() / k.max(1);
                // One accumulator per row in the block, walked in tree
                // order so every row's reduction chain matches the
                // row-at-a-time traversal exactly.
                let mut accs = vec![0.0f32; rows * acc_len];
                for (tb, offs) in self.tree_offset.chunks(TREE_BLOCK).enumerate() {
                    for (tj, &off) in offs.iter().enumerate() {
                        let ti = tb * TREE_BLOCK + tj;
                        for (rr, acc) in accs.chunks_mut(acc_len).enumerate() {
                            let row = &xv[(r0 + rr) * d..(r0 + rr + 1) * d];
                            let mut i = off;
                            while self.left[i] >= 0 {
                                i = if row[self.feature[i] as usize] < self.threshold[i] {
                                    off + self.left[i] as usize
                                } else {
                                    off + self.right[i] as usize
                                };
                            }
                            let v = &self.values[i * self.value_width..(i + 1) * self.value_width];
                            self.agg.accumulate(acc, ti, v);
                        }
                    }
                }
                for (rr, orow) in ochunk.chunks_mut(k).enumerate() {
                    self.agg
                        .finish(&accs[rr * acc_len..(rr + 1) * acc_len], n_trees, orow);
                }
            });
        Tensor::from_vec(out, &[n, k])
    }

    /// Reference row-at-a-time traversal (one record, all trees):
    /// the differential baseline for the blocked kernel.
    pub fn predict_row_at_a_time(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let (n, d) = (x.shape()[0], x.shape()[1]);
        let xs = x.to_contiguous();
        let xv = xs.as_slice();
        let k = self.n_outputs;
        let mut out = vec![0.0f32; n * k];
        for (r, orow) in out.chunks_mut(k).enumerate() {
            let row = &xv[r * d..(r + 1) * d];
            let mut acc = vec![0.0f32; self.agg.acc_len(self.value_width)];
            for (ti, &off) in self.tree_offset.iter().enumerate() {
                let mut i = off;
                while self.left[i] >= 0 {
                    i = if row[self.feature[i] as usize] < self.threshold[i] {
                        off + self.left[i] as usize
                    } else {
                        off + self.right[i] as usize
                    };
                }
                let v = &self.values[i * self.value_width..(i + 1) * self.value_width];
                self.agg.accumulate(&mut acc, ti, v);
            }
            self.agg.finish(&acc, self.tree_offset.len(), orow);
        }
        Tensor::from_vec(out, &[n, k])
    }

    /// Scores a batch and reports modeled device latency on `spec`.
    pub fn predict_simulated(&self, x: &Tensor<f32>, spec: &DeviceSpec) -> (Tensor<f32>, RunStats) {
        let start = Instant::now();
        let out = self.predict_batch(x);
        let wall = start.elapsed();
        let n = x.shape()[0] as f64;
        let t = self.tree_offset.len() as f64;
        let visits = n * t * self.avg_depth.max(1.0);
        let flops = visits * 4.0;
        let bytes = visits * BYTES_PER_NODE_VISIT;
        let mut sim = FIL_SETUP_S + FIL_KERNELS * spec.launch_overhead_us * 1e-6;
        sim += (flops / (spec.peak_gflops * 1e9)).max(bytes / (spec.mem_bandwidth_gbs * 1e9));
        sim += spec.transfer_time(x.numel() as f64 * 4.0);
        sim += spec.transfer_time(out.numel() as f64 * 4.0);
        let stats = RunStats {
            wall,
            simulated: Some(Duration::from_secs_f64(sim)),
            kernel_launches: FIL_KERNELS as usize,
            flops,
            bytes,
            ..RunStats::default()
        };
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_backend::device::{P100, V100};
    use hb_ml::forest::{ForestConfig, RandomForestClassifier};

    fn forest() -> (TreeEnsemble, Tensor<f32>) {
        let n = 200;
        let x = Tensor::from_fn(&[n, 5], |i| ((i[0] * 7 + i[1] * 3) % 17) as f32 * 0.3);
        let y: Vec<i64> = (0..n).map(|i| (i % 2) as i64).collect();
        let f = RandomForestClassifier::new(ForestConfig {
            n_trees: 9,
            max_depth: 4,
            ..Default::default()
        })
        .fit(&x, &y);
        (f.ensemble, x)
    }

    #[test]
    fn fil_matches_reference_scorer() {
        let (e, x) = forest();
        let fil = FilForest::new(&e);
        let got = fil.predict_batch(&x);
        let want = e.predict_proba(&x);
        assert_eq!(got.to_vec(), want.to_vec());
    }

    #[test]
    fn blocked_kernel_bit_identical_to_row_at_a_time() {
        let (e, x) = forest();
        let fil = FilForest::new(&e);
        // A batch spanning several row blocks with a ragged tail, and
        // tree count not a multiple of TREE_BLOCK (9 trees).
        let big = {
            let reps: Vec<&Tensor<f32>> = std::iter::repeat(&x).take(2).collect();
            Tensor::concat(&reps, 0)
        };
        let blocked = fil.predict_batch(&big);
        let reference = fil.predict_row_at_a_time(&big);
        let got: Vec<u32> = blocked.to_vec().iter().map(|v| v.to_bits()).collect();
        let want: Vec<u32> = reference.to_vec().iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn blocked_kernel_bit_identical_across_thread_counts() {
        let (e, x) = forest();
        let fil = FilForest::new(&e);
        let multi = fil.predict_batch(&x);
        #[allow(clippy::disallowed_methods)] // test-only pool construction
        let single = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("single-thread pool")
            .install(|| fil.predict_batch(&x));
        let got: Vec<u32> = single.to_vec().iter().map(|v| v.to_bits()).collect();
        let want: Vec<u32> = multi.to_vec().iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn simulated_latency_scales_with_batch() {
        let (e, x) = forest();
        let fil = FilForest::new(&e);
        let (_, small) = fil.predict_simulated(&x.slice(0, 0, 10).to_contiguous(), &P100);
        // A much larger batch must take longer but far less than
        // proportionally (fixed overhead amortizes).
        let big = {
            let reps: Vec<&Tensor<f32>> = std::iter::repeat(&x).take(50).collect();
            Tensor::concat(&reps, 0)
        };
        let (_, large) = fil.predict_simulated(&big, &P100);
        let ts = small.simulated.unwrap().as_secs_f64();
        let tl = large.simulated.unwrap().as_secs_f64();
        assert!(tl > ts);
        assert!(
            tl < ts * 1000.0,
            "fixed overhead should amortize: {ts} vs {tl}"
        );
    }

    #[test]
    fn newer_devices_are_faster_at_scale() {
        let (e, x) = forest();
        let fil = FilForest::new(&e);
        let big = {
            let reps: Vec<&Tensor<f32>> = std::iter::repeat(&x).take(200).collect();
            Tensor::concat(&reps, 0)
        };
        let (_, p) = fil.predict_simulated(&big, &P100);
        let (_, v) = fil.predict_simulated(&big, &V100);
        assert!(v.simulated.unwrap() <= p.simulated.unwrap());
    }
}
