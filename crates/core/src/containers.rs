//! Pipeline parsing: operator containers and extractor functions.
//!
//! Mirrors the paper's §3.2 Pipeline Parser: each fitted operator is
//! wrapped in an [`OperatorContainer`] carrying its signature, and a
//! per-signature *extractor function* pulls the trained parameters into a
//! normalized [`Params`] value that the Tensor DAG Compiler consumes.
//! Normalization buys reuse: all four scalers extract to the same
//! [`AffineParams`], so one conversion function serves them all.

use hb_ml::ensemble::TreeEnsemble;
use hb_ml::featurize::{BinEncode, Norm};
use hb_ml::linear::LinearLink;
use hb_ml::svm::Kernel;
use hb_pipeline::FittedOp;
use hb_tensor::Tensor;

use crate::TreeStrategy;

/// Parameters of an affine per-column transform `y = (x − offset) · scale`.
#[derive(Debug, Clone)]
pub struct AffineParams {
    /// Per-column subtrahend.
    pub offset: Vec<f32>,
    /// Per-column multiplier.
    pub scale: Vec<f32>,
}

/// Normalized fitted parameters of every supported operator.
#[derive(Debug, Clone)]
pub enum Params {
    /// Column-wise affine transform (all scalers).
    Affine(AffineParams),
    /// Threshold indicator.
    Binarize {
        /// Threshold.
        threshold: f32,
    },
    /// Row normalization.
    Normalize {
        /// Norm kind.
        norm: Norm,
    },
    /// NaN replacement.
    Impute {
        /// Per-column fill values.
        statistics: Vec<f32>,
    },
    /// NaN indicator features.
    MissingInd,
    /// Quantile discretization.
    KBins {
        /// Interior bin edges per column.
        edges: Vec<Vec<f32>>,
        /// Output encoding.
        encode: BinEncode,
    },
    /// Degree-2 polynomial expansion.
    Poly {
        /// Emit the bias column.
        include_bias: bool,
        /// Keep only cross terms.
        interaction_only: bool,
    },
    /// One-hot encoding over numeric categories.
    OneHot {
        /// Sorted category values per column.
        categories: Vec<Vec<f32>>,
    },
    /// Column selection.
    Select {
        /// Kept columns, ascending.
        indices: Vec<usize>,
        /// Input dimensionality at fit time, so width tracking (and with
        /// it the declared `[B, width]` input fact the memory planner
        /// needs) survives a §5.2 selector landing first in the pipeline.
        n_in: usize,
    },
    /// RBF kernel PCA projection.
    KernelProject {
        /// Training sample `[m, d]`.
        x_fit: Tensor<f32>,
        /// Scaled eigenvectors `[m, k]`.
        alphas: Tensor<f32>,
        /// Training-kernel column means `[m]`.
        k_fit_rows: Vec<f32>,
        /// Training-kernel grand mean.
        k_fit_all: f32,
        /// RBF bandwidth.
        gamma: f32,
    },
    /// Linear projection (PCA / TruncatedSVD).
    Project {
        /// Optional centering means.
        mean: Option<Vec<f32>>,
        /// Components `[k, d]`.
        components: Tensor<f32>,
    },
    /// Linear model (logistic / SGD / linear SVM).
    Linear {
        /// Weights `[k, d]`.
        weights: Tensor<f32>,
        /// Bias `[k]`.
        bias: Vec<f32>,
        /// Output link.
        link: LinearLink,
    },
    /// Kernel SVM.
    Svm {
        /// Support vectors `[m, d]`.
        sv: Tensor<f32>,
        /// Dual coefficients `[m]`.
        dual: Vec<f32>,
        /// Intercept.
        intercept: f32,
        /// Kernel.
        kernel: Kernel,
    },
    /// Gaussian NB in two-GEMM form:
    /// `ll = x²·Aᵀ + x·Bᵀ + bias` (paper §4.2 "avoid large
    /// intermediates").
    GaussNb {
        /// Quadratic coefficients `[C, d]` (`−1/(2σ²)`).
        a: Tensor<f32>,
        /// Linear coefficients `[C, d]` (`μ/σ²`).
        b: Tensor<f32>,
        /// Per-class constants.
        bias: Vec<f32>,
    },
    /// Bernoulli NB in GEMM form.
    BernNb {
        /// `log p − log(1−p)` `[C, d]`.
        delta: Tensor<f32>,
        /// `Σ log(1−p) + prior` `[C]`.
        bias: Vec<f32>,
        /// Input binarization threshold.
        binarize: f32,
    },
    /// Multinomial NB in GEMM form.
    MultiNb {
        /// `log p(f|c)` `[C, d]`.
        w: Tensor<f32>,
        /// Log priors `[C]`.
        bias: Vec<f32>,
    },
    /// One-hidden-layer MLP.
    Mlp {
        /// Input→hidden weights `[h, d]`.
        w1: Tensor<f32>,
        /// Hidden bias `[h]`.
        b1: Vec<f32>,
        /// Hidden→output weights `[C, h]`.
        w2: Tensor<f32>,
        /// Output bias `[C]`.
        b2: Vec<f32>,
    },
    /// Tree ensemble (decision tree / forest / boosting).
    Trees(TreeEnsemble),
}

/// A parsed pipeline operator: signature, extracted parameters, and the
/// tree strategy the optimizer annotated (trees only).
#[derive(Debug, Clone)]
pub struct OperatorContainer {
    /// Operator signature.
    pub signature: &'static str,
    /// Extracted parameters.
    pub params: Params,
    /// Chosen tree-compilation strategy (annotated by the optimizer).
    pub strategy: Option<TreeStrategy>,
}

/// Extractor function: pulls normalized parameters out of a fitted
/// operator (paper §3.2).
pub fn extract(op: &FittedOp) -> Params {
    match op {
        FittedOp::StandardScaler(s) => Params::Affine(AffineParams {
            offset: s.mean.clone(),
            scale: s.scale.iter().map(|v| 1.0 / v).collect(),
        }),
        FittedOp::MinMaxScaler(s) => Params::Affine(AffineParams {
            offset: s.data_min.clone(),
            scale: s.inv_range.clone(),
        }),
        FittedOp::MaxAbsScaler(s) => Params::Affine(AffineParams {
            offset: vec![0.0; s.inv_scale.len()],
            scale: s.inv_scale.clone(),
        }),
        FittedOp::RobustScaler(s) => Params::Affine(AffineParams {
            offset: s.center.clone(),
            scale: s.inv_scale.clone(),
        }),
        FittedOp::Binarizer(b) => Params::Binarize {
            threshold: b.threshold,
        },
        FittedOp::Normalizer(n) => Params::Normalize { norm: n.norm },
        FittedOp::SimpleImputer(i) => Params::Impute {
            statistics: i.statistics.clone(),
        },
        FittedOp::MissingIndicator(_) => Params::MissingInd,
        FittedOp::KBinsDiscretizer(k) => Params::KBins {
            edges: k.edges.clone(),
            encode: k.encode,
        },
        FittedOp::PolynomialFeatures(p) => Params::Poly {
            include_bias: p.include_bias,
            interaction_only: p.interaction_only,
        },
        FittedOp::OneHotEncoder(o) => Params::OneHot {
            categories: o.categories.clone(),
        },
        FittedOp::FeatureSelector(s) => Params::Select {
            indices: s.selected.clone(),
            n_in: s.n_features_in,
        },
        FittedOp::Pca(p) => Params::Project {
            mean: Some(p.mean.clone()),
            components: p.components.clone(),
        },
        FittedOp::TruncatedSvd(t) => Params::Project {
            mean: None,
            components: t.components.clone(),
        },
        FittedOp::KernelPca(kp) => Params::KernelProject {
            x_fit: kp.x_fit.clone(),
            alphas: kp.alphas.clone(),
            k_fit_rows: kp.k_fit_rows.clone(),
            k_fit_all: kp.k_fit_all,
            gamma: kp.gamma,
        },
        FittedOp::Linear(l) => Params::Linear {
            weights: l.weights.clone(),
            bias: l.bias.clone(),
            link: l.link,
        },
        FittedOp::Svc(s) => Params::Svm {
            sv: s.support_vectors.clone(),
            dual: s.dual_coef.clone(),
            intercept: s.intercept,
            kernel: s.kernel,
        },
        FittedOp::GaussianNb(g) => {
            let (c, d) = (g.theta.shape()[0], g.theta.shape()[1]);
            let theta = g.theta.to_vec();
            let var = g.var.to_vec();
            let mut a = vec![0.0f32; c * d];
            let mut b = vec![0.0f32; c * d];
            let mut bias = g.class_log_prior.clone();
            for cls in 0..c {
                for f in 0..d {
                    let v = var[cls * d + f];
                    let mu = theta[cls * d + f];
                    a[cls * d + f] = -0.5 / v;
                    b[cls * d + f] = mu / v;
                    bias[cls] += -0.5 * (2.0 * std::f32::consts::PI * v).ln() - mu * mu / (2.0 * v);
                }
            }
            Params::GaussNb {
                a: Tensor::from_vec(a, &[c, d]),
                b: Tensor::from_vec(b, &[c, d]),
                bias,
            }
        }
        FittedOp::BernoulliNb(nb) => {
            let delta = nb.feature_log_prob.sub(&nb.neg_log_prob);
            let base = nb.neg_log_prob.sum_axis(1, false);
            let bias: Vec<f32> = base
                .to_vec()
                .iter()
                .zip(nb.class_log_prior.iter())
                .map(|(b, p)| b + p)
                .collect();
            Params::BernNb {
                delta,
                bias,
                binarize: nb.binarize,
            }
        }
        FittedOp::MultinomialNb(nb) => Params::MultiNb {
            w: nb.feature_log_prob.clone(),
            bias: nb.class_log_prior.clone(),
        },
        FittedOp::Mlp(m) => Params::Mlp {
            w1: m.w1.clone(),
            b1: m.b1.clone(),
            w2: m.w2.clone(),
            b2: m.b2.clone(),
        },
        FittedOp::TreeEnsemble(e) => Params::Trees(e.clone()),
    }
}

/// Parses a pipeline into containers (no strategy annotation yet).
pub fn parse(pipeline: &hb_pipeline::Pipeline) -> Vec<OperatorContainer> {
    pipeline
        .ops
        .iter()
        .map(|op| OperatorContainer {
            signature: op.signature(),
            params: extract(op),
            strategy: None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_ml::featurize::StandardScaler;

    #[test]
    fn scalers_normalize_to_affine() {
        let x = Tensor::from_vec(vec![0.0, 2.0, 4.0, 6.0], &[4, 1]);
        let s = StandardScaler::fit(&x);
        let p = extract(&FittedOp::StandardScaler(s.clone()));
        match p {
            Params::Affine(a) => {
                assert_eq!(a.offset, s.mean);
                assert!((a.scale[0] - 1.0 / s.scale[0]).abs() < 1e-6);
            }
            other => panic!("unexpected params {other:?}"),
        }
    }

    #[test]
    fn gaussian_nb_expansion_matches_reference() {
        // The two-GEMM form must reproduce joint_log_likelihood exactly.
        let x = Tensor::from_fn(&[30, 3], |i| ((i[0] * 5 + i[1] * 3) % 7) as f32 * 0.5);
        let y: Vec<i64> = (0..30).map(|i| (i % 2) as i64).collect();
        let nb = hb_ml::naive_bayes::GaussianNb::fit(&x, &y);
        let want = nb.joint_log_likelihood(&x);
        let p = extract(&FittedOp::GaussianNb(nb));
        let Params::GaussNb { a, b, bias } = p else {
            panic!("wrong params")
        };
        let x2 = x.mul(&x);
        let bias_t = Tensor::from_vec(bias.clone(), &[1, bias.len()]);
        let got = x2
            .matmul(&a.transpose(0, 1))
            .add(&x.matmul(&b.transpose(0, 1)))
            .add(&bias_t);
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g - w).abs() < 1e-3, "{g} vs {w}");
        }
    }

    #[test]
    fn parse_preserves_order_and_signatures() {
        let x = Tensor::from_fn(&[20, 2], |i| (i[0] + i[1]) as f32);
        let y = hb_pipeline::Targets::Classes((0..20).map(|i| (i % 2) as i64).collect());
        let pipe = hb_pipeline::fit_pipeline(
            &[
                hb_pipeline::OpSpec::StandardScaler,
                hb_pipeline::OpSpec::GaussianNb,
            ],
            &x,
            &y,
        );
        let containers = parse(&pipe);
        assert_eq!(containers.len(), 2);
        assert_eq!(containers[0].signature, "StandardScaler");
        assert_eq!(containers[1].signature, "GaussianNB");
        assert!(containers.iter().all(|c| c.strategy.is_none()));
    }
}
