//! The Hummingbird compiler: traditional-ML pipelines → tensor DAGs.
//!
//! This crate implements the paper's core contribution (Figure 2):
//!
//! 1. **Pipeline Parser** ([`containers`]) — wraps each fitted operator
//!    in a container keyed by its signature and runs the per-signature
//!    extractor function;
//! 2. **Optimizer** ([`optimizer`], [`strategies::heuristic_strategy`]) —
//!    annotates tree containers with a compilation strategy (§5.1
//!    heuristics) and applies the runtime-independent rewrites of §5.2
//!    (feature-selection push-down and injection);
//! 3. **Tensor DAG Compiler** ([`convert`], [`strategies`]) — emits a
//!    small set of tensor operators per container and lowers the result
//!    to an `hb-backend` executable (Eager/Script/Compiled on CPU or a
//!    simulated GPU).
//!
//! ```
//! use hb_core::{compile, CompileOptions};
//! use hb_pipeline::{fit_pipeline, OpSpec, Targets};
//! use hb_tensor::Tensor;
//!
//! let x = Tensor::from_fn(&[80, 4], |i| ((i[0] * 7 + i[1]) % 13) as f32);
//! let y = Targets::Classes((0..80).map(|i| (i % 2) as i64).collect());
//! let pipe = fit_pipeline(&[OpSpec::StandardScaler, OpSpec::GaussianNb], &x, &y);
//! let model = compile(&pipe, &CompileOptions::default()).unwrap();
//! let proba = model.predict_proba(&x).unwrap();
//! assert_eq!(proba.shape(), &[80, 2]);
//! ```

// Pure-safe-Rust policy: every crate in this workspace is 100% safe
// Rust; see DESIGN.md ("Unsafe-code policy").
#![forbid(unsafe_code)]

pub mod containers;
pub mod convert;
pub mod fil;
pub mod optimizer;
pub mod sparse;
pub mod strategies;
pub mod strings;

use std::time::Duration;

pub use hb_backend::CancelToken;
use hb_backend::{
    Artifact, Backend, Device, ExecError, Executable, FaultPlan, GraphBuilder, GraphError,
    RunStats, ShapeFact, SymDim, ValueFact,
};
use hb_ml::linear::LinearLink;
use hb_pipeline::Pipeline;
use hb_tensor::{DType, DynTensor, Tensor, TensorError};

use containers::{parse, OperatorContainer, Params};

/// Unified error taxonomy for the whole compile-and-serve stack.
///
/// Every layer keeps its own precise error type ([`CompileError`],
/// [`ExecError`], [`TensorError`], [`hb_backend::GraphError`]); `HbError`
/// is the sum type callers at the top (scoring APIs, the serving runtime)
/// receive, so one `match` covers every failure mode and malformed
/// requests can never surface as a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum HbError {
    /// Pipeline → tensor-DAG compilation failed.
    Compile(CompileError),
    /// Graph execution failed (OOM, bad inputs, kernel fault).
    Exec(ExecError),
    /// A tensor-level shape/dtype/index violation.
    Tensor(TensorError),
    /// A graph artifact failed validation.
    Graph(hb_backend::GraphError),
    /// The request itself is malformed (wrong rank or feature width).
    BadRequest(String),
}

impl std::fmt::Display for HbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HbError::Compile(e) => write!(f, "compile error: {e}"),
            HbError::Exec(e) => write!(f, "execution error: {e}"),
            HbError::Tensor(e) => write!(f, "tensor error: {e}"),
            HbError::Graph(e) => write!(f, "graph error: {e}"),
            HbError::BadRequest(msg) => write!(f, "bad request: {msg}"),
        }
    }
}

impl std::error::Error for HbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HbError::Compile(e) => Some(e),
            HbError::Exec(e) => Some(e),
            HbError::Tensor(e) => Some(e),
            HbError::Graph(e) => Some(e),
            HbError::BadRequest(_) => None,
        }
    }
}

impl From<CompileError> for HbError {
    fn from(e: CompileError) -> Self {
        HbError::Compile(e)
    }
}

impl From<ExecError> for HbError {
    fn from(e: ExecError) -> Self {
        HbError::Exec(e)
    }
}

impl From<TensorError> for HbError {
    fn from(e: TensorError) -> Self {
        HbError::Tensor(e)
    }
}

impl From<hb_backend::GraphError> for HbError {
    fn from(e: hb_backend::GraphError) -> Self {
        HbError::Graph(e)
    }
}

impl HbError {
    /// True for failures a retry might clear; request-shaped and
    /// compile-time errors are deterministic.
    pub fn is_transient(&self) -> bool {
        matches!(self, HbError::Exec(e) if e.is_transient())
    }
}

/// Tree-ensemble compilation strategy (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TreeStrategy {
    /// Choose via the §5.1 heuristics.
    Auto,
    /// Strategy 1: three batched GEMMs (Algorithm 1).
    Gemm,
    /// Strategy 2: gather/where traversal (Algorithm 2).
    TreeTraversal,
    /// Strategy 3: perfect-tree traversal (Algorithm 3).
    PerfectTreeTraversal,
}

impl TreeStrategy {
    /// Display label used in bench tables.
    pub fn label(self) -> &'static str {
        match self {
            TreeStrategy::Auto => "Auto",
            TreeStrategy::Gemm => "GEMM",
            TreeStrategy::TreeTraversal => "TT",
            TreeStrategy::PerfectTreeTraversal => "PTT",
        }
    }
}

/// Compilation settings.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Target execution backend.
    pub backend: Backend,
    /// Target device (CPU or simulated accelerator).
    pub device: Device,
    /// Tree strategy (`Auto` applies the paper's heuristics).
    pub tree_strategy: TreeStrategy,
    /// Expected scoring batch size — the "runtime statistic" the §5.1
    /// heuristics consult.
    pub expected_batch: usize,
    /// Apply the §5.2 runtime-independent pipeline rewrites.
    pub optimize_pipeline: bool,
    /// Input feature width; inferred from the first operator when
    /// possible.
    pub input_width: Option<usize>,
    /// Simulated faults to inject into lowering and execution (chaos
    /// testing; [`FaultPlan::none`] leaves the runtime untouched).
    pub faults: FaultPlan,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            backend: Backend::Compiled,
            device: Device::cpu(),
            tree_strategy: TreeStrategy::Auto,
            expected_batch: 1000,
            optimize_pipeline: true,
            input_width: None,
            faults: FaultPlan::none(),
        }
    }
}

/// Compilation failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The pipeline has no operators.
    EmptyPipeline,
    /// An operator cannot be compiled.
    UnsupportedOperator(String),
    /// PerfectTreeTraversal was requested for trees whose completed
    /// depth would blow up memory (§5.1).
    PttTooDeep {
        /// Ensemble depth.
        depth: usize,
        /// Maximum supported depth.
        max: usize,
    },
    /// The input feature width could not be inferred and an operator
    /// (e.g. `PolynomialFeatures` as the first step) needs it.
    UnknownInputWidth,
    /// Backend lowering failed (e.g. an injected optimization-pass
    /// fault); the pipeline may still compile at a less aggressive
    /// backend.
    Lowering(String),
    /// The lowered tensor graph failed the static shape/dtype verifier.
    /// This is a converter bug (or a malformed custom converter), not a
    /// property of the backend — no rung of the degradation ladder can
    /// execute the graph, so admission must refuse the model.
    Verify(GraphError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::EmptyPipeline => write!(f, "cannot compile an empty pipeline"),
            CompileError::UnsupportedOperator(s) => write!(f, "unsupported operator: {s}"),
            CompileError::PttTooDeep { depth, max } => {
                write!(f, "PerfectTreeTraversal needs depth {depth} > max {max}")
            }
            CompileError::UnknownInputWidth => {
                write!(f, "input width unknown; set CompileOptions::input_width")
            }
            CompileError::Lowering(msg) => write!(f, "backend lowering failed: {msg}"),
            CompileError::Verify(e) => write!(f, "graph verification failed: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// What the compiled graph's output means, deciding how `predict`
/// post-processes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutputKind {
    /// `[n, C]` class probabilities → argmax.
    Proba,
    /// `[n, 1]` margins → sign (or argmax for multiclass margins).
    Margin,
    /// `[n, 1]` regression values → identity.
    Value,
    /// Featurizer-only pipeline → transformed matrix.
    Matrix,
}

/// Per-operator compilation report (signature + chosen tree strategy).
#[derive(Debug, Clone)]
pub struct OpReport {
    /// Operator signature.
    pub signature: String,
    /// Tree strategy, for tree containers.
    pub strategy: Option<TreeStrategy>,
}

/// A pipeline compiled to tensor computations, ready to score.
pub struct CompiledModel {
    exe: Executable,
    output: OutputKind,
    input_width: Option<usize>,
    /// Per-operator compilation report.
    pub report: Vec<OpReport>,
}

impl CompiledModel {
    /// Rejects malformed scoring requests before they reach a kernel.
    fn validate_request(&self, x: &Tensor<f32>) -> Result<(), HbError> {
        if x.ndim() != 2 {
            return Err(HbError::BadRequest(format!(
                "expected a [batch, features] matrix, got rank {}",
                x.ndim()
            )));
        }
        if let Some(w) = self.input_width {
            if x.shape()[1] != w {
                return Err(HbError::BadRequest(format!(
                    "feature width mismatch: model expects {w} features, request has {}",
                    x.shape()[1]
                )));
            }
        }
        Ok(())
    }

    /// The feature width the model was compiled for, when known.
    pub fn input_width(&self) -> Option<usize> {
        self.input_width
    }

    /// Scores a batch, returning the raw graph output (probabilities,
    /// margins, values, or a transformed matrix).
    pub fn predict_proba(&self, x: &Tensor<f32>) -> Result<Tensor<f32>, HbError> {
        self.validate_request(x)?;
        let out = self.exe.run(&[DynTensor::F32(x.clone())])?;
        #[allow(clippy::disallowed_methods)] // invariant, message documents it
        Ok(out
            .into_iter()
            .next()
            .expect("graph has one output")
            .as_f32()
            .clone())
    }

    /// Like [`CompiledModel::predict_proba`], but checks `cancel` between
    /// node evaluations: a request whose deadline passes (or whose server
    /// is shutting down) stops mid-graph with
    /// [`hb_backend::ExecError::Cancelled`] instead of running every
    /// remaining kernel.
    pub fn predict_proba_cancel(
        &self,
        x: &Tensor<f32>,
        cancel: &CancelToken,
    ) -> Result<Tensor<f32>, HbError> {
        self.validate_request(x)?;
        let (out, _) = self
            .exe
            .run_with_stats_cancel(&[DynTensor::F32(x.clone())], Some(cancel))?;
        #[allow(clippy::disallowed_methods)] // invariant, message documents it
        Ok(out
            .into_iter()
            .next()
            .expect("graph has one output")
            .as_f32()
            .clone())
    }

    /// Scores a batch and returns execution statistics.
    pub fn predict_with_stats(&self, x: &Tensor<f32>) -> Result<(Tensor<f32>, RunStats), HbError> {
        self.validate_request(x)?;
        let (out, stats) = self.exe.run_with_stats(&[DynTensor::F32(x.clone())])?;
        #[allow(clippy::disallowed_methods)] // invariant, message documents it
        Ok((
            out.into_iter()
                .next()
                .expect("graph has one output")
                .as_f32()
                .clone(),
            stats,
        ))
    }

    /// Hard predictions: argmax class, margin sign, or raw values.
    pub fn predict(&self, x: &Tensor<f32>) -> Result<Tensor<f32>, HbError> {
        let out = self.predict_proba(x)?;
        Ok(match self.output {
            OutputKind::Proba if out.ndim() == 2 && out.shape()[1] > 1 => {
                out.argmax_axis(1, false).map(|v| v as f32)
            }
            OutputKind::Margin if out.ndim() == 2 && out.shape()[1] == 1 => {
                let flat = out.map(|v| f32::from(v > 0.0));
                flat.reshape(&[flat.shape()[0]])
            }
            OutputKind::Margin => out.argmax_axis(1, false).map(|v| v as f32),
            OutputKind::Value if out.ndim() == 2 && out.shape()[1] == 1 => {
                let n = out.shape()[0];
                out.reshape(&[n])
            }
            _ => out,
        })
    }

    /// What the terminal output means, as a stable label
    /// (`"proba"`, `"margin"`, `"value"`, or `"matrix"`).
    pub fn output_kind_label(&self) -> &'static str {
        match self.output {
            OutputKind::Proba => "proba",
            OutputKind::Margin => "margin",
            OutputKind::Value => "value",
            OutputKind::Matrix => "matrix",
        }
    }

    /// Abstract-interpretation facts for every graph output under the
    /// serving admission precondition (finite f32 inputs), computed
    /// over the optimized graph actually executed.
    ///
    /// # Errors
    ///
    /// Propagates structural errors from shape inference; a compiled
    /// model's graph already passed the verifier, so this never fails
    /// in practice.
    pub fn output_value_facts(&self) -> Result<Vec<ValueFact>, GraphError> {
        self.exe.output_value_facts()
    }

    /// Bundles the optimized graph with its statically derived
    /// signature and value facts for export.
    ///
    /// # Errors
    ///
    /// Propagates verifier errors (never expected for a compiled
    /// model).
    pub fn artifact(&self) -> Result<Artifact, GraphError> {
        Artifact::from_graph(self.exe.graph(), self.output_kind_label())
    }

    /// Conversion time of the lowering step (paper Table 10).
    pub fn compile_time(&self) -> Duration {
        self.exe.compile_time()
    }

    /// The underlying executable (graph inspection, stats).
    pub fn executable(&self) -> &Executable {
        &self.exe
    }

    /// Interns the compiled graph's constant tensors into a shared
    /// [`hb_backend::ConstPool`] so identical parameter blocks across
    /// registered models (and across this model's own ladder rungs)
    /// collapse to one buffer. Bit-identical; call before serving.
    pub fn intern_constants(&mut self, pool: &hb_backend::ConstPool) -> hb_backend::DedupStats {
        self.exe.intern_constants(pool)
    }

    /// Resident memory attributable to this model beyond constants
    /// already counted in `seen`: unshared parameter bytes plus warm
    /// plan-cache arenas (see [`Executable::plan_cache_bytes`]).
    pub fn memory_footprint(&self, seen: &mut std::collections::HashSet<usize>) -> usize {
        self.exe.unique_const_bytes(seen) + self.exe.plan_cache_bytes()
    }
}

/// Infers the input width an operator's parameters imply, if any.
fn params_width_in(p: &Params) -> Option<usize> {
    match p {
        Params::Affine(a) => Some(a.offset.len()),
        Params::Impute { statistics } => Some(statistics.len()),
        Params::KBins { edges, .. } => Some(edges.len()),
        Params::OneHot { categories } => Some(categories.len()),
        Params::Project { components, .. } => Some(components.shape()[1]),
        Params::KernelProject { x_fit, .. } => Some(x_fit.shape()[1]),
        Params::Linear { weights, .. } => Some(weights.shape()[1]),
        Params::Svm { sv, .. } => Some(sv.shape()[1]),
        Params::GaussNb { a, .. } => Some(a.shape()[1]),
        Params::BernNb { delta, .. } => Some(delta.shape()[1]),
        Params::MultiNb { w, .. } => Some(w.shape()[1]),
        Params::Mlp { w1, .. } => Some(w1.shape()[1]),
        Params::Trees(e) => Some(e.n_features),
        Params::Select { n_in, .. } => Some(*n_in),
        _ => None,
    }
}

/// Output width an operator produces given its input width.
fn params_width_out(p: &Params, width_in: Option<usize>) -> Option<usize> {
    match p {
        Params::Affine(a) => Some(a.offset.len()),
        Params::Impute { statistics } => Some(statistics.len()),
        Params::Binarize { .. } | Params::Normalize { .. } | Params::MissingInd => width_in,
        Params::KBins { edges, encode } => Some(match encode {
            hb_ml::featurize::BinEncode::Ordinal => edges.len(),
            hb_ml::featurize::BinEncode::OneHot => edges.iter().map(|e| e.len() + 1).sum(),
        }),
        Params::Poly {
            include_bias,
            interaction_only,
        } => width_in.map(|d| {
            let pairs = if *interaction_only {
                d * (d - 1) / 2
            } else {
                d * (d + 1) / 2
            };
            usize::from(*include_bias) + d + pairs
        }),
        Params::OneHot { categories } => Some(categories.iter().map(|c| c.len()).sum()),
        Params::Select { indices, .. } => Some(indices.len()),
        Params::Project { components, .. } => Some(components.shape()[0]),
        Params::KernelProject { alphas, .. } => Some(alphas.shape()[1]),
        // Model outputs are terminal; width tracking stops.
        _ => None,
    }
}

/// Classifies the pipeline's terminal output for `predict`.
fn output_kind(containers: &[OperatorContainer]) -> OutputKind {
    match containers.last().map(|c| &c.params) {
        Some(Params::Linear {
            link: LinearLink::Margin,
            ..
        })
        | Some(Params::Svm { .. }) => OutputKind::Margin,
        Some(Params::Trees(e)) if e.n_classes <= 1 => OutputKind::Value,
        Some(Params::Trees(_))
        | Some(Params::Linear { .. })
        | Some(Params::GaussNb { .. })
        | Some(Params::BernNb { .. })
        | Some(Params::MultiNb { .. })
        | Some(Params::Mlp { .. }) => OutputKind::Proba,
        _ => OutputKind::Matrix,
    }
}

/// A user-supplied conversion function overriding the built-in converter
/// for one operator signature.
///
/// Receives the fitted operator, the graph builder, the node carrying the
/// operator's input, and the inferred input width; returns the output
/// node.
pub type ConvertFn = std::sync::Arc<
    dyn Fn(
            &hb_pipeline::FittedOp,
            &mut GraphBuilder,
            hb_backend::NodeId,
            Option<usize>,
        ) -> Result<hb_backend::NodeId, CompileError>
        + Send
        + Sync,
>;

/// Extensible converter registry (the paper's §3.2 "HB parser is
/// extensible, allowing users to easily add new extractor functions"):
/// user conversion functions registered by operator signature take
/// precedence over the built-ins.
#[derive(Default, Clone)]
pub struct ConverterRegistry {
    overrides: std::collections::HashMap<&'static str, ConvertFn>,
}

impl ConverterRegistry {
    /// Creates an empty registry (built-ins only).
    pub fn new() -> ConverterRegistry {
        ConverterRegistry::default()
    }

    /// Registers (or replaces) a conversion function for `signature`.
    pub fn register(&mut self, signature: &'static str, f: ConvertFn) {
        self.overrides.insert(signature, f);
    }

    /// Looks up an override.
    pub fn get(&self, signature: &str) -> Option<&ConvertFn> {
        self.overrides.get(signature)
    }
}

/// Compiles a fitted pipeline into tensor computations.
///
/// # Errors
///
/// Returns a [`CompileError`] for empty pipelines, unsupported operator
/// configurations, or strategy/memory violations.
pub fn compile(pipeline: &Pipeline, opts: &CompileOptions) -> Result<CompiledModel, CompileError> {
    compile_with_registry(pipeline, opts, &ConverterRegistry::default())
}

/// [`compile`] with user converter overrides.
///
/// # Errors
///
/// Same failure modes as [`compile`], plus whatever the user converters
/// return.
pub fn compile_with_registry(
    pipeline: &Pipeline,
    opts: &CompileOptions,
    registry: &ConverterRegistry,
) -> Result<CompiledModel, CompileError> {
    if pipeline.is_empty() {
        return Err(CompileError::EmptyPipeline);
    }
    // Runtime-independent optimizations (§5.2).
    let optimized;
    let pipeline = if opts.optimize_pipeline {
        optimized = optimizer::optimize_pipeline(pipeline);
        &optimized
    } else {
        pipeline
    };

    // Parse + annotate (Figure 2 phases 1–2).
    let mut containers = parse(pipeline);
    for c in &mut containers {
        if let Params::Trees(e) = &c.params {
            let s = match opts.tree_strategy {
                TreeStrategy::Auto => strategies::heuristic_strategy(e, opts),
                s => s,
            };
            c.strategy = Some(s);
        }
    }

    // Tensor DAG compilation (Figure 2 phase 3) with width tracking.
    let mut b = GraphBuilder::new();
    let x = b.input(DType::F32);
    let mut width = opts
        .input_width
        .or(pipeline.input_width)
        .or_else(|| containers.first().and_then(|c| params_width_in(&c.params)));
    let input_width = width;
    // Declare the symbolic input shape [B, width] so the static verifier
    // can propagate concrete facts; an unknown width degrades gracefully
    // to [B, ?] and the verifier checks only what it can prove.
    b.set_input_shape(
        x,
        ShapeFact::Known(vec![
            SymDim::batch(),
            input_width.map_or(SymDim::Unknown, SymDim::fixed),
        ]),
    );
    let mut cur = x;
    let mut report = Vec::with_capacity(containers.len());
    for (c, op) in containers.iter().zip(pipeline.ops.iter()) {
        if let Some(custom) = registry.get(c.signature) {
            cur = custom(op, &mut b, cur, width)?;
            // Custom converters may change the width arbitrarily.
            width = None;
        } else {
            cur = convert::convert(c, &mut b, cur, width, opts)?;
            width = params_width_out(&c.params, width);
        }
        report.push(OpReport {
            signature: c.signature.to_string(),
            strategy: c.strategy,
        });
    }
    b.output(cur);
    let graph = b.build();
    // Static verification gate: prove shape/dtype consistency for every
    // batch size before handing the graph to any backend.
    graph.verify().map_err(CompileError::Verify)?;
    let output = output_kind(&containers);
    let exe =
        Executable::try_new_with_faults(graph, opts.backend, opts.device, opts.faults.clone())
            .map_err(|e| CompileError::Lowering(e.to_string()))?;
    Ok(CompiledModel {
        exe,
        output,
        input_width,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_ml::metrics::allclose;
    use hb_pipeline::{fit_pipeline, OpSpec, Targets};

    fn data(n: usize, d: usize) -> (Tensor<f32>, Targets) {
        let x = Tensor::from_fn(&[n, d], |i| {
            let c = (i[0] % 2) as f32;
            c * 2.5 + ((i[0] * 13 + i[1] * 7) % 11) as f32 * 0.2
        });
        let y = Targets::Classes((0..n).map(|i| (i % 2) as i64).collect());
        (x, y)
    }

    /// Compiled output must match the imperative reference within the
    /// paper's validation tolerance for every backend.
    fn assert_matches_reference(pipe: &hb_pipeline::Pipeline, x: &Tensor<f32>) {
        let want = pipe.predict_proba(x);
        for backend in Backend::ALL {
            let opts = CompileOptions {
                backend,
                ..CompileOptions::default()
            };
            let model = compile(pipe, &opts).unwrap();
            let got = model.predict_proba(x).unwrap();
            assert!(
                allclose(&got, &want, 1e-4, 1e-4),
                "{backend:?} diverges from reference"
            );
        }
    }

    #[test]
    fn scaler_plus_logreg_compiles_and_matches() {
        let (x, y) = data(100, 5);
        let pipe = fit_pipeline(
            &[
                OpSpec::StandardScaler,
                OpSpec::LogisticRegression(Default::default()),
            ],
            &x,
            &y,
        );
        assert_matches_reference(&pipe, &x);
    }

    #[test]
    fn forest_all_strategies_match_reference() {
        let (x, y) = data(150, 6);
        let pipe = fit_pipeline(
            &[OpSpec::RandomForestClassifier(
                hb_ml::forest::ForestConfig {
                    n_trees: 7,
                    max_depth: 4,
                    ..Default::default()
                },
            )],
            &x,
            &y,
        );
        let want = pipe.predict_proba(&x);
        for strategy in [
            TreeStrategy::Gemm,
            TreeStrategy::TreeTraversal,
            TreeStrategy::PerfectTreeTraversal,
        ] {
            let opts = CompileOptions {
                tree_strategy: strategy,
                ..Default::default()
            };
            let model = compile(&pipe, &opts).unwrap();
            let got = model.predict_proba(&x).unwrap();
            assert!(
                allclose(&got, &want, 1e-4, 1e-4),
                "{} diverges from reference",
                strategy.label()
            );
            // The injection pass may prepend a feature selector; the
            // tree container is the one carrying the strategy.
            let tree_strategy = model
                .report
                .iter()
                .find_map(|r| r.strategy)
                .expect("tree op in report");
            assert_eq!(tree_strategy, strategy);
        }
    }

    #[test]
    fn gbdt_sigmoid_link_matches() {
        let (x, y) = data(200, 4);
        let pipe = fit_pipeline(
            &[OpSpec::GbdtClassifier(hb_ml::gbdt::GbdtConfig {
                n_rounds: 10,
                max_depth: 3,
                ..Default::default()
            })],
            &x,
            &y,
        );
        assert_matches_reference(&pipe, &x);
    }

    #[test]
    fn predict_applies_argmax() {
        let (x, y) = data(80, 4);
        let pipe = fit_pipeline(&[OpSpec::GaussianNb], &x, &y);
        let model = compile(&pipe, &CompileOptions::default()).unwrap();
        let pred = model.predict(&x).unwrap();
        let want = pipe.predict(&x);
        assert_eq!(pred.to_vec(), want.to_vec());
    }

    #[test]
    fn empty_pipeline_errors() {
        let pipe = Pipeline::default();
        match compile(&pipe, &Default::default()) {
            Err(CompileError::EmptyPipeline) => {}
            Err(other) => panic!("unexpected error {other:?}"),
            Ok(_) => panic!("empty pipeline compiled"),
        }
    }

    #[test]
    fn ptt_too_deep_errors() {
        // A forest allowed to grow very deep must reject PTT.
        let n = 600;
        let x = Tensor::from_fn(&[n, 1], |i| i[0] as f32 + ((i[0] * 37) % 101) as f32 * 0.01);
        let y = Targets::Classes((0..n).map(|i| ((i / 3) % 2) as i64).collect());
        let pipe = fit_pipeline(
            &[OpSpec::RandomForestClassifier(
                hb_ml::forest::ForestConfig {
                    n_trees: 1,
                    max_depth: 30,
                    bootstrap: false,
                    max_features: 1,
                    n_bins: 255,
                    ..Default::default()
                },
            )],
            &x,
            &y,
        );
        let depth = match &pipe.ops[0] {
            hb_pipeline::FittedOp::TreeEnsemble(e) => e.max_depth(),
            _ => unreachable!(),
        };
        let opts = CompileOptions {
            tree_strategy: TreeStrategy::PerfectTreeTraversal,
            ..Default::default()
        };
        let res = compile(&pipe, &opts);
        if depth > strategies::traversal::PTT_MAX_DEPTH {
            assert!(matches!(res, Err(CompileError::PttTooDeep { .. })));
        } else {
            // The tree did not grow deep enough to trigger the guard;
            // compilation must still succeed.
            assert!(res.is_ok());
        }
    }

    #[test]
    fn heuristics_follow_paper_rules() {
        use hb_ml::ensemble::{Aggregation, TreeEnsemble};
        use hb_ml::tree::Tree;
        // Build a chain tree of the requested depth.
        let deep = |d: usize| {
            let mut t = Tree::leaf(vec![1.0]);
            for _ in 0..d {
                let off = 1i32;
                let mut left = vec![off];
                left.extend(t.left.iter().map(|&v| if v < 0 { v } else { v + off }));
                left.push(-1);
                let mut right = vec![(t.n_nodes() + 1) as i32];
                right.extend(t.right.iter().map(|&v| if v < 0 { v } else { v + off }));
                right.push(-1);
                let mut feature = vec![0];
                feature.extend_from_slice(&t.feature);
                feature.push(0);
                let mut threshold = vec![0.5];
                threshold.extend_from_slice(&t.threshold);
                threshold.push(0.0);
                let mut values = vec![0.0];
                values.extend_from_slice(&t.values);
                values.push(2.0);
                t = Tree {
                    left,
                    right,
                    feature,
                    threshold,
                    values,
                    value_width: 1,
                };
            }
            TreeEnsemble {
                trees: vec![t],
                n_features: 1,
                n_classes: 1,
                agg: Aggregation::AverageValue,
            }
        };
        let cpu = CompileOptions::default();
        assert_eq!(
            strategies::heuristic_strategy(&deep(2), &cpu),
            TreeStrategy::Gemm
        );
        assert_eq!(
            strategies::heuristic_strategy(&deep(7), &cpu),
            TreeStrategy::PerfectTreeTraversal
        );
        assert_eq!(
            strategies::heuristic_strategy(&deep(12), &cpu),
            TreeStrategy::TreeTraversal
        );
        // Small expected batches flip medium trees to GEMM.
        let small = CompileOptions {
            expected_batch: 1,
            ..Default::default()
        };
        assert_eq!(
            strategies::heuristic_strategy(&deep(7), &small),
            TreeStrategy::Gemm
        );
        // GPU prefers GEMM up to depth 10.
        let gpu = CompileOptions {
            device: Device::Sim(hb_backend::device::P100),
            ..Default::default()
        };
        assert_eq!(
            strategies::heuristic_strategy(&deep(9), &gpu),
            TreeStrategy::Gemm
        );
        assert_eq!(
            strategies::heuristic_strategy(&deep(12), &gpu),
            TreeStrategy::TreeTraversal
        );
    }

    #[test]
    fn featurizer_chain_matches_reference() {
        let (x, y) = data(90, 6);
        let pipe = fit_pipeline(
            &[
                OpSpec::MinMaxScaler,
                OpSpec::PolynomialFeatures {
                    include_bias: true,
                    interaction_only: false,
                },
                OpSpec::SelectKBest { k: 5 },
            ],
            &x,
            &y,
        );
        assert_matches_reference(&pipe, &x);
    }

    #[test]
    fn svc_decision_matches() {
        let (x, y) = data(80, 3);
        let pipe = fit_pipeline(&[OpSpec::Svc(Default::default())], &x, &y);
        assert_matches_reference(&pipe, &x);
        // Margin predict = thresholded decision.
        let model = compile(&pipe, &Default::default()).unwrap();
        let pred = model.predict(&x).unwrap();
        assert!(pred.iter().all(|v| v == 0.0 || v == 1.0));
    }
}
