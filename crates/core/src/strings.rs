//! String-feature compilation (paper §4.2 "Fixed Length Restriction on
//! String Features").
//!
//! Strings are packed into fixed-width byte tensors (`u8`, width = max
//! vocabulary string length) at the boundary; inside the graph, one-hot
//! encoding becomes a broadcast byte-equality against the packed
//! vocabulary followed by an all-bytes-match reduction:
//!
//! ```text
//! X  : [n, W]  packed input strings
//! V  : [m, W]  packed vocabulary
//! Eq : [n, m, W] = (X[n,1,W] == V[1,m,W])     (broadcast equality)
//! hot: [n, m]    = (Σ_W Eq) == W              (full-string match)
//! ```

use hb_backend::{Backend, Device, ExecError, Executable, GraphBuilder};
use hb_ml::featurize::{pack_strings, StringOneHotEncoder};
use hb_tensor::{DType, DynTensor, Tensor};

/// A string one-hot encoder compiled to tensor computations over packed
/// byte inputs.
pub struct CompiledStringEncoder {
    exe: Executable,
    n_columns: usize,
    width: usize,
}

impl CompiledStringEncoder {
    /// Compiles the fitted encoder for the given backend/device.
    pub fn compile(
        enc: &StringOneHotEncoder,
        backend: Backend,
        device: Device,
    ) -> CompiledStringEncoder {
        let width = enc.width.max(1);
        let mut b = GraphBuilder::new();
        // One u8 input per string column: `[n, width]` packed bytes.
        let mut parts = Vec::with_capacity(enc.vocab.len());
        for vocab in enc.vocab.iter() {
            let x = b.input(DType::U8);
            if vocab.is_empty() {
                continue;
            }
            // Bytes compare as f32 (exact for u8 values).
            let xf = b.cast(x, DType::F32);
            let xu = b.unsqueeze(xf, 1); // [n, 1, W]
            let packed = pack_strings(vocab, width);
            let vt = Tensor::from_vec(packed, &[vocab.len(), width]);
            let vc = b.constant(DynTensor::U8(vt).cast(DType::F32).as_f32().clone());
            let vu = b.unsqueeze(vc, 0); // [1, m, W]
            let eq = b.eq(xu, vu); // [n, m, W]
            let eqf = b.cast(eq, DType::F32);
            let matches = b.sum(eqf, 2, false); // [n, m]
            let w_c = b.constant(Tensor::scalar(width as f32));
            let hot = b.eq(matches, w_c);
            parts.push(b.cast(hot, DType::F32));
        }
        let out = match parts.len() {
            0 => panic!("string encoder with an empty vocabulary"),
            1 => parts[0],
            _ => b.concat(1, parts),
        };
        b.output(out);
        let exe = Executable::new(b.build(), backend, device);
        CompiledStringEncoder {
            exe,
            n_columns: enc.vocab.len(),
            width,
        }
    }

    /// Encodes column-major string data by packing each column to bytes
    /// and running the compiled graph.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted encoder.
    pub fn transform(&self, columns: &[Vec<String>]) -> Result<Tensor<f32>, ExecError> {
        assert_eq!(columns.len(), self.n_columns, "column count mismatch");
        let n = columns.first().map_or(0, |c| c.len());
        let inputs: Vec<DynTensor> = columns
            .iter()
            .map(|col| {
                DynTensor::U8(Tensor::from_vec(
                    pack_strings(col, self.width),
                    &[n, self.width],
                ))
            })
            .collect();
        let out = self.exe.run(&inputs)?;
        #[allow(clippy::disallowed_methods)] // invariant, message documents it
        Ok(out.into_iter().next().expect("one output").as_f32().clone())
    }

    /// Fixed byte width strings are packed to.
    pub fn width(&self) -> usize {
        self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn columns() -> Vec<Vec<String>> {
        vec![
            vec!["red", "green", "blue", "red", "green"]
                .into_iter()
                .map(String::from)
                .collect(),
            vec!["cat", "dog", "cat", "bird", "dog"]
                .into_iter()
                .map(String::from)
                .collect(),
        ]
    }

    #[test]
    fn compiled_matches_imperative_encoder() {
        let cols = columns();
        let enc = StringOneHotEncoder::fit(&cols);
        let want = enc.transform(&cols);
        for backend in Backend::ALL {
            let compiled = CompiledStringEncoder::compile(&enc, backend, Device::cpu());
            let got = compiled.transform(&cols).unwrap();
            assert_eq!(got.shape(), want.shape());
            assert_eq!(got.to_vec(), want.to_vec(), "{backend:?} diverged");
        }
    }

    #[test]
    fn unseen_strings_encode_to_zero() {
        let cols = columns();
        let enc = StringOneHotEncoder::fit(&cols);
        let compiled = CompiledStringEncoder::compile(&enc, Backend::Compiled, Device::cpu());
        let unseen = vec![vec!["purple".to_string()], vec!["fish".to_string()]];
        let got = compiled.transform(&unseen).unwrap();
        assert!(got.iter().all(|v| v == 0.0));
    }

    #[test]
    fn prefix_strings_do_not_collide() {
        // "cat" vs "cats": zero-padding must not make a prefix match.
        let cols = vec![vec!["cat".to_string(), "cats".to_string()]];
        let enc = StringOneHotEncoder::fit(&cols);
        let compiled = CompiledStringEncoder::compile(&enc, Backend::Compiled, Device::cpu());
        let got = compiled.transform(&cols).unwrap();
        // Row 0 matches vocab "cat" only; row 1 matches "cats" only.
        assert_eq!(got.to_vec(), vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn long_strings_truncate_consistently_with_imperative() {
        let cols = vec![vec![
            "short".to_string(),
            "a-very-long-categorical-value".to_string(),
            "short".to_string(),
        ]];
        let enc = StringOneHotEncoder::fit(&cols);
        let compiled = CompiledStringEncoder::compile(&enc, Backend::Compiled, Device::cpu());
        let got = compiled.transform(&cols).unwrap();
        let want = enc.transform(&cols);
        assert_eq!(got.to_vec(), want.to_vec());
    }
}
