//! TreeTraversal and PerfectTreeTraversal strategies (paper §4.1
//! Strategies 2–3, Algorithms 2–3).
//!
//! Both mimic the imperative traversal with `Gather`/`Where` tensor
//! operations, unrolled `TREE_DEPTH` times at compile time. TT keeps
//! explicit child-pointer tensors (`N_L`, `N_R`, Table 5); PTT completes
//! every tree to a perfect binary tree so child indices become the
//! arithmetic `2k + Where(x < t, 0, 1)` and the per-level node tensors
//! can be **interleaved across trees** exactly as §4.1 prescribes
//! ("values corresponding to level i for all trees appear before values
//! corresponding to level i+1 of any tree").

use hb_backend::{GraphBuilder, NodeId};
use hb_ml::ensemble::TreeEnsemble;
use hb_ml::tree::Tree;
use hb_tensor::Tensor;

use crate::CompileError;

use super::{batch_zeros_i64, gather_feature_values, gather_leaf_values};

/// Maximum perfect-tree depth before the `O(2^D)` node tensors become
/// prohibitive (paper §5.1: beyond this only TT applies).
pub const PTT_MAX_DEPTH: usize = 14;

/// Emits Algorithm 2 (TreeTraversal); returns stacked `[T, n, W]`.
pub fn compile_tt(ensemble: &TreeEnsemble, gb: &mut GraphBuilder, x: NodeId) -> NodeId {
    let t = ensemble.trees.len();
    let nmax = ensemble.max_nodes().max(1);
    let w = ensemble.trees[0].value_width;
    let depth = ensemble.max_depth();

    // Table 5 tensors, padded to the widest tree. Padding nodes self-loop
    // so they behave as inert leaves.
    let mut n_l = Vec::with_capacity(t * nmax);
    let mut n_r = Vec::with_capacity(t * nmax);
    let mut n_f = Vec::with_capacity(t * nmax);
    let mut n_t = Vec::with_capacity(t * nmax);
    let mut n_c = Vec::with_capacity(t * nmax * w);
    for tree in &ensemble.trees {
        for i in 0..nmax {
            if i < tree.n_nodes() {
                if tree.is_leaf(i) {
                    n_l.push(i as i64);
                    n_r.push(i as i64);
                    n_f.push(0i64);
                    n_t.push(0.0f32);
                    n_c.extend_from_slice(tree.value(i));
                } else {
                    n_l.push(tree.left[i] as i64);
                    n_r.push(tree.right[i] as i64);
                    n_f.push(tree.feature[i] as i64);
                    n_t.push(tree.threshold[i]);
                    n_c.extend(std::iter::repeat_n(0.0, w));
                }
            } else {
                n_l.push(i as i64);
                n_r.push(i as i64);
                n_f.push(0);
                n_t.push(0.0);
                n_c.extend(std::iter::repeat_n(0.0, w));
            }
        }
    }

    let n_l = gb.constant(Tensor::from_vec(n_l, &[t, nmax]));
    let n_r = gb.constant(Tensor::from_vec(n_r, &[t, nmax]));
    let n_f = gb.constant(Tensor::from_vec(n_f, &[t, nmax]));
    let n_t = gb.constant(Tensor::from_vec(n_t, &[t, nmax]));
    let n_c = gb.constant(Tensor::from_vec(n_c, &[t, nmax, w]));

    // T_I ← root (index 0 in our layout); the loop is unrolled
    // TREE_DEPTH times (§4.1: "At compile time, we unroll all
    // iterations").
    let mut t_i = batch_zeros_i64(gb, x, t);
    for _ in 0..depth {
        let t_f = gb.gather(1, n_f, t_i); // [T, n]
        let t_v = gather_feature_values(gb, x, t_f); // [T, n]
        let t_t = gb.gather(1, n_t, t_i);
        let t_l = gb.gather(1, n_l, t_i);
        let t_r = gb.gather(1, n_r, t_i);
        let cond = gb.lt(t_v, t_t);
        t_i = gb.where_(cond, t_l, t_r);
    }
    gather_leaf_values(gb, n_c, t_i) // [T, n, W]
}

/// Per-tree perfect-completion arrays in level order.
struct PerfectTree {
    /// Features per internal slot, level order (`2^D − 1` entries).
    feat: Vec<i64>,
    /// Thresholds per internal slot.
    thr: Vec<f32>,
    /// Leaf payloads `[2^D, W]`.
    leaves: Vec<f32>,
}

/// Completes `tree` to a perfect tree of depth `d` (paper §4.1: replace
/// each shallow leaf with a perfect subtree whose leaves all map to the
/// original label; the introduced decision nodes are free to perform
/// arbitrary comparisons).
fn perfect_completion(tree: &Tree, d: usize, w: usize) -> PerfectTree {
    let n_internal = (1usize << d) - 1;
    let n_leaves = 1usize << d;
    let mut pt = PerfectTree {
        feat: vec![0; n_internal],
        thr: vec![0.0; n_internal],
        leaves: vec![0.0; n_leaves * w],
    };
    // Walk the completed tree; `node` is the original node (sticky once a
    // leaf is reached early), `(level, k)` the perfect-tree coordinates.
    fn fill(
        tree: &Tree,
        node: usize,
        level: usize,
        k: usize,
        d: usize,
        w: usize,
        pt: &mut PerfectTree,
    ) {
        if level == d {
            let leaf_value = tree.value(node);
            pt.leaves[k * w..(k + 1) * w].copy_from_slice(leaf_value);
            return;
        }
        let slot = ((1usize << level) - 1) + k;
        if tree.is_leaf(node) {
            // Free comparison: both children carry the same original leaf.
            pt.feat[slot] = 0;
            pt.thr[slot] = 0.0;
            fill(tree, node, level + 1, 2 * k, d, w, pt);
            fill(tree, node, level + 1, 2 * k + 1, d, w, pt);
        } else {
            pt.feat[slot] = tree.feature[node] as i64;
            pt.thr[slot] = tree.threshold[node];
            fill(tree, tree.left[node] as usize, level + 1, 2 * k, d, w, pt);
            fill(
                tree,
                tree.right[node] as usize,
                level + 1,
                2 * k + 1,
                d,
                w,
                pt,
            );
        }
    }
    fill(tree, 0, 0, 0, d, w, &mut pt);
    pt
}

/// Emits Algorithm 3 (PerfectTreeTraversal); returns stacked `[T, n, W]`.
///
/// # Errors
///
/// Returns [`CompileError::PttTooDeep`] when the completed depth exceeds
/// [`PTT_MAX_DEPTH`] — the `O(2^D)` memory blow-up the §5.1 heuristics
/// guard against.
pub fn compile_ptt(
    ensemble: &TreeEnsemble,
    gb: &mut GraphBuilder,
    x: NodeId,
) -> Result<NodeId, CompileError> {
    let d = ensemble.max_depth();
    if d > PTT_MAX_DEPTH {
        return Err(CompileError::PttTooDeep {
            depth: d,
            max: PTT_MAX_DEPTH,
        });
    }
    let t = ensemble.trees.len();
    let w = ensemble.trees[0].value_width;
    let n_internal = (1usize << d) - 1;
    let n_leaves = 1usize << d;

    // Level-interleaved N_F'/N_T': slot of (level, tree, k) is
    // (2^level − 1)·T + tree·2^level + k.
    let mut feat = vec![0i64; t * n_internal];
    let mut thr = vec![0.0f32; t * n_internal];
    let mut leaves = vec![0.0f32; t * n_leaves * w];
    for (ti, tree) in ensemble.trees.iter().enumerate() {
        let pt = perfect_completion(tree, d, w);
        for level in 0..d {
            let width = 1usize << level;
            let level_base = (width - 1) * t;
            for k in 0..width {
                let src = (width - 1) + k;
                let dst = level_base + ti * width + k;
                feat[dst] = pt.feat[src];
                thr[dst] = pt.thr[src];
            }
        }
        leaves[ti * n_leaves * w..(ti + 1) * n_leaves * w].copy_from_slice(&pt.leaves);
    }

    let leaves_c = gb.constant(Tensor::from_vec(leaves, &[t, n_leaves, w]));
    // T_K: local position within the current level, starting at the root.
    let mut t_k = batch_zeros_i64(gb, x, t);
    if d == 0 {
        // Stump ensemble: every record lands on the single leaf.
        return Ok(gather_leaf_values(gb, leaves_c, t_k));
    }
    let feat_c = gb.constant(Tensor::from_vec(feat, &[t * n_internal]));
    let thr_c = gb.constant(Tensor::from_vec(thr, &[t * n_internal]));
    let zero = gb.constant(Tensor::scalar(0i64));
    let one = gb.constant(Tensor::scalar(1i64));
    let tidx = gb.constant(Tensor::from_vec((0..t as i64).collect(), &[t, 1]));
    for level in 0..d {
        let width = 1i64 << level;
        // Flat slot = T_K + tree·2^level + (2^level − 1)·T.
        let tree_off = gb.mul_scalar(tidx, width as f64);
        let local = gb.add(t_k, tree_off);
        let flat = gb.add_scalar(local, ((width - 1) * t as i64) as f64);
        let flat1d = gb.reshape(flat, vec![-1]);
        let t_f_flat = gb.gather(0, feat_c, flat1d);
        let t_f = gb.reshape(t_f_flat, vec![t as i64, -1]);
        let t_t_flat = gb.gather(0, thr_c, flat1d);
        let t_t = gb.reshape(t_t_flat, vec![t as i64, -1]);
        let t_v = gather_feature_values(gb, x, t_f);
        // T_K ← 2·T_K + Where(x < t, 0, 1).
        let cond = gb.lt(t_v, t_t);
        let step = gb.where_(cond, zero, one);
        let doubled = gb.mul_scalar(t_k, 2.0);
        t_k = gb.add(doubled, step);
    }
    Ok(gather_leaf_values(gb, leaves_c, t_k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_completion_propagates_early_leaves() {
        // Depth-1 tree completed to depth 2: the left leaf must appear in
        // both depth-2 slots under it.
        let tree = Tree {
            left: vec![1, -1, -1],
            right: vec![2, -1, -1],
            feature: vec![0, 0, 0],
            threshold: vec![0.5, 0.0, 0.0],
            values: vec![0.0, 10.0, 20.0],
            value_width: 1,
        };
        let pt = perfect_completion(&tree, 2, 1);
        assert_eq!(pt.feat.len(), 3);
        assert_eq!(pt.leaves, vec![10.0, 10.0, 20.0, 20.0]);
        assert_eq!(pt.thr[0], 0.5);
    }

    #[test]
    fn perfect_completion_depth_zero() {
        let tree = Tree::leaf(vec![0.3, 0.7]);
        let pt = perfect_completion(&tree, 0, 2);
        assert!(pt.feat.is_empty());
        assert_eq!(pt.leaves, vec![0.3, 0.7]);
    }
}
