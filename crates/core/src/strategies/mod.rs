//! Tree-ensemble compilation strategies (paper §4.1) and the §5.1
//! heuristics that choose among them.

pub mod gemm;
pub mod traversal;

use hb_backend::{Device, GraphBuilder, NodeId, Op};
use hb_ml::ensemble::{Aggregation, Link, TreeEnsemble};
use hb_tensor::{DType, Tensor};

use crate::{CompileError, CompileOptions, TreeStrategy};

/// Applies the §5.1 heuristics: GEMM for shallow trees (`D ≤ 3` on CPU,
/// `D ≤ 10` on GPU) or small expected batches, PerfectTreeTraversal for
/// `D ≤ 10`, TreeTraversal beyond.
pub fn heuristic_strategy(ensemble: &TreeEnsemble, opts: &CompileOptions) -> TreeStrategy {
    let depth = ensemble.max_depth();
    let on_gpu = matches!(opts.device, Device::Sim(_));
    if on_gpu {
        if depth <= 10 {
            TreeStrategy::Gemm
        } else {
            TreeStrategy::TreeTraversal
        }
    } else if depth <= 3 || opts.expected_batch <= 32 {
        TreeStrategy::Gemm
    } else if depth <= 10 {
        TreeStrategy::PerfectTreeTraversal
    } else {
        TreeStrategy::TreeTraversal
    }
}

/// Compiles `ensemble` into graph nodes reading features from `x`
/// (`[n, F]` f32) using the given strategy, returning the `[n, outputs]`
/// prediction node.
pub fn compile_trees(
    ensemble: &TreeEnsemble,
    strategy: TreeStrategy,
    b: &mut GraphBuilder,
    x: NodeId,
    opts: &CompileOptions,
) -> Result<NodeId, CompileError> {
    if ensemble.trees.is_empty() {
        return Err(CompileError::UnsupportedOperator(
            "empty tree ensemble".into(),
        ));
    }
    let strategy = match strategy {
        TreeStrategy::Auto => heuristic_strategy(ensemble, opts),
        s => s,
    };
    let stacked = match strategy {
        TreeStrategy::Gemm => gemm::compile(ensemble, b, x),
        TreeStrategy::TreeTraversal => traversal::compile_tt(ensemble, b, x),
        TreeStrategy::PerfectTreeTraversal => traversal::compile_ptt(ensemble, b, x)?,
        TreeStrategy::Auto => unreachable!("Auto resolved above"),
    };
    Ok(aggregate(ensemble, b, stacked))
}

/// Emits the ensemble aggregation over stacked per-tree outputs
/// `[T, n, W]`: mean for forests (the paper's `ReduceMean` over the
/// batched tree dimension), grouped sum + link for boosters.
fn aggregate(ensemble: &TreeEnsemble, b: &mut GraphBuilder, stacked: NodeId) -> NodeId {
    match &ensemble.agg {
        Aggregation::AverageProba => {
            let p = b.mean(stacked, 0, false); // [n, W]
                                               // The sanitize epilogue is only a runtime identity when the
                                               // mean provably stays in [0, 1]; trained classifiers store
                                               // per-class probabilities in their leaves, but synthetic
                                               // ensembles may carry arbitrary payloads under AverageProba.
            let proba_leaves = ensemble
                .trees
                .iter()
                .all(|t| t.values.iter().all(|v| (0.0..=1.0).contains(v)));
            if proba_leaves {
                crate::convert::sanitize_proba(b, p)
            } else {
                p
            }
        }
        Aggregation::AverageValue => {
            b.mean(stacked, 0, false) // [n, W]
        }
        Aggregation::SumWithLink {
            base,
            link,
            n_groups,
        } => {
            let t = ensemble.trees.len();
            let g = *n_groups;
            debug_assert_eq!(t % g, 0, "tree count must be a multiple of group count");
            let rounds = (t / g) as i64;
            // [T, n, 1] → [T, n] → [R, G, n] → Σ_R → [G, n] → [n, G].
            let sq = b.squeeze(stacked, 2);
            let rs = b.reshape(sq, vec![rounds, g as i64, -1]);
            let summed = b.sum(rs, 0, false);
            let tr = b.transpose(summed, 0, 1);
            let base_c = b.constant(Tensor::from_vec(base.clone(), &[1, g]));
            let z = b.add(tr, base_c);
            match link {
                Link::Identity => z,
                Link::Softmax => {
                    let p = b.softmax(z, 1);
                    crate::convert::sanitize_proba(b, p)
                }
                Link::Sigmoid => {
                    let p = b.sigmoid(z); // [n, 1]
                    let neg = b.mul_scalar(p, -1.0);
                    let q = b.add_scalar(neg, 1.0);
                    let both = b.concat(1, vec![q, p]);
                    crate::convert::sanitize_proba(b, both)
                }
            }
        }
    }
}

/// Builds an i64 `[T, n]` zero tensor whose `n` tracks the batch size of
/// `x` at run time (graphs are compiled once, scored at any batch size).
pub(crate) fn batch_zeros_i64(b: &mut GraphBuilder, x: NodeId, n_trees: usize) -> NodeId {
    // Row zeros [1, n]: take column 0 of x, zero it, transpose, cast.
    let col0 = b.index_select(1, x, vec![0]);
    let zeroed = b.mul_scalar(col0, 0.0);
    let row = b.transpose(zeroed, 0, 1);
    let row_i = b.cast(row, DType::I64);
    // Broadcast against [T, 1] zeros.
    let tz = b.constant(Tensor::<i64>::zeros(&[n_trees, 1]));
    b.add(row_i, tz)
}

/// Emits the "gather feature values by per-tree feature index" composite:
/// given `x [n, F]` and per-record feature indices `t_f [T, n]`, returns
/// the selected values `[T, n]`.
pub(crate) fn gather_feature_values(b: &mut GraphBuilder, x: NodeId, t_f: NodeId) -> NodeId {
    let idx = b.transpose(t_f, 0, 1); // [n, T]
    let vals = b.gather(1, x, idx); // [n, T]
    b.transpose(vals, 0, 1) // [T, n]
}

/// Emits the final leaf-payload lookup + keeps a uniform `[T, n, W]`
/// shape: `values [T, N, W]` gathered by `t_i [T, n]`.
pub(crate) fn gather_leaf_values(b: &mut GraphBuilder, values: NodeId, t_i: NodeId) -> NodeId {
    b.push(Op::GatherRows, vec![values, t_i])
}
