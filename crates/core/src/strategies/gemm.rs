//! The GEMM tree-compilation strategy (paper §4.1 Strategy 1,
//! Algorithm 1).
//!
//! Tree evaluation becomes three batched GEMMs interleaved with `<` and
//! `==`: the five tensors A–E of paper Table 3 capture, per tree, the
//! feature→internal-node incidence, thresholds, internal-node→leaf path
//! encoding, left-edge path counts, and leaf→class mapping. Ensembles
//! stack the per-tree tensors into `[T, ·, ·]` batches padded to the
//! largest tree (§4.1 "we pick the maximum number of leaf nodes and
//! internal nodes for any tree ... and pad").

use hb_backend::{GraphBuilder, NodeId};
use hb_ml::ensemble::TreeEnsemble;
use hb_ml::tree::Tree;
use hb_tensor::{DType, Tensor};

/// Per-tree GEMM tensors before batching.
struct TreeTensors {
    /// `A[f][i] = 1` iff internal node `i` evaluates feature `f`.
    a: Vec<f32>,
    /// Threshold per internal node.
    b: Vec<f32>,
    /// `C[i][l]` ∈ {1 left, −1 right, 0 not-ancestor}.
    c: Vec<f32>,
    /// Left-edge count on the root→leaf path.
    d: Vec<f32>,
    /// Leaf payloads `[L, W]`.
    e: Vec<f32>,
    n_internal: usize,
    n_leaves: usize,
}

/// A leaf's ancestor path: `(internal_position, went_left)` pairs.
type AncestorPath = Vec<(usize, bool)>;

/// Enumerates leaves with their ancestor paths.
fn leaf_paths(tree: &Tree) -> (Vec<usize>, Vec<(usize, AncestorPath)>) {
    let internals: Vec<usize> = (0..tree.n_nodes()).filter(|&i| !tree.is_leaf(i)).collect();
    let pos_of: std::collections::HashMap<usize, usize> =
        internals.iter().enumerate().map(|(p, &n)| (n, p)).collect();
    let mut leaves = Vec::new();
    let mut stack = vec![(0usize, Vec::new())];
    while let Some((node, path)) = stack.pop() {
        if tree.is_leaf(node) {
            leaves.push((node, path));
        } else {
            let p = pos_of[&node];
            let mut left = path.clone();
            left.push((p, true));
            let mut right = path;
            right.push((p, false));
            // Push right first so leaves pop out in left-to-right order.
            stack.push((tree.right[node] as usize, right));
            stack.push((tree.left[node] as usize, left));
        }
    }
    (internals, leaves)
}

fn tree_tensors(tree: &Tree, n_features: usize, imax: usize, lmax: usize) -> TreeTensors {
    let (internals, leaves) = leaf_paths(tree);
    let w = tree.value_width;
    let mut a = vec![0.0f32; n_features * imax];
    let mut b = vec![0.0f32; imax];
    let mut c = vec![0.0f32; imax * lmax];
    // Padded leaf slots must never win the `==` comparison: their column
    // of C is all zeros (path sum 0), so any D value > 0 excludes them.
    // D = −1 is unreachable for real paths too, covering depth-0 trees.
    let mut d = vec![-1.0f32; lmax];
    let mut e = vec![0.0f32; lmax * w];
    for (pos, &node) in internals.iter().enumerate() {
        a[tree.feature[node] as usize * imax + pos] = 1.0;
        b[pos] = tree.threshold[node];
    }
    for (li, (leaf, path)) in leaves.iter().enumerate() {
        let mut left_count = 0.0f32;
        for &(ipos, went_left) in path {
            c[ipos * lmax + li] = if went_left { 1.0 } else { -1.0 };
            if went_left {
                left_count += 1.0;
            }
        }
        d[li] = left_count;
        e[li * w..(li + 1) * w].copy_from_slice(tree.value(*leaf));
    }
    TreeTensors {
        a,
        b,
        c,
        d,
        e,
        n_internal: internals.len(),
        n_leaves: leaves.len(),
    }
}

/// Emits Algorithm 1 over the whole ensemble; returns stacked per-tree
/// outputs `[T, n, W]`.
pub fn compile(ensemble: &TreeEnsemble, gb: &mut GraphBuilder, x: NodeId) -> NodeId {
    let t = ensemble.trees.len();
    let f = ensemble.n_features;
    let w = ensemble.trees[0].value_width;
    let imax = ensemble
        .trees
        .iter()
        .map(|tr| tr.n_nodes() - tr.n_leaves())
        .max()
        .unwrap_or(0)
        .max(1);
    let lmax = ensemble.trees.iter().map(Tree::n_leaves).max().unwrap_or(1);

    let mut a = Vec::with_capacity(t * f * imax);
    let mut b = Vec::with_capacity(t * imax);
    let mut c = Vec::with_capacity(t * imax * lmax);
    let mut d = Vec::with_capacity(t * lmax);
    let mut e = Vec::with_capacity(t * lmax * w);
    for tree in &ensemble.trees {
        let tt = tree_tensors(tree, f, imax, lmax);
        debug_assert!(tt.n_internal <= imax && tt.n_leaves <= lmax);
        a.extend_from_slice(&tt.a);
        b.extend_from_slice(&tt.b);
        c.extend_from_slice(&tt.c);
        d.extend_from_slice(&tt.d);
        e.extend_from_slice(&tt.e);
    }

    let a_c = gb.constant(Tensor::from_vec(a, &[t, f, imax]));
    let b_c = gb.constant(Tensor::from_vec(b, &[t, 1, imax]));
    let c_c = gb.constant(Tensor::from_vec(c, &[t, imax, lmax]));
    let d_c = gb.constant(Tensor::from_vec(d, &[t, 1, lmax]));
    let e_c = gb.constant(Tensor::from_vec(e, &[t, lmax, w]));

    // T ← GEMM(X, A); T ← T < B
    let t1 = gb.matmul(x, a_c); // [T, n, Imax]
    let lt = gb.lt(t1, b_c);
    let t2 = gb.cast(lt, DType::F32);
    // T ← GEMM(T, C); T ← T == D
    let t3 = gb.matmul(t2, c_c); // [T, n, Lmax]
    let eq = gb.eq(t3, d_c);
    let t4 = gb.cast(eq, DType::F32);
    // T ← GEMM(T, E)
    gb.matmul(t4, e_c) // [T, n, W]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_paths_enumerates_left_to_right() {
        // Root splits on f0; left child is a leaf; right child splits on f1.
        let t = Tree {
            left: vec![1, -1, 3, -1, -1],
            right: vec![2, -1, 4, -1, -1],
            feature: vec![0, 0, 1, 0, 0],
            threshold: vec![0.5, 0.0, 1.5, 0.0, 0.0],
            values: vec![0.0, 10.0, 0.0, 20.0, 30.0],
            value_width: 1,
        };
        let (internals, leaves) = leaf_paths(&t);
        assert_eq!(internals, vec![0, 2]);
        let leaf_nodes: Vec<usize> = leaves.iter().map(|(n, _)| *n).collect();
        assert_eq!(leaf_nodes, vec![1, 3, 4]);
        // Leaf 3's path: left at node 2? No — node 3 is the left child of
        // node 2, reached by going right at the root.
        assert_eq!(leaves[1].1, vec![(0, false), (1, true)]);
    }

    #[test]
    fn tensors_encode_paths() {
        let t = Tree {
            left: vec![1, -1, -1],
            right: vec![2, -1, -1],
            feature: vec![3, 0, 0],
            threshold: vec![0.7, 0.0, 0.0],
            values: vec![0.0, 1.0, 2.0],
            value_width: 1,
        };
        let tt = tree_tensors(&t, 5, 1, 2);
        // A: feature 3 evaluates internal node 0.
        assert_eq!(tt.a[3], 1.0);
        assert_eq!(tt.b, vec![0.7]);
        // C: left leaf +1, right leaf −1; D: 1 left edge then 0.
        assert_eq!(tt.c, vec![1.0, -1.0]);
        assert_eq!(tt.d, vec![1.0, 0.0]);
        assert_eq!(tt.e, vec![1.0, 2.0]);
    }

    #[test]
    fn padded_slots_cannot_be_selected() {
        let t = Tree::leaf(vec![7.0]);
        let tt = tree_tensors(&t, 2, 3, 4);
        // Real leaf at position 0 with D = 0; padding leaves D = −1.
        assert_eq!(tt.d, vec![0.0, -1.0, -1.0, -1.0]);
        assert_eq!(tt.e[0], 7.0);
    }
}
