//! Conversion-to-tensors functions (paper §3.2 Tensor DAG Compiler).
//!
//! One conversion function per operator signature, emitting graph nodes
//! from the extracted [`Params`]. The §4.2 techniques appear here:
//! broadcast one-hot encoding, batched-GEMM polynomial features with a
//! final reordering gather, the quadratic-expansion RBF kernel, and the
//! two-GEMM Gaussian NB that avoids the `n×d×C` intermediate.

use hb_backend::{GraphBuilder, NodeId, Op};
use hb_ml::featurize::{BinEncode, Norm};
use hb_ml::linear::LinearLink;
use hb_ml::svm::Kernel;
use hb_tensor::{DType, Tensor};

use crate::containers::{OperatorContainer, Params};
use crate::strategies::compile_trees;
use crate::{CompileError, CompileOptions, TreeStrategy};

/// Converts one container, returning the node holding its output.
pub fn convert(
    container: &OperatorContainer,
    b: &mut GraphBuilder,
    x: NodeId,
    width_in: Option<usize>,
    opts: &CompileOptions,
) -> Result<NodeId, CompileError> {
    match &container.params {
        Params::Affine(p) => {
            let d = p.offset.len();
            let off = b.constant(Tensor::from_vec(p.offset.clone(), &[1, d]));
            let sc = b.constant(Tensor::from_vec(p.scale.clone(), &[1, d]));
            let centered = b.sub(x, off);
            Ok(b.mul(centered, sc))
        }
        Params::Binarize { threshold } => {
            let t = b.constant(Tensor::scalar(*threshold));
            let m = b.push(Op::Gt, vec![x, t]);
            Ok(b.cast(m, DType::F32))
        }
        Params::Normalize { norm } => {
            let denom = match norm {
                Norm::L2 => {
                    let sq = b.mul(x, x);
                    let s = b.sum(sq, 1, true);
                    b.push(Op::Sqrt, vec![s])
                }
                Norm::L1 => {
                    let a = b.push(Op::Abs, vec![x]);
                    b.sum(a, 1, true)
                }
                Norm::Max => {
                    let a = b.push(Op::Abs, vec![x]);
                    b.push(
                        Op::ReduceMax {
                            axis: 1,
                            keepdim: true,
                        },
                        vec![a],
                    )
                }
            };
            // Zero rows divide by 1 instead of producing NaN, matching
            // the imperative reference.
            let zero = b.constant(Tensor::scalar(0.0f32));
            let one = b.constant(Tensor::scalar(1.0f32));
            let is_zero = b.eq(denom, zero);
            let safe = b.where_(is_zero, one, denom);
            Ok(b.div(x, safe))
        }
        Params::Impute { statistics } => {
            let d = statistics.len();
            let fill = b.constant(Tensor::from_vec(statistics.clone(), &[1, d]));
            let mask = b.push(Op::IsNan, vec![x]);
            Ok(b.where_(mask, fill, x))
        }
        Params::MissingInd => {
            let mask = b.push(Op::IsNan, vec![x]);
            Ok(b.cast(mask, DType::F32))
        }
        Params::KBins { edges, encode } => convert_kbins(b, x, edges, *encode),
        Params::Poly {
            include_bias,
            interaction_only,
        } => convert_poly(b, x, *include_bias, *interaction_only, width_in),
        Params::OneHot { categories } => {
            // Broadcast one-hot (§4.2): per column, Eq against the
            // reshaped vocabulary.
            let mut parts = Vec::with_capacity(categories.len());
            for (f, cats) in categories.iter().enumerate() {
                if cats.is_empty() {
                    continue;
                }
                let col = b.index_select(1, x, vec![f]); // [n, 1]
                let vocab = b.constant(Tensor::from_vec(cats.clone(), &[1, cats.len()]));
                let eq = b.eq(col, vocab); // [n, m_f]
                parts.push(b.cast(eq, DType::F32));
            }
            if parts.is_empty() {
                return Err(CompileError::UnsupportedOperator(
                    "one-hot encoder with an empty vocabulary".into(),
                ));
            }
            Ok(if parts.len() == 1 {
                parts[0]
            } else {
                b.concat(1, parts)
            })
        }
        Params::KernelProject {
            x_fit,
            alphas,
            k_fit_rows,
            k_fit_all,
            gamma,
        } => {
            // RBF kernel row via the quadratic-expansion trick, then
            // double-centering against the fitted statistics and a GEMM
            // onto the scaled eigenvectors.
            let xf = b.constant(x_fit.clone());
            let d2 = b.push(Op::Sqdist, vec![x, xf]);
            let scaled = b.mul_scalar(d2, -(*gamma as f64));
            let km = b.push(Op::Exp, vec![scaled]); // [n, m]
            let fit_means =
                b.constant(Tensor::from_vec(k_fit_rows.clone(), &[1, k_fit_rows.len()]));
            let row_means = b.mean(km, 1, true); // [n, 1]
            let c1 = b.sub(km, fit_means);
            let c2 = b.sub(c1, row_means);
            let centered = b.add_scalar(c2, *k_fit_all as f64);
            let a = b.constant(alphas.clone());
            Ok(b.matmul(centered, a))
        }
        Params::Select { indices, .. } => Ok(b.index_select(1, x, indices.clone())),
        Params::Project { mean, components } => {
            let centered = match mean {
                Some(m) => {
                    let mc = b.constant(Tensor::from_vec(m.clone(), &[1, m.len()]));
                    b.sub(x, mc)
                }
                None => x,
            };
            let comp_t = b.constant(components.transpose(0, 1).to_contiguous());
            Ok(b.matmul(centered, comp_t))
        }
        Params::Linear {
            weights,
            bias,
            link,
        } => {
            let w_t = b.constant(weights.transpose(0, 1).to_contiguous());
            let bias_c = b.constant(Tensor::from_vec(bias.clone(), &[1, bias.len()]));
            let mm = b.matmul(x, w_t);
            let z = b.add(mm, bias_c);
            Ok(emit_link(b, z, *link))
        }
        Params::Svm {
            sv,
            dual,
            intercept,
            kernel,
        } => {
            let k = match kernel {
                Kernel::Linear => {
                    let sv_t = b.constant(sv.transpose(0, 1).to_contiguous());
                    b.matmul(x, sv_t)
                }
                Kernel::Rbf { gamma } => {
                    // Quadratic-expansion distance matrix (§4.2), then
                    // exp(−γ·d²).
                    let sv_c = b.constant(sv.clone());
                    let d2 = b.push(Op::Sqdist, vec![x, sv_c]);
                    let scaled = b.mul_scalar(d2, -(*gamma as f64));
                    b.push(Op::Exp, vec![scaled])
                }
            };
            let dual_c = b.constant(Tensor::from_vec(dual.clone(), &[dual.len(), 1]));
            let z = b.matmul(k, dual_c);
            Ok(b.add_scalar(z, *intercept as f64)) // [n, 1] decision values
        }
        Params::GaussNb { a, b: lin, bias } => {
            let x2 = b.mul(x, x);
            let a_t = b.constant(a.transpose(0, 1).to_contiguous());
            let l_t = b.constant(lin.transpose(0, 1).to_contiguous());
            let bias_c = b.constant(Tensor::from_vec(bias.clone(), &[1, bias.len()]));
            let quad = b.matmul(x2, a_t);
            let linear = b.matmul(x, l_t);
            let s = b.add(quad, linear);
            let ll = b.add(s, bias_c);
            let p = b.softmax(ll, 1);
            Ok(sanitize_proba(b, p))
        }
        Params::BernNb {
            delta,
            bias,
            binarize,
        } => {
            let thr = b.constant(Tensor::scalar(*binarize));
            let m = b.push(Op::Gt, vec![x, thr]);
            let bx = b.cast(m, DType::F32);
            let d_t = b.constant(delta.transpose(0, 1).to_contiguous());
            let bias_c = b.constant(Tensor::from_vec(bias.clone(), &[1, bias.len()]));
            let mm = b.matmul(bx, d_t);
            let ll = b.add(mm, bias_c);
            let p = b.softmax(ll, 1);
            Ok(sanitize_proba(b, p))
        }
        Params::MultiNb { w, bias } => {
            let w_t = b.constant(w.transpose(0, 1).to_contiguous());
            let bias_c = b.constant(Tensor::from_vec(bias.clone(), &[1, bias.len()]));
            let mm = b.matmul(x, w_t);
            let ll = b.add(mm, bias_c);
            let p = b.softmax(ll, 1);
            Ok(sanitize_proba(b, p))
        }
        Params::Mlp { w1, b1, w2, b2 } => {
            let w1_t = b.constant(w1.transpose(0, 1).to_contiguous());
            let b1_c = b.constant(Tensor::from_vec(b1.clone(), &[1, b1.len()]));
            let w2_t = b.constant(w2.transpose(0, 1).to_contiguous());
            let b2_c = b.constant(Tensor::from_vec(b2.clone(), &[1, b2.len()]));
            let h0 = b.matmul(x, w1_t);
            let h1 = b.add(h0, b1_c);
            let h = b.push(Op::Relu, vec![h1]);
            let o0 = b.matmul(h, w2_t);
            let o1 = b.add(o0, b2_c);
            let p = b.softmax(o1, 1);
            Ok(sanitize_proba(b, p))
        }
        Params::Trees(e) => {
            let strategy = container.strategy.unwrap_or(TreeStrategy::Auto);
            compile_trees(e, strategy, b, x, opts)
        }
    }
}

/// Emits the output link of a linear model, matching the imperative
/// `LinearModel::predict_proba` exactly.
fn emit_link(b: &mut GraphBuilder, z: NodeId, link: LinearLink) -> NodeId {
    match link {
        LinearLink::Margin => z,
        LinearLink::Softmax => {
            let p = b.softmax(z, 1);
            sanitize_proba(b, p)
        }
        LinearLink::Sigmoid => {
            let p = b.sigmoid(z);
            let neg = b.mul_scalar(p, -1.0);
            let q = b.add_scalar(neg, 1.0);
            let both = b.concat(1, vec![q, p]);
            sanitize_proba(b, both)
        }
    }
}

/// Numeric-safety epilogue on probability heads:
/// `p̂ = where(isnan(p), p, clamp(p, 0, 1))`.
///
/// At run time this is the identity on every value a probability head
/// can actually produce — in-range values pass through the clamp
/// unchanged and NaN takes the untouched branch — so compiled outputs
/// stay bit-identical to the imperative reference, including NaN
/// propagation. Its purpose is static: it hands the abstract
/// interpreter an explicit `[0, 1]` + NaN-preservation proof obligation
/// that the analysis-directed rewrites then discharge (the `Where` is
/// eliminated when the head is provably NaN-free, the `Clamp` when the
/// head interval is provably inside `[0, 1]`), and whatever survives is
/// an honest runtime guard that `hb-serve` admission can rely on.
pub(crate) fn sanitize_proba(b: &mut GraphBuilder, p: NodeId) -> NodeId {
    let clamped = b.clamp(p, 0.0, 1.0);
    let nan = b.is_nan(p);
    b.where_(nan, p, clamped)
}

/// KBins: `bin = Σ_k (x ≥ edge_k)` over edges padded to the widest
/// column with +∞ (padding never counts).
fn convert_kbins(
    b: &mut GraphBuilder,
    x: NodeId,
    edges: &[Vec<f32>],
    encode: BinEncode,
) -> Result<NodeId, CompileError> {
    let d = edges.len();
    let kmax = edges.iter().map(Vec::len).max().unwrap_or(0).max(1);
    let mut padded = vec![f32::INFINITY; d * kmax];
    for (f, e) in edges.iter().enumerate() {
        padded[f * kmax..f * kmax + e.len()].copy_from_slice(e);
    }
    let edges_c = b.constant(Tensor::from_vec(padded, &[1, d, kmax]));
    let xu = b.unsqueeze(x, 2); // [n, d, 1]
    let ge = b.ge(xu, edges_c); // [n, d, kmax]
    let gef = b.cast(ge, DType::F32);
    let ordinal = b.sum(gef, 2, false); // [n, d]
    match encode {
        BinEncode::Ordinal => Ok(ordinal),
        BinEncode::OneHot => {
            let mut parts = Vec::with_capacity(d);
            for (f, e) in edges.iter().enumerate() {
                let width = e.len() + 1;
                let col = b.index_select(1, ordinal, vec![f]); // [n, 1]
                let ids = b.constant(Tensor::from_vec(
                    (0..width).map(|v| v as f32).collect(),
                    &[1, width],
                ));
                let eq = b.eq(col, ids);
                parts.push(b.cast(eq, DType::F32));
            }
            Ok(if parts.len() == 1 {
                parts[0]
            } else {
                b.concat(1, parts)
            })
        }
    }
}

/// Polynomial features via the §4.2 "minimize operator invocations"
/// batched GEMM: `X' [n,d,1] × X'' [n,1,d] → [n,d,d]`, reshape to
/// `[n, d²]`, then one gather to select scikit-learn's term order.
fn convert_poly(
    b: &mut GraphBuilder,
    x: NodeId,
    include_bias: bool,
    interaction_only: bool,
    width_in: Option<usize>,
) -> Result<NodeId, CompileError> {
    let d = width_in.ok_or(CompileError::UnknownInputWidth)?;
    let xu = b.unsqueeze(x, 2); // [n, d, 1]
    let xv = b.unsqueeze(x, 1); // [n, 1, d]
    let outer = b.matmul(xu, xv); // [n, d, d]
    let flat = b.reshape(outer, vec![0, (d * d) as i64]); // [n, d²]
    let mut cols = Vec::new();
    for i in 0..d {
        let j0 = if interaction_only { i + 1 } else { i };
        for j in j0..d {
            cols.push(i * d + j);
        }
    }
    let pairs = b.index_select(1, flat, cols);
    let mut parts = Vec::new();
    if include_bias {
        // Ones column derived from the input so its batch size tracks n.
        let c0 = b.index_select(1, x, vec![0]);
        let z = b.mul_scalar(c0, 0.0);
        parts.push(b.add_scalar(z, 1.0));
    }
    parts.push(x);
    parts.push(pairs);
    Ok(b.concat(1, parts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containers::{extract, AffineParams, OperatorContainer};
    use hb_backend::{Backend, Device, Executable};
    use hb_ml::featurize::{KBinsDiscretizer, OneHotEncoder, PolynomialFeatures};
    use hb_pipeline::FittedOp;

    /// Runs a single converted operator over `x`.
    fn run_converter(params: Params, x: &Tensor<f32>, width: Option<usize>) -> Tensor<f32> {
        let container = OperatorContainer {
            signature: "test",
            params,
            strategy: None,
        };
        let mut b = GraphBuilder::new();
        let input = b.input(DType::F32);
        let out = convert(&container, &mut b, input, width, &CompileOptions::default()).unwrap();
        b.output(out);
        let exe = Executable::new(b.build(), Backend::Script, Device::cpu());
        let result = exe.run(&[hb_tensor::DynTensor::F32(x.clone())]).unwrap();
        result.into_iter().next().unwrap().as_f32().clone()
    }

    #[test]
    fn affine_converter_is_offset_then_scale() {
        let x = Tensor::from_vec(vec![1.0, 10.0, 2.0, 20.0], &[2, 2]);
        let p = Params::Affine(AffineParams {
            offset: vec![1.0, 10.0],
            scale: vec![2.0, 0.5],
        });
        let got = run_converter(p, &x, Some(2));
        assert_eq!(got.to_vec(), vec![0.0, 0.0, 2.0, 5.0]);
    }

    #[test]
    fn normalizer_converter_guards_zero_rows() {
        let x = Tensor::from_vec(vec![3.0, 4.0, 0.0, 0.0], &[2, 2]);
        for norm in [Norm::L1, Norm::L2, Norm::Max] {
            let got = run_converter(Params::Normalize { norm }, &x, Some(2));
            assert!(got.iter().all(|v| !v.is_nan()), "{norm:?} produced NaN");
            assert_eq!(got.get(&[1, 0]), 0.0);
        }
    }

    #[test]
    fn kbins_converter_matches_imperative_both_encodings() {
        let x = Tensor::from_fn(&[40, 2], |i| (i[0] * (i[1] + 1)) as f32 * 0.7);
        for encode in [BinEncode::Ordinal, BinEncode::OneHot] {
            let kb = KBinsDiscretizer::fit(&x, 4, encode);
            let want = kb.transform(&x);
            let got = run_converter(
                Params::KBins {
                    edges: kb.edges.clone(),
                    encode,
                },
                &x,
                Some(2),
            );
            assert_eq!(got.to_vec(), want.to_vec(), "{encode:?} diverged");
        }
    }

    #[test]
    fn poly_converter_matches_sklearn_term_order() {
        let x = Tensor::from_vec(vec![2.0, 3.0, -1.0, 0.5], &[2, 2]);
        for (bias, inter) in [(true, false), (false, false), (false, true), (true, true)] {
            let p = PolynomialFeatures {
                include_bias: bias,
                interaction_only: inter,
            };
            let want = p.transform(&x);
            let got = run_converter(
                Params::Poly {
                    include_bias: bias,
                    interaction_only: inter,
                },
                &x,
                Some(2),
            );
            assert_eq!(got.to_vec(), want.to_vec(), "bias={bias} inter={inter}");
        }
    }

    #[test]
    fn poly_converter_without_width_errors() {
        let container = OperatorContainer {
            signature: "PolynomialFeatures",
            params: Params::Poly {
                include_bias: false,
                interaction_only: false,
            },
            strategy: None,
        };
        let mut b = GraphBuilder::new();
        let input = b.input(DType::F32);
        let err = convert(&container, &mut b, input, None, &CompileOptions::default());
        assert!(matches!(err, Err(CompileError::UnknownInputWidth)));
    }

    #[test]
    fn onehot_converter_skips_empty_vocab_columns() {
        let x = Tensor::from_vec(vec![1.0, 5.0, 2.0, 5.0], &[2, 2]);
        let got = run_converter(
            Params::OneHot {
                categories: vec![vec![1.0, 2.0], vec![]],
            },
            &x,
            Some(2),
        );
        // Only the first column contributes output width.
        assert_eq!(got.shape(), &[2, 2]);
        assert_eq!(got.to_vec(), vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn onehot_converter_matches_imperative() {
        let x = Tensor::from_fn(&[30, 3], |i| ((i[0] * (i[1] + 2)) % 5) as f32);
        let enc = OneHotEncoder::fit(&x);
        let want = enc.transform(&x);
        let got = run_converter(
            Params::OneHot {
                categories: enc.categories.clone(),
            },
            &x,
            Some(3),
        );
        assert_eq!(got.to_vec(), want.to_vec());
    }

    #[test]
    fn gaussian_nb_converter_matches_model() {
        let x = Tensor::from_fn(&[50, 4], |i| ((i[0] * 3 + i[1] * 5) % 11) as f32 * 0.4);
        let y: Vec<i64> = (0..50).map(|i| (i % 3) as i64).collect();
        let nb = hb_ml::naive_bayes::GaussianNb::fit(&x, &y);
        let want = nb.predict_proba(&x);
        let params = extract(&FittedOp::GaussianNb(nb));
        let got = run_converter(params, &x, Some(4));
        assert!(
            hb_ml::metrics::allclose(&got, &want, 1e-3, 1e-3),
            "GaussianNB two-GEMM form diverged"
        );
    }

    #[test]
    fn svc_converter_matches_decision_function() {
        let x = Tensor::from_fn(&[40, 2], |i| ((i[0] * 7 + i[1]) % 9) as f32 * 0.5 - 2.0);
        let y: Vec<i64> = (0..40).map(|i| (i % 2) as i64).collect();
        let svc = hb_ml::svm::Svc::default().fit(&x, &y);
        let want = svc.decision(&x);
        let params = extract(&FittedOp::Svc(svc));
        let got = run_converter(params, &x, Some(2));
        let gotf = got.reshape(&[40]);
        assert!(hb_ml::metrics::allclose(&gotf, &want, 1e-3, 1e-3));
    }
}
