//! Runtime-independent optimizations (paper §5.2): feature-selection
//! push-down and feature-selection injection.
//!
//! Both rewrites operate on the fitted [`Pipeline`] before tensor
//! compilation. Push-down moves a selector earlier so that discarded
//! features are never computed: through 1-to-1 operators (scalers,
//! imputers, binarizers) the selector commutes with a parameter
//! restriction; 1-to-m operators (one-hot) *absorb* the selection by
//! pruning their vocabularies. "Blocking" operators like normalizers
//! (whose row norm reads every feature) stop the push-down, matching the
//! paper. Injection synthesizes a selector from model sparsity —
//! zero L1 weights or unused tree features — and then pushes it down.

use std::collections::HashMap;

use hb_ml::featurize::{
    MaxAbsScaler, MinMaxScaler, OneHotEncoder, RobustScaler, SimpleImputer, StandardScaler,
};
use hb_ml::select::FeatureSelector;
use hb_pipeline::{FittedOp, Pipeline};

/// Applies injection then push-down; returns the rewritten pipeline.
pub fn optimize_pipeline(p: &Pipeline) -> Pipeline {
    let injected = inject_feature_selection(p);
    push_down_feature_selection(&injected)
}

fn restrict(v: &[f32], keep: &[usize]) -> Vec<f32> {
    keep.iter().map(|&i| v[i]).collect()
}

/// Moves every [`FittedOp::FeatureSelector`] as early as possible.
pub fn push_down_feature_selection(p: &Pipeline) -> Pipeline {
    let mut ops = p.ops.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 1..ops.len() {
            let FittedOp::FeatureSelector(sel) = &ops[i] else {
                continue;
            };
            let sel = sel.clone();
            match &ops[i - 1] {
                // 1-to-1 operators: swap, restricting parameters.
                FittedOp::StandardScaler(s) => {
                    let new = StandardScaler {
                        mean: restrict(&s.mean, &sel.selected),
                        scale: restrict(&s.scale, &sel.selected),
                    };
                    ops[i] = FittedOp::StandardScaler(new);
                    ops[i - 1] = FittedOp::FeatureSelector(sel);
                    changed = true;
                }
                FittedOp::MinMaxScaler(s) => {
                    let new = MinMaxScaler {
                        data_min: restrict(&s.data_min, &sel.selected),
                        inv_range: restrict(&s.inv_range, &sel.selected),
                    };
                    ops[i] = FittedOp::MinMaxScaler(new);
                    ops[i - 1] = FittedOp::FeatureSelector(sel);
                    changed = true;
                }
                FittedOp::MaxAbsScaler(s) => {
                    let new = MaxAbsScaler {
                        inv_scale: restrict(&s.inv_scale, &sel.selected),
                    };
                    ops[i] = FittedOp::MaxAbsScaler(new);
                    ops[i - 1] = FittedOp::FeatureSelector(sel);
                    changed = true;
                }
                FittedOp::RobustScaler(s) => {
                    let new = RobustScaler {
                        center: restrict(&s.center, &sel.selected),
                        inv_scale: restrict(&s.inv_scale, &sel.selected),
                    };
                    ops[i] = FittedOp::RobustScaler(new);
                    ops[i - 1] = FittedOp::FeatureSelector(sel);
                    changed = true;
                }
                FittedOp::SimpleImputer(s) => {
                    let new = SimpleImputer {
                        statistics: restrict(&s.statistics, &sel.selected),
                    };
                    ops[i] = FittedOp::SimpleImputer(new);
                    ops[i - 1] = FittedOp::FeatureSelector(sel);
                    changed = true;
                }
                // Stateless 1-to-1: plain swap.
                FittedOp::Binarizer(_) => {
                    ops.swap(i - 1, i);
                    changed = true;
                }
                // Merge adjacent selectors: compose index maps.
                FittedOp::FeatureSelector(prev) => {
                    let composed: Vec<usize> =
                        sel.selected.iter().map(|&j| prev.selected[j]).collect();
                    let n_in = prev.n_features_in;
                    ops[i - 1] =
                        FittedOp::FeatureSelector(FeatureSelector::from_indices(composed, n_in));
                    ops.remove(i);
                    changed = true;
                }
                // 1-to-m: absorb into the one-hot vocabulary (§5.2's
                // "remove such features from the vocabulary").
                FittedOp::OneHotEncoder(enc) => {
                    let widths: Vec<usize> = enc.categories.iter().map(Vec::len).collect();
                    let mut keep: Vec<Vec<usize>> = vec![Vec::new(); widths.len()];
                    for &out_idx in &sel.selected {
                        let mut off = 0usize;
                        for (col, &w) in widths.iter().enumerate() {
                            if out_idx < off + w {
                                keep[col].push(out_idx - off);
                                break;
                            }
                            off += w;
                        }
                    }
                    let mut pruned = enc.prune(&keep);
                    // Drop input columns whose vocabulary emptied out.
                    let live_cols: Vec<usize> =
                        (0..keep.len()).filter(|&c| !keep[c].is_empty()).collect();
                    if live_cols.len() < keep.len() {
                        pruned = OneHotEncoder {
                            categories: live_cols
                                .iter()
                                .map(|&c| pruned.categories[c].clone())
                                .collect(),
                        };
                        ops[i] = FittedOp::OneHotEncoder(pruned);
                        ops[i - 1] = FittedOp::FeatureSelector(FeatureSelector::from_indices(
                            live_cols,
                            keep.len(),
                        ));
                    } else {
                        ops[i - 1] = FittedOp::OneHotEncoder(pruned);
                        ops.remove(i);
                    }
                    changed = true;
                }
                // Blocking or unhandled operators stop the push-down.
                _ => {}
            }
            if changed {
                break;
            }
        }
    }
    Pipeline {
        ops,
        input_width: p.input_width,
    }
}

/// Synthesizes a feature selector from model sparsity and pushes it down
/// (§5.2 Feature Selection Injection).
pub fn inject_feature_selection(p: &Pipeline) -> Pipeline {
    let mut ops = p.ops.clone();
    let Some(last) = ops.last() else {
        return Pipeline {
            ops,
            input_width: p.input_width,
        };
    };
    match last {
        FittedOp::Linear(model) => {
            let d = model.weights.shape()[1];
            let used = model.nonzero_features();
            if !used.is_empty() && used.len() < d {
                let restricted = model.restrict_features(&used);
                let sel = FeatureSelector::from_indices(used, d);
                let n = ops.len();
                ops[n - 1] = FittedOp::Linear(restricted);
                ops.insert(n - 1, FittedOp::FeatureSelector(sel));
            }
        }
        FittedOp::TreeEnsemble(e) => {
            let used = e.used_features();
            if !used.is_empty() && used.len() < e.n_features {
                let remap: HashMap<usize, usize> = used
                    .iter()
                    .enumerate()
                    .map(|(new, &old)| (old, new))
                    .collect();
                let mut pruned = e.clone();
                for t in &mut pruned.trees {
                    t.remap_features(&remap);
                }
                let sel = FeatureSelector::from_indices(used, e.n_features);
                pruned.n_features = sel.selected.len();
                let n = ops.len();
                ops[n - 1] = FittedOp::TreeEnsemble(pruned);
                ops.insert(n - 1, FittedOp::FeatureSelector(sel));
            }
        }
        _ => {}
    }
    Pipeline {
        ops,
        input_width: p.input_width,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_ml::featurize::ImputeStrategy;
    use hb_ml::linear::{LinearConfig, Penalty};
    use hb_ml::metrics::allclose;
    use hb_pipeline::{fit_pipeline, OpSpec, Targets};
    use hb_tensor::Tensor;

    fn data(n: usize, d: usize) -> (Tensor<f32>, Targets) {
        let x = Tensor::from_fn(&[n, d], |i| {
            if i[1] < 3 {
                ((i[0] % 2) as f32) * 2.0 + (i[1] as f32) * 0.3
            } else {
                ((i[0] * (i[1] + 7)) % 13) as f32 * 0.1
            }
        });
        let y = Targets::Classes((0..n).map(|i| (i % 2) as i64).collect());
        (x, y)
    }

    #[test]
    fn pushdown_moves_selector_before_scaler() {
        let (x, y) = data(100, 8);
        let pipe = fit_pipeline(
            &[
                OpSpec::StandardScaler,
                OpSpec::SelectKBest { k: 3 },
                OpSpec::LogisticRegression(LinearConfig::default()),
            ],
            &x,
            &y,
        );
        let opt = push_down_feature_selection(&pipe);
        let sigs: Vec<&str> = opt.ops.iter().map(|o| o.signature()).collect();
        assert_eq!(
            sigs,
            vec!["FeatureSelector", "StandardScaler", "LinearModel"]
        );
        // Outputs must be preserved.
        let a = pipe.predict_proba(&x);
        let b = opt.predict_proba(&x);
        assert!(allclose(&a, &b, 1e-5, 1e-5));
    }

    #[test]
    fn pushdown_through_imputer_and_scaler_chain() {
        let (x, y) = data(80, 10);
        let pipe = fit_pipeline(
            &[
                OpSpec::SimpleImputer {
                    strategy: ImputeStrategy::Mean,
                },
                OpSpec::MinMaxScaler,
                OpSpec::SelectKBest { k: 4 },
            ],
            &x,
            &y,
        );
        let opt = push_down_feature_selection(&pipe);
        assert_eq!(opt.ops[0].signature(), "FeatureSelector");
        let a = pipe.predict_proba(&x);
        let b = opt.predict_proba(&x);
        assert!(allclose(&a, &b, 1e-5, 1e-5));
    }

    #[test]
    fn pushdown_absorbed_by_onehot() {
        // Categorical data with small vocabularies.
        let n = 120;
        let x = Tensor::from_fn(&[n, 3], |i| ((i[0] * (i[1] + 2)) % 4) as f32);
        let y = Targets::Classes((0..n).map(|i| (i % 2) as i64).collect());
        let pipe = fit_pipeline(
            &[OpSpec::OneHotEncoder, OpSpec::SelectKBest { k: 5 }],
            &x,
            &y,
        );
        let before = pipe.predict_proba(&x);
        let opt = push_down_feature_selection(&pipe);
        // The selector is absorbed: either gone entirely or only a
        // column selector remains in front.
        let n_sel = opt
            .ops
            .iter()
            .filter(|o| o.signature() == "FeatureSelector")
            .count();
        assert!(opt.ops.last().unwrap().signature() == "OneHotEncoder");
        assert!(n_sel <= 1);
        let after = opt.predict_proba(&x);
        assert!(allclose(&before, &after, 1e-6, 1e-6));
    }

    #[test]
    fn normalizer_blocks_pushdown() {
        let (x, y) = data(60, 6);
        let pipe = fit_pipeline(
            &[
                OpSpec::Normalizer {
                    norm: hb_ml::featurize::Norm::L2,
                },
                OpSpec::SelectKBest { k: 3 },
            ],
            &x,
            &y,
        );
        let opt = push_down_feature_selection(&pipe);
        let sigs: Vec<&str> = opt.ops.iter().map(|o| o.signature()).collect();
        // Selector cannot cross the blocking normalizer (§5.2).
        assert_eq!(sigs, vec!["Normalizer", "FeatureSelector"]);
    }

    #[test]
    fn injection_from_l1_sparsity() {
        let (x, y) = data(200, 12);
        let pipe = fit_pipeline(
            &[
                OpSpec::StandardScaler,
                OpSpec::LogisticRegression(LinearConfig {
                    penalty: Penalty::L1(0.03),
                    epochs: 300,
                    ..Default::default()
                }),
            ],
            &x,
            &y,
        );
        let before = pipe.predict_proba(&x);
        let opt = optimize_pipeline(&pipe);
        // A selector should have been injected and pushed to the front.
        assert_eq!(opt.ops[0].signature(), "FeatureSelector");
        let after = opt.predict_proba(&x);
        assert!(allclose(&before, &after, 1e-5, 1e-5));
    }

    #[test]
    fn injection_from_tree_feature_usage() {
        let (x, y) = data(150, 20);
        let pipe = fit_pipeline(&[OpSpec::DecisionTreeClassifier { max_depth: 3 }], &x, &y);
        let before = pipe.predict_proba(&x);
        let opt = inject_feature_selection(&pipe);
        // A depth-3 tree uses at most 7 features out of 20.
        assert_eq!(opt.ops.len(), 2);
        assert_eq!(opt.ops[0].signature(), "FeatureSelector");
        let after = opt.predict_proba(&x);
        assert!(allclose(&before, &after, 1e-6, 1e-6));
    }

    #[test]
    fn adjacent_selectors_compose() {
        let (x, y) = data(60, 10);
        let pipe = fit_pipeline(
            &[OpSpec::SelectKBest { k: 6 }, OpSpec::SelectKBest { k: 2 }],
            &x,
            &y,
        );
        let before = pipe.predict_proba(&x);
        let opt = push_down_feature_selection(&pipe);
        assert_eq!(opt.ops.len(), 1);
        let after = opt.predict_proba(&x);
        assert!(allclose(&before, &after, 1e-6, 1e-6));
    }

    #[test]
    fn dense_model_injects_nothing() {
        let (x, y) = data(100, 4);
        let pipe = fit_pipeline(
            &[OpSpec::LogisticRegression(LinearConfig::default())],
            &x,
            &y,
        );
        let opt = inject_feature_selection(&pipe);
        assert_eq!(opt.ops.len(), 1, "no selector expected for dense weights");
    }
}
