//! Sparse fast path for one-hot → linear pipelines (paper §6.3).
//!
//! Wide one-hot features are the paper's canonical sparse case: a dense
//! indicator matrix of width Σ|vocab| with exactly one nonzero per
//! categorical column. This module detects the `OneHotEncoder → (affine
//! scaler)? → LinearModel` pattern and serves it through a CSR SpMM,
//! skipping both the dense indicator materialization and the dense GEMM
//! — the remedy the paper sketches for its Figure 12 sparse slowdowns.

use hb_ml::featurize::OneHotEncoder;
use hb_ml::linear::{LinearLink, LinearModel};
use hb_pipeline::{FittedOp, Pipeline};
use hb_tensor::sparse::CsrMatrix;
use hb_tensor::Tensor;

/// A one-hot → linear pipeline lowered to the sparse path.
pub struct SparseOneHotLinear {
    categories: Vec<Vec<f32>>,
    /// Effective weights over the one-hot space `[width, k]`, with any
    /// intermediate affine scaler folded in.
    weights: Tensor<f32>,
    /// Effective bias `[k]` (scaler offsets folded in).
    bias: Vec<f32>,
    link: LinearLink,
}

impl SparseOneHotLinear {
    /// Attempts to lower `pipeline`; returns `None` when the pattern does
    /// not apply (`OneHotEncoder`, optional `StandardScaler`, then a
    /// linear model).
    pub fn try_lower(pipeline: &Pipeline) -> Option<SparseOneHotLinear> {
        let mut ops = pipeline.ops.iter();
        let FittedOp::OneHotEncoder(enc) = ops.next()? else {
            return None;
        };
        let mut next = ops.next()?;
        // Optional standard scaler between encoder and model: fold
        // `(h − μ)/σ · W = h · (W/σ) − (μ/σ)·W` into weights and bias.
        let scaler = if let FittedOp::StandardScaler(s) = next {
            next = ops.next()?;
            Some(s.clone())
        } else {
            None
        };
        let FittedOp::Linear(model) = next else {
            return None;
        };
        if ops.next().is_some() {
            return None;
        }
        Some(Self::fold(enc, scaler.as_ref(), model))
    }

    fn fold(
        enc: &OneHotEncoder,
        scaler: Option<&hb_ml::featurize::StandardScaler>,
        model: &LinearModel,
    ) -> SparseOneHotLinear {
        let width = enc.out_width();
        let k = model.weights.shape()[0];
        assert_eq!(
            model.weights.shape()[1],
            width,
            "model width != one-hot width"
        );
        // weights_eff[f][c] = W[c][f] / σ_f ; bias_eff[c] = b[c] − Σ_f μ_f/σ_f · W[c][f]
        let w = model.weights.to_vec();
        let mut weights = vec![0.0f32; width * k];
        let mut bias = model.bias.clone();
        for f in 0..width {
            let (mu, inv_sigma) = match scaler {
                Some(s) => (s.mean[f], 1.0 / s.scale[f]),
                None => (0.0, 1.0),
            };
            for c in 0..k {
                let wcf = w[c * width + f];
                weights[f * k + c] = wcf * inv_sigma;
                bias[c] -= mu * inv_sigma * wcf;
            }
        }
        SparseOneHotLinear {
            categories: enc.categories.clone(),
            weights: Tensor::from_vec(weights, &[width, k]),
            bias,
            link: model.link,
        }
    }

    /// Encodes raw categorical rows directly into CSR form: one nonzero
    /// per matched column, no dense indicator matrix.
    pub fn encode_csr(&self, x: &Tensor<f32>) -> CsrMatrix {
        let (n, d) = (x.shape()[0], x.shape()[1]);
        assert_eq!(d, self.categories.len(), "column count mismatch");
        let xc = x.to_contiguous();
        let xv = xc.as_slice();
        let width: usize = self.categories.iter().map(Vec::len).sum();
        let mut indptr = Vec::with_capacity(n + 1);
        let mut indices = Vec::with_capacity(n * d);
        indptr.push(0);
        for r in 0..n {
            let mut off = 0usize;
            for (f, cats) in self.categories.iter().enumerate() {
                let v = xv[r * d + f];
                if let Ok(i) = cats.binary_search_by(|c| c.total_cmp(&v)) {
                    indices.push((off + i) as u32);
                }
                off += cats.len();
            }
            indptr.push(indices.len());
        }
        // Indicator features: every stored entry is exactly 1.
        let ones = vec![1.0f32; indices.len()];
        CsrMatrix::new(n, width, indptr, indices, ones)
    }

    /// Scores raw categorical rows, matching the dense pipeline's
    /// `predict_proba` output exactly.
    pub fn predict_proba(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let csr = self.encode_csr(x);
        let z = csr.matmul_dense(&self.weights); // [n, k]
        let b = Tensor::from_vec(self.bias.clone(), &[1, self.bias.len()]);
        let z = z.add(&b);
        match self.link {
            LinearLink::Margin => z,
            LinearLink::Softmax => z.softmax_axis(1),
            LinearLink::Sigmoid => {
                let p = z.sigmoid();
                let q = p.map(|v| 1.0 - v);
                Tensor::concat(&[&q, &p], 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_ml::linear::LinearConfig;
    use hb_ml::metrics::allclose;
    use hb_pipeline::{fit_pipeline, OpSpec, Targets};

    fn categorical_data(n: usize, d: usize, vocab: usize) -> (Tensor<f32>, Targets) {
        let x = Tensor::from_fn(&[n, d], |i| {
            ((i[0].wrapping_mul(31).wrapping_add(i[1] * 7)) % vocab) as f32
        });
        let y = Targets::Classes((0..n).map(|i| (i % 2) as i64).collect());
        (x, y)
    }

    #[test]
    fn sparse_path_matches_dense_pipeline() {
        let (x, y) = categorical_data(200, 8, 6);
        let pipe = fit_pipeline(
            &[
                OpSpec::OneHotEncoder,
                OpSpec::LogisticRegression(LinearConfig {
                    epochs: 40,
                    ..Default::default()
                }),
            ],
            &x,
            &y,
        );
        let sparse = SparseOneHotLinear::try_lower(&pipe).expect("pattern applies");
        let want = pipe.predict_proba(&x);
        let got = sparse.predict_proba(&x);
        assert!(allclose(&got, &want, 1e-4, 1e-4), "sparse path diverged");
    }

    #[test]
    fn sparse_path_folds_standard_scaler() {
        let (x, y) = categorical_data(150, 5, 4);
        let pipe = fit_pipeline(
            &[
                OpSpec::OneHotEncoder,
                OpSpec::StandardScaler,
                OpSpec::LogisticRegression(LinearConfig {
                    epochs: 40,
                    ..Default::default()
                }),
            ],
            &x,
            &y,
        );
        let sparse = SparseOneHotLinear::try_lower(&pipe).expect("pattern applies");
        let want = pipe.predict_proba(&x);
        let got = sparse.predict_proba(&x);
        assert!(allclose(&got, &want, 1e-3, 1e-3), "scaler folding diverged");
    }

    #[test]
    fn non_matching_pipelines_are_declined() {
        let (x, y) = categorical_data(50, 3, 3);
        let only_encoder = fit_pipeline(&[OpSpec::OneHotEncoder], &x, &y);
        assert!(SparseOneHotLinear::try_lower(&only_encoder).is_none());
        let no_encoder = fit_pipeline(
            &[OpSpec::LogisticRegression(LinearConfig {
                epochs: 5,
                ..Default::default()
            })],
            &x,
            &y,
        );
        assert!(SparseOneHotLinear::try_lower(&no_encoder).is_none());
    }

    #[test]
    fn csr_encoding_has_one_nnz_per_known_category() {
        let (x, y) = categorical_data(40, 6, 5);
        let pipe = fit_pipeline(
            &[
                OpSpec::OneHotEncoder,
                OpSpec::LogisticRegression(LinearConfig {
                    epochs: 5,
                    ..Default::default()
                }),
            ],
            &x,
            &y,
        );
        let sparse = SparseOneHotLinear::try_lower(&pipe).unwrap();
        let csr = sparse.encode_csr(&x);
        // Every training value is a known category: d nonzeros per row.
        assert_eq!(csr.nnz(), 40 * 6);
        // Unknown categories contribute nothing.
        let unseen = Tensor::full(&[2, 6], 99.0f32);
        assert_eq!(sparse.encode_csr(&unseen).nnz(), 0);
    }
}
