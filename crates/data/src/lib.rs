//! Synthetic dataset generators standing in for the paper's benchmarks.
//!
//! The paper evaluates on six gradient-boosting benchmark datasets
//! (Fraud, Epsilon, Year, Covtype, Higgs, Airline — NVIDIA gbm-bench),
//! Iris with 20 features, Nomao with 119 features, and the OpenML-CC18
//! suite. Those are external downloads; this crate generates seeded
//! synthetic datasets with the **same schema** (task type, feature count,
//! class count, class skew) and configurable row counts, as documented in
//! DESIGN.md's substitution table.

// Pure-safe-Rust policy: every crate in this workspace is 100% safe
// Rust; see DESIGN.md ("Unsafe-code policy").
#![forbid(unsafe_code)]

use rand::prelude::*;
use rand_distr::{Distribution, Normal};

use hb_pipeline::{OpSpec, Targets};
use hb_tensor::Tensor;

use hb_ml::featurize::ImputeStrategy;
use hb_ml::linear::LinearConfig;
use hb_ml::Task;

/// A train/test dataset with schema metadata.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (paper dataset it stands in for).
    pub name: String,
    /// Training features `[n_train, d]`.
    pub x_train: Tensor<f32>,
    /// Test features `[n_test, d]`.
    pub x_test: Tensor<f32>,
    /// Training targets.
    pub y_train: Targets,
    /// Test targets.
    pub y_test: Targets,
    /// Prediction task.
    pub task: Task,
}

impl Dataset {
    /// Feature dimensionality.
    pub fn n_features(&self) -> usize {
        self.x_train.shape()[1]
    }

    /// Training row count.
    pub fn n_train(&self) -> usize {
        self.x_train.shape()[0]
    }

    /// Test row count.
    pub fn n_test(&self) -> usize {
        self.x_test.shape()[0]
    }
}

/// Simple multiclass generator used by examples and doc tests:
/// class-dependent cluster centers plus Gaussian noise.
pub fn synthetic_classification(n: usize, d: usize, c: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    #[allow(clippy::disallowed_methods)] // invariant, message documents it
    let normal = Normal::new(0.0f32, 1.0).expect("unit normal is valid");
    // Random class centers.
    let centers: Vec<f32> = (0..c * d).map(|_| rng.gen_range(-3.0..3.0)).collect();
    let mut xs = Vec::with_capacity(n * d);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let cls = i % c;
        for f in 0..d {
            xs.push(centers[cls * d + f] + normal.sample(&mut rng));
        }
        ys.push(cls as i64);
    }
    split(
        "synthetic".into(),
        Tensor::from_vec(xs, &[n, d]),
        Targets::Classes(ys),
        if c == 2 {
            Task::Binary
        } else {
            Task::Multiclass(c)
        },
        seed,
    )
}

/// Generates a classification matrix with `informative` linearly
/// predictive features, interaction structure, noise features, and an
/// optional positive-class rate (binary only).
#[allow(clippy::too_many_arguments)]
fn gen_classification(
    name: &str,
    n: usize,
    d: usize,
    c: usize,
    informative: usize,
    pos_rate: Option<f32>,
    seed: u64,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    #[allow(clippy::disallowed_methods)] // invariant, message documents it
    let normal = Normal::new(0.0f32, 1.0).expect("unit normal is valid");
    let informative = informative.min(d);
    // Per-class weight vectors over the informative block.
    let w: Vec<f32> = (0..c * informative)
        .map(|_| rng.gen_range(-1.5..1.5))
        .collect();
    let mut xs = vec![0.0f32; n * d];
    let mut scores = vec![0.0f32; n * c];
    for r in 0..n {
        for f in 0..d {
            xs[r * d + f] = normal.sample(&mut rng);
        }
        // Mild interaction term makes trees beat linear models, like the
        // gbm-bench tasks.
        let inter = xs[r * d] * xs[r * d + 1.min(d - 1)];
        for cls in 0..c {
            let mut s = 0.4 * inter * if cls % 2 == 0 { 1.0 } else { -1.0 };
            for f in 0..informative {
                s += w[cls * informative + f] * xs[r * d + f];
            }
            scores[r * c + cls] = s + 0.3 * normal.sample(&mut rng);
        }
    }
    let ys: Vec<i64> = if c == 2 {
        // Threshold at the quantile giving the requested positive rate.
        let margins: Vec<f32> = (0..n).map(|r| scores[r * 2 + 1] - scores[r * 2]).collect();
        let mut sorted = margins.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let q = 1.0 - pos_rate.unwrap_or(0.5).clamp(0.001, 0.999);
        let thr = sorted[((n - 1) as f32 * q) as usize];
        margins.iter().map(|&m| i64::from(m > thr)).collect()
    } else {
        (0..n)
            .map(|r| {
                let row = &scores[r * c..(r + 1) * c];
                #[allow(clippy::disallowed_methods)] // c >= 1, so the row is non-empty
                let best = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i as i64)
                    .expect("class scores are non-empty");
                best
            })
            .collect()
    };
    split(
        name.into(),
        Tensor::from_vec(xs, &[n, d]),
        Targets::Classes(ys),
        if c == 2 {
            Task::Binary
        } else {
            Task::Multiclass(c)
        },
        seed,
    )
}

/// Generates a regression dataset with linear + periodic structure.
fn gen_regression(name: &str, n: usize, d: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    #[allow(clippy::disallowed_methods)] // invariant, message documents it
    let normal = Normal::new(0.0f32, 1.0).expect("unit normal is valid");
    let w: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut xs = vec![0.0f32; n * d];
    let mut ys = Vec::with_capacity(n);
    for r in 0..n {
        let mut s = 0.0f32;
        for f in 0..d {
            let v = normal.sample(&mut rng);
            xs[r * d + f] = v;
            s += w[f] * v;
        }
        ys.push(s + (xs[r * d] * 2.0).sin() + 0.2 * normal.sample(&mut rng));
    }
    split(
        name.into(),
        Tensor::from_vec(xs, &[n, d]),
        Targets::Values(ys),
        Task::Regression,
        seed,
    )
}

/// 80/20 train/test split (the paper's protocol).
fn split(name: String, x: Tensor<f32>, y: Targets, task: Task, _seed: u64) -> Dataset {
    let n = x.shape()[0];
    let n_train = (n * 4) / 5;
    let x_train = x.slice(0, 0, n_train).to_contiguous();
    let x_test = x.slice(0, n_train, n).to_contiguous();
    let (y_train, y_test) = match y {
        Targets::Classes(c) => (
            Targets::Classes(c[..n_train].to_vec()),
            Targets::Classes(c[n_train..].to_vec()),
        ),
        Targets::Values(v) => (
            Targets::Values(v[..n_train].to_vec()),
            Targets::Values(v[n_train..].to_vec()),
        ),
    };
    Dataset {
        name,
        x_train,
        x_test,
        y_train,
        y_test,
        task,
    }
}

/// Schema descriptor of one gbm-bench stand-in.
#[derive(Debug, Clone, Copy)]
pub struct TreeBenchSpec {
    /// Dataset name.
    pub name: &'static str,
    /// Paper row count (before scaling).
    pub paper_rows: usize,
    /// Feature count (kept faithful to the paper).
    pub features: usize,
    /// Classes (1 = regression).
    pub classes: usize,
    /// Positive-class rate for imbalanced binary tasks.
    pub pos_rate: f32,
}

/// The six gbm-bench datasets of §6.1.1, in paper order.
pub const TREE_BENCH_SPECS: [TreeBenchSpec; 6] = [
    // Kaggle credit-card fraud: 285K × 28, heavily imbalanced binary.
    TreeBenchSpec {
        name: "fraud",
        paper_rows: 285_000,
        features: 28,
        classes: 2,
        pos_rate: 0.02,
    },
    // Epsilon: 400K × 2000 binary (feature count kept; scale rows!).
    TreeBenchSpec {
        name: "epsilon",
        paper_rows: 400_000,
        features: 2000,
        classes: 2,
        pos_rate: 0.5,
    },
    // YearPredictionMSD: 515K × 90 regression.
    TreeBenchSpec {
        name: "year",
        paper_rows: 515_000,
        features: 90,
        classes: 1,
        pos_rate: 0.5,
    },
    // Covertype: 581K × 54, 7-class.
    TreeBenchSpec {
        name: "covtype",
        paper_rows: 581_000,
        features: 54,
        classes: 7,
        pos_rate: 0.5,
    },
    // HIGGS: 11M × 28 binary.
    TreeBenchSpec {
        name: "higgs",
        paper_rows: 11_000_000,
        features: 28,
        classes: 2,
        pos_rate: 0.5,
    },
    // Airline: 115M × 13 binary.
    TreeBenchSpec {
        name: "airline",
        paper_rows: 115_000_000,
        features: 13,
        classes: 2,
        pos_rate: 0.2,
    },
];

/// Generates one gbm-bench stand-in with `rows` total records.
pub fn tree_bench_dataset(spec: &TreeBenchSpec, rows: usize, seed: u64) -> Dataset {
    if spec.classes == 1 {
        gen_regression(spec.name, rows, spec.features, seed)
    } else {
        gen_classification(
            spec.name,
            rows,
            spec.features,
            spec.classes,
            (spec.features / 2).max(2),
            Some(spec.pos_rate),
            seed,
        )
    }
}

/// Iris-like operator benchmark dataset (paper §6.1.2: Iris padded to 20
/// features).
pub fn iris_like(rows: usize, seed: u64) -> Dataset {
    gen_classification("iris20", rows, 20, 3, 8, None, seed)
}

/// Nomao-like dataset (119 features, binary, with missing values and
/// low-cardinality categorical columns) for the §6.2.2 optimization
/// experiments.
pub fn nomao_like(rows: usize, seed: u64) -> Dataset {
    let mut ds = gen_classification("nomao", rows, 119, 2, 40, Some(0.5), seed);
    // Make the first 20 columns categorical-ish (integer codes 0..6) and
    // inject ~3% NaNs into the next 20 so imputation has work to do.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    for xt in [&mut ds.x_train, &mut ds.x_test] {
        let (n, d) = (xt.shape()[0], xt.shape()[1]);
        let mut v = xt.to_vec();
        for r in 0..n {
            for f in 0..20 {
                v[r * d + f] = (v[r * d + f].abs() * 2.0).floor().min(6.0);
            }
            for f in 20..40 {
                if rng.gen_bool(0.03) {
                    v[r * d + f] = f32::NAN;
                }
            }
        }
        *xt = Tensor::from_vec(v, &[n, d]);
    }
    ds
}

/// Fully-categorical Nomao variant for the §5.2 optimization experiments
/// (Figures 9–10): every column holds small integer codes (0–9) so a
/// one-hot encoder is meaningful, ~2% of cells are NaN so imputation has
/// work, and labels remain predictable from the informative block.
pub fn nomao_categorical(rows: usize, seed: u64) -> Dataset {
    let mut ds = gen_classification("nomao-cat", rows, 119, 2, 40, Some(0.5), seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1234_5678_9abc_def0);
    for xt in [&mut ds.x_train, &mut ds.x_test] {
        let (n, d) = (xt.shape()[0], xt.shape()[1]);
        let mut v = xt.to_vec();
        for item in v.iter_mut() {
            // Quantize the Gaussian feature into a 0..9 code, preserving
            // the label signal through monotonicity.
            *item = ((*item + 3.0).clamp(0.0, 4.5) * 2.0).floor();
            if rng.gen_bool(0.02) {
                *item = f32::NAN;
            }
        }
        *xt = Tensor::from_vec(v, &[n, d]);
    }
    ds
}

/// One task of the OpenML-CC18-like suite: a dataset plus the pipeline
/// spec fitted on it.
#[derive(Debug, Clone)]
pub struct SuiteTask {
    /// The generated dataset.
    pub dataset: Dataset,
    /// The pipeline to fit (featurizers + final classifier).
    pub specs: Vec<OpSpec>,
}

/// Generates an OpenML-CC18-like suite of `n_tasks` seeded random tasks.
///
/// Size statistics follow the paper's §6.3 description: 100–19264 rows
/// (log-uniform), 4–3072 columns (log-uniform, median ≈ 30), and
/// pipelines averaging ≈ 3.3 operators drawn from the supported set.
pub fn openml_cc18_like(
    n_tasks: usize,
    max_rows: usize,
    max_cols: usize,
    seed: u64,
) -> Vec<SuiteTask> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tasks = Vec::with_capacity(n_tasks);
    for t in 0..n_tasks {
        let n = log_uniform(&mut rng, 100, max_rows.clamp(100, 19_264));
        let d = log_uniform(&mut rng, 4, max_cols.clamp(4, 3072));
        #[allow(clippy::disallowed_methods)] // invariant, message documents it
        let c = *[2usize, 2, 2, 3, 5, 10]
            .choose(&mut rng)
            .expect("choice list is non-empty");
        let dataset = gen_classification(
            &format!("cc18-{t}"),
            n,
            d,
            c,
            (d / 2).max(2),
            None,
            seed ^ (t as u64).wrapping_mul(0x5851f42d4c957f2d),
        );
        let specs = random_pipeline_spec(&mut rng, n, d);
        tasks.push(SuiteTask { dataset, specs });
    }
    tasks
}

fn log_uniform(rng: &mut StdRng, lo: usize, hi: usize) -> usize {
    let (l, h) = ((lo as f64).ln(), (hi as f64).ln());
    (rng.gen_range(l..=h).exp() as usize).clamp(lo, hi)
}

/// Samples a scikit-learn-style pipeline: 0–2 preprocessing steps, an
/// optional feature selector, and a final classifier (≈ 3.3 ops average,
/// like the paper's suite).
fn random_pipeline_spec(rng: &mut StdRng, n: usize, d: usize) -> Vec<OpSpec> {
    let mut specs = Vec::new();
    // Imputation occasionally leads the pipeline.
    if rng.gen_bool(0.3) {
        specs.push(OpSpec::SimpleImputer {
            strategy: ImputeStrategy::Mean,
        });
    }
    // A scaler most of the time.
    if rng.gen_bool(0.8) {
        specs.push(match rng.gen_range(0..4) {
            0 => OpSpec::StandardScaler,
            1 => OpSpec::MinMaxScaler,
            2 => OpSpec::MaxAbsScaler,
            _ => OpSpec::RobustScaler,
        });
    }
    // Sometimes a selector or projection.
    if d >= 8 && rng.gen_bool(0.35) {
        specs.push(match rng.gen_range(0..3) {
            0 => OpSpec::SelectKBest { k: (d / 2).max(2) },
            1 => OpSpec::VarianceThreshold { threshold: 1e-4 },
            _ => OpSpec::Pca {
                k: (d / 2).clamp(2, 32),
            },
        });
    }
    // Final model. Small fast trainers keep the suite generation quick.
    let epochs = if n > 5000 { 30 } else { 80 };
    let lin = LinearConfig {
        epochs,
        ..LinearConfig::default()
    };
    specs.push(match rng.gen_range(0..5) {
        0 => OpSpec::LogisticRegression(lin),
        1 => OpSpec::GaussianNb,
        2 => OpSpec::DecisionTreeClassifier { max_depth: 6 },
        3 => OpSpec::RandomForestClassifier(hb_ml::forest::ForestConfig {
            n_trees: 16,
            max_depth: 6,
            ..hb_ml::forest::ForestConfig::default()
        }),
        _ => OpSpec::BernoulliNb {
            alpha: 1.0,
            binarize: 0.0,
        },
    });
    specs
}

/// Synthetic tree-strategy dataset of §6.2.1: 5000 rows × 200 random
/// features.
pub fn strategy_dataset(seed: u64) -> Dataset {
    gen_classification("strategy", 5000, 200, 2, 100, None, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_80_20() {
        let ds = synthetic_classification(100, 5, 2, 1);
        assert_eq!(ds.n_train(), 80);
        assert_eq!(ds.n_test(), 20);
        assert_eq!(ds.n_features(), 5);
    }

    #[test]
    fn fraud_like_is_imbalanced() {
        let spec = &TREE_BENCH_SPECS[0];
        let ds = tree_bench_dataset(spec, 5000, 7);
        let pos: i64 = ds.y_train.classes().iter().sum();
        let rate = pos as f64 / ds.n_train() as f64;
        assert!(rate > 0.005 && rate < 0.06, "positive rate {rate}");
    }

    #[test]
    fn covtype_like_is_seven_class() {
        let spec = &TREE_BENCH_SPECS[3];
        let ds = tree_bench_dataset(spec, 2000, 3);
        assert_eq!(ds.task, Task::Multiclass(7));
        let max = *ds.y_train.classes().iter().max().unwrap();
        assert_eq!(max, 6);
        assert_eq!(ds.n_features(), 54);
    }

    #[test]
    fn year_like_is_regression() {
        let spec = &TREE_BENCH_SPECS[2];
        let ds = tree_bench_dataset(spec, 1000, 5);
        assert_eq!(ds.task, Task::Regression);
        assert_eq!(ds.n_features(), 90);
        assert_eq!(ds.y_train.values().len(), 800);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = tree_bench_dataset(&TREE_BENCH_SPECS[0], 500, 42);
        let b = tree_bench_dataset(&TREE_BENCH_SPECS[0], 500, 42);
        assert_eq!(a.x_train.to_vec(), b.x_train.to_vec());
        assert_eq!(a.y_train.classes(), b.y_train.classes());
    }

    #[test]
    fn datasets_are_learnable() {
        // A small forest must beat chance comfortably on each stand-in.
        use hb_ml::forest::{ForestConfig, RandomForestClassifier};
        let ds = tree_bench_dataset(&TREE_BENCH_SPECS[4], 2000, 9); // higgs
        let f = RandomForestClassifier::new(ForestConfig {
            n_trees: 20,
            max_depth: 6,
            ..ForestConfig::default()
        })
        .fit(&ds.x_train, ds.y_train.classes());
        let acc = hb_ml::metrics::accuracy(&f.predict(&ds.x_test), ds.y_test.classes());
        assert!(acc > 0.65, "test accuracy {acc}");
    }

    #[test]
    fn nomao_like_has_nans_and_categories() {
        let ds = nomao_like(1000, 4);
        assert_eq!(ds.n_features(), 119);
        let v = ds.x_train.to_vec();
        let d = 119;
        let nans = v.iter().filter(|x| x.is_nan()).count();
        assert!(nans > 0, "expected injected NaNs");
        // Categorical block holds small integer codes.
        for r in 0..10 {
            for f in 0..20 {
                let x = v[r * d + f];
                assert!(
                    x >= 0.0 && x <= 6.0 && x.fract() == 0.0,
                    "non-categorical {x}"
                );
            }
        }
    }

    #[test]
    fn nomao_categorical_is_integer_coded_with_nans() {
        let ds = nomao_categorical(800, 6);
        assert_eq!(ds.n_features(), 119);
        let v = ds.x_train.to_vec();
        let mut nans = 0usize;
        for &x in &v {
            if x.is_nan() {
                nans += 1;
            } else {
                assert!(
                    x >= 0.0 && x <= 9.0 && x.fract() == 0.0,
                    "non-code value {x}"
                );
            }
        }
        let rate = nans as f64 / v.len() as f64;
        assert!(rate > 0.005 && rate < 0.05, "NaN rate {rate}");
    }

    #[test]
    fn nomao_categorical_labels_are_learnable() {
        use hb_ml::featurize::{ImputeStrategy, SimpleImputer, StandardScaler};
        use hb_ml::linear::LogisticRegression;
        let ds = nomao_categorical(1500, 2);
        let imp = SimpleImputer::fit(&ds.x_train, ImputeStrategy::Mean);
        let xt = imp.transform(&ds.x_train);
        // Codes range 0–9; scale before the gradient-descent trainer.
        let xt = StandardScaler::fit(&xt).transform(&xt);
        let m = LogisticRegression::default().fit(&xt, ds.y_train.classes());
        let acc = hb_ml::metrics::accuracy(&m.predict(&xt), ds.y_train.classes());
        assert!(acc > 0.75, "train accuracy {acc}");
    }

    #[test]
    fn suite_tasks_within_paper_bounds() {
        let tasks = openml_cc18_like(20, 2000, 128, 13);
        assert_eq!(tasks.len(), 20);
        for t in &tasks {
            let n = t.dataset.n_train() + t.dataset.n_test();
            assert!((100..=2000).contains(&n));
            assert!((4..=128).contains(&t.dataset.n_features()));
            assert!(!t.specs.is_empty() && t.specs.len() <= 5);
        }
        // Average close to the paper's 3.3 operators (loosely).
        let avg: f64 = tasks.iter().map(|t| t.specs.len() as f64).sum::<f64>() / tasks.len() as f64;
        assert!(avg > 1.5 && avg < 4.5, "avg ops {avg}");
    }

    #[test]
    fn strategy_dataset_shape() {
        let ds = strategy_dataset(1);
        assert_eq!(ds.n_train() + ds.n_test(), 5000);
        assert_eq!(ds.n_features(), 200);
    }
}
