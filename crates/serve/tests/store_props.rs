//! Property tests for the model store's arbitration primitives.
//!
//! Random interleavings of admissions, releases, and fleet-size changes
//! must never violate [`FairShare`]'s no-starvation guarantee, and
//! random charge/credit schedules must keep the [`BudgetLedger`]'s
//! total equal to the sum of its per-model charges.

use hb_serve::{BudgetLedger, FairShare};
use proptest::prelude::*;

const MODELS: [&str; 4] = ["a", "b", "c", "d"];

#[derive(Debug, Clone, Copy)]
enum ShareEvent {
    /// Model `m` asks for a slot.
    Admit(usize),
    /// Model `m` finishes a request (no-op if it holds none).
    Release(usize),
    /// The fleet grows or shrinks to `n` models.
    SetModels(usize),
}

fn share_event() -> impl Strategy<Value = ShareEvent> {
    prop_oneof![
        (0usize..MODELS.len()).prop_map(ShareEvent::Admit),
        (0usize..MODELS.len()).prop_map(ShareEvent::Release),
        (1usize..=MODELS.len()).prop_map(ShareEvent::SetModels),
    ]
}

proptest! {
    // The no-starvation invariant: a model holding fewer slots than
    // its guarantee is NEVER refused, no matter what its neighbors
    // hold. And a refusal only ever happens at (or above) capacity.
    #[test]
    fn fair_share_never_starves_a_model_under_its_guarantee(
        capacity in 1usize..32,
        events in proptest::collection::vec(share_event(), 1..200),
    ) {
        let mut share = FairShare::new(capacity);
        share.set_models(MODELS.len());
        let mut held = [0usize; MODELS.len()];

        for ev in events {
            match ev {
                ShareEvent::Admit(m) => {
                    let mine = held[m];
                    let pre_total = share.total();
                    let guarantee = share.guarantee();
                    let admitted = share.try_admit(MODELS[m]);
                    if mine < guarantee {
                        prop_assert!(
                            admitted,
                            "model {} refused at {} slots, guarantee {}",
                            MODELS[m], mine, guarantee
                        );
                    }
                    if !admitted {
                        prop_assert!(
                            pre_total >= share.capacity(),
                            "refusal below capacity: total {} < cap {}",
                            pre_total, share.capacity()
                        );
                    }
                    // Overshoot is bounded per admission: anything let
                    // in at-or-above capacity was under its guarantee.
                    if admitted && pre_total >= share.capacity() {
                        prop_assert!(mine < guarantee);
                    }
                    if admitted {
                        held[m] += 1;
                    }
                }
                ShareEvent::Release(m) => {
                    if held[m] > 0 {
                        share.release(MODELS[m]);
                        held[m] -= 1;
                    }
                }
                ShareEvent::SetModels(n) => share.set_models(n),
            }
            // Book-keeping never drifts: the arbiter agrees with the
            // model-side view of who holds what.
            for (m, &h) in held.iter().enumerate() {
                prop_assert_eq!(share.admitted(MODELS[m]), h);
            }
            prop_assert_eq!(share.total(), held.iter().sum::<usize>());
        }
    }

    // After everything drains, the arbiter is empty again — no leaked
    // slots whatever the interleaving was.
    #[test]
    fn fair_share_drains_clean(
        capacity in 1usize..16,
        events in proptest::collection::vec(share_event(), 1..100),
    ) {
        let mut share = FairShare::new(capacity);
        share.set_models(MODELS.len());
        let mut held = [0usize; MODELS.len()];
        for ev in events {
            match ev {
                ShareEvent::Admit(m) => {
                    if share.try_admit(MODELS[m]) {
                        held[m] += 1;
                    }
                }
                ShareEvent::Release(m) => {
                    if held[m] > 0 {
                        share.release(MODELS[m]);
                        held[m] -= 1;
                    }
                }
                ShareEvent::SetModels(n) => share.set_models(n),
            }
        }
        for (m, held) in held.iter_mut().enumerate() {
            while *held > 0 {
                share.release(MODELS[m]);
                *held -= 1;
            }
        }
        prop_assert_eq!(share.total(), 0);
        for name in MODELS {
            prop_assert_eq!(share.admitted(name), 0);
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum LedgerEvent {
    /// Register/deploy charges `bytes` to model `m`.
    Charge(usize, usize),
    /// Evict/swap credits `bytes` back from model `m` (clamped to its
    /// balance, as the store's credit path does).
    Credit(usize, usize),
}

fn ledger_event() -> impl Strategy<Value = LedgerEvent> {
    prop_oneof![
        ((0usize..MODELS.len()), (0usize..4096)).prop_map(|(m, b)| LedgerEvent::Charge(m, b)),
        ((0usize..MODELS.len()), (0usize..4096)).prop_map(|(m, b)| LedgerEvent::Credit(m, b)),
    ]
}

proptest! {
    // Budget accounting: across any charge/credit interleaving
    // (register, deploy, evict), the ledger total equals the sum of
    // per-model charges, per-model charges match an independent
    // shadow, and credits saturate instead of underflowing.
    #[test]
    fn ledger_total_is_always_the_sum_of_charges(
        events in proptest::collection::vec(ledger_event(), 1..200),
    ) {
        let mut ledger = BudgetLedger::new();
        let mut shadow = [0usize; MODELS.len()];
        for ev in events {
            match ev {
                LedgerEvent::Charge(m, bytes) => {
                    ledger.charge(MODELS[m], bytes);
                    shadow[m] += bytes;
                }
                LedgerEvent::Credit(m, bytes) => {
                    ledger.credit(MODELS[m], bytes);
                    shadow[m] = shadow[m].saturating_sub(bytes);
                }
            }
            for (m, &want) in shadow.iter().enumerate() {
                prop_assert_eq!(ledger.charge_of(MODELS[m]), want);
            }
            prop_assert_eq!(ledger.total(), shadow.iter().sum::<usize>());
            prop_assert!(ledger.consistent());
        }
    }
}
