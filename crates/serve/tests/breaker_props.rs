//! Property tests for the circuit-breaker state machine.
//!
//! Random interleavings of request outcomes, time advances, watchdog /
//! canary trips, and background probes must never violate the breaker's
//! safety invariants:
//!
//! * an Open breaker never serves before its cooldown elapses;
//! * at most one probe is outstanding at a time in Half-Open;
//! * quarantined rungs never admit request traffic — only a background
//!   probe can close them;
//! * in Closed, exactly K consecutive failures trip the breaker, and any
//!   success resets the streak.

use std::time::{Duration, Instant};

use hb_serve::{Admission, BreakerConfig, BreakerState, CircuitBreaker, OpenReason};
use proptest::prelude::*;

const COOLDOWN_MS: u64 = 10;
const THRESHOLD: u32 = 3;

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Advance simulated time by this many milliseconds.
    Advance(u64),
    /// A request arrives; if admitted, it completes with this outcome.
    Request { success: bool },
    /// The watchdog trips the rung as slow.
    TripSlow,
    /// The canary quarantines the rung.
    TripQuarantine,
    /// The background prober attempts a probe completing with this
    /// outcome.
    BackgroundProbe { success: bool },
}

fn event() -> impl Strategy<Value = Event> {
    prop_oneof![
        (0u64..25).prop_map(Event::Advance),
        any::<bool>().prop_map(|success| Event::Request { success }),
        Just(Event::TripSlow),
        Just(Event::TripQuarantine),
        any::<bool>().prop_map(|success| Event::BackgroundProbe { success }),
    ]
}

proptest! {
    #[test]
    fn breaker_invariants_hold_under_any_interleaving(
        events in proptest::collection::vec(event(), 1..120)
    ) {
        let cfg = BreakerConfig {
            failure_threshold: THRESHOLD,
            cooldown: Duration::from_millis(COOLDOWN_MS),
        };
        let b = CircuitBreaker::new(cfg);
        let epoch = Instant::now();
        let mut now = epoch;

        for ev in events {
            let before = b.state();
            match ev {
                Event::Advance(ms) => {
                    now += Duration::from_millis(ms);
                }
                Event::Request { success } => {
                    let admission = b.admit(now);
                    // Safety: an Open breaker inside its cooldown never
                    // serves, and quarantine never serves request
                    // traffic at all.
                    match before {
                        BreakerState::Open { reason, since } => {
                            let cooled =
                                now.duration_since(since) >= cfg.cooldown;
                            if reason == OpenReason::Quarantine {
                                prop_assert_eq!(admission, Admission::Skip);
                            } else if !cooled {
                                prop_assert_eq!(admission, Admission::Skip);
                            } else {
                                prop_assert_eq!(admission, Admission::Probe);
                            }
                        }
                        BreakerState::HalfOpen { probing, reason } => {
                            if reason == OpenReason::Quarantine || probing {
                                prop_assert_eq!(admission, Admission::Skip);
                            } else {
                                prop_assert_eq!(admission, Admission::Probe);
                            }
                        }
                        BreakerState::Closed { .. } => {
                            prop_assert_eq!(admission, Admission::Serve);
                        }
                    }
                    match admission {
                        Admission::Skip => {}
                        Admission::Serve | Admission::Probe => {
                            let was_probe = admission == Admission::Probe;
                            if was_probe {
                                // One probe at a time: while this probe
                                // is outstanding nobody else gets in.
                                prop_assert_eq!(b.admit(now), Admission::Skip);
                                prop_assert!(!b.try_begin_probe(now));
                            }
                            if success {
                                b.on_success(was_probe);
                                if was_probe {
                                    // A successful probe closes the
                                    // breaker.
                                    prop_assert!(matches!(
                                        b.state(),
                                        BreakerState::Closed { .. }
                                    ));
                                }
                            } else {
                                b.on_failure(was_probe, now);
                                if was_probe {
                                    // A failed probe re-opens with a
                                    // fresh cooldown: no admission until
                                    // it elapses again.
                                    prop_assert!(matches!(
                                        b.state(),
                                        BreakerState::Open { .. }
                                    ));
                                    prop_assert_eq!(
                                        b.admit(now),
                                        Admission::Skip
                                    );
                                }
                            }
                        }
                    }
                }
                Event::TripSlow => {
                    b.trip(OpenReason::Slow, now);
                    // Quarantine is sticky: a slow trip never downgrades
                    // it.
                    if matches!(
                        before,
                        BreakerState::Open { reason: OpenReason::Quarantine, .. }
                    ) {
                        prop_assert!(b.is_quarantined());
                    }
                }
                Event::TripQuarantine => {
                    b.trip(OpenReason::Quarantine, now);
                    prop_assert!(b.is_quarantined());
                    // Request traffic can never touch a quarantined
                    // rung, cooled down or not.
                    let later = now + Duration::from_millis(COOLDOWN_MS * 10);
                    prop_assert_eq!(b.admit(later), Admission::Skip);
                }
                Event::BackgroundProbe { success } => {
                    if b.try_begin_probe(now) {
                        prop_assert!(!b.try_begin_probe(now), "single probe slot");
                        prop_assert_eq!(b.admit(now), Admission::Skip);
                        if success {
                            b.on_success(true);
                            prop_assert!(matches!(
                                b.state(),
                                BreakerState::Closed { .. }
                            ));
                            prop_assert!(!b.is_quarantined());
                        } else {
                            b.on_failure(true, now);
                            prop_assert!(matches!(b.state(), BreakerState::Open { .. }));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn closed_counts_exactly_k_consecutive_failures(
        outcomes in proptest::collection::vec(any::<bool>(), 1..200),
        threshold in 1u32..6,
    ) {
        let b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown: Duration::from_secs(3600), // never cools in-test
        });
        let now = Instant::now();
        let mut streak = 0u32;
        for success in outcomes {
            if matches!(b.state(), BreakerState::Open { .. }) {
                break;
            }
            if success {
                b.on_success(false);
                streak = 0;
            } else {
                let tripped = b.on_failure(false, now);
                streak += 1;
                if streak >= threshold {
                    prop_assert_eq!(tripped, Some(OpenReason::Failures));
                    prop_assert!(matches!(b.state(), BreakerState::Open { .. }));
                } else {
                    prop_assert_eq!(tripped, None);
                    prop_assert!(matches!(b.state(), BreakerState::Closed { .. }));
                }
            }
        }
    }

    #[test]
    fn open_never_serves_before_cooldown(
        cooldown_ms in 1u64..50,
        waits in proptest::collection::vec(0u64..100, 1..30),
    ) {
        let b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_millis(cooldown_ms),
        });
        let t0 = Instant::now();
        prop_assert_eq!(b.on_failure(false, t0), Some(OpenReason::Failures));
        for wait in waits {
            let t = t0 + Duration::from_millis(wait);
            let admission = b.admit(t);
            if wait < cooldown_ms {
                prop_assert_eq!(admission, Admission::Skip);
            } else {
                // First caller past the cooldown wins the probe slot;
                // close it and stop (the breaker is Closed from here).
                prop_assert_eq!(admission, Admission::Probe);
                b.on_success(true);
                break;
            }
        }
    }
}
