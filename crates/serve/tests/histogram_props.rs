//! Property tests for the lock-free latency histogram.
//!
//! The soak tables and the overload gate stand on two properties:
//!
//! * **Quantiles are monotone** — for any recorded sample set,
//!   `q1 <= q2` implies `quantile(q1) <= quantile(q2)`, and every
//!   quantile is bounded by the true maximum's bucket. A p99 below the
//!   p95 would make every SLO assertion meaningless.
//! * **Merging is associative and commutative** — per-thread snapshot
//!   shards can be combined in any grouping and order and yield
//!   *identical* counters, hence identical quantiles. Without this, the
//!   reported tail would depend on the order worker shards happen to be
//!   collected in.
//!
//! Additionally, a merged histogram must equal one histogram that
//! recorded every sample directly — merging loses nothing.

use std::time::Duration;

use hb_serve::{HistogramSnapshot, LatencyHistogram};
use proptest::collection::vec;
use proptest::prelude::*;

/// Latency samples spanning sub-µs to minutes, mixing the bands real
/// serving traffic covers.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    vec(
        prop_oneof![
            0u64..1_000,
            1_000u64..100_000,
            100_000u64..10_000_000,
            10_000_000u64..120_000_000,
        ],
        0..200,
    )
}

fn snapshot_of(micros: &[u64]) -> HistogramSnapshot {
    let h = LatencyHistogram::new();
    for &us in micros {
        h.record(Duration::from_micros(us));
    }
    h.snapshot()
}

proptest! {
    #[test]
    fn quantiles_are_monotone_in_q(micros in samples(), qs in vec(0.0f64..=1.0, 2..12)) {
        let snap = snapshot_of(&micros);
        let mut sorted_qs = qs;
        sorted_qs.sort_by(|a, b| a.total_cmp(b));
        let mut last = Duration::ZERO;
        for q in sorted_qs {
            let v = snap.quantile(q);
            prop_assert!(
                v >= last,
                "quantile regressed: q={q} gave {v:?} after {last:?}"
            );
            last = v;
        }
    }

    #[test]
    fn quantiles_never_understate_and_p100_covers_the_max(micros in samples()) {
        let snap = snapshot_of(&micros);
        if micros.is_empty() {
            prop_assert_eq!(snap.quantile(0.99), Duration::ZERO);
            return Ok(());
        }
        let true_max = *micros.iter().max().expect("non-empty");
        // The top quantile must cover the true maximum exactly (the max
        // is tracked out-of-band, not bucket-quantized).
        prop_assert!(snap.quantile(1.0).as_micros() as u64 >= true_max);
        prop_assert_eq!(snap.max(), Duration::from_micros(true_max));
        // Every quantile's bucket upper bound may overstate by at most
        // the sub-bucket resolution (12.5%) plus 1µs of rounding.
        let p99 = snap.quantile(0.99).as_micros() as u64;
        prop_assert!(p99 <= true_max + true_max / 8 + 1, "p99={p99} max={true_max}");
    }

    #[test]
    fn merge_is_associative_and_commutative(
        a in samples(),
        b in samples(),
        c in samples(),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        let left = sa.merge(&sb).merge(&sc);
        let right = sa.merge(&sb.merge(&sc));
        prop_assert_eq!(&left, &right, "merge grouping changed the counters");
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa), "merge order changed the counters");
        // Identity: merging with an empty snapshot changes nothing.
        prop_assert_eq!(sa.merge(&HistogramSnapshot::default()), sa);
    }

    #[test]
    fn merging_shards_equals_recording_directly(a in samples(), b in samples()) {
        let merged = snapshot_of(&a).merge(&snapshot_of(&b));
        let mut all = a;
        all.extend(b);
        let direct = snapshot_of(&all);
        prop_assert_eq!(&merged, &direct);
        // Same counters means same quantiles at every probe point.
        for q in [0.0, 0.5, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), direct.quantile(q));
        }
    }
}
