//! Integration tests for the coalescing front door: admission outcomes
//! (queue-full vs shed-expired vs drain-while-queued), scatter
//! correctness with a poisoned batch member, and brownout bookkeeping.
//!
//! Every test drives a real [`Supervisor`] worker pool — the batcher is
//! only reachable through `predict_one`, exactly as production callers
//! use it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hb_pipeline::{fit_pipeline, OpSpec, Pipeline, Targets};
use hb_serve::{
    CoalesceConfig, FaultPlan, IncidentKind, Rung, ServeConfig, ServeError, ServingModel,
    Supervisor,
};
use hb_tensor::Tensor;

const WIDTH: usize = 4;

fn fixture() -> (Pipeline, Tensor<f32>) {
    let x = Tensor::from_fn(&[60, WIDTH], |i| ((i[0] * 7 + i[1] * 3) % 13) as f32 * 0.3);
    let y = Targets::Classes((0..60).map(|i| (i % 2) as i64).collect());
    let pipe = fit_pipeline(&[OpSpec::StandardScaler, OpSpec::GaussianNb], &x, &y);
    (pipe, x)
}

fn record(seed: usize) -> Tensor<f32> {
    Tensor::from_fn(&[1, WIDTH], |i| ((seed * 7 + i[1] * 3) % 13) as f32 * 0.3)
}

fn supervisor(config: ServeConfig, workers: usize) -> Supervisor {
    let (pipe, _) = fixture();
    let model = ServingModel::new(&pipe, config).expect("fixture must serve");
    Supervisor::spawn(model, workers)
}

#[test]
fn coalesced_rows_are_bit_identical_to_uncoalesced_execution() {
    let sup = supervisor(
        ServeConfig {
            coalesce: Some(CoalesceConfig::default()),
            ..ServeConfig::default()
        },
        2,
    );
    // Reference answers from the uncoalesced compiled path.
    let (pipe, _) = fixture();
    let solo = ServingModel::new(&pipe, ServeConfig::default()).expect("fixture must serve");
    for seed in 0..24 {
        let row = record(seed);
        let want = solo.predict(&row).expect("solo path must serve");
        let got = sup.predict_one(&row).expect("coalesced path must serve");
        assert_eq!(got.output.shape(), want.shape());
        let (g, w): (Vec<f32>, Vec<f32>) = (got.output.iter().collect(), want.iter().collect());
        assert_eq!(
            g.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            w.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "coalesced row diverged bit-wise from uncoalesced execution (seed {seed})"
        );
        assert_eq!(got.rung, Rung::Compiled);
    }
    sup.drain();
}

#[test]
fn full_queue_rejects_with_overloaded_not_shed() {
    // Capacity zero: the very first record finds the queue full. The
    // refusal must be Overloaded (capacity problem), not Expired
    // (deadline problem) — callers react differently to the two.
    let sup = supervisor(
        ServeConfig {
            coalesce: Some(CoalesceConfig {
                queue_capacity: 0,
                ..CoalesceConfig::default()
            }),
            ..ServeConfig::default()
        },
        1,
    );
    match sup.predict_one(&record(0)) {
        Err(ServeError::Overloaded { capacity, .. }) => assert_eq!(capacity, 0),
        other => panic!("expected Overloaded, got {other:?}"),
    }
    let stats = sup.model().stats();
    assert_eq!(stats.rejected_overload, 1);
    assert_eq!(stats.shed_expired, 0, "queue-full must not count as shed");
    sup.drain();
}

#[test]
fn doomed_requests_are_shed_expired_once_slowness_is_observed() {
    // A kernel 8x slower than the 25ms budget: the first request blows
    // its deadline the hard way and primes the execution EWMA; every
    // later request is then refused up front with Expired — the cheap
    // early refusal the shedding satellite is about.
    let sup = supervisor(
        ServeConfig {
            deadline: Some(Duration::from_millis(25)),
            coalesce: Some(CoalesceConfig::default()),
            faults: FaultPlan {
                slow_kernel: Some(Duration::from_millis(200)),
                ..FaultPlan::none()
            },
            ..ServeConfig::default()
        },
        1,
    );
    // Prime: the slow execution is observed (outcome is a deadline
    // miss or a degraded answer; either way the EWMA now knows).
    let first = sup.predict_one(&record(0));
    assert!(
        !matches!(first, Err(ServeError::Expired { .. })),
        "nothing observed yet - the first request must not be shed"
    );
    let mut shed = 0;
    for seed in 1..6 {
        if let Err(ServeError::Expired { waited, deadline }) = sup.predict_one(&record(seed)) {
            shed += 1;
            assert_eq!(deadline, Duration::from_millis(25));
            assert!(
                waited < Duration::from_millis(25),
                "shedding must be cheaper than the budget, waited {waited:?}"
            );
        }
    }
    assert!(shed > 0, "no request was shed despite a hopeless EWMA");
    assert_eq!(u64::try_from(shed).expect("count fits"), {
        let s = sup.model().stats();
        assert!(s.shed_expired >= 1);
        s.shed_expired
    });
    sup.drain();
}

#[test]
fn drain_answers_every_queued_request_definitively() {
    // A window and bucket floor chosen so nothing flushes on its own:
    // requests sit queued until drain, which must flush them as final
    // micro-batches — every caller gets a real answer, not a hang or a
    // dropped channel.
    let sup = Arc::new(supervisor(
        ServeConfig {
            coalesce: Some(CoalesceConfig {
                buckets: vec![32],
                max_delay: Duration::from_secs(30),
                ..CoalesceConfig::default()
            }),
            ..ServeConfig::default()
        },
        2,
    ));
    let answered = Arc::new(AtomicUsize::new(0));
    let mut clients = Vec::new();
    for seed in 0..5 {
        let sup = Arc::clone(&sup);
        let answered = Arc::clone(&answered);
        clients.push(std::thread::spawn(move || {
            let res = sup.predict_one(&record(seed));
            assert!(res.is_ok(), "queued request must drain to Ok, got {res:?}");
            answered.fetch_add(1, Ordering::SeqCst);
        }));
    }
    // Let the clients enqueue (none can flush: bucket floor is 32 and
    // the age watermark is 30s away).
    let enqueue_deadline = Instant::now() + Duration::from_secs(5);
    while sup.model().stats().queue_depth < 5 {
        assert!(
            Instant::now() < enqueue_deadline,
            "clients never reached the queue"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let t0 = Instant::now();
    sup.drain();
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "drain wedged on queued coalescing work"
    );
    for c in clients {
        c.join().expect("client must not panic");
    }
    assert_eq!(answered.load(Ordering::SeqCst), 5);
    // After drain the front door refuses, typed.
    assert!(matches!(
        sup.predict_one(&record(9)),
        Err(ServeError::ShuttingDown)
    ));
    assert_eq!(sup.model().stats().queue_depth, 0);
    sup.drain(); // idempotent
}

#[test]
fn poisoned_member_must_not_fail_its_batch_mates() {
    // One member carries a NaN feature (a legitimately poisoned input);
    // its batch-mates are clean. Scatter must answer the clean members
    // bit-identically to their solo execution, whatever happens to the
    // poisoned row.
    let sup = Arc::new(supervisor(
        ServeConfig {
            coalesce: Some(CoalesceConfig {
                // Wide window so all members coalesce into one batch.
                max_delay: Duration::from_millis(100),
                ..CoalesceConfig::default()
            }),
            ..ServeConfig::default()
        },
        1,
    ));
    let (pipe, _) = fixture();
    let solo = ServingModel::new(&pipe, ServeConfig::default()).expect("fixture must serve");
    let mut clients = Vec::new();
    for seed in 0..4 {
        let sup = Arc::clone(&sup);
        clients.push(std::thread::spawn(move || {
            let row = if seed == 2 {
                Tensor::from_fn(&[1, WIDTH], |i| if i[1] == 0 { f32::NAN } else { 1.0 })
            } else {
                record(seed)
            };
            (seed, sup.predict_one(&row))
        }));
    }
    let mut clean_ok = 0;
    for c in clients {
        let (seed, res) = c.join().expect("client must not panic");
        if seed == 2 {
            // The poisoned member gets its own verdict; any typed
            // outcome is acceptable, panicking the batch is not.
            continue;
        }
        let served = res.unwrap_or_else(|e| panic!("clean member {seed} failed: {e}"));
        let want = solo.predict(&record(seed)).expect("solo path must serve");
        assert_eq!(
            served.output.iter().map(f32::to_bits).collect::<Vec<_>>(),
            want.iter().map(f32::to_bits).collect::<Vec<_>>(),
            "clean member {seed} diverged because of a batch-mate's poison"
        );
        clean_ok += 1;
    }
    assert_eq!(clean_ok, 3);
    sup.drain();
}

#[test]
fn whole_batch_poison_degrades_every_member_individually() {
    // nan_poison corrupts every compiled rung's output after a
    // "successful" run. The batch-level scan catches it, the shared
    // execution fails, and each member must still get a correct answer
    // through its own fallback — degraded, never silently wrong.
    let sup = supervisor(
        ServeConfig {
            coalesce: Some(CoalesceConfig::default()),
            faults: FaultPlan {
                nan_poison: true,
                ..FaultPlan::none()
            },
            ..ServeConfig::default()
        },
        2,
    );
    for seed in 0..6 {
        let served = sup
            .predict_one(&record(seed))
            .expect("degradation must mask the poison");
        assert!(
            served.output.iter().all(|v| v.is_finite()),
            "poisoned output leaked through the scatter path"
        );
        assert_eq!(
            served.rung,
            Rung::Reference,
            "poison must force degradation"
        );
    }
    sup.drain();
}

#[test]
fn sustained_pressure_enters_brownout_and_calm_exits_it() {
    // Drive the queue above the enter watermark for several consecutive
    // flush decisions by keeping the (single) worker saturated with a
    // slow kernel, then stop and verify the exit transition.
    let sup = Arc::new(supervisor(
        ServeConfig {
            coalesce: Some(CoalesceConfig {
                queue_capacity: 8,
                buckets: vec![1],
                max_delay: Duration::from_micros(50),
                brownout_enter_fraction: 0.5,
                brownout_exit_fraction: 0.125,
                brownout_ticks: 2,
                ..CoalesceConfig::default()
            }),
            faults: FaultPlan {
                slow_kernel: Some(Duration::from_millis(5)),
                ..FaultPlan::none()
            },
            ..ServeConfig::default()
        },
        1,
    ));
    let mut clients = Vec::new();
    for t in 0..6 {
        let sup = Arc::clone(&sup);
        clients.push(std::thread::spawn(move || {
            let stop = Instant::now() + Duration::from_millis(400);
            while Instant::now() < stop {
                let _ = sup.predict_one(&record(t));
            }
        }));
    }
    let saw_brownout = {
        let wait = Instant::now() + Duration::from_secs(10);
        loop {
            if sup.model().stats().brownout_entered > 0 {
                break true;
            }
            if Instant::now() > wait {
                break false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    };
    for c in clients {
        c.join().expect("client must not panic");
    }
    assert!(
        saw_brownout,
        "sustained 6-client pressure on a 1-worker pool never browned out"
    );
    let bp = sup.backpressure().expect("coalescing is configured");
    assert_eq!(bp.queue_capacity, 8);
    // With traffic gone the coalescer needs a few idle flush decisions
    // to observe calm; poke it with single requests.
    let calm_wait = Instant::now() + Duration::from_secs(10);
    while sup.backpressure().expect("configured").in_brownout {
        let _ = sup.predict_one(&record(0));
        assert!(
            Instant::now() < calm_wait,
            "brownout never exited after calm"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let incidents = sup.incidents();
    assert!(incidents
        .iter()
        .any(|i| i.kind == IncidentKind::BrownoutEntered));
    assert!(incidents
        .iter()
        .any(|i| i.kind == IncidentKind::BrownoutExited));
    sup.drain();
}

#[test]
fn coalescing_stats_and_backpressure_are_wired() {
    let sup = supervisor(
        ServeConfig {
            coalesce: Some(CoalesceConfig::default()),
            ..ServeConfig::default()
        },
        2,
    );
    for seed in 0..8 {
        sup.predict_one(&record(seed)).expect("must serve");
    }
    let stats = sup.model().stats();
    assert!(stats.coalesced_batches >= 1, "batches were never counted");
    assert_eq!(stats.queue_depth, 0, "gauge must return to zero when idle");
    let bp = sup.backpressure().expect("coalescing is configured");
    assert!(!bp.in_brownout);
    assert!(bp.exec_ewma > Duration::ZERO, "EWMA never observed a batch");
    let lat = sup.latency();
    assert_eq!(lat.end_to_end.count(), 8, "every request must be recorded");
    assert_eq!(lat.queue_wait.count(), 8);
    assert!(lat.end_to_end.quantile(0.99) >= lat.end_to_end.quantile(0.50));
    sup.drain();
}

#[test]
fn statically_infeasible_deadline_is_refused_before_queueing() {
    // A 1ns budget is below the certified execution floor of any real
    // pipeline (each kernel launch alone is certified above that), so
    // admission must refuse with the typed Infeasible proof *before*
    // the request ever queues or executes — not shed it on load, not
    // let it run and blow the deadline.
    let sup = supervisor(
        ServeConfig {
            deadline: Some(Duration::from_nanos(1)),
            coalesce: Some(CoalesceConfig::default()),
            ..ServeConfig::default()
        },
        1,
    );
    assert!(
        !sup.model().cost_certs().is_empty(),
        "fixture pipeline must carry cost certificates"
    );
    let floor = sup
        .model()
        .certified_floor(1)
        .expect("certified model must have a floor");
    match sup.predict_one(&record(0)) {
        Err(ServeError::Infeasible { deadline, floor: f }) => {
            assert_eq!(deadline, Duration::from_nanos(1));
            assert_eq!(f, floor);
            assert!(f > deadline, "the floor must exceed the refused deadline");
        }
        other => panic!("expected Infeasible, got {other:?}"),
    }
    let stats = sup.model().stats();
    assert_eq!(stats.rejected_infeasible, 1);
    assert_eq!(stats.queue_depth, 0, "refusal must happen before queueing");
    assert_eq!(
        stats.coalesced_batches, 0,
        "an infeasible request must never reach execution"
    );
    assert_eq!(
        stats.shed_expired, 0,
        "static infeasibility is not load shedding"
    );
    sup.drain();
}

#[test]
fn cold_start_ewma_sheds_the_very_first_burst() {
    // Regression for the shed-oracle cold start: before this, the EWMA
    // started at zero and the first burst was admitted blind, paying
    // for answers that could never meet their deadlines. Seeded from
    // the cost certificate's envelope midpoint, the oracle sheds a
    // deadline between the certified floor and the expected execution
    // time on the *first* request — no sample ever observed.
    let (pipe, _) = fixture();
    let probe = ServingModel::new(&pipe, ServeConfig::default()).expect("fixture must serve");
    let floor = probe.certified_floor(1).expect("fixture must certify");
    let largest = CoalesceConfig::default()
        .normalized_buckets()
        .pop()
        .expect("nonempty");
    let seed =
        hb_backend::envelope_for(probe.cost_cert_for(largest).expect("fixture must certify"))
            .midpoint();
    assert!(
        seed > floor * 4,
        "calibrated midpoint {seed:?} must clear the floor {floor:?} for this test to bite"
    );
    // Feasible (above the floor) but hopeless (below the expected
    // execution time): only the seed can know that up front.
    let deadline = (floor * 2).max(seed / 8);
    assert!(deadline > floor && deadline < seed);
    let model = ServingModel::new(
        &pipe,
        ServeConfig {
            deadline: Some(deadline),
            coalesce: Some(CoalesceConfig::default()),
            ..ServeConfig::default()
        },
    )
    .expect("fixture must serve");
    let sup = Supervisor::spawn(model, 1);
    match sup.predict_one(&record(0)) {
        Err(ServeError::Expired {
            waited,
            deadline: d,
        }) => {
            assert_eq!(d, deadline);
            assert_eq!(
                waited,
                Duration::ZERO,
                "shed at admission, not after queueing"
            );
        }
        other => panic!("expected first-burst Expired shed, got {other:?}"),
    }
    let stats = sup.model().stats();
    assert_eq!(stats.shed_expired, 1);
    assert_eq!(
        stats.coalesced_batches, 0,
        "the oracle must shed before any execution sample exists"
    );
    sup.drain();
}

#[test]
fn without_coalescing_predict_one_still_serves_vectors() {
    let sup = supervisor(ServeConfig::default(), 1);
    assert!(sup.backpressure().is_none());
    let flat = Tensor::from_fn(&[WIDTH], |i| i[0] as f32 * 0.2);
    let served = sup.predict_one(&flat).expect("vector request must serve");
    assert_eq!(served.output.shape()[0], 1);
    // Batches are refused on the single-record API either way.
    let batch = Tensor::from_fn(&[2, WIDTH], |_| 0.5);
    assert!(matches!(
        sup.predict_one(&batch),
        Err(ServeError::BadRequest(_))
    ));
    sup.drain();
}
