//! Lock-free log-bucketed latency histogram.
//!
//! Tail latency is the number production serving cares about, and it
//! must be observable without perturbing the thing being measured: a
//! mutex-guarded histogram on the request hot path would serialize the
//! worker pool it is supposed to profile. [`LatencyHistogram`] is a
//! fixed array of atomic counters indexed by a logarithmic bucketing of
//! the sample in microseconds, so recording is one relaxed `fetch_add`
//! (plus a CAS loop for the running maximum) and never blocks, never
//! allocates, and can be hammered from every worker thread at once.
//!
//! The bucket layout is HdrHistogram-style: values below `2^SUB_BITS`
//! µs get exact buckets; above that, each power-of-two octave is split
//! into `2^SUB_BITS` linear sub-buckets, bounding the relative
//! quantization error at `2^-SUB_BITS` (12.5%) — plenty for p50/p95/p99
//! reporting while keeping the whole histogram a few KiB.
//!
//! Snapshots are plain `u64` count vectors, so merging two snapshots is
//! element-wise addition — exactly associative and commutative, which
//! the property suite (`crates/serve/tests/histogram_props.rs`) pins
//! down: per-thread histograms can be merged in any grouping and the
//! reported quantiles cannot disagree.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Linear sub-buckets per octave, as a power of two.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;
/// Octaves above the exact range: covers up to ~2^34 µs (~4.7 hours),
/// far past any latency a serving deadline would tolerate; larger
/// samples clamp into the top bucket.
const OCTAVES: usize = 32;
/// Total bucket count (exact range + octave sub-buckets).
const N_BUCKETS: usize = SUB as usize * (OCTAVES + 1);

/// Bucket index for a sample of `v` microseconds.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let exp = 63 - u64::from(v.leading_zeros()); // >= SUB_BITS
    let shift = exp - u64::from(SUB_BITS);
    let sub_idx = (v >> shift) & (SUB - 1);
    let idx = ((exp - u64::from(SUB_BITS) + 1) * SUB + sub_idx) as usize;
    idx.min(N_BUCKETS - 1)
}

/// Inclusive upper bound (µs) of bucket `idx` — the value a quantile
/// query reports, so quantiles never understate latency.
fn bucket_upper(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        return idx;
    }
    let exp = idx / SUB + u64::from(SUB_BITS) - 1;
    let shift = exp - u64::from(SUB_BITS);
    let mantissa = (idx % SUB) | SUB;
    (mantissa << shift) + ((1u64 << shift) - 1)
}

/// A lock-free histogram of latency samples with logarithmic buckets.
///
/// Recording is wait-free (one relaxed atomic add); reading takes a
/// point-in-time [`HistogramSnapshot`]. One instance is shared by every
/// worker thread of a [`crate::Supervisor`].
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; N_BUCKETS],
    /// Running maximum in µs (CAS loop; exact, unlike the buckets).
    max_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            max_micros: AtomicU64::new(0),
        }
    }

    /// Records one latency sample. Wait-free; safe from any thread.
    pub fn record(&self, sample: Duration) {
        let v = u64::try_from(sample.as_micros()).unwrap_or(u64::MAX);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        let mut seen = self.max_micros.load(Ordering::Relaxed);
        while v > seen {
            match self.max_micros.compare_exchange_weak(
                seen,
                v,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => seen = actual,
            }
        }
    }

    /// Point-in-time copy of the counters.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            max_micros: self.max_micros.load(Ordering::Relaxed),
        }
    }
}

/// Immutable counter snapshot of a [`LatencyHistogram`], supporting
/// quantile queries and associative merging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    max_micros: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; N_BUCKETS],
            max_micros: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The exact maximum recorded sample (not bucket-quantized).
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_micros)
    }

    /// The latency at quantile `q` in `[0, 1]`, reported as the upper
    /// bound of the bucket holding the `ceil(q·count)`-th sample, so the
    /// answer never understates the true quantile by more than the
    /// bucket width (≤ 12.5% relative). Returns zero for an empty
    /// snapshot. Monotone in `q` by construction.
    pub fn quantile(&self, q: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * total), computed in integers to dodge f64 rounding.
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                // The top bucket is a clamp; report the exact max there.
                if idx == self.buckets.len() - 1 {
                    return Duration::from_micros(self.max_micros.max(bucket_upper(idx)));
                }
                return Duration::from_micros(bucket_upper(idx));
            }
        }
        Duration::from_micros(self.max_micros)
    }

    /// Element-wise sum of two snapshots (e.g. per-thread shards).
    /// Exactly associative and commutative: merging in any grouping
    /// yields identical counters, hence identical quantiles.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&other.buckets)
                .map(|(a, b)| a + b)
                .collect(),
            max_micros: self.max_micros.max(other.max_micros),
        }
    }

    /// `"p50/p95/p99"` rendered compactly for tables (ms with µs
    /// precision below 1 ms).
    pub fn format_p50_p95_p99(&self) -> String {
        let fmt = |d: Duration| {
            let us = d.as_micros();
            if us >= 1000 {
                format!("{:.1}ms", us as f64 / 1000.0)
            } else {
                format!("{us}us")
            }
        };
        format!(
            "{}/{}/{}",
            fmt(self.quantile(0.50)),
            fmt(self.quantile(0.95)),
            fmt(self.quantile(0.99))
        )
    }
}

/// The latency histograms the serving front door maintains: time spent
/// queued before dispatch, and total admission-to-reply time. Both are
/// lock-free; one instance is shared by the coalescer, the worker pool,
/// and every submitter.
#[derive(Debug, Default)]
pub struct ServingLatency {
    /// Queue wait: admission to batch dispatch.
    pub queue_wait: LatencyHistogram,
    /// End to end: admission to reply (including shed replies).
    pub end_to_end: LatencyHistogram,
}

impl ServingLatency {
    /// Point-in-time snapshot of both histograms.
    pub fn report(&self) -> LatencyReport {
        LatencyReport {
            queue_wait: self.queue_wait.snapshot(),
            end_to_end: self.end_to_end.snapshot(),
        }
    }
}

/// Snapshot pair from [`ServingLatency::report`] /
/// [`crate::Supervisor::latency`].
#[derive(Debug, Clone, Default)]
pub struct LatencyReport {
    /// Queue-wait distribution (admission to batch dispatch).
    pub queue_wait: HistogramSnapshot,
    /// End-to-end distribution (admission to reply).
    pub end_to_end: HistogramSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_continuous_and_inverse_consistent() {
        // Every representable µs value lands in a bucket whose bounds
        // contain it, and indices are non-decreasing in the value.
        let mut last = 0usize;
        for v in 0..4096u64 {
            let idx = bucket_index(v);
            assert!(idx >= last, "index regressed at {v}");
            assert!(bucket_upper(idx) >= v, "upper bound below value at {v}");
            if idx > 0 {
                assert!(
                    bucket_upper(idx - 1) < v,
                    "value {v} fits an earlier bucket"
                );
            }
            last = idx;
        }
        // Exact range: identity.
        for v in 0..SUB {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
        // Clamp: absurd values stay in range.
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn quantiles_bound_the_true_values() {
        let h = LatencyHistogram::new();
        for us in [100u64, 200, 300, 400, 500, 600, 700, 800, 900, 1000] {
            h.record(Duration::from_micros(us));
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 10);
        assert_eq!(s.max(), Duration::from_micros(1000));
        let p50 = s.quantile(0.5).as_micros() as u64;
        // p50 over 10 samples is the 5th (500µs); the bucket upper bound
        // may overstate by at most 12.5%.
        assert!((500..=563).contains(&p50), "p50 = {p50}");
        assert!(s.quantile(1.0) >= Duration::from_micros(1000));
        assert_eq!(s.quantile(0.0), s.quantile(0.1).min(s.quantile(0.0)));
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.99), Duration::ZERO);
        assert_eq!(s.max(), Duration::ZERO);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(Duration::from_micros(t * 1000 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("recorder panicked");
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 4000);
        assert_eq!(s.max(), Duration::from_micros(3999));
    }
}
