//! `hb-serve`: a fault-tolerant serving runtime for compiled pipelines.
//!
//! Prediction serving (the paper's target workload, §2) runs inside a
//! latency SLO with hostile inputs and flaky infrastructure. This crate
//! wraps the Hummingbird compiler stack in the defenses a production
//! scorer needs:
//!
//! * **Degradation ladder** — the pipeline is compiled at every backend
//!   it supports, best-first: `Compiled` → `Script` → `Eager`, with the
//!   imperative [`Pipeline`] scorer as the always-available
//!   [`Rung::Reference`] floor. A request that fails on one rung falls
//!   to the next; all rungs produce outputs within validation tolerance
//!   of each other, so degradation trades latency, never correctness.
//! * **Deadline enforcement** — each request carries an optional
//!   deadline; blown deadlines return [`ServeError::DeadlineExceeded`]
//!   instead of a stale result.
//! * **Admission control** — a bounded in-flight budget rejects excess
//!   load with a typed [`ServeError::Overloaded`] rather than queueing
//!   without bound.
//! * **Retry with backoff** — transient faults (kernel-level failures)
//!   are retried on the same rung with doubling backoff before the
//!   request degrades.
//! * **Corruption detection** — a rung that returns non-finite outputs
//!   for finite inputs (e.g. an injected NaN-poisoning fault) is treated
//!   as failed, not trusted.
//!
//! Fault injection for chaos testing comes from
//! [`hb_backend::FaultPlan`] via [`ServeConfig::faults`].
//!
//! # Examples
//!
//! ```
//! use hb_serve::{ServeConfig, ServingModel};
//! use hb_pipeline::{fit_pipeline, OpSpec, Targets};
//! use hb_tensor::Tensor;
//!
//! let x = Tensor::from_fn(&[40, 3], |i| (i[0] * 3 + i[1]) as f32 * 0.1);
//! let y = Targets::Classes((0..40).map(|i| (i % 2) as i64).collect());
//! let pipe = fit_pipeline(&[OpSpec::StandardScaler, OpSpec::GaussianNb], &x, &y);
//! let server = ServingModel::new(&pipe, ServeConfig::default()).unwrap();
//! let proba = server.predict(&x).unwrap();
//! assert_eq!(proba.shape(), &[40, 2]);
//! ```

// Pure-safe-Rust policy: every crate in this workspace is 100% safe
// Rust; see DESIGN.md ("Unsafe-code policy").
#![forbid(unsafe_code)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use hb_backend::Backend;
pub use hb_backend::{FaultPlan, FaultScope};
use hb_core::{
    compile_with_registry, CompileError, CompileOptions, CompiledModel, ConverterRegistry, HbError,
};
use hb_pipeline::Pipeline;
use hb_tensor::Tensor;

/// One level of the degradation ladder, best-first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rung {
    /// Fully optimized backend ("TVM").
    Compiled,
    /// Pre-planned topological program ("TorchScript").
    Script,
    /// Op-at-a-time interpretation ("PyTorch").
    Eager,
    /// The imperative reference scorer — always available, slowest.
    Reference,
}

impl Rung {
    /// All rungs, best (fastest) first.
    pub const LADDER: [Rung; 4] = [Rung::Compiled, Rung::Script, Rung::Eager, Rung::Reference];

    /// The backend this rung compiles at; `None` for the reference rung.
    pub fn backend(self) -> Option<Backend> {
        match self {
            Rung::Compiled => Some(Backend::Compiled),
            Rung::Script => Some(Backend::Script),
            Rung::Eager => Some(Backend::Eager),
            Rung::Reference => None,
        }
    }

    /// Position in [`Rung::LADDER`] (index into [`ServingStats::served`]).
    pub fn index(self) -> usize {
        match self {
            Rung::Compiled => 0,
            Rung::Script => 1,
            Rung::Eager => 2,
            Rung::Reference => 3,
        }
    }

    /// Human-readable label for stats and logs.
    pub fn label(self) -> &'static str {
        match self {
            Rung::Compiled => "compiled",
            Rung::Script => "script",
            Rung::Eager => "eager",
            Rung::Reference => "reference",
        }
    }
}

/// Serving-time configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Per-request latency budget; `None` disables deadline checks.
    pub deadline: Option<Duration>,
    /// Maximum concurrently admitted requests before
    /// [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Retries per rung for transient faults before degrading.
    pub max_retries: u32,
    /// Initial backoff between retries; doubles per attempt.
    pub backoff: Duration,
    /// Faults to inject into the compiled rungs (chaos testing).
    pub faults: FaultPlan,
    /// Compile options shared by every rung (the backend field is
    /// overridden per rung).
    pub compile: CompileOptions,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            deadline: None,
            queue_capacity: 64,
            max_retries: 2,
            backoff: Duration::from_millis(1),
            faults: FaultPlan::none(),
            compile: CompileOptions::default(),
        }
    }
}

/// Typed serving failures. Every path out of [`ServingModel::predict`]
/// is either a correct tensor or one of these — never a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Admission control rejected the request.
    Overloaded {
        /// Requests in flight at rejection time.
        in_flight: usize,
        /// The configured capacity.
        capacity: usize,
    },
    /// The latency budget was exhausted.
    DeadlineExceeded {
        /// Time spent before giving up.
        elapsed: Duration,
        /// The configured budget.
        deadline: Duration,
    },
    /// The request itself is malformed (wrong rank / feature width).
    BadRequest(String),
    /// Every rung — including the imperative reference — failed.
    /// Carries each rung's failure reason, best rung first.
    AllRungsFailed(Vec<(Rung, String)>),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded {
                in_flight,
                capacity,
            } => {
                write!(
                    f,
                    "overloaded: {in_flight} requests in flight, capacity {capacity}"
                )
            }
            ServeError::DeadlineExceeded { elapsed, deadline } => {
                write!(
                    f,
                    "deadline exceeded: {elapsed:?} elapsed, budget {deadline:?}"
                )
            }
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::AllRungsFailed(reasons) => {
                write!(f, "all rungs failed:")?;
                for (rung, why) in reasons {
                    write!(f, " [{}: {}]", rung.label(), why)?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Aggregate serving statistics (lock-protected snapshot).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServingStats {
    /// Requests answered successfully, per rung (ladder order).
    pub served: [u64; 4],
    /// Requests rejected by admission control.
    pub rejected_overload: u64,
    /// Requests that blew their deadline.
    pub deadline_misses: u64,
    /// Requests rejected as malformed.
    pub bad_requests: u64,
    /// Requests where every rung failed.
    pub all_rungs_failed: u64,
    /// Same-rung retry attempts across all requests.
    pub retries: u64,
    /// Requests served by a rung below the best available one.
    pub degraded: u64,
}

impl ServingStats {
    /// Successful answers from rung `r`.
    pub fn served_by(&self, r: Rung) -> u64 {
        self.served[r.index()]
    }

    /// Total successful answers.
    pub fn total_served(&self) -> u64 {
        self.served.iter().sum()
    }
}

/// Successful response with serving metadata.
#[derive(Debug, Clone)]
pub struct Served {
    /// The scored output (same contract as
    /// [`CompiledModel::predict_proba`]).
    pub output: Tensor<f32>,
    /// The rung that produced the answer.
    pub rung: Rung,
    /// Same-rung retries spent on this request.
    pub retries: u32,
    /// Wall-clock latency of the request.
    pub elapsed: Duration,
}

/// Decrements the in-flight counter when the request leaves the server,
/// on every path including panics.
struct AdmissionGuard<'a>(&'a AtomicUsize);

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A pipeline hardened for serving: compiled at every backend that
/// accepts it, fronted by admission control, deadlines, retries, and
/// the degradation ladder.
pub struct ServingModel {
    pipeline: Pipeline,
    /// Successfully compiled rungs, best-first. May be empty (then every
    /// request is served by the reference scorer).
    rungs: Vec<(Rung, CompiledModel)>,
    config: ServeConfig,
    input_width: Option<usize>,
    in_flight: AtomicUsize,
    stats: Mutex<ServingStats>,
}

impl ServingModel {
    /// Compiles `pipeline` at every backend, skipping rungs whose
    /// compilation fails (their failure is recoverable by construction —
    /// the reference scorer remains).
    ///
    /// # Errors
    ///
    /// Only hopeless pipelines fail here: an empty pipeline cannot be
    /// served even imperatively, and a pipeline whose tensor graph fails
    /// the static shape/dtype verifier is refused at admission — that is
    /// a converter bug, not a backend limitation, so no rung of the
    /// ladder could ever execute it correctly.
    pub fn new(pipeline: &Pipeline, config: ServeConfig) -> Result<ServingModel, HbError> {
        ServingModel::with_registry(pipeline, config, &ConverterRegistry::new())
    }

    /// Like [`ServingModel::new`], but compiles through a custom
    /// [`ConverterRegistry`] so user-registered converters participate in
    /// every rung. Statically-invalid graphs (verifier rejections) are
    /// refused up front with [`HbError::Graph`].
    pub fn with_registry(
        pipeline: &Pipeline,
        config: ServeConfig,
        registry: &ConverterRegistry,
    ) -> Result<ServingModel, HbError> {
        if pipeline.is_empty() {
            return Err(HbError::BadRequest(
                "cannot serve an empty pipeline".to_string(),
            ));
        }
        let mut rungs = Vec::new();
        let mut width = None;
        for rung in Rung::LADDER {
            let Some(backend) = rung.backend() else {
                continue;
            };
            let opts = CompileOptions {
                backend,
                faults: config.faults.clone(),
                ..config.compile.clone()
            };
            // A rung that fails to compile (e.g. an injected
            // optimization-pass fault) is simply left off the ladder —
            // except for verifier rejections, which are deterministic
            // graph bugs shared by every rung: admission refuses those.
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                compile_with_registry(pipeline, &opts, registry)
            }));
            match attempt {
                Ok(Ok(model)) => {
                    width = width.or(model.input_width());
                    rungs.push((rung, model));
                }
                Ok(Err(CompileError::Verify(e))) => return Err(HbError::Graph(e)),
                _ => {}
            }
        }
        Ok(ServingModel {
            pipeline: pipeline.clone(),
            rungs,
            input_width: width.or(pipeline.input_width),
            in_flight: AtomicUsize::new(0),
            stats: Mutex::new(ServingStats::default()),
            config,
        })
    }

    /// The rungs that compiled successfully, best-first (the reference
    /// rung is implicit and always present).
    pub fn available_rungs(&self) -> Vec<Rung> {
        let mut r: Vec<Rung> = self.rungs.iter().map(|(rung, _)| *rung).collect();
        r.push(Rung::Reference);
        r
    }

    /// Snapshot of the aggregate serving statistics.
    pub fn stats(&self) -> ServingStats {
        // Stats survive a panicked holder: the counters are plain
        // integers, always valid.
        self.stats.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Scores a batch, applying the full protection stack. Equivalent to
    /// [`ServingModel::predict_detailed`] without the metadata.
    pub fn predict(&self, x: &Tensor<f32>) -> Result<Tensor<f32>, ServeError> {
        self.predict_detailed(x).map(|s| s.output)
    }

    /// Scores a batch and reports which rung served it, retry count, and
    /// latency.
    pub fn predict_detailed(&self, x: &Tensor<f32>) -> Result<Served, ServeError> {
        let start = Instant::now();

        // Admission control: bounded in-flight budget.
        let admitted = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        let _guard = AdmissionGuard(&self.in_flight);
        if admitted > self.config.queue_capacity {
            self.record(|s| s.rejected_overload += 1);
            return Err(ServeError::Overloaded {
                in_flight: admitted,
                capacity: self.config.queue_capacity,
            });
        }

        // Request validation before any kernel runs.
        if let Err(msg) = self.validate(x) {
            self.record(|s| s.bad_requests += 1);
            return Err(ServeError::BadRequest(msg));
        }

        // Corruption detection only applies when the input is clean:
        // a request carrying NaN/Inf legitimately produces non-finite
        // outputs on some pipelines.
        let input_finite = x.iter().all(|v| v.is_finite());

        let mut retries_spent = 0u32;
        let mut failures: Vec<(Rung, String)> = Vec::new();
        let best = self
            .rungs
            .first()
            .map(|(r, _)| *r)
            .unwrap_or(Rung::Reference);

        for (rung, model) in self
            .rungs
            .iter()
            .map(|(r, m)| (*r, Some(m)))
            .chain([(Rung::Reference, None)])
        {
            let mut backoff = self.config.backoff;
            let mut attempt = 0u32;
            loop {
                self.check_deadline(start)?;
                match self.run_rung(model, x) {
                    Ok(out) => {
                        if input_finite && out.iter().any(|v| !v.is_finite()) {
                            failures.push((rung, "non-finite output for finite input".into()));
                            break;
                        }
                        self.check_deadline(start)?;
                        self.record(|s| {
                            s.served[rung.index()] += 1;
                            s.retries += u64::from(retries_spent);
                            if rung != best {
                                s.degraded += 1;
                            }
                        });
                        return Ok(Served {
                            output: out,
                            rung,
                            retries: retries_spent,
                            elapsed: start.elapsed(),
                        });
                    }
                    Err((transient, why)) => {
                        if transient && attempt < self.config.max_retries {
                            attempt += 1;
                            retries_spent += 1;
                            std::thread::sleep(backoff);
                            backoff *= 2;
                            continue;
                        }
                        failures.push((rung, why));
                        break;
                    }
                }
            }
        }

        self.record(|s| s.all_rungs_failed += 1);
        Err(ServeError::AllRungsFailed(failures))
    }

    /// Runs one rung; `None` selects the imperative reference scorer.
    /// Returns `(is_transient, reason)` on failure. Panics inside the
    /// reference scorer are converted to failures here; compiled rungs
    /// are already panic-free at the executor boundary.
    fn run_rung(
        &self,
        model: Option<&CompiledModel>,
        x: &Tensor<f32>,
    ) -> Result<Tensor<f32>, (bool, String)> {
        match model {
            Some(m) => m
                .predict_proba(x)
                .map_err(|e| (e.is_transient(), e.to_string())),
            None => {
                catch_unwind(AssertUnwindSafe(|| self.pipeline.predict_proba(x))).map_err(|p| {
                    (
                        false,
                        format!("reference scorer panicked: {}", panic_text(p)),
                    )
                })
            }
        }
    }

    fn validate(&self, x: &Tensor<f32>) -> Result<(), String> {
        if x.ndim() != 2 {
            return Err(format!(
                "expected a [batch, features] matrix, got rank {}",
                x.ndim()
            ));
        }
        if let Some(w) = self.input_width {
            if x.shape()[1] != w {
                return Err(format!(
                    "feature width mismatch: model expects {w} features, request has {}",
                    x.shape()[1]
                ));
            }
        }
        Ok(())
    }

    fn check_deadline(&self, start: Instant) -> Result<(), ServeError> {
        let Some(deadline) = self.config.deadline else {
            return Ok(());
        };
        let elapsed = start.elapsed();
        if elapsed > deadline {
            self.record(|s| s.deadline_misses += 1);
            return Err(ServeError::DeadlineExceeded { elapsed, deadline });
        }
        Ok(())
    }

    fn record(&self, f: impl FnOnce(&mut ServingStats)) {
        f(&mut self.stats.lock().unwrap_or_else(|p| p.into_inner()));
    }
}

fn panic_text(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_pipeline::{fit_pipeline, OpSpec, Targets};

    fn fixture() -> (Pipeline, Tensor<f32>) {
        let x = Tensor::from_fn(&[60, 4], |i| ((i[0] * 7 + i[1] * 3) % 13) as f32 * 0.3);
        let y = Targets::Classes((0..60).map(|i| (i % 2) as i64).collect());
        let pipe = fit_pipeline(&[OpSpec::StandardScaler, OpSpec::GaussianNb], &x, &y);
        (pipe, x)
    }

    #[test]
    fn serves_from_best_rung_when_healthy() {
        let (pipe, x) = fixture();
        let server = ServingModel::new(&pipe, ServeConfig::default()).unwrap();
        let served = server.predict_detailed(&x).unwrap();
        assert_eq!(served.rung, Rung::Compiled);
        assert_eq!(served.retries, 0);
        let stats = server.stats();
        assert_eq!(stats.served_by(Rung::Compiled), 1);
        assert_eq!(stats.degraded, 0);
    }

    #[test]
    fn empty_pipeline_is_rejected_at_construction() {
        let res = ServingModel::new(&Pipeline::default(), ServeConfig::default());
        assert!(matches!(res, Err(HbError::BadRequest(_))));
    }

    #[test]
    fn bad_width_is_rejected_before_kernels() {
        let (pipe, _) = fixture();
        let server = ServingModel::new(&pipe, ServeConfig::default()).unwrap();
        let narrow = Tensor::from_fn(&[2, 3], |i| i[1] as f32);
        assert!(matches!(
            server.predict(&narrow),
            Err(ServeError::BadRequest(_))
        ));
        assert_eq!(server.stats().bad_requests, 1);
    }

    #[test]
    fn statically_invalid_graph_is_refused_at_admission() {
        let (pipe, _) = fixture();
        // A buggy custom converter for StandardScaler: matmul against a
        // [5, 7] constant whose inner dimension cannot match the [B, 4]
        // input. The static verifier must catch this at admission — no
        // rung could ever execute it.
        let mut registry = ConverterRegistry::new();
        registry.register(
            "StandardScaler",
            std::sync::Arc::new(|_op, b, x, _width| {
                let w = b.constant(Tensor::<f32>::from_fn(&[5, 7], |_| 1.0));
                Ok(b.matmul(x, w))
            }),
        );
        let res = ServingModel::with_registry(&pipe, ServeConfig::default(), &registry);
        match res {
            Err(HbError::Graph(e)) => {
                let msg = e.to_string();
                assert!(msg.contains("shape mismatch"), "unexpected: {msg}");
            }
            other => panic!(
                "expected admission refusal, got {:?}",
                other.map(|m| m.available_rungs())
            ),
        }
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let (pipe, x) = fixture();
        let server = ServingModel::new(
            &pipe,
            ServeConfig {
                queue_capacity: 0,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        assert!(matches!(
            server.predict(&x),
            Err(ServeError::Overloaded { .. })
        ));
        assert_eq!(server.stats().rejected_overload, 1);
    }
}
