//! `hb-serve`: a fault-tolerant, concurrent serving runtime for compiled
//! pipelines.
//!
//! Prediction serving (the paper's target workload, §2) runs inside a
//! latency SLO with hostile inputs and flaky infrastructure. This crate
//! wraps the Hummingbird compiler stack in the defenses a production
//! scorer needs:
//!
//! * **Degradation ladder** — the pipeline is compiled at every backend
//!   it supports, best-first: `Compiled` → `Script` → `Eager`, with the
//!   imperative [`Pipeline`] scorer as the always-available
//!   [`Rung::Reference`] floor. A request that fails on one rung falls
//!   to the next; all rungs produce outputs within validation tolerance
//!   of each other, so degradation trades latency, never correctness.
//! * **Per-rung circuit breakers** — a rung that fails K requests in a
//!   row is skipped outright (Closed → Open → Half-Open probe) instead
//!   of paying its failure latency on every request. See [`breaker`].
//! * **Deadline enforcement with cooperative cancellation** — each
//!   request carries an optional deadline threaded into the executor as
//!   a [`CancelToken`]; a blown deadline stops the run *mid-graph*
//!   ([`ServeError::DeadlineExceeded`]) instead of computing an answer
//!   nobody wants.
//! * **Admission control** — a bounded in-flight budget rejects excess
//!   load with a typed [`ServeError::Overloaded`] rather than queueing
//!   without bound.
//! * **Retry with backoff** — transient faults (kernel-level failures)
//!   are retried on the same rung with doubling backoff (clamped to the
//!   remaining deadline budget) before the request degrades.
//! * **Corruption detection** — a rung that returns non-finite outputs
//!   for finite inputs (e.g. an injected NaN-poisoning fault) is treated
//!   as failed, not trusted. The [`Supervisor`]'s background canary
//!   checker additionally replays sampled requests against the
//!   reference scorer and *quarantines* rungs whose outputs silently
//!   diverge.
//! * **Supervision** — [`Supervisor::spawn`] runs a fixed worker pool
//!   with per-request panic isolation, a watchdog that trips breakers
//!   for chronically slow rungs, an incident log with monotonic
//!   sequence numbers, and graceful [`Supervisor::drain`].
//!
//! Fault injection for chaos testing comes from
//! [`hb_backend::FaultPlan`] via [`ServeConfig::faults`].
//!
//! # Examples
//!
//! ```
//! use hb_serve::{ServeConfig, ServingModel};
//! use hb_pipeline::{fit_pipeline, OpSpec, Targets};
//! use hb_tensor::Tensor;
//!
//! let x = Tensor::from_fn(&[40, 3], |i| (i[0] * 3 + i[1]) as f32 * 0.1);
//! let y = Targets::Classes((0..40).map(|i| (i % 2) as i64).collect());
//! let pipe = fit_pipeline(&[OpSpec::StandardScaler, OpSpec::GaussianNb], &x, &y);
//! let server = ServingModel::new(&pipe, ServeConfig::default()).unwrap();
//! let proba = server.predict(&x).unwrap();
//! assert_eq!(proba.shape(), &[40, 2]);
//! ```

// Pure-safe-Rust policy: every crate in this workspace is 100% safe
// Rust; see DESIGN.md ("Unsafe-code policy").
#![forbid(unsafe_code)]

pub mod batcher;
pub mod breaker;
pub mod histogram;
pub mod incident;
pub mod store;
pub mod supervisor;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hb_backend::{Backend, CancelToken};
pub use hb_backend::{FaultPlan, FaultScope};
use hb_core::{
    compile_with_registry, CompileError, CompileOptions, CompiledModel, ConverterRegistry, HbError,
};
use hb_pipeline::Pipeline;
use hb_tensor::Tensor;

pub use batcher::{Backpressure, BrownoutControl, BrownoutTransition, CoalesceConfig};
pub use breaker::{Admission, BreakerConfig, BreakerState, CircuitBreaker, OpenReason};
pub use histogram::{HistogramSnapshot, LatencyHistogram, LatencyReport};
pub use incident::{Incident, IncidentKind, IncidentLog};
pub use store::{BudgetLedger, FairShare, ModelCard, ModelStore, StoreConfig};
pub use supervisor::{ModelHealth, Supervisor, SupervisorHealth};

/// One level of the degradation ladder, best-first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rung {
    /// Fully optimized backend ("TVM").
    Compiled,
    /// Pre-planned topological program ("TorchScript").
    Script,
    /// Op-at-a-time interpretation ("PyTorch").
    Eager,
    /// The imperative reference scorer — always available, slowest.
    Reference,
}

impl Rung {
    /// All rungs, best (fastest) first.
    pub const LADDER: [Rung; 4] = [Rung::Compiled, Rung::Script, Rung::Eager, Rung::Reference];

    /// The backend this rung compiles at; `None` for the reference rung.
    pub fn backend(self) -> Option<Backend> {
        match self {
            Rung::Compiled => Some(Backend::Compiled),
            Rung::Script => Some(Backend::Script),
            Rung::Eager => Some(Backend::Eager),
            Rung::Reference => None,
        }
    }

    /// Position in [`Rung::LADDER`] (index into [`ServingStats::served`]).
    pub fn index(self) -> usize {
        match self {
            Rung::Compiled => 0,
            Rung::Script => 1,
            Rung::Eager => 2,
            Rung::Reference => 3,
        }
    }

    /// Human-readable label for stats and logs.
    pub fn label(self) -> &'static str {
        match self {
            Rung::Compiled => "compiled",
            Rung::Script => "script",
            Rung::Eager => "eager",
            Rung::Reference => "reference",
        }
    }
}

/// Serving-time configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Per-request latency budget; `None` disables deadline checks.
    pub deadline: Option<Duration>,
    /// Maximum concurrently admitted requests before
    /// [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Retries per rung for transient faults before degrading.
    pub max_retries: u32,
    /// Initial backoff between retries; doubles per attempt, and is
    /// always clamped to the remaining deadline budget.
    pub backoff: Duration,
    /// Per-rung circuit-breaker tunables (trip threshold, cooldown).
    pub breaker: BreakerConfig,
    /// Canary sampling period: every `canary_period`-th successful
    /// request is re-validated against the reference scorer in the
    /// background (supervisor only). `0` disables the canary.
    pub canary_period: usize,
    /// Maximum relative error tolerated between a rung's output and the
    /// reference before the rung is quarantined.
    pub canary_tolerance: f32,
    /// How often the supervisor's watchdog wakes to check deadline-blow
    /// counters and run recovery probes.
    pub watchdog_interval: Duration,
    /// Deadline blows per watchdog window that trip a rung's breaker
    /// with [`OpenReason::Slow`].
    pub deadline_blow_threshold: u64,
    /// Faults to inject into the compiled rungs (chaos testing).
    pub faults: FaultPlan,
    /// Compile options shared by every rung (the backend field is
    /// overridden per rung).
    pub compile: CompileOptions,
    /// Micro-batch coalescing front door (supervisor only): queue
    /// single-record requests and execute them in deadline-aware,
    /// bucketed micro-batches via [`Supervisor::predict_one`]. `None`
    /// disables coalescing.
    pub coalesce: Option<CoalesceConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            deadline: None,
            queue_capacity: 64,
            max_retries: 2,
            backoff: Duration::from_millis(1),
            breaker: BreakerConfig::default(),
            canary_period: 8,
            canary_tolerance: 1e-4,
            watchdog_interval: Duration::from_millis(20),
            deadline_blow_threshold: 3,
            faults: FaultPlan::none(),
            compile: CompileOptions::default(),
            coalesce: None,
        }
    }
}

/// Typed serving failures. Every path out of [`ServingModel::predict`]
/// is either a correct tensor or one of these — never a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Admission control rejected the request.
    Overloaded {
        /// Requests in flight at rejection time.
        in_flight: usize,
        /// The configured capacity.
        capacity: usize,
    },
    /// The latency budget was exhausted.
    DeadlineExceeded {
        /// Time spent before giving up.
        elapsed: Duration,
        /// The configured budget.
        deadline: Duration,
    },
    /// Overload shedding refused the request early: given the observed
    /// queue wait and the smoothed execution time, its deadline was
    /// already unmeetable — a cheap refusal instead of expensive late
    /// work. Distinct from [`ServeError::DeadlineExceeded`], which is
    /// charged only after real work was attempted.
    Expired {
        /// Time spent queued before shedding (zero when shed at
        /// admission).
        waited: Duration,
        /// The configured budget that could not be met.
        deadline: Duration,
    },
    /// Static cost certification proved the deadline unmeetable: the
    /// certified execution-time floor for the smallest batch bucket
    /// already exceeds the whole budget, so the request is refused
    /// before queueing. Distinct from [`ServeError::Expired`], which
    /// sheds on *observed* load — this rejection holds even on an idle
    /// server, for every request with this budget.
    Infeasible {
        /// The configured deadline that cannot be met.
        deadline: Duration,
        /// The certified execution-time lower bound it falls below.
        floor: Duration,
    },
    /// The request itself is malformed (wrong rank / feature width).
    BadRequest(String),
    /// Every rung — including the imperative reference — failed.
    /// Carries each rung's failure reason, best rung first.
    AllRungsFailed(Vec<(Rung, String)>),
    /// The supervisor is draining; no new work is accepted.
    ShuttingDown,
    /// The request died inside a worker (panic past every unwind
    /// boundary); the worker survived and the panic was logged as an
    /// incident.
    Internal(String),
    /// The request named a model the [`ModelStore`] does not host.
    UnknownModel(String),
    /// Registering or deploying a model would exceed its memory budget;
    /// the store refused and released everything already charged.
    BudgetExceeded {
        /// The model that was refused.
        model: String,
        /// Bytes the model would have occupied (constants + plan arena).
        requested: usize,
        /// The budget it would have blown.
        budget: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded {
                in_flight,
                capacity,
            } => {
                write!(
                    f,
                    "overloaded: {in_flight} requests in flight, capacity {capacity}"
                )
            }
            ServeError::DeadlineExceeded { elapsed, deadline } => {
                write!(
                    f,
                    "deadline exceeded: {elapsed:?} elapsed, budget {deadline:?}"
                )
            }
            ServeError::Expired { waited, deadline } => {
                write!(
                    f,
                    "shed: deadline {deadline:?} unmeetable after waiting {waited:?}"
                )
            }
            ServeError::Infeasible { deadline, floor } => {
                write!(
                    f,
                    "statically infeasible: deadline {deadline:?} is below the certified \
                     execution floor {floor:?}"
                )
            }
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::AllRungsFailed(reasons) => {
                write!(f, "all rungs failed:")?;
                for (rung, why) in reasons {
                    write!(f, " [{}: {}]", rung.label(), why)?;
                }
                Ok(())
            }
            ServeError::ShuttingDown => write!(f, "supervisor is shutting down"),
            ServeError::Internal(msg) => write!(f, "internal serving failure: {msg}"),
            ServeError::UnknownModel(name) => write!(f, "unknown model: {name:?}"),
            ServeError::BudgetExceeded {
                model,
                requested,
                budget,
            } => {
                write!(
                    f,
                    "memory budget exceeded for {model:?}: needs {requested} bytes, budget {budget}"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Aggregate serving statistics (atomic-counter snapshot).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServingStats {
    /// Requests answered successfully, per rung (ladder order).
    pub served: [u64; 4],
    /// Requests rejected by admission control.
    pub rejected_overload: u64,
    /// Requests that blew their deadline.
    pub deadline_misses: u64,
    /// Requests rejected as malformed.
    pub bad_requests: u64,
    /// Requests where every rung failed.
    pub all_rungs_failed: u64,
    /// Same-rung retry attempts across all requests.
    pub retries: u64,
    /// Requests served by a rung below the best available one.
    pub degraded: u64,
    /// Requests stopped mid-graph by cooperative cancellation after
    /// blowing their deadline.
    pub cancelled: u64,
    /// Rung visits skipped because the rung's circuit breaker was open.
    pub breaker_skips: u64,
    /// Micro-batches formed by the coalescing front door.
    pub coalesced_batches: u64,
    /// Requests shed with [`ServeError::Expired`] because their deadline
    /// was already unmeetable.
    pub shed_expired: u64,
    /// Requests refused with [`ServeError::Infeasible`] because static
    /// cost certification proved their deadline unmeetable.
    pub rejected_infeasible: u64,
    /// Times the coalescer entered brownout mode under sustained queue
    /// pressure.
    pub brownout_entered: u64,
    /// Records currently queued at the coalescing front door (gauge, not
    /// a counter: reflects the depth at the last queue transition).
    pub queue_depth: u64,
}

impl ServingStats {
    /// Successful answers from rung `r`.
    pub fn served_by(&self, r: Rung) -> u64 {
        self.served[r.index()]
    }

    /// Total successful answers.
    pub fn total_served(&self) -> u64 {
        self.served.iter().sum()
    }

    /// Adds `other`'s counters into `self` — store-wide aggregation
    /// across hosted models (the queue-depth gauge sums too, as total
    /// queued records).
    pub fn absorb(&mut self, other: &ServingStats) {
        for (mine, theirs) in self.served.iter_mut().zip(other.served) {
            *mine += theirs;
        }
        self.rejected_overload += other.rejected_overload;
        self.deadline_misses += other.deadline_misses;
        self.bad_requests += other.bad_requests;
        self.all_rungs_failed += other.all_rungs_failed;
        self.retries += other.retries;
        self.degraded += other.degraded;
        self.cancelled += other.cancelled;
        self.breaker_skips += other.breaker_skips;
        self.coalesced_batches += other.coalesced_batches;
        self.shed_expired += other.shed_expired;
        self.rejected_infeasible += other.rejected_infeasible;
        self.brownout_entered += other.brownout_entered;
        self.queue_depth += other.queue_depth;
    }
}

/// Race-free counter cells behind [`ServingStats`]. Plain atomics: safe
/// to bump from any worker thread without a lock, and a panicking
/// request can never poison them.
#[derive(Debug, Default)]
struct StatCells {
    served: [AtomicU64; 4],
    rejected_overload: AtomicU64,
    deadline_misses: AtomicU64,
    bad_requests: AtomicU64,
    all_rungs_failed: AtomicU64,
    retries: AtomicU64,
    degraded: AtomicU64,
    cancelled: AtomicU64,
    breaker_skips: AtomicU64,
    coalesced_batches: AtomicU64,
    shed_expired: AtomicU64,
    rejected_infeasible: AtomicU64,
    brownout_entered: AtomicU64,
    queue_depth: AtomicU64,
}

impl StatCells {
    fn snapshot(&self) -> ServingStats {
        ServingStats {
            served: [
                self.served[0].load(Ordering::Relaxed),
                self.served[1].load(Ordering::Relaxed),
                self.served[2].load(Ordering::Relaxed),
                self.served[3].load(Ordering::Relaxed),
            ],
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            all_rungs_failed: self.all_rungs_failed.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            breaker_skips: self.breaker_skips.load(Ordering::Relaxed),
            coalesced_batches: self.coalesced_batches.load(Ordering::Relaxed),
            shed_expired: self.shed_expired.load(Ordering::Relaxed),
            rejected_infeasible: self.rejected_infeasible.load(Ordering::Relaxed),
            brownout_entered: self.brownout_entered.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
        }
    }
}

/// Successful response with serving metadata.
#[derive(Debug, Clone)]
pub struct Served {
    /// The scored output (same contract as
    /// [`CompiledModel::predict_proba`]).
    pub output: Tensor<f32>,
    /// The rung that produced the answer.
    pub rung: Rung,
    /// Same-rung retries spent on this request.
    pub retries: u32,
    /// Wall-clock latency of the request.
    pub elapsed: Duration,
}

/// Health of one rung, as reported by [`HealthSnapshot`].
#[derive(Debug, Clone)]
pub struct RungHealth {
    /// Which rung.
    pub rung: Rung,
    /// True when a compiled model backs this rung (the reference rung is
    /// imperative and always available).
    pub compiled: bool,
    /// Breaker state; `None` for the reference rung, which has no
    /// breaker.
    pub breaker: Option<BreakerState>,
    /// True while the canary checker has this rung quarantined.
    pub quarantined: bool,
    /// Requests on this rung stopped mid-graph for blowing their
    /// deadline.
    pub deadline_blows: u64,
    /// Successful answers served from this rung.
    pub served: u64,
}

/// Point-in-time health/readiness view of a serving model (and, via
/// [`Supervisor::health`], its worker pool).
#[derive(Debug, Clone)]
pub struct HealthSnapshot {
    /// Per-rung health, ladder order (compiled rungs plus the reference
    /// floor).
    pub rungs: Vec<RungHealth>,
    /// Aggregate request counters.
    pub stats: ServingStats,
    /// Incidents recorded since construction (monotonic; the retained
    /// window may be smaller).
    pub incidents_total: u64,
    /// True when at least one rung is admissible. The reference floor
    /// makes this always true for a constructed model.
    pub ready: bool,
    /// True when the best compiled rung is not currently serving
    /// (breaker open/half-open or quarantined) — traffic is degraded.
    pub degraded_mode: bool,
}

impl HealthSnapshot {
    /// Health of rung `r`, if present on the ladder.
    pub fn rung(&self, r: Rung) -> Option<&RungHealth> {
        self.rungs.iter().find(|h| h.rung == r)
    }
}

/// Decrements the in-flight counter when the request leaves the server,
/// on every path including panics.
struct AdmissionGuard<'a>(&'a AtomicUsize);

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Canary period forced on when a rung's outputs can statically be NaN
/// but the operator disabled canary sampling (matches the
/// [`ServeConfig`] default).
const FORCED_CANARY_PERIOD: usize = 8;

/// Outcome of one rung attempt.
enum RungOutcome {
    Ok(Tensor<f32>),
    /// The executor observed the request's cancel token mid-graph.
    Cancelled,
    Failed {
        transient: bool,
        why: String,
    },
}

/// A pipeline hardened for serving: compiled at every backend that
/// accepts it, fronted by admission control, deadlines with cooperative
/// cancellation, retries, per-rung circuit breakers, and the
/// degradation ladder.
///
/// `ServingModel` is `Send + Sync`; wrap it in an [`Arc`] (or hand it to
/// [`Supervisor::spawn`]) to serve from many threads.
pub struct ServingModel {
    pipeline: Pipeline,
    /// Successfully compiled rungs, best-first. May be empty (then every
    /// request is served by the reference scorer).
    rungs: Vec<(Rung, CompiledModel)>,
    /// Circuit breakers parallel to `rungs` (the reference floor has
    /// none — it is never skipped).
    breakers: Vec<CircuitBreaker>,
    config: ServeConfig,
    /// Per compiled rung: `true` when abstract interpretation proved the
    /// rung's outputs finite and NaN-free for finite inputs, so the
    /// runtime non-finite output scan is redundant (never set when fault
    /// injection is active — injected poison bypasses the proof).
    scan_exempt: Vec<bool>,
    input_width: Option<usize>,
    in_flight: AtomicUsize,
    cells: StatCells,
    /// Per-rung count of requests cancelled mid-graph after blowing
    /// their deadline (ladder order). The supervisor's watchdog trips a
    /// rung's breaker when these accumulate too fast.
    deadline_blows: [AtomicU64; 4],
    incidents: Arc<IncidentLog>,
    /// `name@vN` attribution tag when hosted by a [`ModelStore`]; every
    /// incident this model records into the store's shared log carries
    /// it. `None` in standalone operation.
    tag: Option<Arc<str>>,
    /// Successful serves, driving per-model canary sampling when hosted
    /// by a store (standalone supervisors count successes themselves).
    canary_ticks: AtomicU64,
    /// Static cost certificates of the best compiled rung, one per
    /// [`hb_backend::COST_BUCKETS`] bucket. Empty when no rung compiled
    /// or the rung's work is not statically derivable — deadline
    /// feasibility and EWMA seeding then fall back to runtime behavior.
    cost_certs: Vec<hb_backend::CostCert>,
}

impl ServingModel {
    /// Compiles `pipeline` at every backend, skipping rungs whose
    /// compilation fails (their failure is recoverable by construction —
    /// the reference scorer remains).
    ///
    /// # Errors
    ///
    /// Only hopeless pipelines fail here: an empty pipeline cannot be
    /// served even imperatively, and a pipeline whose tensor graph fails
    /// the static shape/dtype verifier is refused at admission — that is
    /// a converter bug, not a backend limitation, so no rung of the
    /// ladder could ever execute it correctly.
    pub fn new(pipeline: &Pipeline, config: ServeConfig) -> Result<ServingModel, HbError> {
        ServingModel::with_registry(pipeline, config, &ConverterRegistry::new())
    }

    /// Like [`ServingModel::new`], but compiles through a custom
    /// [`ConverterRegistry`] so user-registered converters participate in
    /// every rung. Statically-invalid graphs (verifier rejections) are
    /// refused up front with [`HbError::Graph`].
    pub fn with_registry(
        pipeline: &Pipeline,
        config: ServeConfig,
        registry: &ConverterRegistry,
    ) -> Result<ServingModel, HbError> {
        if pipeline.is_empty() {
            return Err(HbError::BadRequest(
                "cannot serve an empty pipeline".to_string(),
            ));
        }
        let mut rungs = Vec::new();
        let mut width = None;
        for rung in Rung::LADDER {
            let Some(backend) = rung.backend() else {
                continue;
            };
            let opts = CompileOptions {
                backend,
                faults: config.faults.clone(),
                ..config.compile.clone()
            };
            // A rung that fails to compile (e.g. an injected
            // optimization-pass fault) is simply left off the ladder —
            // except for verifier rejections, which are deterministic
            // graph bugs shared by every rung: admission refuses those.
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                compile_with_registry(pipeline, &opts, registry)
            }));
            match attempt {
                Ok(Ok(model)) => {
                    width = width.or(model.input_width());
                    rungs.push((rung, model));
                }
                Ok(Err(CompileError::Verify(e))) => return Err(HbError::Graph(e)),
                _ => {}
            }
        }
        let breakers = rungs
            .iter()
            .map(|_| CircuitBreaker::new(config.breaker))
            .collect();
        // Static admission proofs: run the abstract interpreter over
        // each compiled rung's optimized graph under the admission
        // precondition (finite f32 inputs). A rung proven to produce
        // only finite, NaN-free outputs skips the per-request
        // non-finite output scan; a rung that *can* produce NaN gets
        // canary sampling forced on even when the operator disabled it,
        // because silent NaN corruption is exactly what the canary
        // catches.
        let mut config = config;
        let mut scan_exempt = Vec::with_capacity(rungs.len());
        let mut any_can_nan = false;
        for (_, model) in &rungs {
            match model.output_value_facts() {
                Ok(facts) => {
                    let clean = facts.iter().all(|f| !f.can_nan && !f.can_inf);
                    // Injected faults poison outputs *after* the graph
                    // runs, outside what the proof covers.
                    scan_exempt.push(clean && config.faults.is_none());
                    any_can_nan |= facts.iter().any(|f| f.can_nan);
                }
                Err(_) => scan_exempt.push(false),
            }
        }
        if any_can_nan && config.canary_period == 0 {
            config.canary_period = FORCED_CANARY_PERIOD;
        }
        // Static cost certification of the best compiled rung — the one
        // the batcher executes when healthy. Best-effort: a rung whose
        // work is not statically derivable simply certifies nothing.
        let cost_certs = rungs
            .first()
            .map(|(_, m)| {
                hb_backend::cost::cost_certs(m.executable().graph(), &hb_backend::COST_BUCKETS)
                    .unwrap_or_default()
            })
            .unwrap_or_default();
        Ok(ServingModel {
            pipeline: pipeline.clone(),
            rungs,
            breakers,
            scan_exempt,
            input_width: width.or(pipeline.input_width),
            in_flight: AtomicUsize::new(0),
            cells: StatCells::default(),
            deadline_blows: Default::default(),
            incidents: Arc::new(IncidentLog::new(1024)),
            tag: None,
            canary_ticks: AtomicU64::new(0),
            cost_certs,
            config,
        })
    }

    /// Static cost certificates of the best compiled rung, one per
    /// [`hb_backend::COST_BUCKETS`] bucket (empty when not derivable).
    pub fn cost_certs(&self) -> &[hb_backend::CostCert] {
        &self.cost_certs
    }

    /// The certificate governing a `batch`-row execution: the smallest
    /// certified bucket that fits it, else the largest one.
    pub fn cost_cert_for(&self, batch: usize) -> Option<&hb_backend::CostCert> {
        self.cost_certs
            .iter()
            .find(|c| c.batch >= batch)
            .or_else(|| self.cost_certs.last())
    }

    /// Certified wall-clock floor for a `batch`-row execution: the
    /// calibrated envelope's lower bound. A deadline below this is
    /// statically infeasible ([`ServeError::Infeasible`]). The envelope
    /// is machine-calibrated, not sound — see `hb_backend::cost`.
    pub fn certified_floor(&self, batch: usize) -> Option<Duration> {
        self.cost_cert_for(batch)
            .map(|c| hb_backend::envelope_for(c).lo)
    }

    /// Certified plan-arena bytes at `batch`, summed over every compiled
    /// rung — the audited static bound a [`ModelStore`] charges against
    /// its budget ledger at registration, before any request executes.
    /// `None` when any rung's work is not statically derivable (the
    /// store then falls back to [`ServingModel::arena_estimate`]).
    pub fn certified_arena(&self, batch: usize) -> Option<usize> {
        let mut total = 0usize;
        for (_, m) in &self.rungs {
            total += hb_backend::cost::cost_cert(m.executable().graph(), batch)
                .ok()?
                .arena_bytes;
        }
        Some(total)
    }

    /// The rungs that compiled successfully, best-first (the reference
    /// rung is implicit and always present).
    pub fn available_rungs(&self) -> Vec<Rung> {
        let mut r: Vec<Rung> = self.rungs.iter().map(|(rung, _)| *rung).collect();
        r.push(Rung::Reference);
        r
    }

    /// The best compiled rung on the ladder, if any compiled.
    pub fn best_compiled_rung(&self) -> Option<Rung> {
        self.rungs.first().map(|(r, _)| *r)
    }

    /// Whether abstract interpretation proved `rung`'s outputs finite
    /// and NaN-free for finite inputs, exempting it from the runtime
    /// non-finite output scan. Always `false` for [`Rung::Reference`]
    /// (no graph to analyze) and under fault injection.
    pub fn rung_scan_exempt(&self, rung: Rung) -> bool {
        self.rungs
            .iter()
            .position(|(r, _)| *r == rung)
            .and_then(|i| self.scan_exempt.get(i).copied())
            .unwrap_or(false)
    }

    /// The serving configuration this model was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Snapshot of the aggregate serving statistics.
    pub fn stats(&self) -> ServingStats {
        self.cells.snapshot()
    }

    /// Snapshot of the retained incident log (oldest first).
    pub fn incidents(&self) -> Vec<Incident> {
        self.incidents.snapshot()
    }

    /// The shared incident log (supervisor threads record into the same
    /// sequence).
    pub(crate) fn incident_log(&self) -> Arc<IncidentLog> {
        Arc::clone(&self.incidents)
    }

    /// The `name@vN` attribution tag, when hosted by a [`ModelStore`].
    pub fn tag(&self) -> Option<&str> {
        self.tag.as_deref()
    }

    /// Rebinds this model's incident stream to a shared log, attributing
    /// every future incident to `tag`. A store calls this once, before
    /// the model is published, so all hosted models interleave into one
    /// monotonic sequence without losing attribution.
    pub(crate) fn adopt_log(&mut self, log: Arc<IncidentLog>, tag: &str) {
        self.incidents = log;
        self.tag = Some(Arc::from(tag));
    }

    /// Records an incident with this model's attribution tag.
    pub(crate) fn note(&self, kind: IncidentKind, rung: Option<Rung>, detail: impl Into<String>) {
        self.incidents
            .record_for(kind, rung, self.tag.as_deref(), detail);
    }

    /// Bumps the per-model success counter; `true` when this serve is
    /// due a canary replay (every [`ServeConfig::canary_period`]-th
    /// success, per model — a store's busy neighbor cannot consume a
    /// quiet model's canary slots).
    pub(crate) fn canary_due(&self) -> bool {
        let period = self.config.canary_period as u64;
        if period == 0 {
            return false;
        }
        let n = self.canary_ticks.fetch_add(1, Ordering::Relaxed) + 1;
        n.is_multiple_of(period)
    }

    /// Interns every sufficiently large constant across all compiled
    /// rungs into `pool`, returning aggregate dedup statistics.
    /// Store-hosted models share one pool, so a pipeline's N-th variant
    /// (same forest, different calibration head) costs only its fresh
    /// bytes — the paper's sub-linear multi-model memory claim.
    pub fn intern_constants(&mut self, pool: &hb_backend::ConstPool) -> hb_backend::DedupStats {
        let mut stats = hb_backend::DedupStats::default();
        for (_, model) in &mut self.rungs {
            stats.absorb(model.intern_constants(pool));
        }
        stats
    }

    /// Measured resident bytes attributable to this model: unique
    /// constant storage across every rung (storage shared between rungs
    /// or models already counted in `seen` is skipped) plus live
    /// plan-cache arenas.
    pub fn memory_footprint(&self, seen: &mut std::collections::HashSet<usize>) -> usize {
        self.rungs
            .iter()
            .map(|(_, m)| m.memory_footprint(seen))
            .sum()
    }

    /// Upper-bound plan-arena bytes for a `batch`-row request, taken
    /// over every compiled rung — the plan-cache charge a store budgets
    /// up front, before any request has populated the caches.
    pub fn arena_estimate(&self, batch: usize) -> usize {
        self.rungs
            .iter()
            .filter_map(|(_, m)| m.executable().plan_for_batch(batch).ok())
            .map(|p| p.arena_bytes)
            .sum()
    }

    /// The breaker guarding `rung`, if the rung compiled (the reference
    /// floor has none).
    pub(crate) fn breaker_for(&self, rung: Rung) -> Option<&CircuitBreaker> {
        self.rungs
            .iter()
            .position(|(r, _)| *r == rung)
            .map(|i| &self.breakers[i])
    }

    /// Per-rung deadline-blow counters (ladder order).
    pub(crate) fn deadline_blow_counts(&self) -> [u64; 4] {
        [
            self.deadline_blows[0].load(Ordering::Relaxed),
            self.deadline_blows[1].load(Ordering::Relaxed),
            self.deadline_blows[2].load(Ordering::Relaxed),
            self.deadline_blows[3].load(Ordering::Relaxed),
        ]
    }

    /// Records an admission rejection performed on the model's behalf
    /// (the supervisor's bounded queue).
    pub(crate) fn record_overload(&self) {
        self.cells.rejected_overload.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request shed with [`ServeError::Expired`].
    pub(crate) fn record_shed(&self) {
        self.cells.shed_expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request refused with [`ServeError::Infeasible`].
    pub(crate) fn record_infeasible(&self) {
        self.cells
            .rejected_infeasible
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one micro-batch formed by the coalescer.
    pub(crate) fn record_coalesced_batch(&self) {
        self.cells.coalesced_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one brownout entry.
    pub(crate) fn record_brownout_entered(&self) {
        self.cells.brownout_entered.fetch_add(1, Ordering::Relaxed);
    }

    /// Updates the coalescing queue-depth gauge.
    pub(crate) fn set_queue_depth(&self, depth: u64) {
        self.cells.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// Records a deadline miss accounted by the coalescing layer (a
    /// batch answer that arrived past a member's deadline).
    pub(crate) fn record_deadline_miss(&self) {
        self.cells.deadline_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Validates a request's shape against the model, charging
    /// `bad_requests` on refusal.
    pub(crate) fn validate_request(&self, x: &Tensor<f32>) -> Result<(), ServeError> {
        if let Err(msg) = self.validate(x) {
            self.cells.bad_requests.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::BadRequest(msg));
        }
        Ok(())
    }

    /// Runs `x` once on `rung` with no retries, breakers, or deadline —
    /// the canary/probe execution path. Returns the raw output or a
    /// failure description.
    pub(crate) fn raw_rung_output(
        &self,
        rung: Rung,
        x: &Tensor<f32>,
    ) -> Result<Tensor<f32>, String> {
        match self.rungs.iter().find(|(r, _)| *r == rung) {
            Some((_, model)) => model.predict_proba(x).map_err(|e| e.to_string()),
            None => self.reference_output(x),
        }
    }

    /// The imperative reference answer for `x`, with panics converted to
    /// errors.
    pub(crate) fn reference_output(&self, x: &Tensor<f32>) -> Result<Tensor<f32>, String> {
        catch_unwind(AssertUnwindSafe(|| self.pipeline.predict_proba(x)))
            .map_err(|p| format!("reference scorer panicked: {}", panic_text(p)))
    }

    /// Point-in-time health/readiness snapshot: per-rung breaker states,
    /// quarantine flags, deadline blows, and aggregate stats.
    pub fn health(&self) -> HealthSnapshot {
        let stats = self.stats();
        let blows = self.deadline_blow_counts();
        let mut rungs = Vec::with_capacity(self.rungs.len() + 1);
        for (i, (rung, _)) in self.rungs.iter().enumerate() {
            rungs.push(RungHealth {
                rung: *rung,
                compiled: true,
                breaker: Some(self.breakers[i].state()),
                quarantined: self.breakers[i].is_quarantined(),
                deadline_blows: blows[rung.index()],
                served: stats.served[rung.index()],
            });
        }
        rungs.push(RungHealth {
            rung: Rung::Reference,
            compiled: false,
            breaker: None,
            quarantined: false,
            deadline_blows: blows[Rung::Reference.index()],
            served: stats.served[Rung::Reference.index()],
        });
        let degraded_mode = match self.breakers.first() {
            Some(b) => !matches!(b.state(), BreakerState::Closed { .. }),
            None => !self.rungs.is_empty(),
        };
        HealthSnapshot {
            rungs,
            stats,
            incidents_total: self.incidents.total(),
            ready: true,
            degraded_mode,
        }
    }

    /// Scores a batch, applying the full protection stack. Equivalent to
    /// [`ServingModel::predict_detailed`] without the metadata.
    pub fn predict(&self, x: &Tensor<f32>) -> Result<Tensor<f32>, ServeError> {
        self.predict_detailed(x).map(|s| s.output)
    }

    /// Scores a batch and reports which rung served it, retry count, and
    /// latency.
    pub fn predict_detailed(&self, x: &Tensor<f32>) -> Result<Served, ServeError> {
        let deadline = self.config.deadline.map(|d| Instant::now() + d);
        self.predict_detailed_until(x, deadline)
    }

    /// Like [`ServingModel::predict_detailed`], but against an explicit
    /// *absolute* deadline (`None` disables deadline checks regardless
    /// of [`ServeConfig::deadline`]). The coalescing front door uses
    /// this to execute a micro-batch under the tightest member deadline
    /// and to give individual fallback executions each member's own
    /// remaining budget.
    pub fn predict_detailed_until(
        &self,
        x: &Tensor<f32>,
        deadline: Option<Instant>,
    ) -> Result<Served, ServeError> {
        let start = Instant::now();

        // Admission control: bounded in-flight budget.
        let admitted = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        let _guard = AdmissionGuard(&self.in_flight);
        if admitted > self.config.queue_capacity {
            self.cells.rejected_overload.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded {
                in_flight: admitted,
                capacity: self.config.queue_capacity,
            });
        }

        // Request validation before any kernel runs.
        self.validate_request(x)?;

        // The request's cooperative cancel token: carries the deadline so
        // the executor itself stops mid-graph when the budget is gone.
        let cancel = match deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::new(),
        };

        // Corruption detection only applies when the input is clean:
        // a request carrying NaN/Inf legitimately produces non-finite
        // outputs on some pipelines.
        let input_finite = x.iter().all(|v| v.is_finite());

        let mut retries_spent = 0u32;
        let mut failures: Vec<(Rung, String)> = Vec::new();
        let best = self.best_compiled_rung().unwrap_or(Rung::Reference);

        for (ladder_pos, (rung, model)) in self
            .rungs
            .iter()
            .map(|(r, m)| (*r, Some(m)))
            .chain([(Rung::Reference, None)])
            .enumerate()
        {
            // Circuit breaker: skip a rung that is open; win the single
            // probe slot when it is half-open.
            let admission = match self.breaker_for(rung) {
                Some(b) => b.admit(Instant::now()),
                None => Admission::Serve,
            };
            if admission == Admission::Skip {
                self.cells.breaker_skips.fetch_add(1, Ordering::Relaxed);
                failures.push((rung, "skipped: circuit open".to_string()));
                continue;
            }
            let was_probe = admission == Admission::Probe;

            let mut backoff = self.config.backoff;
            let mut attempt = 0u32;
            loop {
                if let Err(e) = self.check_deadline_at(start, deadline) {
                    // A probe slot must always be resolved; a rung that
                    // could not prove health before the deadline stays
                    // open for another cooldown.
                    self.rung_failed(rung, was_probe, "deadline expired before attempt");
                    return Err(e);
                }
                match self.run_rung(model, x, &cancel) {
                    RungOutcome::Ok(out) => {
                        // Skip the scan only on rungs whose cleanliness
                        // is statically proven (never the reference
                        // rung: the imperative scorer has no graph for
                        // the interpreter to reason about).
                        let proven_clean =
                            self.scan_exempt.get(ladder_pos).copied().unwrap_or(false);
                        if input_finite && !proven_clean && out.iter().any(|v| !v.is_finite()) {
                            failures.push((rung, "non-finite output for finite input".into()));
                            self.rung_failed(rung, was_probe, "non-finite output for finite input");
                            break;
                        }
                        self.rung_succeeded(rung, was_probe);
                        self.check_deadline_at(start, deadline)?;
                        self.cells.served[rung.index()].fetch_add(1, Ordering::Relaxed);
                        self.cells
                            .retries
                            .fetch_add(u64::from(retries_spent), Ordering::Relaxed);
                        if rung != best {
                            self.cells.degraded.fetch_add(1, Ordering::Relaxed);
                        }
                        return Ok(Served {
                            output: out,
                            rung,
                            retries: retries_spent,
                            elapsed: start.elapsed(),
                        });
                    }
                    RungOutcome::Cancelled => {
                        // The executor stopped mid-graph: account the
                        // blown deadline to this rung so the watchdog can
                        // trip chronically slow rungs.
                        self.deadline_blows[rung.index()].fetch_add(1, Ordering::Relaxed);
                        self.cells.cancelled.fetch_add(1, Ordering::Relaxed);
                        self.cells.deadline_misses.fetch_add(1, Ordering::Relaxed);
                        self.note(
                            IncidentKind::DeadlineCancelled,
                            Some(rung),
                            format!("stopped mid-graph after {:?}", start.elapsed()),
                        );
                        if was_probe {
                            self.rung_failed(rung, true, "probe cancelled at deadline");
                        }
                        return Err(ServeError::DeadlineExceeded {
                            elapsed: start.elapsed(),
                            deadline: self.deadline_budget(start, deadline),
                        });
                    }
                    RungOutcome::Failed { transient, why } => {
                        if transient && attempt < self.config.max_retries {
                            attempt += 1;
                            retries_spent += 1;
                            // Clamp the backoff to the remaining deadline
                            // budget: a request must never sleep past its
                            // own deadline before even re-attempting.
                            let sleep = match deadline {
                                Some(d) => backoff.min(d.saturating_duration_since(Instant::now())),
                                None => backoff,
                            };
                            if !sleep.is_zero() {
                                std::thread::sleep(sleep);
                            }
                            backoff *= 2;
                            continue;
                        }
                        failures.push((rung, why.clone()));
                        self.rung_failed(rung, was_probe, &why);
                        break;
                    }
                }
            }
        }

        self.cells.all_rungs_failed.fetch_add(1, Ordering::Relaxed);
        Err(ServeError::AllRungsFailed(failures))
    }

    /// Breaker bookkeeping for a successful serve.
    fn rung_succeeded(&self, rung: Rung, was_probe: bool) {
        if let Some(b) = self.breaker_for(rung) {
            if b.on_success(was_probe) {
                self.note(
                    IncidentKind::BreakerClosed,
                    Some(rung),
                    "half-open probe passed",
                );
            }
        }
    }

    /// Breaker bookkeeping for a failed serve (possibly opening it).
    fn rung_failed(&self, rung: Rung, was_probe: bool, why: &str) {
        if let Some(b) = self.breaker_for(rung) {
            if let Some(reason) = b.on_failure(was_probe, Instant::now()) {
                self.note(
                    IncidentKind::BreakerOpened,
                    Some(rung),
                    format!("{}: {}", reason.label(), why),
                );
            }
        }
    }

    /// Runs one rung; `None` selects the imperative reference scorer.
    /// Panics inside the reference scorer are converted to failures
    /// here; compiled rungs are already panic-free at the executor
    /// boundary. The compiled rungs observe `cancel` between node
    /// evaluations.
    fn run_rung(
        &self,
        model: Option<&CompiledModel>,
        x: &Tensor<f32>,
        cancel: &CancelToken,
    ) -> RungOutcome {
        match model {
            Some(m) => match m.predict_proba_cancel(x, cancel) {
                Ok(out) => RungOutcome::Ok(out),
                Err(HbError::Exec(e)) if e.is_cancelled() => RungOutcome::Cancelled,
                Err(e) => RungOutcome::Failed {
                    transient: e.is_transient(),
                    why: e.to_string(),
                },
            },
            None => match catch_unwind(AssertUnwindSafe(|| self.pipeline.predict_proba(x))) {
                Ok(out) => RungOutcome::Ok(out),
                Err(p) => RungOutcome::Failed {
                    transient: false,
                    why: format!("reference scorer panicked: {}", panic_text(p)),
                },
            },
        }
    }

    fn validate(&self, x: &Tensor<f32>) -> Result<(), String> {
        if x.ndim() != 2 {
            return Err(format!(
                "expected a [batch, features] matrix, got rank {}",
                x.ndim()
            ));
        }
        if let Some(w) = self.input_width {
            if x.shape()[1] != w {
                return Err(format!(
                    "feature width mismatch: model expects {w} features, request has {}",
                    x.shape()[1]
                ));
            }
        }
        Ok(())
    }

    fn check_deadline_at(
        &self,
        start: Instant,
        deadline: Option<Instant>,
    ) -> Result<(), ServeError> {
        let Some(d) = deadline else {
            return Ok(());
        };
        let now = Instant::now();
        if now > d {
            self.cells.deadline_misses.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::DeadlineExceeded {
                elapsed: now - start,
                deadline: self.deadline_budget(start, deadline),
            });
        }
        Ok(())
    }

    /// The budget to report in [`ServeError::DeadlineExceeded`]: the
    /// configured per-request budget when one exists, otherwise the span
    /// the explicit absolute deadline allowed this request.
    fn deadline_budget(&self, start: Instant, deadline: Option<Instant>) -> Duration {
        self.config
            .deadline
            .or_else(|| deadline.map(|d| d.saturating_duration_since(start)))
            .unwrap_or_default()
    }
}

/// Worst relative element-wise divergence between `got` and `want`.
/// Shape mismatches and one-sided non-finite values count as infinite
/// divergence (a NaN-poisoned output can never be "close").
pub(crate) fn divergence(got: &Tensor<f32>, want: &Tensor<f32>) -> f32 {
    if got.shape() != want.shape() {
        return f32::INFINITY;
    }
    let mut worst = 0.0f32;
    for (g, w) in got.iter().zip(want.iter()) {
        if !g.is_finite() && !w.is_finite() {
            continue;
        }
        if !g.is_finite() || !w.is_finite() {
            return f32::INFINITY;
        }
        worst = worst.max((g - w).abs() / (w.abs() + 1e-6));
    }
    worst
}

pub(crate) fn panic_text(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_pipeline::{fit_pipeline, OpSpec, Targets};

    fn fixture() -> (Pipeline, Tensor<f32>) {
        let x = Tensor::from_fn(&[60, 4], |i| ((i[0] * 7 + i[1] * 3) % 13) as f32 * 0.3);
        let y = Targets::Classes((0..60).map(|i| (i % 2) as i64).collect());
        let pipe = fit_pipeline(&[OpSpec::StandardScaler, OpSpec::GaussianNb], &x, &y);
        (pipe, x)
    }

    #[test]
    fn serves_from_best_rung_when_healthy() {
        let (pipe, x) = fixture();
        let server = ServingModel::new(&pipe, ServeConfig::default()).unwrap();
        let served = server.predict_detailed(&x).unwrap();
        assert_eq!(served.rung, Rung::Compiled);
        assert_eq!(served.retries, 0);
        let stats = server.stats();
        assert_eq!(stats.served_by(Rung::Compiled), 1);
        assert_eq!(stats.degraded, 0);
    }

    #[test]
    fn empty_pipeline_is_rejected_at_construction() {
        let res = ServingModel::new(&Pipeline::default(), ServeConfig::default());
        assert!(matches!(res, Err(HbError::BadRequest(_))));
    }

    #[test]
    fn bad_width_is_rejected_before_kernels() {
        let (pipe, _) = fixture();
        let server = ServingModel::new(&pipe, ServeConfig::default()).unwrap();
        let narrow = Tensor::from_fn(&[2, 3], |i| i[1] as f32);
        assert!(matches!(
            server.predict(&narrow),
            Err(ServeError::BadRequest(_))
        ));
        assert_eq!(server.stats().bad_requests, 1);
    }

    #[test]
    fn statically_invalid_graph_is_refused_at_admission() {
        let (pipe, _) = fixture();
        // A buggy custom converter for StandardScaler: matmul against a
        // [5, 7] constant whose inner dimension cannot match the [B, 4]
        // input. The static verifier must catch this at admission — no
        // rung could ever execute it.
        let mut registry = ConverterRegistry::new();
        registry.register(
            "StandardScaler",
            std::sync::Arc::new(|_op, b, x, _width| {
                let w = b.constant(Tensor::<f32>::from_fn(&[5, 7], |_| 1.0));
                Ok(b.matmul(x, w))
            }),
        );
        let res = ServingModel::with_registry(&pipe, ServeConfig::default(), &registry);
        match res {
            Err(HbError::Graph(e)) => {
                let msg = e.to_string();
                assert!(msg.contains("shape mismatch"), "unexpected: {msg}");
            }
            other => panic!(
                "expected admission refusal, got {:?}",
                other.map(|m| m.available_rungs())
            ),
        }
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let (pipe, x) = fixture();
        let server = ServingModel::new(
            &pipe,
            ServeConfig {
                queue_capacity: 0,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        assert!(matches!(
            server.predict(&x),
            Err(ServeError::Overloaded { .. })
        ));
        assert_eq!(server.stats().rejected_overload, 1);
    }

    #[test]
    fn serving_model_and_supervisor_are_send_sync() {
        // Compile-time assertion: the worker pool shares one
        // ServingModel across threads, so both must be Send + Sync.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServingModel>();
        assert_send_sync::<Supervisor>();
        assert_send_sync::<ServingStats>();
        assert_send_sync::<CircuitBreaker>();
        assert_send_sync::<IncidentLog>();
    }

    #[test]
    fn persistent_failures_open_the_breaker_and_skip_the_rung() {
        let (pipe, x) = fixture();
        let server = ServingModel::new(
            &pipe,
            ServeConfig {
                faults: FaultPlan {
                    kernel_error: true,
                    ..FaultPlan::none()
                },
                max_retries: 0,
                breaker: BreakerConfig {
                    failure_threshold: 2,
                    cooldown: Duration::from_secs(60),
                },
                ..ServeConfig::default()
            },
        )
        .unwrap();
        // Every compiled rung fails each request; after two requests
        // each breaker is open and later requests skip straight to the
        // reference without paying the failure latency.
        for _ in 0..3 {
            let served = server.predict_detailed(&x).unwrap();
            assert_eq!(served.rung, Rung::Reference);
        }
        let health = server.health();
        let compiled = health.rung(Rung::Compiled).unwrap();
        assert!(
            matches!(compiled.breaker, Some(BreakerState::Open { .. })),
            "expected open breaker, got {:?}",
            compiled.breaker
        );
        assert!(health.degraded_mode);
        assert!(server.stats().breaker_skips > 0);
        assert!(health.incidents_total > 0, "breaker trips are incidents");
    }

    #[test]
    fn backoff_never_sleeps_past_the_deadline() {
        let (pipe, x) = fixture();
        // Transient failures with a huge backoff and a tight deadline:
        // the clamped backoff means the request fails fast instead of
        // sleeping 200ms past its 20ms budget.
        let server = ServingModel::new(
            &pipe,
            ServeConfig {
                faults: FaultPlan {
                    kernel_error: true,
                    ..FaultPlan::none()
                },
                max_retries: 3,
                backoff: Duration::from_millis(200),
                deadline: Some(Duration::from_millis(20)),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let t = Instant::now();
        let _ = server.predict(&x);
        assert!(
            t.elapsed() < Duration::from_millis(150),
            "request slept past its deadline: {:?}",
            t.elapsed()
        );
    }

    #[test]
    fn proven_clean_rungs_skip_the_output_scan() {
        // A forest head launders NaN through its tree comparisons and
        // ends in a hard-[0,1] probability, so abstract interpretation
        // proves every compiled rung finite and NaN-free for finite
        // inputs — the runtime non-finite scan is statically discharged.
        let x = Tensor::from_fn(&[60, 4], |i| ((i[0] * 7 + i[1] * 3) % 13) as f32 * 0.3);
        let y = Targets::Classes((0..60).map(|i| (i % 2) as i64).collect());
        let pipe = fit_pipeline(
            &[
                OpSpec::StandardScaler,
                OpSpec::RandomForestClassifier(Default::default()),
            ],
            &x,
            &y,
        );
        let server = ServingModel::new(&pipe, ServeConfig::default()).unwrap();
        for rung in [Rung::Compiled, Rung::Script, Rung::Eager] {
            assert!(
                server.rung_scan_exempt(rung),
                "{rung:?}: clean forest rung should be scan-exempt"
            );
        }
        // The reference scorer has no graph to analyze — never exempt.
        assert!(!server.rung_scan_exempt(Rung::Reference));
        // Nothing to catch, so the canary stays at its configured rate.
        assert_eq!(
            server.config().canary_period,
            ServeConfig::default().canary_period
        );
        let served = server.predict_detailed(&x).unwrap();
        assert_eq!(served.rung, Rung::Compiled);
    }

    #[test]
    fn fault_injection_voids_the_scan_exemption() {
        // Injected faults poison outputs after the graph runs — outside
        // what the static proof covers — so the exemption must not
        // apply and the nan_poison chaos suite keeps its teeth.
        let (pipe, _) = fixture();
        let server = ServingModel::new(
            &pipe,
            ServeConfig {
                faults: FaultPlan {
                    nan_poison: true,
                    ..FaultPlan::none()
                },
                ..ServeConfig::default()
            },
        )
        .unwrap();
        for rung in server.available_rungs() {
            assert!(
                !server.rung_scan_exempt(rung),
                "{rung:?}: fault injection must void the scan exemption"
            );
        }
    }

    #[test]
    fn possible_nan_output_forces_canary_sampling_on() {
        // A multinomial logistic head: for arbitrary finite inputs the
        // scaler + margin matmul can overflow f32 to ±inf, and softmax
        // over an inf-tainted margin is NaN-taintable (inf - inf in the
        // stabilizer). An operator who turned canary sampling off still
        // gets it forced back on, because silent NaN corruption is what
        // the canary catches.
        let x = Tensor::from_fn(&[60, 4], |i| ((i[0] * 5 + i[1]) % 11) as f32 * 0.4 - 2.0);
        let y = Targets::Classes((0..60).map(|i| (i % 3) as i64).collect());
        let pipe = fit_pipeline(
            &[
                OpSpec::StandardScaler,
                OpSpec::LogisticRegression(Default::default()),
            ],
            &x,
            &y,
        );
        let server = ServingModel::new(
            &pipe,
            ServeConfig {
                canary_period: 0,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            server.config().canary_period,
            FORCED_CANARY_PERIOD,
            "can-NaN graph must force canary sampling on"
        );
        assert!(
            !server.rung_scan_exempt(Rung::Compiled),
            "a can-NaN rung must keep the runtime output scan"
        );
        // A provably clean pipeline (forest head, NaN laundered by the
        // tree comparisons) with the same config keeps the canary off:
        // forcing is targeted, not unconditional.
        let clean_pipe = fit_pipeline(
            &[OpSpec::RandomForestClassifier(Default::default())],
            &x,
            &y,
        );
        let clean = ServingModel::new(
            &clean_pipe,
            ServeConfig {
                canary_period: 0,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(clean.config().canary_period, 0);
    }

    #[test]
    fn divergence_flags_nan_and_accepts_close_outputs() {
        let a = Tensor::from_vec(vec![1.0f32, 2.0], &[2, 1]);
        let b = Tensor::from_vec(vec![1.0f32 + 1e-7, 2.0], &[2, 1]);
        assert!(divergence(&a, &b) < 1e-4);
        let poisoned = Tensor::from_vec(vec![f32::NAN, 2.0], &[2, 1]);
        assert!(divergence(&poisoned, &a).is_infinite());
        let wrong_shape = Tensor::from_vec(vec![1.0f32], &[1, 1]);
        assert!(divergence(&wrong_shape, &a).is_infinite());
    }
}
