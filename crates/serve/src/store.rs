//! Multi-model `ModelStore`: many named, versioned pipelines behind one
//! admission front door, with per-model fault isolation.
//!
//! A production scorer rarely hosts one model (paper §2: prediction
//! serving means *fleets* of pipelines — per-tenant variants, A/B arms,
//! per-region retrains). The store gives each registered model its own
//! fault domain while sharing what is safe to share:
//!
//! * **Per-model fault domains** — every model keeps its own rung
//!   ladder, circuit breakers, canary state, and latency histogram. A
//!   NaN-poisoned or panicking model is quarantined by its own breakers;
//!   its neighbors' health state is untouched, and every incident in the
//!   shared log carries a `name@vN` attribution tag.
//! * **Memory budgets** — registration charges each model for the
//!   constant bytes it *actually owns* (pool-shared parameters are free
//!   past the first holder) plus an up-front plan-arena estimate, and
//!   refuses with [`ServeError::BudgetExceeded`] — releasing everything
//!   already interned — when a per-model or store-wide budget would be
//!   blown. [`BudgetLedger`] keeps the charges audit-consistent.
//! * **Fair-share admission** — one store-wide in-flight budget,
//!   arbitrated by [`FairShare`]: every model is guaranteed
//!   `capacity / n_models` slots (at least one), and idle slack is
//!   first-come. A flooded neighbor can exhaust the slack, never a
//!   victim's guarantee — no FIFO starvation.
//! * **Atomic versioned hot-swap** — [`ModelStore::deploy`] installs a
//!   candidate version that shadows a configured fraction of live
//!   traffic. Each canary run is compared against the active version's
//!   answer: enough clean checks auto-promote the candidate (an `Arc`
//!   swap — in-flight requests on the old version drain safely), one
//!   divergence too many auto-rolls-back with a
//!   [`IncidentKind::RolledBack`] incident. The active version serves
//!   every request throughout; a broken candidate can never corrupt an
//!   answer.
//! * **Sub-plan deduplication** — all models intern their large graph
//!   constants into one [`ConstPool`], so pipelines sharing featurizers
//!   or parameter blocks (the PRETZEL observation) pay for them once.
//!   The `tables -- store` bench gates on the resulting sub-linear
//!   memory growth.
//!
//! The store serves directly ([`ModelStore::predict`]) or hosts a
//! worker pool via [`crate::Supervisor::spawn_store`], which adds panic
//! isolation, the background canary checker, watchdog, and recovery
//! probes — multiplexed across every registered model.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use hb_backend::ConstPool;
use hb_pipeline::Pipeline;
use hb_tensor::Tensor;

use crate::histogram::{HistogramSnapshot, LatencyHistogram};
use crate::incident::{Incident, IncidentKind, IncidentLog};
use crate::{
    divergence, panic_text, HealthSnapshot, Rung, ServeConfig, ServeError, Served, ServingModel,
};

/// Store-wide configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Maximum models the store will register.
    pub capacity: usize,
    /// Store-wide in-flight request budget, arbitrated fairly across
    /// models by [`FairShare`].
    pub in_flight: usize,
    /// Store-wide memory budget (constant bytes owned + plan arenas)
    /// across every model; `None` disables the check.
    pub total_budget: Option<usize>,
    /// Per-model memory budget; `None` disables the check.
    pub model_budget: Option<usize>,
    /// Canary sampling for deployments: one request in `canary_fraction`
    /// is shadowed on the candidate version. `0` promotes immediately
    /// (no canary phase).
    pub canary_fraction: usize,
    /// Clean canary comparisons required to auto-promote a candidate.
    pub promote_after: u64,
    /// Divergent/failed canary runs tolerated before auto-rollback.
    pub max_canary_failures: u64,
    /// Maximum relative error between candidate and active outputs for
    /// a canary run to count as clean.
    pub canary_tolerance: f32,
    /// Batch size used for the up-front plan-arena estimate charged
    /// against the memory budget at registration.
    pub budget_batch: usize,
    /// Shared incident-log ring capacity (all models interleave).
    pub incident_capacity: usize,
    /// Watchdog cadence for [`crate::Supervisor::spawn_store`]'s health
    /// thread.
    pub watchdog_interval: Duration,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            capacity: 256,
            in_flight: 64,
            total_budget: None,
            model_budget: None,
            canary_fraction: 4,
            promote_after: 16,
            max_canary_failures: 1,
            canary_tolerance: 1e-4,
            budget_batch: 16,
            incident_capacity: 4096,
            watchdog_interval: Duration::from_millis(20),
        }
    }
}

/// Fair-share arbitration of the store-wide in-flight budget.
///
/// Every registered model is guaranteed `capacity / n_models` slots
/// (floored, at least one); the remainder is first-come slack. The
/// no-starvation property — a model below its guarantee is *never*
/// refused, whatever its neighbors are doing — is what the fairness
/// proptests pin down. The flip side: total admissions may overshoot
/// `capacity` by up to one guarantee per model, which is the price of
/// guarantees that do not depend on neighbors releasing slots first.
#[derive(Debug)]
pub struct FairShare {
    capacity: usize,
    in_flight: HashMap<String, usize>,
    total: usize,
    n_models: usize,
}

impl FairShare {
    /// An arbiter over `capacity` in-flight slots (floored to one).
    pub fn new(capacity: usize) -> FairShare {
        FairShare {
            capacity: capacity.max(1),
            in_flight: HashMap::new(),
            total: 0,
            n_models: 0,
        }
    }

    /// Updates the registered-model count the guarantee divides over.
    pub fn set_models(&mut self, n: usize) {
        self.n_models = n;
    }

    /// The per-model guaranteed slot count.
    pub fn guarantee(&self) -> usize {
        (self.capacity / self.n_models.max(1)).max(1)
    }

    /// Tries to admit one request for `name`; true on success (the
    /// caller must [`FairShare::release`] later, on every path).
    pub fn try_admit(&mut self, name: &str) -> bool {
        let mine = self.in_flight.get(name).copied().unwrap_or(0);
        if mine >= self.guarantee() && self.total >= self.capacity {
            return false;
        }
        *self.in_flight.entry(name.to_string()).or_insert(0) += 1;
        self.total += 1;
        true
    }

    /// Releases one previously admitted slot for `name`.
    pub fn release(&mut self, name: &str) {
        if let Some(c) = self.in_flight.get_mut(name) {
            *c -= 1;
            if *c == 0 {
                self.in_flight.remove(name);
            }
            self.total = self.total.saturating_sub(1);
        }
    }

    /// Requests currently admitted for `name`.
    pub fn admitted(&self, name: &str) -> usize {
        self.in_flight.get(name).copied().unwrap_or(0)
    }

    /// Requests currently admitted store-wide.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The configured store-wide capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// RAII fair-share slot: releases on drop, on every path including
/// panics, so a dying request can never leak an admission.
pub(crate) struct ShareGuard {
    share: Arc<Mutex<FairShare>>,
    name: String,
}

impl Drop for ShareGuard {
    fn drop(&mut self) {
        self.share
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .release(&self.name);
    }
}

/// Byte-accurate accounting of per-model memory charges. The invariant
/// the budget proptests pin down: the sum of per-model charges always
/// equals the running total, across any interleaving of charge/credit.
#[derive(Debug, Default)]
pub struct BudgetLedger {
    charges: HashMap<String, usize>,
    total: usize,
}

impl BudgetLedger {
    /// An empty ledger.
    pub fn new() -> BudgetLedger {
        BudgetLedger::default()
    }

    /// Adds `bytes` to `name`'s charge.
    pub fn charge(&mut self, name: &str, bytes: usize) {
        *self.charges.entry(name.to_string()).or_insert(0) += bytes;
        self.total += bytes;
    }

    /// Returns `bytes` of `name`'s charge (saturating: crediting more
    /// than was charged zeroes the entry rather than underflowing).
    pub fn credit(&mut self, name: &str, bytes: usize) {
        let Some(c) = self.charges.get_mut(name) else {
            return;
        };
        let freed = bytes.min(*c);
        *c -= freed;
        if *c == 0 {
            self.charges.remove(name);
        }
        self.total -= freed;
    }

    /// `name`'s current charge.
    pub fn charge_of(&self, name: &str) -> usize {
        self.charges.get(name).copied().unwrap_or(0)
    }

    /// Sum of all charges.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Audit: true when the per-model charges sum to the running total.
    pub fn consistent(&self) -> bool {
        self.charges.values().sum::<usize>() == self.total
    }
}

/// Receipt for a registration or deployment.
#[derive(Debug, Clone)]
pub struct ModelCard {
    /// Model name.
    pub name: String,
    /// Version this card describes.
    pub version: u32,
    /// Bytes charged against the budget (owned constants + small
    /// constants + plan-arena estimate).
    pub charge_bytes: usize,
    /// Constant bytes shared with earlier pool residents (free).
    pub shared_bytes: usize,
    /// Constant bytes this model brought into the pool first.
    pub fresh_bytes: usize,
    /// Rungs that compiled, best-first (reference floor implicit).
    pub rungs: Vec<Rung>,
    /// True when the version is still in its canary phase.
    pub canary: bool,
}

/// A candidate version shadowing live traffic.
struct Deployment {
    model: Arc<ServingModel>,
    version: u32,
    charge: usize,
    hashes: Vec<u64>,
    clean: u64,
    failures: u64,
}

/// Mutable half of one model's slot.
struct EntryState {
    active: Arc<ServingModel>,
    version: u32,
    /// Highest version ever deployed (rollbacks never reuse a number).
    latest: u32,
    charge: usize,
    hashes: Vec<u64>,
    card: ModelCard,
    candidate: Option<Deployment>,
}

/// One registered model: its versions, canary state, and telemetry.
struct Entry {
    name: String,
    state: Mutex<EntryState>,
    /// Request counter driving the canary-fraction schedule.
    ticks: AtomicU64,
    latency: LatencyHistogram,
}

impl Entry {
    fn state(&self) -> std::sync::MutexGuard<'_, EntryState> {
        // Entry state is valid on all paths; survive a poisoned lock.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Everything `build` produced for a not-yet-committed version.
struct Built {
    model: Arc<ServingModel>,
    charge: usize,
    hashes: Vec<u64>,
    shared_bytes: usize,
    fresh_bytes: usize,
    rungs: Vec<Rung>,
}

/// A named, versioned collection of [`ServingModel`]s behind one
/// admission front door. See the module docs for the guarantees.
pub struct ModelStore {
    config: StoreConfig,
    pool: ConstPool,
    incidents: Arc<IncidentLog>,
    entries: RwLock<HashMap<String, Arc<Entry>>>,
    share: Arc<Mutex<FairShare>>,
    ledger: Mutex<BudgetLedger>,
}

impl ModelStore {
    /// An empty store.
    pub fn new(config: StoreConfig) -> ModelStore {
        let share = Arc::new(Mutex::new(FairShare::new(config.in_flight)));
        ModelStore {
            incidents: Arc::new(IncidentLog::new(config.incident_capacity.max(1))),
            pool: ConstPool::new(),
            entries: RwLock::new(HashMap::new()),
            share,
            ledger: Mutex::new(BudgetLedger::new()),
            config,
        }
    }

    /// The store configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Registers `name` at version 1. Fails if the name is empty or
    /// taken (use [`ModelStore::deploy`] to ship a new version), the store is at
    /// capacity, the pipeline is unservable, or a memory budget would be
    /// exceeded — in which case everything interned is released again.
    pub fn register(
        &self,
        name: &str,
        pipeline: &Pipeline,
        cfg: ServeConfig,
    ) -> Result<ModelCard, ServeError> {
        if name.is_empty() {
            return Err(ServeError::BadRequest(
                "model name must be non-empty".to_string(),
            ));
        }
        {
            let entries = self.read_entries();
            if entries.contains_key(name) {
                return Err(ServeError::BadRequest(format!(
                    "model {name:?} already registered; use deploy to ship a new version"
                )));
            }
            if entries.len() >= self.config.capacity {
                return Err(ServeError::BadRequest(format!(
                    "store at capacity ({} models)",
                    self.config.capacity
                )));
            }
        }
        let built = self.build(name, 1, pipeline, cfg)?;
        let mut entries = self.write_entries();
        if entries.contains_key(name) {
            // Lost a registration race: undo our interning.
            self.pool.release(&built.hashes);
            return Err(ServeError::BadRequest(format!(
                "model {name:?} already registered; use deploy to ship a new version"
            )));
        }
        self.commit_budget(name, built.charge, &built.hashes)?;
        let card = ModelCard {
            name: name.to_string(),
            version: 1,
            charge_bytes: built.charge,
            shared_bytes: built.shared_bytes,
            fresh_bytes: built.fresh_bytes,
            rungs: built.rungs,
            canary: false,
        };
        entries.insert(
            name.to_string(),
            Arc::new(Entry {
                name: name.to_string(),
                state: Mutex::new(EntryState {
                    active: built.model,
                    version: 1,
                    latest: 1,
                    charge: built.charge,
                    hashes: built.hashes,
                    card: card.clone(),
                    candidate: None,
                }),
                ticks: AtomicU64::new(0),
                latency: LatencyHistogram::new(),
            }),
        );
        let n = entries.len();
        drop(entries);
        self.lock_share().set_models(n);
        self.incidents.record_for(
            IncidentKind::Registered,
            None,
            Some(&format!("{name}@v1")),
            format!(
                "charged {} bytes ({} fresh, {} shared via pool)",
                card.charge_bytes, card.fresh_bytes, card.shared_bytes
            ),
        );
        Ok(card)
    }

    /// Deploys a new version of `name` behind a canary: a fraction of
    /// live traffic is shadowed on the candidate and divergence-checked
    /// against the active answer. Clean checks auto-promote; failures
    /// auto-roll-back. With `canary_fraction == 0` the swap is
    /// immediate. The candidate is budget-charged alongside the active
    /// version for the duration of the canary (both are resident).
    pub fn deploy(
        &self,
        name: &str,
        pipeline: &Pipeline,
        cfg: ServeConfig,
    ) -> Result<ModelCard, ServeError> {
        let entry = self.entry(name)?;
        let version = {
            let st = entry.state();
            if st.candidate.is_some() {
                return Err(ServeError::BadRequest(format!(
                    "model {name:?} already has a deployment in flight"
                )));
            }
            st.latest + 1
        };
        let built = self.build(name, version, pipeline, cfg)?;
        self.commit_budget(name, built.charge, &built.hashes)?;
        let tag = format!("{name}@v{version}");
        let card = ModelCard {
            name: name.to_string(),
            version,
            charge_bytes: built.charge,
            shared_bytes: built.shared_bytes,
            fresh_bytes: built.fresh_bytes,
            rungs: built.rungs,
            canary: self.config.canary_fraction > 0,
        };
        let mut st = entry.state();
        if st.candidate.is_some() {
            // Lost a deployment race: undo.
            drop(st);
            self.pool.release(&built.hashes);
            self.lock_ledger().credit(name, built.charge);
            return Err(ServeError::BadRequest(format!(
                "model {name:?} already has a deployment in flight"
            )));
        }
        st.latest = version;
        if self.config.canary_fraction == 0 {
            self.swap_active(
                &mut st,
                name,
                built.model,
                version,
                built.charge,
                built.hashes,
                card.clone(),
            );
            drop(st);
            self.incidents.record_for(
                IncidentKind::Promoted,
                None,
                Some(&tag),
                "promoted immediately (canary disabled)",
            );
        } else {
            st.candidate = Some(Deployment {
                model: built.model,
                version,
                charge: built.charge,
                hashes: built.hashes,
                clean: 0,
                failures: 0,
            });
            drop(st);
            self.incidents.record_for(
                IncidentKind::Deployed,
                None,
                Some(&tag),
                format!(
                    "canary: 1 in {} requests shadowed, promote after {} clean",
                    self.config.canary_fraction, self.config.promote_after
                ),
            );
        }
        Ok(card)
    }

    /// Evicts `name`: releases its budget charges and pool references.
    /// In-flight requests hold their own `Arc`s and drain safely.
    pub fn evict(&self, name: &str) -> Result<(), ServeError> {
        let entry = {
            let mut entries = self.write_entries();
            entries
                .remove(name)
                .ok_or_else(|| ServeError::UnknownModel(name.to_string()))?
        };
        let n = self.read_entries().len();
        self.lock_share().set_models(n);
        let mut st = entry.state();
        let version = st.version;
        self.pool.release(&st.hashes);
        let mut freed = st.charge;
        st.hashes.clear();
        if let Some(cand) = st.candidate.take() {
            self.pool.release(&cand.hashes);
            freed += cand.charge;
        }
        st.charge = 0;
        drop(st);
        self.lock_ledger().credit(name, freed);
        self.incidents.record_for(
            IncidentKind::Evicted,
            None,
            Some(&format!("{name}@v{version}")),
            format!("released {freed} bytes"),
        );
        Ok(())
    }

    /// Scores `x` on `name`, applying fair-share admission and the
    /// model's own protection stack. Equivalent to
    /// [`ModelStore::predict_detailed`] without the metadata.
    pub fn predict(&self, name: &str, x: &Tensor<f32>) -> Result<Tensor<f32>, ServeError> {
        self.predict_detailed(name, x).map(|s| s.output)
    }

    /// Scores `x` on `name` with serving metadata.
    pub fn predict_detailed(&self, name: &str, x: &Tensor<f32>) -> Result<Served, ServeError> {
        let _guard = self.admit(name)?;
        self.execute(name, x)
    }

    /// Fair-share admission for one request on `name`. The returned
    /// guard releases the slot on drop.
    pub(crate) fn admit(&self, name: &str) -> Result<ShareGuard, ServeError> {
        let entry = self.entry(name)?;
        let (admitted, total) = {
            let mut share = self.lock_share();
            (share.try_admit(name), share.total())
        };
        if !admitted {
            entry.state().active.record_overload();
            return Err(ServeError::Overloaded {
                in_flight: total,
                capacity: self.config.in_flight,
            });
        }
        Ok(ShareGuard {
            share: Arc::clone(&self.share),
            name: name.to_string(),
        })
    }

    /// Executes one already-admitted request on `name`, running the
    /// canary shadow when one is due. The active version answers unless
    /// a due canary run *matched it* within tolerance — then the
    /// candidate's (equivalent) answer is returned, so promoted-to-be
    /// versions see real traffic before the swap.
    pub(crate) fn execute(&self, name: &str, x: &Tensor<f32>) -> Result<Served, ServeError> {
        let entry = self.entry(name)?;
        let start = Instant::now();
        let (active, candidate) = {
            let st = entry.state();
            (
                Arc::clone(&st.active),
                st.candidate
                    .as_ref()
                    .map(|d| (Arc::clone(&d.model), d.version)),
            )
        };
        let tick = entry.ticks.fetch_add(1, Ordering::Relaxed);
        let fraction = self.config.canary_fraction as u64;
        let canary_due = candidate.is_some() && fraction > 0 && tick.wrapping_rem(fraction) == 0;
        let deadline = active.config().deadline.map(|d| Instant::now() + d);
        let result = active.predict_detailed_until(x, deadline);
        let result = match (result, canary_due, candidate) {
            (Ok(served), true, Some((cand, cver))) => {
                Ok(self.run_candidate(&entry, name, &cand, cver, x, served))
            }
            (r, _, _) => r,
        };
        if result.is_ok() {
            entry.latency.record(start.elapsed());
        }
        result
    }

    /// Runs the candidate shadow for one canary-due request and applies
    /// the promote/rollback state machine. Always returns a correct
    /// answer: the candidate's when it validated, the active version's
    /// otherwise.
    fn run_candidate(
        &self,
        entry: &Entry,
        name: &str,
        cand: &Arc<ServingModel>,
        cver: u32,
        x: &Tensor<f32>,
        active_served: Served,
    ) -> Served {
        let deadline = cand.config().deadline.map(|d| Instant::now() + d);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            cand.predict_detailed_until(x, deadline)
        }));
        let verdict: Result<Served, String> = match outcome {
            Ok(Ok(served)) => {
                let err = divergence(&served.output, &active_served.output);
                if err.is_nan() || err > self.config.canary_tolerance {
                    Err(format!(
                        "candidate diverged: relative error {err:e} exceeds tolerance {:e}",
                        self.config.canary_tolerance
                    ))
                } else {
                    Ok(served)
                }
            }
            Ok(Err(e)) => Err(format!("candidate failed: {e}")),
            Err(p) => Err(format!("candidate panicked: {}", panic_text(p))),
        };
        let tag = format!("{name}@v{cver}");
        match verdict {
            Ok(served) => {
                let promote = {
                    let mut st = entry.state();
                    match &mut st.candidate {
                        // Guard against a concurrent promote/rollback
                        // having already retired this candidate.
                        Some(d) if d.version == cver => {
                            d.clean += 1;
                            d.clean >= self.config.promote_after
                        }
                        _ => false,
                    }
                };
                if promote {
                    self.promote(entry, name);
                }
                served
            }
            Err(why) => {
                self.incidents
                    .record_for(IncidentKind::CanaryDivergence, None, Some(&tag), &why);
                let rollback = {
                    let mut st = entry.state();
                    match &mut st.candidate {
                        Some(d) if d.version == cver => {
                            d.failures += 1;
                            d.failures >= self.config.max_canary_failures
                        }
                        _ => false,
                    }
                };
                if rollback {
                    self.rollback(entry, name, &why);
                }
                active_served
            }
        }
    }

    /// Atomically swaps the candidate in as the active version.
    fn promote(&self, entry: &Entry, name: &str) {
        let mut st = entry.state();
        let Some(d) = st.candidate.take() else {
            return;
        };
        let tag = format!("{name}@v{}", d.version);
        let clean = d.clean;
        let card = ModelCard {
            version: d.version,
            canary: false,
            ..st.card.clone()
        };
        self.swap_active(&mut st, name, d.model, d.version, d.charge, d.hashes, card);
        drop(st);
        self.incidents.record_for(
            IncidentKind::Promoted,
            None,
            Some(&tag),
            format!("{clean} clean canary checks; previous version drained"),
        );
    }

    /// Replaces the active version in `st`, releasing the old version's
    /// pool references and budget charge. In-flight requests hold their
    /// own `Arc<ServingModel>` and finish on the old version safely.
    #[allow(clippy::too_many_arguments)]
    fn swap_active(
        &self,
        st: &mut EntryState,
        name: &str,
        model: Arc<ServingModel>,
        version: u32,
        charge: usize,
        hashes: Vec<u64>,
        card: ModelCard,
    ) {
        let old_hashes = std::mem::replace(&mut st.hashes, hashes);
        let old_charge = std::mem::replace(&mut st.charge, charge);
        st.active = model;
        st.version = version;
        st.card = card;
        self.pool.release(&old_hashes);
        self.lock_ledger().credit(name, old_charge);
    }

    /// Drops the candidate, releasing its pool references and charge.
    fn rollback(&self, entry: &Entry, name: &str, why: &str) {
        let mut st = entry.state();
        let Some(d) = st.candidate.take() else {
            return;
        };
        let active = st.version;
        drop(st);
        self.pool.release(&d.hashes);
        self.lock_ledger().credit(name, d.charge);
        self.incidents.record_for(
            IncidentKind::RolledBack,
            None,
            Some(&format!("{name}@v{}", d.version)),
            format!("{why}; v{active} keeps serving"),
        );
    }

    /// Compiles and interns one version, without touching the ledger.
    fn build(
        &self,
        name: &str,
        version: u32,
        pipeline: &Pipeline,
        mut cfg: ServeConfig,
    ) -> Result<Built, ServeError> {
        // Thread the chaos-seed override through every hosted model so a
        // store-wide chaos run reproduces under one env var.
        cfg.faults = cfg.faults.with_env_seed();
        let mut model = ServingModel::new(pipeline, cfg)
            .map_err(|e| ServeError::BadRequest(format!("model {name:?}: {e}")))?;
        let stats = model.intern_constants(&self.pool);
        model.adopt_log(Arc::clone(&self.incidents), &format!("{name}@v{version}"));
        // Budget the plan arena from the *certified* footprint when the
        // model carries one — the statically audited bound, checked here
        // at registration instead of discovered at first execution. A
        // model whose work is not derivable falls back to the measured
        // plan estimate.
        let arena = model
            .certified_arena(self.config.budget_batch)
            .unwrap_or_else(|| model.arena_estimate(self.config.budget_batch));
        // The model owns its fresh pool bytes and its un-interned small
        // constants; shared bytes are charged to their first holder.
        let charge = stats.fresh_bytes + stats.small_bytes() + arena;
        let rungs = model.available_rungs();
        Ok(Built {
            model: Arc::new(model),
            charge,
            hashes: stats.hashes,
            shared_bytes: stats.shared_bytes,
            fresh_bytes: stats.fresh_bytes,
            rungs,
        })
    }

    /// Charges `charge` bytes to `name`, enforcing both budgets. On
    /// refusal the caller's pool references are released and a
    /// [`IncidentKind::BudgetRejected`] incident is recorded.
    fn commit_budget(&self, name: &str, charge: usize, hashes: &[u64]) -> Result<(), ServeError> {
        let mut ledger = self.lock_ledger();
        let model_total = ledger.charge_of(name) + charge;
        let budget = match (self.config.model_budget, self.config.total_budget) {
            (Some(b), _) if model_total > b => Some((model_total, b)),
            (_, Some(b)) if ledger.total() + charge > b => Some((ledger.total() + charge, b)),
            _ => None,
        };
        if let Some((requested, budget)) = budget {
            drop(ledger);
            self.pool.release(hashes);
            self.incidents.record_for(
                IncidentKind::BudgetRejected,
                None,
                Some(name),
                format!("needs {requested} bytes, budget {budget}"),
            );
            return Err(ServeError::BudgetExceeded {
                model: name.to_string(),
                requested,
                budget,
            });
        }
        ledger.charge(name, charge);
        Ok(())
    }

    /// Registered model names, sorted.
    pub fn models(&self) -> Vec<String> {
        let mut names: Vec<String> = self.read_entries().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.read_entries().len()
    }

    /// True when no model is registered.
    pub fn is_empty(&self) -> bool {
        self.read_entries().is_empty()
    }

    /// The active version of `name`.
    pub fn version(&self, name: &str) -> Option<u32> {
        Some(self.entry(name).ok()?.state().version)
    }

    /// The receipt for `name`'s active version.
    pub fn card(&self, name: &str) -> Option<ModelCard> {
        Some(self.entry(name).ok()?.state().card.clone())
    }

    /// True while `name` has a candidate version in its canary phase.
    pub fn deploying(&self, name: &str) -> bool {
        self.entry(name)
            .map(|e| e.state().candidate.is_some())
            .unwrap_or(false)
    }

    /// The active [`ServingModel`] for `name` (health, stats, canary).
    pub(crate) fn active_model(&self, name: &str) -> Option<Arc<ServingModel>> {
        Some(Arc::clone(&self.entry(name).ok()?.state().active))
    }

    /// Every hosted model — active versions plus in-flight candidates —
    /// for the supervisor's watchdog and recovery probes.
    pub(crate) fn hosted_models(&self) -> Vec<Arc<ServingModel>> {
        let entries = self.read_entries();
        let mut models = Vec::with_capacity(entries.len());
        for entry in entries.values() {
            let st = entry.state();
            models.push(Arc::clone(&st.active));
            if let Some(d) = &st.candidate {
                models.push(Arc::clone(&d.model));
            }
        }
        models
    }

    /// Per-model health snapshots: `(name, active version, health)`.
    pub fn healths(&self) -> Vec<(String, u32, HealthSnapshot)> {
        let entries = self.read_entries();
        let mut out: Vec<(String, u32, HealthSnapshot)> = entries
            .values()
            .map(|e| {
                let st = e.state();
                (e.name.clone(), st.version, st.active.health())
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Latency histogram snapshot for `name`'s successful requests.
    pub fn latency(&self, name: &str) -> Option<HistogramSnapshot> {
        Some(self.entry(name).ok()?.latency.snapshot())
    }

    /// Sum of every model's budget charge (the accounted footprint).
    pub fn resident_bytes(&self) -> usize {
        self.lock_ledger().total()
    }

    /// `name`'s budget charge.
    pub fn charge_of(&self, name: &str) -> usize {
        self.lock_ledger().charge_of(name)
    }

    /// Bytes of deduplicated constant data the shared pool keeps alive.
    pub fn pool_bytes(&self) -> usize {
        self.pool.resident_bytes()
    }

    /// Distinct constants in the shared pool.
    pub fn pool_entries(&self) -> usize {
        self.pool.len()
    }

    /// The *measured* resident footprint: unique constant storage across
    /// every hosted model (shared buffers counted once) plus live
    /// plan-cache arenas. The `tables -- store` bench gates sub-linear
    /// growth on this number.
    pub fn measured_bytes(&self) -> usize {
        let mut seen: HashSet<usize> = HashSet::new();
        self.hosted_models()
            .iter()
            .map(|m| m.memory_footprint(&mut seen))
            .sum()
    }

    /// Snapshot of the shared incident log (all models interleaved,
    /// each tagged `name@vN`).
    pub fn incidents(&self) -> Vec<Incident> {
        self.incidents.snapshot()
    }

    /// Incidents lost to ring eviction (see [`IncidentLog::dropped`]).
    pub fn incidents_dropped(&self) -> u64 {
        self.incidents.dropped()
    }

    /// The shared incident log handle.
    pub(crate) fn incident_log(&self) -> Arc<IncidentLog> {
        Arc::clone(&self.incidents)
    }

    fn entry(&self, name: &str) -> Result<Arc<Entry>, ServeError> {
        self.read_entries()
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownModel(name.to_string()))
    }

    fn read_entries(&self) -> std::sync::RwLockReadGuard<'_, HashMap<String, Arc<Entry>>> {
        self.entries.read().unwrap_or_else(|p| p.into_inner())
    }

    fn write_entries(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<String, Arc<Entry>>> {
        self.entries.write().unwrap_or_else(|p| p.into_inner())
    }

    fn lock_share(&self) -> std::sync::MutexGuard<'_, FairShare> {
        self.share.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn lock_ledger(&self) -> std::sync::MutexGuard<'_, BudgetLedger> {
        self.ledger.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_pipeline::{fit_pipeline, OpSpec, Targets};

    // 24 features so the fitted parameter tensors clear the pool's
    // MIN_INTERN_BYTES floor and dedup has something to share.
    fn fixture(seed: usize) -> (Pipeline, Tensor<f32>) {
        let x = Tensor::from_fn(&[40, 24], |i| {
            ((i[0] * 7 + i[1] * (seed + 3)) % 11) as f32 * 0.3
        });
        let y = Targets::Classes((0..40).map(|i| (i % 2) as i64).collect());
        let pipe = fit_pipeline(&[OpSpec::StandardScaler, OpSpec::GaussianNb], &x, &y);
        (pipe, x)
    }

    #[test]
    fn register_predict_and_evict_round_trip() {
        let store = ModelStore::new(StoreConfig::default());
        let (pipe, x) = fixture(1);
        let card = store
            .register("fraud", &pipe, ServeConfig::default())
            .unwrap();
        assert_eq!(card.version, 1);
        assert!(card.charge_bytes > 0);
        assert_eq!(store.version("fraud"), Some(1));
        let served = store.predict_detailed("fraud", &x).unwrap();
        assert_eq!(served.output.shape(), &[40, 2]);
        assert!(store.resident_bytes() > 0);
        store.evict("fraud").unwrap();
        assert_eq!(store.resident_bytes(), 0);
        assert_eq!(store.pool_entries(), 0, "eviction must drain the pool");
        assert!(matches!(
            store.predict("fraud", &x),
            Err(ServeError::UnknownModel(_))
        ));
    }

    #[test]
    fn duplicate_registration_is_refused() {
        let store = ModelStore::new(StoreConfig::default());
        let (pipe, _) = fixture(1);
        store.register("m", &pipe, ServeConfig::default()).unwrap();
        let err = store
            .register("m", &pipe, ServeConfig::default())
            .unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(msg) if msg.contains("use deploy")));
        let err = store
            .register("", &pipe, ServeConfig::default())
            .unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(msg) if msg.contains("non-empty")));
    }

    #[test]
    fn identical_models_share_pool_bytes() {
        let store = ModelStore::new(StoreConfig::default());
        let (pipe, _) = fixture(1);
        let a = store.register("a", &pipe, ServeConfig::default()).unwrap();
        let b = store.register("b", &pipe, ServeConfig::default()).unwrap();
        assert!(a.fresh_bytes > 0, "first model brings fresh constants");
        assert!(
            a.shared_bytes > 0,
            "a model's lower rungs share its own best rung's constants"
        );
        assert_eq!(b.fresh_bytes, 0, "identical twin owns nothing new");
        assert_eq!(b.shared_bytes, a.fresh_bytes + a.shared_bytes);
        assert!(
            b.charge_bytes < a.charge_bytes,
            "the twin's charge must exclude shared constants"
        );
    }

    #[test]
    fn model_budget_refuses_and_releases() {
        let store = ModelStore::new(StoreConfig {
            model_budget: Some(1),
            ..StoreConfig::default()
        });
        let (pipe, _) = fixture(1);
        let err = store
            .register("big", &pipe, ServeConfig::default())
            .unwrap_err();
        assert!(matches!(err, ServeError::BudgetExceeded { ref model, .. } if model == "big"));
        assert_eq!(store.resident_bytes(), 0);
        assert_eq!(
            store.pool_entries(),
            0,
            "refusal must release interned constants"
        );
        assert!(store
            .incidents()
            .iter()
            .any(|i| i.kind == IncidentKind::BudgetRejected));
        assert!(store.is_empty());
    }

    #[test]
    fn certified_footprint_gates_registration_before_execution() {
        let (pipe, _) = fixture(1);
        let probe = ServingModel::new(&pipe, ServeConfig::default()).expect("fixture must serve");
        let batch = StoreConfig::default().budget_batch;
        let certified = probe
            .certified_arena(batch)
            .expect("fixture pipelines must certify their arena");
        // The certified bound and the plan-cache estimate derive the
        // same arenas through independent paths; they must agree.
        assert_eq!(certified, probe.arena_estimate(batch));
        // A budget below the certified arena alone cannot fit even a
        // model with zero constant bytes: registration must refuse from
        // the static bound, before any request ever executes.
        let store = ModelStore::new(StoreConfig {
            model_budget: Some(certified - 1),
            ..StoreConfig::default()
        });
        let err = store
            .register("m", &pipe, ServeConfig::default())
            .unwrap_err();
        match err {
            ServeError::BudgetExceeded {
                requested, budget, ..
            } => {
                assert!(
                    requested >= certified,
                    "charge {requested} must include the certified arena {certified}"
                );
                assert_eq!(budget, certified - 1);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        assert!(store.is_empty(), "refused model must not be registered");
        assert_eq!(
            store.resident_bytes(),
            0,
            "the overrun was caught statically, nothing was ever charged"
        );
    }

    #[test]
    fn clean_canary_auto_promotes() {
        let store = ModelStore::new(StoreConfig {
            canary_fraction: 1,
            promote_after: 3,
            ..StoreConfig::default()
        });
        let (pipe, x) = fixture(1);
        store.register("m", &pipe, ServeConfig::default()).unwrap();
        // v2 is the same pipeline: every canary comparison is clean.
        let card = store.deploy("m", &pipe, ServeConfig::default()).unwrap();
        assert_eq!(card.version, 2);
        assert!(card.canary);
        for _ in 0..4 {
            store.predict("m", &x).unwrap();
        }
        assert_eq!(
            store.version("m"),
            Some(2),
            "candidate should have promoted"
        );
        assert!(!store.deploying("m"));
        assert!(store
            .incidents()
            .iter()
            .any(|i| i.kind == IncidentKind::Promoted && i.model.as_deref() == Some("m@v2")));
    }

    #[test]
    fn divergent_canary_rolls_back_and_v1_keeps_serving() {
        let store = ModelStore::new(StoreConfig {
            canary_fraction: 1,
            max_canary_failures: 2,
            ..StoreConfig::default()
        });
        let (pipe, x) = fixture(1);
        store.register("m", &pipe, ServeConfig::default()).unwrap();
        let baseline = store.predict("m", &x).unwrap();
        // A divergent v2: same schema, shuffled labels → different
        // probabilities.
        let y2 = Targets::Classes((0..40).map(|i| ((i / 3) % 2) as i64).collect());
        let pipe2 = fit_pipeline(&[OpSpec::StandardScaler, OpSpec::GaussianNb], &x, &y2);
        store.deploy("m", &pipe2, ServeConfig::default()).unwrap();
        let before = store.resident_bytes();
        for _ in 0..6 {
            let out = store.predict("m", &x).unwrap();
            // The active version answers even while the canary diverges.
            assert_eq!(out.as_slice(), baseline.as_slice());
        }
        assert_eq!(
            store.version("m"),
            Some(1),
            "divergent candidate must not promote"
        );
        assert!(!store.deploying("m"), "candidate should have rolled back");
        assert!(
            store.resident_bytes() < before,
            "rollback must release the candidate"
        );
        assert!(store
            .incidents()
            .iter()
            .any(|i| i.kind == IncidentKind::RolledBack && i.model.as_deref() == Some("m@v2")));
    }

    #[test]
    fn unknown_model_is_a_typed_error() {
        let store = ModelStore::new(StoreConfig::default());
        let x = Tensor::from_fn(&[1, 3], |_| 0.5);
        assert!(matches!(
            store.predict("ghost", &x),
            Err(ServeError::UnknownModel(name)) if name == "ghost"
        ));
        assert!(matches!(
            store.evict("ghost"),
            Err(ServeError::UnknownModel(_))
        ));
    }

    #[test]
    fn fair_share_guarantee_survives_a_greedy_neighbor() {
        let mut share = FairShare::new(8);
        share.set_models(2);
        assert_eq!(share.guarantee(), 4);
        // Greedy model takes its guarantee plus all the slack.
        for _ in 0..8 {
            assert!(share.try_admit("greedy"));
        }
        assert!(!share.try_admit("greedy"), "slack exhausted");
        // The quiet model still gets its full guarantee.
        for _ in 0..4 {
            assert!(share.try_admit("quiet"), "guarantee must never be starved");
        }
        share.release("greedy");
        share.release("quiet");
        assert_eq!(share.total(), 10);
    }

    #[test]
    fn ledger_stays_consistent() {
        let mut ledger = BudgetLedger::new();
        ledger.charge("a", 100);
        ledger.charge("b", 50);
        ledger.charge("a", 25);
        assert_eq!(ledger.charge_of("a"), 125);
        assert_eq!(ledger.total(), 175);
        assert!(ledger.consistent());
        ledger.credit("a", 125);
        assert_eq!(ledger.charge_of("a"), 0);
        assert_eq!(ledger.total(), 50);
        // Over-credit saturates instead of underflowing.
        ledger.credit("b", 500);
        assert_eq!(ledger.total(), 0);
        assert!(ledger.consistent());
    }
}
